#!/usr/bin/env sh
# Perf trajectory plumbing: run bench_pipeline_e2e + bench_reconcile +
# bench_multilink + bench_scenarios + bench_key_delivery + bench_network +
# bench_chaos + bench_orchestrator_scale + bench_toeplitz and write
# BENCH_pipeline.json at the repo root, so
# subsequent PRs can compare end-to-end blocks/s, multi-link aggregate
# secret bits/s, static-vs-adaptive scenario throughput, concurrent-SAE
# key-delivery throughput, relay-network end-to-end delivery (clean vs
# forced-outage availability), chaos goodput under channel faults,
# per-stage items/s, and the Toeplitz kernel times against this baseline.
# When bench/baseline.json exists the run finishes with
# scripts/bench_compare.py, failing on regressions (the local mirror of the
# CI bench-gate job).
#
# Usage: run_benches.sh [--quick]
#   --quick          shorter scenario timelines (the CI bench-gate posture)
#
# Env knobs:
#   BUILD_DIR            build tree to use (default: build)
#   TOEPLITZ_FILTER      google-benchmark filter for the kernel sweep
#                        (default: the 65536/100000-bit acceptance points)
#   QKDPP_BENCH_NO_GATE  set to 1 to skip the baseline comparison
set -eu
cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build}
FILTER=${TOEPLITZ_FILTER:-'(BM_ToeplitzDirect|BM_ToeplitzClmul|BM_ToeplitzNtt)/(65536|100000)$'}
SCENARIO_ARGS=""
for arg in "$@"; do
  case "$arg" in
    --quick) SCENARIO_ARGS="--quick" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target bench_pipeline_e2e bench_reconcile \
  bench_multilink bench_scenarios bench_key_delivery bench_network \
  bench_chaos bench_orchestrator_scale >/dev/null

echo "== bench_pipeline_e2e =="
# No pipe here: under `set -e` a pipeline would mask a crashing bench with
# tee's exit status and bake a garbage baseline into BENCH_pipeline.json.
"$BUILD"/bench_pipeline_e2e > "$BUILD"/bench_pipeline_e2e.out
cat "$BUILD"/bench_pipeline_e2e.out
PIPELINE_JSON=$(tail -n 1 "$BUILD"/bench_pipeline_e2e.out)
case "$PIPELINE_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_pipeline_e2e summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_reconcile =="
# Self-gates: the batched int8 decoder must clear 5x the pre-batching
# reconcile throughput at 10 km and must not lose reconcile or e2e time to
# the legacy float arm at any completed distance; a violation exits
# non-zero and fails here.
"$BUILD"/bench_reconcile > "$BUILD"/bench_reconcile.out
cat "$BUILD"/bench_reconcile.out
RECONCILE_JSON=$(tail -n 1 "$BUILD"/bench_reconcile.out)
case "$RECONCILE_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_reconcile summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_multilink =="
"$BUILD"/bench_multilink > "$BUILD"/bench_multilink.out
cat "$BUILD"/bench_multilink.out
MULTILINK_JSON=$(tail -n 1 "$BUILD"/bench_multilink.out)
case "$MULTILINK_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_multilink summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_scenarios $SCENARIO_ARGS =="
# The scenario bench self-gates (adaptive >= static everywhere, >10% on
# qber-burst and device-hot-remove): a non-zero exit fails the run here.
"$BUILD"/bench_scenarios $SCENARIO_ARGS > "$BUILD"/bench_scenarios.out
cat "$BUILD"/bench_scenarios.out
SCENARIOS_JSON=$(tail -n 1 "$BUILD"/bench_scenarios.out)
case "$SCENARIOS_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_scenarios summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_key_delivery =="
# Self-gates: zero duplicate UUID deliveries and zero lost key bits across
# the concurrent SAE consumers; a violation exits non-zero and fails here.
"$BUILD"/bench_key_delivery > "$BUILD"/bench_key_delivery.out
cat "$BUILD"/bench_key_delivery.out
KEY_DELIVERY_JSON=$(tail -n 1 "$BUILD"/bench_key_delivery.out)
case "$KEY_DELIVERY_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_key_delivery summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_network =="
# Self-gates: zero duplicate/lost bits end-to-end across the trusted-node
# relay network, and the forced-outage phase must deliver >= 0.9x the
# clean run's availability via re-route; a violation exits non-zero here.
"$BUILD"/bench_network > "$BUILD"/bench_network.out
cat "$BUILD"/bench_network.out
NETWORK_JSON=$(tail -n 1 "$BUILD"/bench_network.out)
case "$NETWORK_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_network summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_chaos =="
# Self-gates: chaotic goodput >= 0.7x clean under 5% loss + 1% corruption,
# byte-identical keys across clean/chaotic/replay runs (zero lost or
# duplicated bits, zero keys failing verification), breaker opens on the
# dark link, actionable 503s; a violation exits non-zero and fails here.
"$BUILD"/bench_chaos > "$BUILD"/bench_chaos.out
cat "$BUILD"/bench_chaos.out
CHAOS_JSON=$(tail -n 1 "$BUILD"/bench_chaos.out)
case "$CHAOS_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_chaos summary line is not JSON" >&2; exit 1 ;;
esac

echo "== bench_orchestrator_scale =="
# Self-gates: 1 -> 128 link sweep with core-count-normalized scaling
# (>= 8x the 8-link aggregate on wide hosts), exact store conservation
# (zero lost/duplicate bits), and same-seed byte-identical reruns; a
# violation exits non-zero and fails here.
"$BUILD"/bench_orchestrator_scale > "$BUILD"/bench_orchestrator_scale.out
cat "$BUILD"/bench_orchestrator_scale.out
SCALE_JSON=$(tail -n 1 "$BUILD"/bench_orchestrator_scale.out)
case "$SCALE_JSON" in
  '{'*'}') ;;
  *) echo "error: bench_orchestrator_scale summary line is not JSON" >&2; exit 1 ;;
esac

# bench_toeplitz needs google-benchmark; degrade gracefully without it.
TOEPLITZ_JSON=null
if cmake --build "$BUILD" -j --target bench_toeplitz >/dev/null 2>&1 \
    && [ -x "$BUILD"/bench_toeplitz ]; then
  echo "== bench_toeplitz ($FILTER) =="
  "$BUILD"/bench_toeplitz --benchmark_filter="$FILTER" \
    --benchmark_format=json > "$BUILD"/bench_toeplitz.json
  TOEPLITZ_JSON=$(cat "$BUILD"/bench_toeplitz.json)
fi

{
  printf '{"schema":"qkdpp-bench-v1","unit":"blocks_per_s",'
  printf '"pipeline_e2e":%s,' "$PIPELINE_JSON"
  printf '"reconcile":%s,' "$RECONCILE_JSON"
  printf '"multilink":%s,' "$MULTILINK_JSON"
  printf '"scenarios":%s,' "$SCENARIOS_JSON"
  printf '"key_delivery":%s,' "$KEY_DELIVERY_JSON"
  printf '"network":%s,' "$NETWORK_JSON"
  printf '"chaos":%s,' "$CHAOS_JSON"
  printf '"orchestrator_scale":%s,' "$SCALE_JSON"
  printf '"toeplitz":%s}\n' "$TOEPLITZ_JSON"
} > BENCH_pipeline.json
echo "wrote BENCH_pipeline.json"

if [ "${QKDPP_BENCH_NO_GATE:-0}" != "1" ] && [ -f bench/baseline.json ]; then
  if command -v python3 >/dev/null 2>&1; then
    echo "== bench_compare (vs bench/baseline.json) =="
    python3 scripts/bench_compare.py bench/baseline.json BENCH_pipeline.json
  else
    echo "warning: python3 not found, skipping baseline comparison" >&2
  fi
fi
