#!/usr/bin/env python3
"""Compare a BENCH_pipeline.json run against a committed baseline.

The CI bench-gate job (and the tail of scripts/run_benches.sh) calls this
with bench/baseline.json vs the fresh BENCH_pipeline.json and fails the
build on regressions beyond the tolerance.

Two metric classes:

* gating - machine-independent numbers: the e2e bench's *modeled*
  blocks/s (device model arithmetic, not wall-clock), the deterministic
  secret-bit totals of the multilink and scenario benches, and the
  scenario bench's own adaptive>=static gate. A regression beyond
  --tolerance (default 25%) fails the run on any machine.
* advisory - wall-clock rates (cpu blocks/s, multilink aggregate bits/s).
  These swing with the host, so they only warn unless --strict-wall is
  given (useful locally, where the baseline was produced on this machine).

The committed baseline is produced by the --quick posture, so a full-length
local run can only beat it. Regenerate after an intentional perf change:

    scripts/run_benches.sh --quick && cp BENCH_pipeline.json bench/baseline.json

Exit codes: 0 ok, 1 regression, 2 usage/malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def extract(doc):
    """Flatten one BENCH_pipeline.json into {metric: (value, gating)}."""
    metrics = {}

    e2e = doc.get("pipeline_e2e") or {}
    rows = [r for r in e2e.get("rows", []) if r.get("ok")]
    if rows:
        # Modeled throughput is pure device-model arithmetic: comparable
        # across machines, which is what makes it gateable in CI.
        metrics["e2e_hetero_blocks_per_s"] = (
            mean(r["hetero_blocks_per_s"] for r in rows), True)
        metrics["e2e_cpu_model_blocks_per_s"] = (
            mean(r["cpu_model_blocks_per_s"] for r in rows), True)
        metrics["e2e_cpu_wall_blocks_per_s"] = (
            mean(r["cpu_blocks_per_s"] for r in rows), False)

    reconcile = doc.get("reconcile") or {}
    batched_rows = [r.get("batched") or {} for r in reconcile.get("rows", [])]
    batched_rows = [b for b in batched_rows if b.get("ok")]
    if batched_rows:
        # Reconcile-stage throughput of the batched decoder. Wall-clock, but
        # gated anyway: this is the PR-trajectory headline (the bench itself
        # also hard-gates an absolute 10 km floor via its exit code), and
        # the 25% tolerance absorbs ordinary host-to-host spread. Decode
        # behaviour (iterations, early exits) is advisory trend data.
        metrics["reconcile_batched_items_per_s"] = (
            mean(b["reconcile_items_per_s"] for b in batched_rows), True)
        ten_km = [r for r in reconcile.get("rows", [])
                  if r.get("km") == 10 and (r.get("batched") or {}).get("ok")]
        if ten_km:
            metrics["reconcile_items_per_s_10km"] = (
                float(ten_km[0]["batched"]["reconcile_items_per_s"]), True)
        metrics["reconcile_iterations_mean"] = (
            mean(b.get("iterations_mean", 0.0) for b in batched_rows), False)
        metrics["reconcile_early_exit_rate"] = (
            mean(b.get("early_exit_rate", 0.0) for b in batched_rows), False)

    multilink = doc.get("multilink") or {}
    aggregate = multilink.get("aggregate") or {}
    if aggregate:
        metrics["multilink_secret_bits"] = (
            float(aggregate.get("secret_bits", 0)), True)
        metrics["multilink_wall_bits_per_s"] = (
            float(aggregate.get("secret_bits_per_s", 0.0)), False)

    scenarios = doc.get("scenarios") or {}
    for row in scenarios.get("rows", []):
        name = row.get("scenario", "?")
        adaptive = row.get("adaptive") or {}
        metrics[f"scenario_{name}_adaptive_secret_bits"] = (
            float(adaptive.get("secret_bits", 0)), True)

    key_delivery = doc.get("key_delivery") or {}
    if key_delivery:
        # Delivered bits are near-deterministic per seed (residual-buffer
        # splits race by at most a few key sizes): gateable. Request and
        # delivery rates are wall-clock: advisory.
        metrics["key_delivery_delivered_bits"] = (
            float(key_delivery.get("delivered_bits", 0)), True)
        metrics["key_delivery_wall_requests_per_s"] = (
            float(key_delivery.get("requests_per_s", 0.0)), False)
        metrics["key_delivery_wall_bits_per_s"] = (
            float(key_delivery.get("delivered_bits_per_s", 0.0)), False)

    network = doc.get("network") or {}
    if network:
        # Fixed per-pair demand makes delivered bits deterministic when the
        # network can carry them (the bench sizes demand to fit the outage
        # cut), and the clean/outage availability ratio is the re-route
        # guarantee itself: both gateable. Wall rate is advisory.
        metrics["network_delivered_bits_clean"] = (
            float(network.get("delivered_bits_clean", 0)), True)
        metrics["network_delivered_bits_outage"] = (
            float(network.get("delivered_bits_outage", 0)), True)
        metrics["network_availability_ratio"] = (
            float(network.get("availability_ratio", 0.0)), True)
        metrics["network_wall_bits_per_s"] = (
            float(network.get("delivered_bits_per_s", 0.0)), False)

    chaos = doc.get("chaos") or {}
    if chaos:
        # Secret-bit totals are seeded and deterministic (the bench itself
        # gates byte-identity across clean/chaotic/replay): gateable. The
        # goodput ratio and delivery volume are wall-clock-shaped: advisory
        # (the bench already hard-gates ratio >= 0.7 via its exit code).
        metrics["chaos_clean_secret_bits"] = (
            float(chaos.get("clean_secret_bits", 0)), True)
        metrics["chaos_chaotic_secret_bits"] = (
            float(chaos.get("chaotic_secret_bits", 0)), True)
        metrics["chaos_wall_goodput_ratio"] = (
            float(chaos.get("goodput_ratio", 0.0)), False)
        delivery = chaos.get("delivery") or {}
        metrics["chaos_delivered_bits"] = (
            float(delivery.get("delivered_bits", 0)), True)

    scale = (doc.get("orchestrator_scale") or {}).get("scale") or {}
    if scale:
        # Secret-bit totals across the 1->128 sweep are seed-deterministic
        # (engine fast path): gateable. The 128/8 rate ratio and absolute
        # rates are wall-clock and depend on the host's core count: the
        # bench itself hard-gates the core-normalized ratio via its exit
        # code, so here they are advisory trend lines.
        metrics["orchestrator_scale_secret_bits"] = (
            float(scale.get("secret_bits_total", 0)), True)
        metrics["orchestrator_scale_wall_rate_128"] = (
            float(scale.get("rate_128", 0.0)), False)
        metrics["orchestrator_scale_wall_ratio_128_8"] = (
            float(scale.get("ratio", 0.0)), False)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression on gating "
                             "metrics (default 0.25)")
    parser.add_argument("--strict-wall", action="store_true",
                        help="gate wall-clock metrics too (same-machine "
                             "baselines only)")
    args = parser.parse_args()

    baseline = extract(load(args.baseline))
    current_doc = load(args.current)
    current = extract(current_doc)

    failures = []
    print(f"{'metric':44s} {'baseline':>14s} {'current':>14s} {'ratio':>7s}")
    for name, (base_value, gating) in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"{name:44s} {base_value:14.1f} {'MISSING':>14s}")
            continue
        value = current[name][0]
        ratio = value / base_value if base_value else float("inf")
        enforced = gating or args.strict_wall
        tag = ""
        if base_value and value < base_value * (1.0 - args.tolerance):
            if enforced:
                tag = "  << REGRESSION"
                failures.append(
                    f"{name}: {value:.1f} < {base_value:.1f} "
                    f"(-{(1 - ratio) * 100:.1f}%, tolerance "
                    f"{args.tolerance * 100:.0f}%)")
            else:
                tag = "  (wall-clock, advisory)"
        print(f"{name:44s} {base_value:14.1f} {value:14.1f} {ratio:6.2f}x"
              f"{tag}")

    reconcile_gate = (current_doc.get("reconcile") or {}).get("gate") or {}
    if reconcile_gate and not reconcile_gate.get("ok", True):
        failures.append("bench_reconcile gate ok=false (batched decoder "
                        "below the 10 km throughput floor or slower than "
                        "the legacy arm)")

    scenarios = current_doc.get("scenarios") or {}
    if scenarios and not scenarios.get("gate_ok", True):
        failures.append("bench_scenarios gate_ok=false "
                        "(adaptive lost to static placement)")

    key_delivery = current_doc.get("key_delivery") or {}
    if key_delivery and not key_delivery.get("gate_ok", True):
        failures.append("bench_key_delivery gate_ok=false "
                        "(duplicate or lost key deliveries)")

    network = current_doc.get("network") or {}
    if network and not network.get("gate_ok", True):
        failures.append("bench_network gate_ok=false (duplicate/lost bits "
                        "or outage availability below 0.9x clean)")

    scale = (current_doc.get("orchestrator_scale") or {}).get("scale") or {}
    if scale:
        if not scale.get("scale_gate_ok", True):
            failures.append(
                "bench_orchestrator_scale scale_gate_ok=false (128-link "
                "aggregate below the core-normalized scaling gate)")
        if not scale.get("conservation_ok", True):
            failures.append("bench_orchestrator_scale conservation_ok=false "
                            "(lost or duplicate bits in the sharded stores)")
        if not scale.get("determinism_ok", True):
            failures.append("bench_orchestrator_scale determinism_ok=false "
                            "(same-seed rerun was not byte-identical)")

    if failures:
        print("\nbench gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
