#!/usr/bin/env sh
# Tier-1 verify: configure, build, run the full test suite.
#
# Set QKDPP_CHECK_SANITIZE=1 to additionally build and run the suite under
# ASan+UBSan (separate build tree) - the word-twiddling kernels (clmul,
# BitVec select/scatter) are exactly the kind of code where shift and
# masking bugs hide, and the sanitizers catch them deterministically.
set -eu
cd "$(dirname "$0")/.."
cmake -B build -S . && cmake --build build -j && (cd build && ctest --output-on-failure -j)

if [ "${QKDPP_CHECK_SANITIZE:-0}" = "1" ]; then
  echo "== ASan+UBSan pass =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DQKDPP_SANITIZE=ON
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
fi
