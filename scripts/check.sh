#!/usr/bin/env sh
# Tier-1 verify: configure, build, run the test suite, then the smoke runs
# (the same script CI executes, so local and CI never drift).
#
# Env knobs:
#   QKDPP_CHECK_SANITIZE=1     additionally build and run everything under
#                              ASan+UBSan (separate build tree) - the
#                              word-twiddling kernels (clmul, BitVec
#                              select/scatter) are exactly the kind of code
#                              where shift and masking bugs hide, and the
#                              sanitizers catch them deterministically.
#   QKDPP_CHECK_SANITIZE=only  sanitizer tree only (the CI sanitize job).
#   QKDPP_CHECK_LABELS         ctest -L regex, e.g. 'unit|integration' to
#                              skip the slower service tier (CI tier-1 uses
#                              this so a hung service test cannot stall the
#                              runner; the sanitize job runs everything).
#   QKDPP_CHECK_BUILD_TYPE     CMAKE_BUILD_TYPE for the main tree (default
#                              Release). The CI matrix runs Debug legs with
#                              this; they use a per-type build dir so a
#                              local Release tree is not clobbered.
#   QKDPP_CHECK_WERROR=1       configure with -DQKDPP_WERROR=ON (the CI
#                              clang leg promotes warnings to errors).
#   QKDPP_CHECK_SMOKE=0        skip the smoke runs (Debug builds pay the
#                              PEG code construction at -O0 - far too slow
#                              for a smoke; unit tests still cover it).
set -eu
cd "$(dirname "$0")/.."

smoke() {
  # Smoke runs shared by CI and local checks: the multi-link orchestrator
  # under real concurrency, the dynamic-link scenario matrix with short
  # timelines (adaptive re-planning + device hot-remove included), and the
  # ETSI-shaped key-delivery API end to end through the JSON dispatcher
  # (self-checks master/slave key identity and the 400/401/503 error
  # model; a mismatch exits non-zero), and the trusted-node relay network
  # (non-adjacent SAE delivery with a mid-stream admin outage re-routed
  # around; self-checks failover + per-span bit conservation).
  echo "== smoke: multi_link ($1) =="
  "$1"/multi_link 2
  echo "== smoke: dynamic_link ($1) =="
  "$1"/dynamic_link all 4
  echo "== smoke: key_delivery_demo ($1) =="
  "$1"/key_delivery_demo 2
  echo "== smoke: network_relay ($1) =="
  "$1"/network_relay 2
}

run_tree() {
  tree=$1
  shift
  cmake -B "$tree" -S . "$@"
  cmake --build "$tree" -j
  # -j needs an explicit value: a bare `ctest -j -L foo` swallows `-L` as
  # the parallelism argument and silently runs the whole suite unfiltered.
  if [ -n "${QKDPP_CHECK_LABELS:-}" ]; then
    (cd "$tree" && ctest --output-on-failure -j "$(nproc)" \
      -L "$QKDPP_CHECK_LABELS")
  else
    (cd "$tree" && ctest --output-on-failure -j "$(nproc)")
  fi
  if [ "${QKDPP_CHECK_SMOKE:-1}" != "0" ]; then
    smoke "$tree"
  fi
}

SANITIZE=${QKDPP_CHECK_SANITIZE:-0}
BUILD_TYPE=${QKDPP_CHECK_BUILD_TYPE:-Release}

MAIN_ARGS="-DCMAKE_BUILD_TYPE=$BUILD_TYPE"
if [ "${QKDPP_CHECK_WERROR:-0}" = "1" ]; then
  MAIN_ARGS="$MAIN_ARGS -DQKDPP_WERROR=ON"
fi

if [ "$SANITIZE" != "only" ]; then
  # Non-Release trees get their own build dir so switching legs (or a CI
  # matrix) never replays a full reconfigure over a developer's tree.
  if [ "$BUILD_TYPE" = "Release" ]; then
    run_tree build $MAIN_ARGS
  else
    run_tree "build-$(echo "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')"       $MAIN_ARGS
  fi
fi

if [ "$SANITIZE" = "1" ] || [ "$SANITIZE" = "only" ]; then
  echo "== ASan+UBSan pass =="
  run_tree build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DQKDPP_SANITIZE=ON
fi
