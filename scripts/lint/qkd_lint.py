#!/usr/bin/env python3
"""qkd_lint: repo-specific static checks for qkdpp.

Checks (all findings are errors; CI requires a zero-finding run):

  banned-call       rand()/srand()/gets() anywhere, and std::random_device
                    outside src/common/rng.* - key material and simulation
                    randomness must flow through common/rng (seeded,
                    deterministic) so runs stay reproducible and secrets
                    never come from a weak generator.
  secret-log        no QKDPP_LOG/QKDPP_{DEBUG,INFO,WARN,ERROR} (or
                    std::cout/std::cerr insertion) of expressions that name
                    key/tag/LLR material. Sizes and counts are fine; the
                    contents of distilled keys, MAC tags, pad residuals and
                    decoder LLR buffers must never reach a log sink.
  secret-compare    MAC tag comparisons must go through ct_equal (a == on
                    tag values is the classic remote timing oracle;
                    src/auth/wegman_carter.cpp is the reference use).
  relaxed-order     every std::memory_order_relaxed use must be justified
                    by a `// relaxed:` comment in the same paragraph (the
                    comment covers following lines until the next blank
                    line). Unjustified relaxed atomics are where silent
                    reordering bugs live.
  include-hygiene   public headers (src/**/*.hpp) must use #pragma once and
                    include repo headers by their src/-relative path (no
                    "../" or "./" quoted includes), so every header works
                    with the single -Isrc include root.

Usage: qkd_lint.py [repo_root]
Exit status: 0 on zero findings, 1 otherwise.
"""

import pathlib
import re
import sys

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

BANNED_CALL = re.compile(r"\b(rand|srand|gets)\s*\(")
RANDOM_DEVICE = re.compile(r"\brandom_device\b")
# Files allowed to touch std::random_device: the repo's single entropy
# boundary (everything else draws from seeded streams it hands out).
RANDOM_DEVICE_ALLOWED = ("src/common/rng.hpp", "src/common/rng.cpp")

# Expressions that name secret material (not sizes/counts of it).
SECRET_EXPR = re.compile(
    r"final_key\b(?!_bits|s\b)"       # distilled key contents
    r"|\btag\.value\b"                # MAC tag words
    r"|\bllrs?\[|\bllrs?\.data\b"     # decoder soft values
    r"|\bresidual\.|\bresidual\["     # pad/segment tails
    r"|\.bits\.data\b|\.bits\["       # StoredKey/BitVec material
)

LOG_MACRO = re.compile(r"\bQKDPP_(LOG|DEBUG|INFO|WARN|ERROR)\s*\(")
STREAM_SINK = re.compile(r"\bstd::c(out|err)\b")

# A tag/MAC value compared with ==/!= instead of ct_equal.
TAG_COMPARE = re.compile(r"(tag\w*\.value\s*[=!]=|[=!]=\s*\w*tag\w*\.value)")

RELAXED = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_JUSTIFICATION = re.compile(r"//.*\brelaxed:")

PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

LINE_COMMENT = re.compile(r"//[^\n]*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"|\'(?:[^\'\\\n]|\\.)*\'')


def strip_comments_and_strings(text):
    """Blank out comments and string literals, preserving line structure."""

    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    text = LINE_COMMENT.sub(blank, text)
    return STRING_LIT.sub(blank, text)


def balanced_argument(code, start):
    """The text of a macro's argument list starting at its '('."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[start : i + 1]
    return code[start:]


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, line, rule, message):
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{line}: [{rule}] {message}")

    def lint_file(self, path):
        text = path.read_text(encoding="utf-8", errors="replace")
        rel = path.relative_to(self.root).as_posix()
        code = strip_comments_and_strings(text)
        code_lines = code.splitlines()
        raw_lines = text.splitlines()

        self.check_banned_calls(path, rel, code_lines)
        if rel.startswith("src/"):
            self.check_secret_log(path, code)
            self.check_secret_compare(path, code_lines)
            self.check_relaxed(path, raw_lines, code_lines)
            if path.suffix == ".hpp":
                self.check_include_hygiene(path, text, raw_lines)

    def check_banned_calls(self, path, rel, code_lines):
        for i, line in enumerate(code_lines, 1):
            match = BANNED_CALL.search(line)
            if match:
                self.report(
                    path, i, "banned-call",
                    f"{match.group(1)}() is banned: use common/rng "
                    "(deterministic, seedable) for randomness")
            if RANDOM_DEVICE.search(line) and rel not in RANDOM_DEVICE_ALLOWED:
                self.report(
                    path, i, "banned-call",
                    "std::random_device outside src/common/rng: all entropy "
                    "enters through the seeded rng boundary")

    def check_secret_log(self, path, code):
        for match in LOG_MACRO.finditer(code):
            args = balanced_argument(code, match.end() - 1)
            if SECRET_EXPR.search(args):
                line = code.count("\n", 0, match.start()) + 1
                self.report(
                    path, line, "secret-log",
                    "log statement names key/tag/LLR material; log sizes "
                    "or ids, never contents")
        for i, line_text in enumerate(code.splitlines(), 1):
            if STREAM_SINK.search(line_text) and SECRET_EXPR.search(line_text):
                self.report(
                    path, i, "secret-log",
                    "stream-inserting key/tag/LLR material; log sizes or "
                    "ids, never contents")

    def check_secret_compare(self, path, code_lines):
        for i, line in enumerate(code_lines, 1):
            if TAG_COMPARE.search(line):
                self.report(
                    path, i, "secret-compare",
                    "tag compared with ==/!=; use ct_equal "
                    "(common/ct_equal.hpp) - branching on secret bytes is "
                    "a timing oracle")

    def check_relaxed(self, path, raw_lines, code_lines):
        justified_until_blank = False
        for i, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
            if not raw.strip():
                justified_until_blank = False
                continue
            if RELAXED_JUSTIFICATION.search(raw):
                justified_until_blank = True
            if RELAXED.search(code) and not justified_until_blank:
                self.report(
                    path, i, "relaxed-order",
                    "memory_order_relaxed without a `// relaxed:` "
                    "justification comment in the same paragraph")

    def check_include_hygiene(self, path, text, raw_lines):
        if not PRAGMA_ONCE.search(text):
            self.report(path, 1, "include-hygiene",
                        "public header without #pragma once")
        src_root = self.root / "src"
        for i, line in enumerate(raw_lines, 1):
            match = QUOTED_INCLUDE.match(line)
            if not match:
                continue
            target = match.group(1)
            if target.startswith("./") or "../" in target:
                self.report(
                    path, i, "include-hygiene",
                    f'relative include "{target}"; include repo headers by '
                    "their src/-relative path")
            elif not (src_root / target).is_file():
                self.report(
                    path, i, "include-hygiene",
                    f'"{target}" does not resolve under the src/ include '
                    "root")


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    linter = Linter(root)
    scanned = 0
    for top in ("src", "tests", "bench", "examples"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                linter.lint_file(path)
                scanned += 1
    for finding in linter.findings:
        print(finding)
    print(f"qkd_lint: {scanned} files scanned, "
          f"{len(linter.findings)} finding(s)", file=sys.stderr)
    return 1 if linter.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
