#!/usr/bin/env bash
# clang-format gate over CHANGED files only: the tree predates .clang-format
# and a whole-tree reformat would bury real diffs, so the rule is "files you
# touch must be clean". Pass the base ref to diff against (default:
# origin/main); extra args go to clang-format.
set -euo pipefail

base="${1:-origin/main}"
repo_root="$(git rev-parse --show-toplevel)"
cd "$repo_root"

merge_base="$(git merge-base "$base" HEAD)"
mapfile -t changed < <(git diff --name-only --diff-filter=ACMR "$merge_base" HEAD -- \
  'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' 'bench/*.cpp' 'examples/*.cpp')

if [[ ${#changed[@]} -eq 0 ]]; then
  echo "check_format: no C++ files changed vs $base"
  exit 0
fi

echo "check_format: checking ${#changed[@]} changed file(s) vs $base"
clang-format --dry-run --Werror "${changed[@]}"
echo "check_format: OK"
