#include "engine/engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace qkdpp::engine {

EngineOptions EngineOptions::cpu_only() {
  EngineOptions options;
  options.devices = {hetero::cpu_scalar_props()};
  options.policy = PlacementPolicy::kFixed;
  options.fixed_device = 0;
  return options;
}

EngineOptions EngineOptions::standard(std::size_t threads) {
  EngineOptions options;
  options.threads = threads;
  return options;
}

EngineOptions EngineOptions::pinned(hetero::DeviceKind kind,
                                    std::size_t threads) {
  EngineOptions options = standard(threads);
  options.policy = PlacementPolicy::kFixed;
  options.fixed_device = static_cast<std::uint32_t>(kind);
  return options;
}

namespace {

std::vector<hetero::DeviceProps> standard_roster(std::size_t threads) {
  return {hetero::cpu_scalar_props(), hetero::cpu_parallel_props(threads),
          hetero::gpu_sim_props(), hetero::fpga_sim_props()};
}

double& timing_of(StageTimings& timings, StageKind kind) {
  switch (kind) {
    case StageKind::kSift: return timings.sift;
    case StageKind::kEstimate: return timings.estimate;
    case StageKind::kReconcile: return timings.reconcile;
    case StageKind::kVerify: return timings.verify;
    case StageKind::kAmplify: return timings.amplify;
  }
  return timings.sift;  // unreachable
}

}  // namespace

PostprocessEngine::PostprocessEngine(PostprocessParams params,
                                     EngineOptions options)
    : params_(std::move(params)), options_(std::move(options)) {
  QKDPP_REQUIRE(params_.pe_fraction > 0 && params_.pe_fraction < 1,
                "pe fraction outside (0,1)");
  QKDPP_REQUIRE(params_.qber_abort > 0 && params_.qber_abort <= 0.5,
                "qber abort threshold outside (0,0.5]");
  const std::size_t pool_threads =
      options_.threads
          ? options_.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (options_.shared_devices) {
    // Shared roster: the set owns devices and their pool; this engine only
    // places stages on them (and commits its load in choose_placement).
    hetero::DeviceSet& set = *options_.shared_devices;
    QKDPP_REQUIRE(set.size() > 0, "shared device set is empty");
    for (std::size_t d = 0; d < set.size(); ++d) {
      devices_.push_back(&set.device(d));
    }
  } else {
    if (options_.devices.empty()) {
      options_.devices = standard_roster(pool_threads);
    }
    // CpuScalar stays single-threaded by definition; everything else
    // (including the sims, which execute host-side) may use the pool -
    // which is only spun up when some roster device can actually use it.
    const bool needs_pool = std::any_of(
        options_.devices.begin(), options_.devices.end(),
        [](const hetero::DeviceProps& props) {
          return props.kind != hetero::DeviceKind::kCpuScalar;
        });
    if (needs_pool) {
      kernel_pool_ = std::make_unique<ThreadPool>(pool_threads);
    }
    for (const auto& props : options_.devices) {
      ThreadPool* pool = props.kind == hetero::DeviceKind::kCpuScalar
                             ? nullptr
                             : kernel_pool_.get();
      owned_devices_.emplace_back(props, pool);
      devices_.push_back(&owned_devices_.back());
    }
  }
  if (options_.policy == PlacementPolicy::kFixed &&
      options_.fixed_device >= devices_.size()) {
    throw_error(ErrorCode::kConfig, "fixed device index outside roster");
  }
  executors_ = make_stage_executors(params_);
  MutexLock lock(plan_mutex_);
  build_problem_locked();
  solve_and_commit_locked();
}

PostprocessEngine::~PostprocessEngine() {
  // Join (and drain) the batch workers before devices_/executors_ are
  // destroyed: queued submit_block tasks capture `this` and run the full
  // stage chain, so they must not outlive the members they dereference.
  batch_pool_.reset();
  // The ledger records the load of *live* placements (replan() already
  // swaps rather than accumulates): a torn-down engine must not leave
  // phantom load steering the surviving links away from idle hardware.
  if (options_.shared_devices && !committed_by_this_.empty()) {
    try {
      options_.shared_devices->uncommit_loads(committed_by_this_);
    } catch (...) {
      // Length mismatch is impossible (sized from the same roster); never
      // let a bookkeeping error escape a destructor.
    }
  }
}

void PostprocessEngine::build_problem_locked() {
  problem_ = hetero::MappingProblem{};
  raw_model_.clear();
  for (const auto& executor : executors_) {
    problem_.stage_names.emplace_back(executor->name());
  }
  for (const auto* device : devices_) {
    problem_.device_names.push_back(device->name());
  }
  for (std::size_t s = 0; s < executors_.size(); ++s) {
    const auto& executor = executors_[s];
    // Observed-cost feedback: scale every device's modeled cost for this
    // stage by the EWMA observed/predicted ratio (1.0 until blocks ran).
    const double correction = cost_model_.correction(s);
    std::vector<double> row, raw_row;
    row.reserve(devices_.size());
    raw_row.reserve(devices_.size());
    for (const auto* device : devices_) {
      const double modeled = device->model_seconds(
          executor->work_model(options_.workload, device->kind()));
      raw_row.push_back(modeled);
      const bool feasible =
          executor->feasible_on(device->kind()) && device->online();
      if (!feasible && options_.policy != PlacementPolicy::kFixed) {
        row.push_back(hetero::kInfeasible);
        continue;
      }
      // Infeasible cells are still priced under kFixed: pinning overrides
      // the feasibility mask (the compute runs host-side regardless), which
      // is what makes the cross-device golden test possible.
      row.push_back(modeled * correction);
    }
    problem_.seconds_per_item.push_back(std::move(row));
    raw_model_.push_back(std::move(raw_row));
  }
}

void PostprocessEngine::solve_and_commit_locked() {
  // On a shared set, arbitrate against the load other engines' placements
  // already committed to each device - excluding whatever this engine's
  // previous placement committed (the replan path retracts it below).
  std::vector<double> base_load(devices_.size(), 0.0);
  if (options_.shared_devices) {
    base_load = options_.shared_devices->committed_loads();
    for (std::size_t d = 0; d < base_load.size() &&
                            d < committed_by_this_.size(); ++d) {
      base_load[d] = std::max(0.0, base_load[d] - committed_by_this_[d]);
    }
  }

  hetero::MappingResult result;
  switch (options_.policy) {
    case PlacementPolicy::kOptimized:
      result = hetero::optimize_mapping(problem_, base_load);
      break;
    case PlacementPolicy::kGreedy:
      result = hetero::greedy_mapping(problem_);
      break;
    case PlacementPolicy::kFixed:
      result = hetero::fixed_mapping(problem_, options_.fixed_device);
      break;
  }
  placement_.stage_names = problem_.stage_names;
  placement_.device_names = problem_.device_names;
  placement_.device_of_stage = result.device_of_stage;
  placement_.predicted_items_per_s = result.throughput_items_per_s;
  placement_.bottleneck_load_s = result.bottleneck_load_s;

  if (options_.shared_devices) {
    std::vector<double> committed(devices_.size(), 0.0);
    for (std::size_t s = 0; s < placement_.device_of_stage.size(); ++s) {
      const std::uint32_t d = placement_.device_of_stage[s];
      committed[d] += problem_.seconds_per_item[s][d];
    }
    if (!committed_by_this_.empty()) {
      options_.shared_devices->uncommit_loads(committed_by_this_);
    }
    options_.shared_devices->commit_loads(committed);
    committed_by_this_ = std::move(committed);
  }
}

PostprocessParams PostprocessEngine::params() const {
  MutexLock lock(plan_mutex_);
  return params_;
}

Placement PostprocessEngine::placement() const {
  MutexLock lock(plan_mutex_);
  return placement_;
}

hetero::MappingProblem PostprocessEngine::mapping_problem() const {
  MutexLock lock(plan_mutex_);
  return problem_;
}

Placement PostprocessEngine::replan(const StageWorkload& workload) {
  MutexLock lock(plan_mutex_);
  options_.workload = workload;
  build_problem_locked();
  solve_and_commit_locked();
  ++replan_count_;
  return placement_;
}

Placement PostprocessEngine::replan() { return replan(options_.workload); }

bool PostprocessEngine::adapt_to_qber(double windowed_qber) {
  MutexLock lock(plan_mutex_);
  const protocol::ReconcileMethod before = params_.method;
  // Mid-band crossover measured on this code: by ~3.5% QBER Cascade's
  // realized efficiency (~1.2) beats the LDPC frames' f_target (1.45) by
  // enough to dominate the net key, and above ~8% the LDPC rate adaptation
  // saturates (syndrome budget pinned) while Cascade still converges at
  // the abort threshold. A quiet channel goes back to LDPC: one-way,
  // accelerator-offloadable, FER ~0 there.
  params_.method = windowed_qber >= 0.035 ? protocol::ReconcileMethod::kCascade
                                          : protocol::ReconcileMethod::kLdpc;
  // Extra passes in the hot band are cheap insurance: late passes use huge
  // blocks, so their parity leakage is a fraction of a percent of the key.
  params_.cascade.passes = windowed_qber < 0.06 ? 6 : 8;
  return params_.method != before;
}

std::uint64_t PostprocessEngine::replans() const {
  MutexLock lock(plan_mutex_);
  return replan_count_;
}

std::vector<DeviceReport> PostprocessEngine::device_report() const {
  std::vector<DeviceReport> reports;
  reports.reserve(devices_.size());
  for (const auto* device : devices_) {
    reports.push_back({device->name(), device->kind(), device->busy_seconds(),
                       device->kernels_launched()});
  }
  return reports;
}

BlockOutcome PostprocessEngine::process_block(const BlockInput& input,
                                              std::uint64_t block_id,
                                              Xoshiro256& rng) {
  BlockState state;
  state.input = &input;
  state.block_id = block_id;
  state.outcome.block_id = block_id;
  state.outcome.pulses = static_cast<std::size_t>(input.report.n_pulses);
  state.outcome.detections = input.report.detected_idx.size();

  // Snapshot the plan: replan()/adapt_to_qber() may swap placement and
  // retune parameters concurrently, and this block must run end to end on
  // one consistent view (the no-drain contract: in-flight blocks finish on
  // the plan they started with).
  std::vector<std::uint32_t> assignment;
  std::vector<double> predicted;
  PostprocessParams params_snapshot;
  {
    MutexLock lock(plan_mutex_);
    assignment = placement_.device_of_stage;
    params_snapshot = params_;
    predicted.reserve(assignment.size());
    for (std::size_t s = 0; s < assignment.size(); ++s) {
      predicted.push_back(raw_model_[s][assignment[s]]);
    }
  }

  // Rewind this thread's scratch arena: per-stage short-lived allocations
  // for the whole block borrow from it and die together here.
  BlockArena& arena = thread_arena();
  arena.reset();

  ExecutionContext ctx;
  ctx.params = &params_snapshot;
  ctx.rng = &rng;
  ctx.ledger = &state.ledger;
  ctx.arena = &arena;

  for (std::size_t s = 0; s < executors_.size(); ++s) {
    ctx.device = devices_[assignment[s]];
    if (!ctx.device->online()) {
      // Hot-removed device still in this block's placement: the kernel has
      // nowhere to run. Expected under a static policy during an outage;
      // an adaptive caller replans and stops coming here.
      state.outcome.abort_reason = kAbortDeviceOffline;
      break;
    }
    ctx.pool = ctx.device->pool();
    const double charged = executors_[s]->run(state, ctx);
    timing_of(state.outcome.timings, executors_[s]->kind()) = charged;
    cost_model_.observe(s, predicted[s], charged);
    if (state.aborted()) break;
  }
  state.outcome.leak_ec_bits = state.ledger.ec_bits;
  return state.outcome;
}

std::future<BlockOutcome> PostprocessEngine::submit_block(
    BlockInput input, std::uint64_t block_id, std::uint64_t rng_seed) {
  std::call_once(batch_pool_once_, [this] {
    batch_pool_ = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, options_.batch_threads));
  });
  auto promise = std::make_shared<std::promise<BlockOutcome>>();
  std::future<BlockOutcome> future = promise->get_future();
  auto shared_input = std::make_shared<BlockInput>(std::move(input));
  batch_pool_->submit([this, promise, shared_input, block_id, rng_seed] {
    try {
      Xoshiro256 rng(rng_seed);
      promise->set_value(process_block(*shared_input, block_id, rng));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

}  // namespace qkdpp::engine
