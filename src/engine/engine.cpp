#include "engine/engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace qkdpp::engine {

EngineOptions EngineOptions::cpu_only() {
  EngineOptions options;
  options.devices = {hetero::cpu_scalar_props()};
  options.policy = PlacementPolicy::kFixed;
  options.fixed_device = 0;
  return options;
}

EngineOptions EngineOptions::standard(std::size_t threads) {
  EngineOptions options;
  options.threads = threads;
  return options;
}

EngineOptions EngineOptions::pinned(hetero::DeviceKind kind,
                                    std::size_t threads) {
  EngineOptions options = standard(threads);
  options.policy = PlacementPolicy::kFixed;
  options.fixed_device = static_cast<std::uint32_t>(kind);
  return options;
}

namespace {

std::vector<hetero::DeviceProps> standard_roster(std::size_t threads) {
  return {hetero::cpu_scalar_props(), hetero::cpu_parallel_props(threads),
          hetero::gpu_sim_props(), hetero::fpga_sim_props()};
}

double& timing_of(StageTimings& timings, StageKind kind) {
  switch (kind) {
    case StageKind::kSift: return timings.sift;
    case StageKind::kEstimate: return timings.estimate;
    case StageKind::kReconcile: return timings.reconcile;
    case StageKind::kVerify: return timings.verify;
    case StageKind::kAmplify: return timings.amplify;
  }
  return timings.sift;  // unreachable
}

}  // namespace

PostprocessEngine::PostprocessEngine(PostprocessParams params,
                                     EngineOptions options)
    : params_(std::move(params)), options_(std::move(options)) {
  QKDPP_REQUIRE(params_.pe_fraction > 0 && params_.pe_fraction < 1,
                "pe fraction outside (0,1)");
  QKDPP_REQUIRE(params_.qber_abort > 0 && params_.qber_abort <= 0.5,
                "qber abort threshold outside (0,0.5]");
  const std::size_t pool_threads =
      options_.threads
          ? options_.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (options_.shared_devices) {
    // Shared roster: the set owns devices and their pool; this engine only
    // places stages on them (and commits its load in choose_placement).
    hetero::DeviceSet& set = *options_.shared_devices;
    QKDPP_REQUIRE(set.size() > 0, "shared device set is empty");
    for (std::size_t d = 0; d < set.size(); ++d) {
      devices_.push_back(&set.device(d));
    }
  } else {
    if (options_.devices.empty()) {
      options_.devices = standard_roster(pool_threads);
    }
    // CpuScalar stays single-threaded by definition; everything else
    // (including the sims, which execute host-side) may use the pool -
    // which is only spun up when some roster device can actually use it.
    const bool needs_pool = std::any_of(
        options_.devices.begin(), options_.devices.end(),
        [](const hetero::DeviceProps& props) {
          return props.kind != hetero::DeviceKind::kCpuScalar;
        });
    if (needs_pool) {
      kernel_pool_ = std::make_unique<ThreadPool>(pool_threads);
    }
    for (const auto& props : options_.devices) {
      ThreadPool* pool = props.kind == hetero::DeviceKind::kCpuScalar
                             ? nullptr
                             : kernel_pool_.get();
      owned_devices_.emplace_back(props, pool);
      devices_.push_back(&owned_devices_.back());
    }
  }
  if (options_.policy == PlacementPolicy::kFixed &&
      options_.fixed_device >= devices_.size()) {
    throw_error(ErrorCode::kConfig, "fixed device index outside roster");
  }
  executors_ = make_stage_executors(params_);
  choose_placement();
}

PostprocessEngine::~PostprocessEngine() {
  // Join (and drain) the batch workers before devices_/executors_ are
  // destroyed: queued submit_block tasks capture `this` and run the full
  // stage chain, so they must not outlive the members they dereference.
  batch_pool_.reset();
}

void PostprocessEngine::choose_placement() {
  problem_ = hetero::MappingProblem{};
  for (const auto& executor : executors_) {
    problem_.stage_names.emplace_back(executor->name());
  }
  for (const auto* device : devices_) {
    problem_.device_names.push_back(device->name());
  }
  for (const auto& executor : executors_) {
    std::vector<double> row;
    row.reserve(devices_.size());
    for (const auto* device : devices_) {
      if (!executor->feasible_on(device->kind()) &&
          options_.policy != PlacementPolicy::kFixed) {
        row.push_back(hetero::kInfeasible);
        continue;
      }
      // Infeasible cells are still priced under kFixed: pinning overrides
      // the feasibility mask (the compute runs host-side regardless), which
      // is what makes the cross-device golden test possible.
      row.push_back(device->model_seconds(
          executor->work_model(options_.workload, device->kind())));
    }
    problem_.seconds_per_item.push_back(std::move(row));
  }

  // On a shared set, arbitrate against the load other engines' placements
  // already committed to each device.
  std::vector<double> base_load(devices_.size(), 0.0);
  if (options_.shared_devices) {
    base_load = options_.shared_devices->committed_loads();
  }

  hetero::MappingResult result;
  switch (options_.policy) {
    case PlacementPolicy::kOptimized:
      result = hetero::optimize_mapping(problem_, base_load);
      break;
    case PlacementPolicy::kGreedy:
      result = hetero::greedy_mapping(problem_);
      break;
    case PlacementPolicy::kFixed:
      result = hetero::fixed_mapping(problem_, options_.fixed_device);
      break;
  }
  placement_.stage_names = problem_.stage_names;
  placement_.device_names = problem_.device_names;
  placement_.device_of_stage = result.device_of_stage;
  placement_.predicted_items_per_s = result.throughput_items_per_s;
  placement_.bottleneck_load_s = result.bottleneck_load_s;

  if (options_.shared_devices) {
    std::vector<double> committed(devices_.size(), 0.0);
    for (std::size_t s = 0; s < placement_.device_of_stage.size(); ++s) {
      const std::uint32_t d = placement_.device_of_stage[s];
      committed[d] += problem_.seconds_per_item[s][d];
    }
    options_.shared_devices->commit_loads(committed);
  }
}

std::vector<DeviceReport> PostprocessEngine::device_report() const {
  std::vector<DeviceReport> reports;
  reports.reserve(devices_.size());
  for (const auto* device : devices_) {
    reports.push_back({device->name(), device->kind(), device->busy_seconds(),
                       device->kernels_launched()});
  }
  return reports;
}

BlockOutcome PostprocessEngine::process_block(const BlockInput& input,
                                              std::uint64_t block_id,
                                              Xoshiro256& rng) {
  BlockState state;
  state.input = &input;
  state.block_id = block_id;
  state.outcome.block_id = block_id;
  state.outcome.pulses = static_cast<std::size_t>(input.report.n_pulses);
  state.outcome.detections = input.report.detected_idx.size();

  ExecutionContext ctx;
  ctx.params = &params_;
  ctx.rng = &rng;
  ctx.ledger = &state.ledger;

  for (std::size_t s = 0; s < executors_.size(); ++s) {
    ctx.device = devices_[placement_.device_of_stage[s]];
    ctx.pool = ctx.device->pool();
    const double charged = executors_[s]->run(state, ctx);
    timing_of(state.outcome.timings, executors_[s]->kind()) = charged;
    if (state.aborted()) break;
  }
  state.outcome.leak_ec_bits = state.ledger.ec_bits;
  return state.outcome;
}

std::future<BlockOutcome> PostprocessEngine::submit_block(
    BlockInput input, std::uint64_t block_id, std::uint64_t rng_seed) {
  std::call_once(batch_pool_once_, [this] {
    batch_pool_ = std::make_unique<ThreadPool>(
        std::max<std::size_t>(1, options_.batch_threads));
  });
  auto promise = std::make_shared<std::promise<BlockOutcome>>();
  std::future<BlockOutcome> future = promise->get_future();
  auto shared_input = std::make_shared<BlockInput>(std::move(input));
  batch_pool_->submit([this, promise, shared_input, block_id, rng_seed] {
    try {
      Xoshiro256 rng(rng_seed);
      promise->set_value(process_block(*shared_input, block_id, rng));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

}  // namespace qkdpp::engine
