// Adapter from the link simulator's batch record to the engine's
// BlockInput. Header-only so the engine core stays independent of sim/;
// include this only where simulated blocks feed the engine (the offline
// pipeline, examples, tests).
#pragma once

#include <cstdint>

#include "engine/block.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::engine {

inline BlockInput make_block_input(const sim::DetectionRecord& record,
                                   std::uint64_t block_id) {
  BlockInput input;
  input.log = {record.alice_bits, record.alice_bases, record.alice_class};
  input.report.block_id = block_id;
  input.report.n_pulses = record.n_pulses;
  input.report.detected_idx = record.detected_idx;
  input.report.bob_bases = record.bob_bases;
  input.bob_bits = record.bob_bits;
  return input;
}

}  // namespace qkdpp::engine
