// Shared post-processing parameters and engine construction options.
//
// PostprocessParams is the single knob set for one distillation chain -
// the offline pipeline, the two-party session and the batch engine all
// consume the same struct (OfflineConfig extends it with link-simulation
// fields; SessionConfig is an alias). EngineOptions selects the device
// roster and the stage->device placement policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hetero/device.hpp"
#include "hetero/device_set.hpp"
#include "privacy/pa_planner.hpp"
#include "protocol/messages.hpp"
#include "reconcile/cascade.hpp"
#include "reconcile/reconciler.hpp"

namespace qkdpp::engine {

/// Parameters of the post-processing chain proper (everything downstream of
/// raw detections). Identical for offline, session and engine entry points.
struct PostprocessParams {
  /// Fraction of sifted *signal* bits sacrificed to parameter estimation.
  double pe_fraction = 0.10;
  /// Abort threshold on the estimated QBER (BB84 hard limit is 11%).
  double qber_abort = 0.11;
  protocol::ReconcileMethod method = protocol::ReconcileMethod::kLdpc;
  reconcile::LdpcReconcilerConfig ldpc;
  /// Deliberate unification: the pre-engine SessionConfig defaulted to 6
  /// passes while OfflineConfig inherited CascadeConfig's 4; 6 wins (the
  /// residual-error rate of 4 passes fails verification too often near the
  /// QBER abort threshold).
  reconcile::CascadeConfig cascade = {.passes = 6};
  privacy::SecurityParams security;
};

/// How the engine turns the stage x device cost matrix into a placement.
enum class PlacementPolicy : std::uint8_t {
  kOptimized = 0,  ///< exhaustive mapper (provably optimal under the model)
  kGreedy = 1,     ///< each stage on its individually fastest device
  kFixed = 2,      ///< every stage on options.fixed_device
};

/// Nominal per-block workload the mapper prices stages against. Defaults
/// approximate a metro-link 2^20-pulse block.
struct StageWorkload {
  std::size_t pulses = std::size_t{1} << 20;
  std::size_t sifted_bits = 40000;
  std::size_t key_bits = 30000;
  double qber = 0.02;
};

struct EngineOptions {
  /// Device roster; empty selects the standard four-kind set
  /// (cpu-scalar, cpu-parallel, gpu-sim, fpga-sim).
  std::vector<hetero::DeviceProps> devices;
  /// When set, the engine runs on this *shared* device set instead of
  /// constructing devices from `devices`, and commits its placement's
  /// per-device load to the set's ledger. Under kOptimized the placement
  /// is priced against the load other engines already committed - the
  /// arbitration path that lets many links share one physical machine
  /// (LinkOrchestrator). The kGreedy/kFixed baselines stay deliberately
  /// contention-blind (they exist to show what arbitration buys) but
  /// still commit the load they will really impose, so later kOptimized
  /// engines see it.
  std::shared_ptr<hetero::DeviceSet> shared_devices;
  PlacementPolicy policy = PlacementPolicy::kOptimized;
  /// Roster index every stage is pinned to under PlacementPolicy::kFixed.
  std::uint32_t fixed_device = 0;
  /// Host threads backing cpu-parallel kernels and the simulated
  /// accelerators (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Workers serving submit_block() futures.
  std::size_t batch_threads = 2;
  StageWorkload workload;

  /// Single cpu-scalar device (the seed pipelines' behaviour).
  static EngineOptions cpu_only();
  /// Standard four-device roster, optimized placement.
  static EngineOptions standard(std::size_t threads = 0);
  /// Standard roster with every stage pinned to `kind`.
  static EngineOptions pinned(hetero::DeviceKind kind,
                              std::size_t threads = 0);
};

}  // namespace qkdpp::engine
