// The five stage executors. Each wraps its real computation in a
// Device::execute body and reports a WorkEstimate; the cost constants come
// from hetero/kernels.hpp so the mapper and the kernels price work the same
// way. Computation is host-side and bit-exact on every device kind - only
// the charged time differs.
#include "engine/stage.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "hetero/kernels.hpp"
#include "privacy/verification.hpp"
#include "protocol/param_estimation.hpp"
#include "reconcile/ldpc_code.hpp"
#include "reconcile/rate_adapt.hpp"

namespace qkdpp::engine {

namespace {

using hetero::DeviceKind;
using hetero::WorkEstimate;

bool is_cpu(DeviceKind kind) noexcept {
  return kind == DeviceKind::kCpuScalar || kind == DeviceKind::kCpuParallel;
}

/// Nominal LDPC framing for the cost model: the production frame is
/// n = 16384 at rate ~0.75, so one frame carries ~12k payload bits.
constexpr double kModelFrameBits = 16384.0;
constexpr double kModelPayloadBits = 12288.0;
constexpr double kModelEdgesPerBit = 3.0;  ///< regular dv=3 PEG codes
constexpr double kModelTypicalIterations = 20.0;
/// Per-attempt iteration cap for the lockstep batch decoder. Frames that
/// need more than this almost never recover within the attempt - they
/// converge after the next blind reveal instead, so short attempts waste
/// less lockstep width on stragglers.
constexpr unsigned kBatchIterationCap = 20;

// ---------------------------------------------------------------------------

class SiftExecutor final : public StageExecutor {
 public:
  StageKind kind() const noexcept override { return StageKind::kSift; }

  bool feasible_on(DeviceKind kind) const noexcept override {
    // Index juggling over irregular detection logs: host-only.
    return is_cpu(kind);
  }

  WorkEstimate work_model(const StageWorkload& workload,
                          DeviceKind) const noexcept override {
    WorkEstimate estimate;
    const auto pulses = static_cast<double>(workload.pulses);
    estimate.ops = 2.0 * pulses;
    estimate.bytes_touched = pulses / 4.0;
    estimate.bytes_transferred = pulses / 8.0;
    return estimate;
  }

  double run(BlockState& state, const ExecutionContext& ctx) const override {
    return ctx.device->execute([&]() -> WorkEstimate {
      state.sift = protocol::sift_alice(state.input->log, state.input->report);
      state.bob_sifted =
          protocol::sift_bob(state.input->bob_bits, state.sift.result);
      state.outcome.sifted_bits = state.sift.sifted_key.size();
      StageWorkload actual;
      actual.pulses = static_cast<std::size_t>(state.input->report.n_pulses);
      return work_model(actual, ctx.device->kind());
    });
  }
};

// ---------------------------------------------------------------------------

class EstimateExecutor final : public StageExecutor {
 public:
  StageKind kind() const noexcept override { return StageKind::kEstimate; }

  bool feasible_on(DeviceKind kind) const noexcept override {
    // Sampling + a Hoeffding bound: negligible arithmetic, host-only.
    return is_cpu(kind);
  }

  WorkEstimate work_model(const StageWorkload& workload,
                          DeviceKind) const noexcept override {
    WorkEstimate estimate;
    const auto sifted = static_cast<double>(workload.sifted_bits);
    estimate.ops = 10.0 * sifted;
    estimate.bytes_touched = sifted;
    estimate.bytes_transferred = sifted / 8.0;
    return estimate;
  }

  double run(BlockState& state, const ExecutionContext& ctx) const override {
    return ctx.device->execute([&]() -> WorkEstimate {
      const BitVec& sifted = state.sift.sifted_key;
      const BitVec& signal_mask = state.sift.result.signal_mask;
      state.split = split_sifted(sifted, signal_mask);
      state.outcome.key_candidate_bits = state.split.signal_positions.size();

      StageWorkload actual;
      actual.sifted_bits = sifted.size();
      const WorkEstimate estimate = work_model(actual, ctx.device->kind());

      if (state.split.signal_positions.size() < 64) {
        state.outcome.abort_reason = "insufficient sifted key";
        return estimate;
      }
      state.revealed_positions = choose_pe_positions(
          state.split, ctx.params->pe_fraction, *ctx.rng);
      std::size_t mismatches = 0;
      for (const auto p : state.revealed_positions) {
        mismatches += sifted.get(p) != state.bob_sifted.get(p);
      }
      state.estimate = protocol::estimate_qber(state.revealed_positions.size(),
                                               mismatches,
                                               ctx.params->security.eps_pe);
      state.outcome.pe_sample_bits = state.estimate.sample_size;
      state.outcome.qber_estimate = state.estimate.qber;
      state.outcome.qber_upper = state.estimate.qber_upper;

      // Abort on the point estimate: the eps_pe-confidence upper bound is
      // for the PA planner's phase-error budget, not the go/no-go decision
      // (it would reject every modest-sized block).
      if (state.estimate.qber >= ctx.params->qber_abort) {
        state.outcome.abort_reason = "qber above abort threshold";
        return estimate;
      }
      state.alice_key =
          remaining_key(sifted, signal_mask, state.revealed_positions);
      state.bob_key = remaining_key(state.bob_sifted, signal_mask,
                                    state.revealed_positions);
      return estimate;
    });
  }
};

// ---------------------------------------------------------------------------

class ReconcileExecutor final : public StageExecutor {
 public:
  explicit ReconcileExecutor(const PostprocessParams& params)
      : params_(&params) {}

  StageKind kind() const noexcept override { return StageKind::kReconcile; }

  bool feasible_on(DeviceKind kind) const noexcept override {
    // LDPC syndrome decoding is the offload poster child; interactive
    // Cascade is latency-bound chit-chat and stays on the host.
    if (params_->method == protocol::ReconcileMethod::kCascade) {
      return is_cpu(kind);
    }
    return true;
  }

  WorkEstimate work_model(const StageWorkload& workload,
                          DeviceKind device_kind) const noexcept override {
    WorkEstimate estimate;
    const double frames = std::max(
        1.0, static_cast<double>(workload.key_bits) / kModelPayloadBits);
    const double edges = kModelFrameBits * kModelEdgesPerBit;
    // Fixed-depth hardware runs worst-case iterations; everything else is
    // priced at the typical early-termination count.
    const double iterations =
        device_kind == DeviceKind::kFpgaSim
            ? static_cast<double>(params_->ldpc.decoder.max_iterations)
            : kModelTypicalIterations;
    estimate.ops = frames * iterations * edges * hetero::kOpsPerEdge;
    estimate.bytes_touched = frames * iterations * edges * hetero::kBytesPerEdge;
    estimate.bytes_transferred =
        frames * (kModelFrameBits * 4.0 + kModelFrameBits / 4.0);
    return estimate;
  }

  double run(BlockState& state, const ExecutionContext& ctx) const override {
    return ctx.device->execute([&]() -> WorkEstimate {
      const double qber = qber_floor(state.estimate.qber);
      double iterations = 0.0;
      double frames_run = 0.0;
      if (ctx.params->method == protocol::ReconcileMethod::kLdpc) {
        run_ldpc(state, ctx, qber, iterations, frames_run);
      } else {
        run_cascade(state, ctx, qber);
      }
      state.outcome.reconciled_bits = state.bob_reconciled.size();
      if (state.outcome.reconciled_bits == 0 && !state.aborted()) {
        state.outcome.abort_reason = "reconciliation produced no frames";
      }
      state.outcome.efficiency = reconciliation_efficiency(
          state.ledger.ec_bits, state.outcome.reconciled_bits,
          state.estimate.qber);

      if (ctx.params->method != protocol::ReconcileMethod::kLdpc) {
        // Coarse cascade model: every pass scans the key a handful of times.
        WorkEstimate estimate;
        const auto bits = static_cast<double>(state.alice_key.size());
        estimate.ops = bits * ctx.params->cascade.passes * 6.0;
        estimate.bytes_touched = estimate.ops / 8.0;
        estimate.bytes_transferred = bits / 8.0;
        return estimate;
      }
      WorkEstimate estimate;
      if (ctx.device->kind() == DeviceKind::kFpgaSim) {
        // Fixed-depth pipeline: charged at worst case always.
        iterations = frames_run *
                     static_cast<double>(ctx.params->ldpc.decoder.max_iterations);
      }
      const double edges = kModelFrameBits * kModelEdgesPerBit;
      estimate.ops = iterations * edges * hetero::kOpsPerEdge;
      estimate.bytes_touched = iterations * edges * hetero::kBytesPerEdge;
      estimate.bytes_transferred =
          frames_run * (kModelFrameBits * 4.0 + kModelFrameBits / 4.0);
      return estimate;
    });
  }

 private:
  void run_ldpc(BlockState& state, const ExecutionContext& ctx, double qber,
                double& iterations, double& frames_run) const {
    const bool quantized = ctx.params->ldpc.decoder.quantized;
    reconcile::FramePlan plan;
    try {
      // The batched planner prefers codes that cut the key into enough
      // frames to fill the lockstep decoder's lanes; the legacy float path
      // wants the largest fitting frame.
      plan = quantized
                 ? reconcile::plan_frame_batched(
                       state.alice_key.size(), qber, ctx.params->ldpc.f_target,
                       ctx.params->ldpc.adapt_fraction,
                       ctx.params->ldpc.batch_target_frames)
                 : reconcile::plan_frame_fitting(
                       state.alice_key.size(), qber, ctx.params->ldpc.f_target,
                       ctx.params->ldpc.adapt_fraction);
    } catch (const Error&) {
      state.outcome.abort_reason = "key shorter than one reconciliation frame";
      return;
    }
    reconcile::LdpcReconcilerConfig effective = ctx.params->ldpc;
    effective.decoder.pool = ctx.pool;
    effective.decoder.arena = ctx.arena;
    const std::size_t frames = state.alice_key.size() / plan.payload_bits;
    // Reserve the reconciled accumulators once so the per-frame append()s
    // never reallocate mid-block.
    state.alice_reconciled.reserve(frames * plan.payload_bits);
    state.bob_reconciled.reserve(frames * plan.payload_bits);

    if (quantized) {
      // A failed attempt costs its full iteration budget across every live
      // lane, and the blind loop gets another shot after each reveal - so
      // cap attempts short. Measured against the 60-iteration cap this
      // cuts wall time 2-3x at the low-QBER operating points with the same
      // (occasionally lower) final leak.
      effective.decoder.max_iterations =
          std::min(effective.decoder.max_iterations, kBatchIterationCap);
      std::vector<std::uint64_t> seeds(frames);
      for (std::size_t f = 0; f < frames; ++f) {
        seeds[f] = (state.block_id << 20) ^ (f * 0x9e3779b97f4a7c15ULL);
      }
      const auto stats = reconcile::ldpc_reconcile_key_batch(
          state.alice_key, state.bob_key, qber, plan, seeds, effective,
          *ctx.rng, ctx.arena, state.alice_reconciled, state.bob_reconciled);
      ctx.ledger->ec_bits += stats.leaked_bits;
      state.outcome.reconcile_rounds += stats.rounds;
      state.outcome.reconcile_frames += stats.frames;
      state.outcome.decoder_iterations += stats.iterations;
      state.outcome.reconcile_early_exit_frames += stats.early_exit_frames;
      iterations = static_cast<double>(stats.iterations);
      frames_run = static_cast<double>(stats.frames);
      return;
    }

    // Payload scratch borrowed from the block arena (heap fallback when a
    // bare executor runs without one): subvec_into reuses the capacity, so
    // the per-frame loop allocates nothing after the first frame.
    BitVec local_alice;
    BitVec local_bob;
    BitVec& alice_payload =
        ctx.arena ? ctx.arena->scratch_bits() : local_alice;
    BitVec& bob_payload = ctx.arena ? ctx.arena->scratch_bits() : local_bob;
    for (std::size_t f = 0; f < frames; ++f) {
      state.alice_key.subvec_into(f * plan.payload_bits, plan.payload_bits,
                                  alice_payload);
      state.bob_key.subvec_into(f * plan.payload_bits, plan.payload_bits,
                                bob_payload);
      const std::uint64_t frame_seed =
          (state.block_id << 20) ^ (f * 0x9e3779b97f4a7c15ULL);
      const auto result = reconcile::ldpc_reconcile_local(
          alice_payload, bob_payload, qber, plan, frame_seed, effective,
          *ctx.rng);
      ctx.ledger->ec_bits += result.leaked_bits;
      state.outcome.reconcile_rounds += result.rounds;
      state.outcome.reconcile_frames += 1;
      state.outcome.decoder_iterations += result.decoder_iterations;
      iterations += result.decoder_iterations;
      frames_run += 1.0;
      if (!result.success) {
        // Frame lost: skip it (its leakage still counts - Eve heard it).
        continue;
      }
      state.outcome.reconcile_early_exit_frames +=
          result.decoder_iterations <
          static_cast<unsigned>(effective.decoder.max_iterations) *
              (result.blind_rounds + 1);
      state.alice_reconciled.append(alice_payload);
      state.bob_reconciled.append(result.corrected);
    }
  }

  void run_cascade(BlockState& state, const ExecutionContext& ctx,
                   double qber) const {
    reconcile::CascadeConfig cascade = ctx.params->cascade;
    cascade.qber_hint = qber;
    cascade.seed = state.block_id * 0x2545f4914f6cdd1dULL + 1;
    const auto result = reconcile::cascade_reconcile_local(
        state.alice_key, state.bob_key, qber, cascade);
    ctx.ledger->ec_bits += result.leaked_bits;
    state.outcome.reconcile_rounds += result.rounds;
    if (!result.success) {
      // Round budget exhausted with odd blocks outstanding: the keys
      // provably still differ, so verification could never pass. Fail the
      // block here instead of leaking a verification tag on a lost cause.
      state.outcome.abort_reason = "cascade did not converge";
      return;
    }
    state.alice_reconciled = state.alice_key;
    state.bob_reconciled = result.corrected;
  }

  const PostprocessParams* params_;
};

// ---------------------------------------------------------------------------

class VerifyExecutor final : public StageExecutor {
 public:
  StageKind kind() const noexcept override { return StageKind::kVerify; }

  bool feasible_on(DeviceKind) const noexcept override { return true; }

  WorkEstimate work_model(const StageWorkload& workload,
                          DeviceKind) const noexcept override {
    WorkEstimate estimate;
    const double bytes = static_cast<double>(workload.key_bits) / 8.0;
    const double blocks = bytes / 16.0 + 1.0;
    estimate.ops = 2.0 * blocks * hetero::kOpsPerGfMul;  // both endpoints' tags
    estimate.bytes_touched = 2.0 * bytes;
    estimate.bytes_transferred = bytes + 32.0;
    return estimate;
  }

  double run(BlockState& state, const ExecutionContext& ctx) const override {
    return ctx.device->execute([&]() -> WorkEstimate {
      const std::uint64_t verify_seed = ctx.rng->next_u64();
      const U128 alice_tag =
          privacy::verification_tag(state.alice_reconciled, verify_seed);
      const U128 bob_tag =
          privacy::verification_tag(state.bob_reconciled, verify_seed);
      ctx.ledger->verify_bits = kVerifyTagBits;  // tag reveals <= its length
      if (!(alice_tag == bob_tag)) {
        state.outcome.abort_reason = "verification mismatch";
      }
      StageWorkload actual;
      actual.key_bits = state.bob_reconciled.size();
      return work_model(actual, ctx.device->kind());
    });
  }
};

// ---------------------------------------------------------------------------

class AmplifyExecutor final : public StageExecutor {
 public:
  StageKind kind() const noexcept override { return StageKind::kAmplify; }

  bool feasible_on(DeviceKind) const noexcept override { return true; }

  WorkEstimate work_model(const StageWorkload& workload,
                          DeviceKind) const noexcept override {
    WorkEstimate estimate;
    // Toeplitz as an NTT convolution of the key with a ~2n-bit seed.
    const double conv_len = 2.0 * static_cast<double>(workload.key_bits);
    const double n_fft =
        std::pow(2.0, std::ceil(std::log2(std::max(2.0, conv_len))));
    estimate.ops = 3.0 * n_fft * std::log2(n_fft) * hetero::kOpsPerButterfly;
    estimate.bytes_touched = 3.0 * n_fft * 4.0 * std::log2(n_fft);
    estimate.bytes_transferred =
        static_cast<double>(workload.key_bits) / 4.0;
    return estimate;
  }

  double run(BlockState& state, const ExecutionContext& ctx) const override {
    return ctx.device->execute([&]() -> WorkEstimate {
      const auto plan = privacy::plan_privacy_amplification(
          state.bob_reconciled.size(), state.outcome.pe_sample_bits,
          state.estimate.qber, ctx.ledger->total(), ctx.params->security);
      StageWorkload actual;
      actual.key_bits = state.bob_reconciled.size();
      const WorkEstimate estimate = work_model(actual, ctx.device->kind());
      if (!plan.viable) {
        state.outcome.abort_reason = "no extractable secret key";
        return estimate;
      }
      state.outcome.final_key =
          apply_toeplitz(ctx.rng->next_u64(), state.bob_reconciled,
                         plan.output_bits);
      state.outcome.final_key_bits = state.outcome.final_key.size();
      state.outcome.success = true;
      return estimate;
    });
  }
};

}  // namespace

const char* stage_name(StageKind kind) noexcept {
  switch (kind) {
    case StageKind::kSift: return "sift";
    case StageKind::kEstimate: return "estimate";
    case StageKind::kReconcile: return "reconcile";
    case StageKind::kVerify: return "verify";
    case StageKind::kAmplify: return "amplify";
  }
  return "unknown";
}

std::vector<std::unique_ptr<StageExecutor>> make_stage_executors(
    const PostprocessParams& params) {
  std::vector<std::unique_ptr<StageExecutor>> executors;
  executors.push_back(std::make_unique<SiftExecutor>());
  executors.push_back(std::make_unique<EstimateExecutor>());
  executors.push_back(std::make_unique<ReconcileExecutor>(params));
  executors.push_back(std::make_unique<VerifyExecutor>());
  executors.push_back(std::make_unique<AmplifyExecutor>());
  return executors;
}

}  // namespace qkdpp::engine
