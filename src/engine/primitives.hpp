// Pure per-stage computations shared by the engine's stage executors and
// the two-party session choreography. Everything here is deterministic
// given its inputs, so both deployments (single-process engine, two peers
// over a channel) produce bit-identical keys from the same raw material.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "privacy/pa_planner.hpp"

namespace qkdpp::engine {

/// Bits the verification tag reveals (<= its length), charged to the ledger.
constexpr std::uint64_t kVerifyTagBits = 128;

/// Decode-time floor on the QBER hint: keeps LLRs finite on ultra-clean
/// channels.
inline double qber_floor(double qber) noexcept {
  return qber < 1e-4 ? 1e-4 : qber;
}

/// Partition of a sifted string by the signal mask: signal positions are key
/// candidates, everything else is estimation material to be revealed.
struct SignalSplit {
  std::vector<std::uint32_t> signal_positions;
  std::vector<std::uint32_t> revealed_positions;  ///< non-signal (decoy/vacuum)
};

SignalSplit split_sifted(const BitVec& sifted, const BitVec& signal_mask);

/// Positions disclosed for parameter estimation: all non-signal positions
/// plus a `fraction` sample of the signal positions, sorted ascending.
/// Consumes one sample_without_replacement draw from `rng` (both the offline
/// engine and Alice's session side use the identical draw).
std::vector<std::uint32_t> choose_pe_positions(const SignalSplit& split,
                                               double fraction,
                                               Xoshiro256& rng);

/// Key candidates left after estimation: signal-class sifted positions that
/// were not revealed.
BitVec remaining_key(const BitVec& sifted, const BitVec& signal_mask,
                     const std::vector<std::uint32_t>& revealed);

/// Expand a 64-bit protocol seed and apply the Toeplitz hash (both peers
/// derive identical seed bits from the PaParams message).
BitVec apply_toeplitz(std::uint64_t seed, const BitVec& key,
                      std::size_t out_len);

/// Reconciliation efficiency f = leak / (n * h2(qber)), with the decode
/// floor applied to the QBER.
double reconciliation_efficiency(std::uint64_t leaked_bits,
                                 std::size_t reconciled_bits,
                                 double qber) noexcept;

}  // namespace qkdpp::engine
