#include "engine/primitives.hpp"

#include <algorithm>

#include "common/entropy.hpp"
#include "privacy/toeplitz.hpp"

namespace qkdpp::engine {

SignalSplit split_sifted(const BitVec& sifted, const BitVec& signal_mask) {
  SignalSplit split;
  split.signal_positions.reserve(sifted.size());
  for (std::size_t i = 0; i < sifted.size(); ++i) {
    if (signal_mask.get(i)) {
      split.signal_positions.push_back(static_cast<std::uint32_t>(i));
    } else {
      split.revealed_positions.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return split;
}

std::vector<std::uint32_t> choose_pe_positions(const SignalSplit& split,
                                               double fraction,
                                               Xoshiro256& rng) {
  std::vector<std::uint32_t> positions = split.revealed_positions;
  const auto sample_size = static_cast<std::size_t>(
      fraction * static_cast<double>(split.signal_positions.size()));
  for (const auto s : rng.sample_without_replacement(
           split.signal_positions.size(), sample_size)) {
    positions.push_back(split.signal_positions[s]);
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

BitVec remaining_key(const BitVec& sifted, const BitVec& signal_mask,
                     const std::vector<std::uint32_t>& revealed) {
  std::vector<std::uint8_t> is_revealed(sifted.size(), 0);
  for (const auto p : revealed) {
    if (p < is_revealed.size()) is_revealed[p] = 1;
  }
  BitVec key;
  for (std::size_t i = 0; i < sifted.size(); ++i) {
    if (signal_mask.get(i) && !is_revealed[i]) {
      key.push_back(sifted.get(i));
    }
  }
  return key;
}

BitVec apply_toeplitz(std::uint64_t seed, const BitVec& key,
                      std::size_t out_len) {
  const BitVec seed_bits =
      privacy::toeplitz_seed(seed, key.size() + out_len - 1);
  return privacy::toeplitz_hash(key, seed_bits, out_len);
}

double reconciliation_efficiency(std::uint64_t leaked_bits,
                                 std::size_t reconciled_bits,
                                 double qber) noexcept {
  if (reconciled_bits == 0) return 0.0;
  return static_cast<double>(leaked_bits) /
         (static_cast<double>(reconciled_bits) *
          binary_entropy(qber_floor(qber)));
}

}  // namespace qkdpp::engine
