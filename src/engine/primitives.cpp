#include "engine/primitives.hpp"

#include <algorithm>
#include <bit>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "privacy/toeplitz.hpp"

namespace qkdpp::engine {

SignalSplit split_sifted(const BitVec& sifted, const BitVec& signal_mask) {
  QKDPP_REQUIRE(sifted.size() == signal_mask.size(),
                "signal mask does not match sifted length");
  SignalSplit split;
  const std::size_t n_signal = signal_mask.popcount();
  split.signal_positions.reserve(n_signal);
  split.revealed_positions.reserve(sifted.size() - n_signal);
  // Walk mask words with count-trailing-zeros instead of testing every bit;
  // zero runs (and their complements) cost one word op each.
  const auto words = signal_mask.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    const auto base = static_cast<std::uint32_t>(wi << 6);
    std::uint64_t sig = words[wi];
    while (sig != 0) {
      split.signal_positions.push_back(
          base + static_cast<std::uint32_t>(std::countr_zero(sig)));
      sig &= sig - 1;
    }
    std::uint64_t rev = ~words[wi];
    if (wi == words.size() - 1) {
      const std::size_t tail = sifted.size() & 63;
      if (tail != 0) rev &= (std::uint64_t{1} << tail) - 1;
    }
    while (rev != 0) {
      split.revealed_positions.push_back(
          base + static_cast<std::uint32_t>(std::countr_zero(rev)));
      rev &= rev - 1;
    }
  }
  return split;
}

std::vector<std::uint32_t> choose_pe_positions(const SignalSplit& split,
                                               double fraction,
                                               Xoshiro256& rng) {
  const auto sample_size = static_cast<std::size_t>(
      fraction * static_cast<double>(split.signal_positions.size()));
  std::vector<std::uint32_t> positions = split.revealed_positions;
  positions.reserve(positions.size() + sample_size);
  for (const auto s : rng.sample_without_replacement(
           split.signal_positions.size(), sample_size)) {
    positions.push_back(split.signal_positions[s]);
  }
  std::sort(positions.begin(), positions.end());
  return positions;
}

BitVec remaining_key(const BitVec& sifted, const BitVec& signal_mask,
                     const std::vector<std::uint32_t>& revealed) {
  QKDPP_REQUIRE(sifted.size() == signal_mask.size(),
                "signal mask does not match sifted length");
  // keep = signal & ~revealed, then one word-level compress.
  BitVec keep = signal_mask;
  auto keep_words = keep.mutable_words();
  for (const auto p : revealed) {
    if (p < sifted.size()) keep_words[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
  }
  return sifted.select(keep);
}

BitVec apply_toeplitz(std::uint64_t seed, const BitVec& key,
                      std::size_t out_len) {
  const BitVec seed_bits =
      privacy::toeplitz_seed(seed, key.size() + out_len - 1);
  return privacy::toeplitz_hash(key, seed_bits, out_len);
}

double reconciliation_efficiency(std::uint64_t leaked_bits,
                                 std::size_t reconciled_bits,
                                 double qber) noexcept {
  if (reconciled_bits == 0) return 0.0;
  return static_cast<double>(leaked_bits) /
         (static_cast<double>(reconciled_bits) *
          binary_entropy(qber_floor(qber)));
}

}  // namespace qkdpp::engine
