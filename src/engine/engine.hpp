// PostprocessEngine: the public entry point of the library.
//
// Construction runs the stage->device mapping optimizer over the configured
// device roster (the paper's placement search), then every block - whether
// submitted synchronously (process_block) or as a batch of futures
// (submit_block) - executes the five-stage chain with each stage on its
// assigned device. CPU devices charge measured wall-clock, the simulated
// accelerators charge modeled time, and the arithmetic is host-side and
// bit-exact on every placement, so device selection changes the clock, not
// the key. OfflinePipeline and the two-party session are thin adapters over
// this engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "engine/block.hpp"
#include "engine/params.hpp"
#include "engine/stage.hpp"
#include "hetero/device.hpp"
#include "hetero/mapper.hpp"
#include "hetero/trace.hpp"

namespace qkdpp::engine {

/// The placement the engine chose at construction.
struct Placement {
  std::vector<std::string> stage_names;
  std::vector<std::string> device_names;
  std::vector<std::uint32_t> device_of_stage;
  double predicted_items_per_s = 0.0;
  double bottleneck_load_s = 0.0;

  const std::string& device_of(std::size_t stage) const {
    return device_names[device_of_stage[stage]];
  }
};

/// Post-construction per-device accounting snapshot.
struct DeviceReport {
  std::string name;
  hetero::DeviceKind kind = hetero::DeviceKind::kCpuScalar;
  double busy_seconds = 0.0;
  std::uint64_t kernels_launched = 0;
};

class PostprocessEngine {
 public:
  explicit PostprocessEngine(PostprocessParams params,
                             EngineOptions options = EngineOptions::standard());
  ~PostprocessEngine();

  PostprocessEngine(const PostprocessEngine&) = delete;
  PostprocessEngine& operator=(const PostprocessEngine&) = delete;

  /// Snapshot of the current parameters (replan/adaptation may retune the
  /// reconciler mid-run, so this copies under the plan lock).
  PostprocessParams params() const;
  /// Snapshot of the current placement (replan swaps it mid-run).
  Placement placement() const;
  /// The stage x device cost matrix the current placement was chosen from.
  hetero::MappingProblem mapping_problem() const;
  std::vector<DeviceReport> device_report() const;

  /// Re-run the placement search for the current device roster: offline
  /// devices are priced infeasible, shared-set base load is re-read (our
  /// own previous commitment excluded), per-device modeled costs are
  /// multiplied by the EWMA observed/predicted correction learned from
  /// completed blocks, and the stage workload is refreshed to `workload`.
  /// On a shared set the old commitment is retracted and the new one
  /// committed. The swap happens under the plan lock: in-flight blocks
  /// finish on the placement they started with, later blocks use the new
  /// one. Returns the new placement.
  Placement replan(const StageWorkload& workload);
  /// Replan with the workload unchanged.
  Placement replan();

  /// Deterministically retune the reconciler to a windowed QBER estimate.
  /// Measured on this codebase (see bench_scenarios): the LDPC family is
  /// the right choice on a quiet channel (one-way, accelerator-offloadable,
  /// FER ~0 below ~3% QBER at f_target 1.45), but mid-band its fixed
  /// efficiency target wastes ~0.25 h2(q) of key per bit versus Cascade
  /// (~1.2), and above ~8% its rate adaptation saturates and frames start
  /// dying wholesale - while Cascade converges all the way to the abort
  /// threshold. So the method switches to Cascade once the windowed QBER
  /// crosses the mid-band, with the pass count stepped up in the hot band,
  /// and back to LDPC when the channel calms down. Affects blocks started
  /// after the call; placement is untouched, but a method change flips
  /// reconcile's device feasibility (Cascade is host-only), so the caller
  /// should replan when this returns true.
  bool adapt_to_qber(double windowed_qber);

  /// Number of replan() calls so far.
  std::uint64_t replans() const;
  /// The EWMA observed-cost feedback accumulated from completed stages.
  /// The mutable overload lets a caller seed observations (tests, or a
  /// controller importing costs measured out-of-band); process_block feeds
  /// it automatically.
  const hetero::StageCostModel& cost_model() const noexcept {
    return cost_model_;
  }
  hetero::StageCostModel& cost_model() noexcept { return cost_model_; }

  /// Run one block end to end, synchronously. Aborted blocks return
  /// success=false with the stage's reason in abort_reason (expected
  /// behaviour on hot channels, not an exception).
  BlockOutcome process_block(const BlockInput& input, std::uint64_t block_id,
                             Xoshiro256& rng);

  /// Queue one block for asynchronous processing; each block draws from its
  /// own RNG stream seeded with `rng_seed`, so a batch is deterministic
  /// regardless of completion order.
  std::future<BlockOutcome> submit_block(BlockInput input,
                                         std::uint64_t block_id,
                                         std::uint64_t rng_seed);

 private:
  void build_problem_locked() QKD_REQUIRES(plan_mutex_);
  void solve_and_commit_locked() QKD_REQUIRES(plan_mutex_);

  /// Construction writes it freely (no concurrent readers exist yet);
  /// afterwards every access goes through plan_mutex_ (adapt_to_qber
  /// mutates method/cascade settings while blocks snapshot).
  PostprocessParams params_ QKD_GUARDED_BY(plan_mutex_);
  EngineOptions options_;
  /// Created only when a roster device can use it (anything non-scalar) and
  /// the engine owns its devices; a shared DeviceSet brings its own pool.
  std::unique_ptr<ThreadPool> kernel_pool_;
  /// Created lazily on the first submit_block().
  std::once_flag batch_pool_once_;
  std::unique_ptr<ThreadPool> batch_pool_;
  /// Populated only without a shared set (Device is pinned: owns a mutex).
  std::deque<hetero::Device> owned_devices_;
  /// The roster the stages run on: owned_devices_, or the shared set's
  /// devices (kept alive by options_.shared_devices).
  std::vector<hetero::Device*> devices_;
  std::vector<std::unique_ptr<StageExecutor>> executors_;
  /// Guards placement_/problem_/raw_model_/params_/committed_by_this_:
  /// process_block snapshots under it, replan()/adapt_to_qber() swap under
  /// it, so re-planning never drains or stalls in-flight blocks. Held
  /// across DeviceSet commit/uncommit (rank above the ledger), released
  /// before any kernel runs.
  mutable Mutex plan_mutex_{LockRank::kEnginePlan, "engine.plan"};
  /// EWMA-corrected costs (mapper input).
  hetero::MappingProblem problem_ QKD_GUARDED_BY(plan_mutex_);
  /// Uncorrected model costs, same shape as problem_: observed stage times
  /// are ratioed against these so the EWMA correction converges instead of
  /// compounding through its own previous value.
  std::vector<std::vector<double>> raw_model_ QKD_GUARDED_BY(plan_mutex_);
  Placement placement_ QKD_GUARDED_BY(plan_mutex_);
  /// Per-device load this engine currently has committed to a shared set.
  std::vector<double> committed_by_this_ QKD_GUARDED_BY(plan_mutex_);
  hetero::StageCostModel cost_model_{kStageCount};
  std::uint64_t replan_count_ QKD_GUARDED_BY(plan_mutex_) = 0;
};

}  // namespace qkdpp::engine
