// PostprocessEngine: the public entry point of the library.
//
// Construction runs the stage->device mapping optimizer over the configured
// device roster (the paper's placement search), then every block - whether
// submitted synchronously (process_block) or as a batch of futures
// (submit_block) - executes the five-stage chain with each stage on its
// assigned device. CPU devices charge measured wall-clock, the simulated
// accelerators charge modeled time, and the arithmetic is host-side and
// bit-exact on every placement, so device selection changes the clock, not
// the key. OfflinePipeline and the two-party session are thin adapters over
// this engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "engine/block.hpp"
#include "engine/params.hpp"
#include "engine/stage.hpp"
#include "hetero/device.hpp"
#include "hetero/mapper.hpp"

namespace qkdpp::engine {

/// The placement the engine chose at construction.
struct Placement {
  std::vector<std::string> stage_names;
  std::vector<std::string> device_names;
  std::vector<std::uint32_t> device_of_stage;
  double predicted_items_per_s = 0.0;
  double bottleneck_load_s = 0.0;

  const std::string& device_of(std::size_t stage) const {
    return device_names[device_of_stage[stage]];
  }
};

/// Post-construction per-device accounting snapshot.
struct DeviceReport {
  std::string name;
  hetero::DeviceKind kind = hetero::DeviceKind::kCpuScalar;
  double busy_seconds = 0.0;
  std::uint64_t kernels_launched = 0;
};

class PostprocessEngine {
 public:
  explicit PostprocessEngine(PostprocessParams params,
                             EngineOptions options = EngineOptions::standard());
  ~PostprocessEngine();

  PostprocessEngine(const PostprocessEngine&) = delete;
  PostprocessEngine& operator=(const PostprocessEngine&) = delete;

  const PostprocessParams& params() const noexcept { return params_; }
  const Placement& placement() const noexcept { return placement_; }
  /// The stage x device cost matrix the placement was chosen from.
  const hetero::MappingProblem& mapping_problem() const noexcept {
    return problem_;
  }
  std::vector<DeviceReport> device_report() const;

  /// Run one block end to end, synchronously. Aborted blocks return
  /// success=false with the stage's reason in abort_reason (expected
  /// behaviour on hot channels, not an exception).
  BlockOutcome process_block(const BlockInput& input, std::uint64_t block_id,
                             Xoshiro256& rng);

  /// Queue one block for asynchronous processing; each block draws from its
  /// own RNG stream seeded with `rng_seed`, so a batch is deterministic
  /// regardless of completion order.
  std::future<BlockOutcome> submit_block(BlockInput input,
                                         std::uint64_t block_id,
                                         std::uint64_t rng_seed);

 private:
  void choose_placement();

  PostprocessParams params_;
  EngineOptions options_;
  /// Created only when a roster device can use it (anything non-scalar) and
  /// the engine owns its devices; a shared DeviceSet brings its own pool.
  std::unique_ptr<ThreadPool> kernel_pool_;
  /// Created lazily on the first submit_block().
  std::once_flag batch_pool_once_;
  std::unique_ptr<ThreadPool> batch_pool_;
  /// Populated only without a shared set (Device is pinned: owns a mutex).
  std::deque<hetero::Device> owned_devices_;
  /// The roster the stages run on: owned_devices_, or the shared set's
  /// devices (kept alive by options_.shared_devices).
  std::vector<hetero::Device*> devices_;
  std::vector<std::unique_ptr<StageExecutor>> executors_;
  hetero::MappingProblem problem_;
  Placement placement_;
};

}  // namespace qkdpp::engine
