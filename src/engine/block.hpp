// Per-block data types of the engine API: what goes in (raw detections from
// both endpoints), what comes out (the distillation funnel + final key), and
// the leakage ledger every stage charges against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bitvec.hpp"
#include "protocol/messages.hpp"
#include "protocol/sifting.hpp"

namespace qkdpp::engine {

/// Raw material for one block: both endpoints' views of the quantum layer.
/// The offline pipeline fills this from the link simulator; a hardware
/// deployment would fill it from transmitter/receiver logs.
struct BlockInput {
  protocol::AliceTransmitLog log;    ///< Alice's per-pulse transmit log
  protocol::DetectionReport report;  ///< Bob's click announcement
  BitVec bob_bits;                   ///< Bob's measured bits, per detection
};

/// Seconds charged per stage for one block. CPU devices charge measured
/// wall-clock; simulated accelerators charge modeled time (drives F1).
struct StageTimings {
  double simulate = 0.0;  ///< not post-processing; reported separately
  double sift = 0.0;
  double estimate = 0.0;
  double reconcile = 0.0;
  double verify = 0.0;
  double amplify = 0.0;

  double post_processing_total() const noexcept {
    return sift + estimate + reconcile + verify + amplify;
  }
};

/// Everything reconciliation and verification disclosed to Eve, in bits.
/// Privacy amplification subtracts the total.
struct LeakageLedger {
  std::uint64_t ec_bits = 0;      ///< syndromes, parities, blind reveals
  std::uint64_t verify_bits = 0;  ///< verification tag length

  std::uint64_t total() const noexcept { return ec_bits + verify_bits; }
};

/// BlockOutcome::abort_reason when a stage's placed device was hot-removed
/// before the stage could launch (the orchestrator counts these, and an
/// adaptive policy replans them away).
inline constexpr const char* kAbortDeviceOffline = "assigned device offline";

struct BlockOutcome {
  std::uint64_t block_id = 0;
  bool success = false;
  std::string abort_reason;

  std::size_t pulses = 0;
  std::size_t detections = 0;
  std::size_t sifted_bits = 0;        ///< matched-basis detections
  std::size_t key_candidate_bits = 0; ///< signal-class sifted bits
  std::size_t pe_sample_bits = 0;
  double qber_estimate = 0.0;
  double qber_upper = 0.0;

  std::size_t reconciled_bits = 0;    ///< payload that survived framing
  std::uint64_t leak_ec_bits = 0;
  double efficiency = 0.0;
  std::uint64_t reconcile_rounds = 0;
  std::uint64_t reconcile_frames = 0;            ///< LDPC frames decoded
  std::uint64_t decoder_iterations = 0;          ///< BP iterations, summed
  std::uint64_t reconcile_early_exit_frames = 0; ///< converged before the cap

  std::size_t final_key_bits = 0;
  BitVec final_key;                   ///< identical on both ends by construction

  StageTimings timings;

  /// Secret key rate per emitted pulse.
  double skr_per_pulse() const noexcept {
    return pulses ? static_cast<double>(final_key_bits) /
                        static_cast<double>(pulses)
                  : 0.0;
  }
};

}  // namespace qkdpp::engine
