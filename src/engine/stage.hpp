// StageExecutor: the unit of work the engine schedules onto devices.
//
// One executor per post-processing stage (sift, estimate, reconcile,
// verify, amplify). Each runs its hot loop as a hetero::Device::execute
// body and reports a WorkEstimate, so CPU devices charge measured
// wall-clock while simulated accelerators charge modeled time - yet the
// computation itself is host-side and bit-exact on every device kind.
// Executors also price themselves for the mapper (work_model/feasible_on),
// which is how the engine turns the paper's stage->device placement search
// into a property of the real pipeline instead of a bench-only simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "engine/block.hpp"
#include "engine/params.hpp"
#include "engine/primitives.hpp"
#include "hetero/device.hpp"
#include "protocol/param_estimation.hpp"
#include "protocol/sifting.hpp"

namespace qkdpp::engine {

enum class StageKind : std::uint8_t {
  kSift = 0,
  kEstimate = 1,
  kReconcile = 2,
  kVerify = 3,
  kAmplify = 4,
};

constexpr std::size_t kStageCount = 5;

const char* stage_name(StageKind kind) noexcept;

/// Working state of one block as it moves through the stage chain. Owned by
/// the engine for the duration of one process_block call.
struct BlockState {
  const BlockInput* input = nullptr;
  std::uint64_t block_id = 0;

  // sift
  protocol::AliceSiftOutcome sift;
  BitVec bob_sifted;

  // estimate
  SignalSplit split;
  std::vector<std::uint32_t> revealed_positions;
  protocol::QberEstimate estimate;
  BitVec alice_key;
  BitVec bob_key;

  // reconcile
  BitVec alice_reconciled;
  BitVec bob_reconciled;

  LeakageLedger ledger;
  BlockOutcome outcome;

  bool aborted() const noexcept { return !outcome.abort_reason.empty(); }
};

/// Everything a stage needs beyond the block itself: the device it was
/// placed on, the host pool backing that device's parallel kernels (null
/// for cpu-scalar), the block's RNG stream and the shared leakage ledger.
struct ExecutionContext {
  const PostprocessParams* params = nullptr;
  hetero::Device* device = nullptr;
  ThreadPool* pool = nullptr;  ///< == device->pool(), set per stage
  Xoshiro256* rng = nullptr;
  LeakageLedger* ledger = nullptr;
  /// Per-block scratch arena (reset by the engine at block entry); stages
  /// borrow short-lived BitVec/Buffer scratch here instead of allocating.
  /// May be null (stand-alone executor tests) - stages must fall back.
  BlockArena* arena = nullptr;
};

class StageExecutor {
 public:
  virtual ~StageExecutor() = default;

  virtual StageKind kind() const noexcept = 0;
  const char* name() const noexcept { return stage_name(kind()); }

  /// Can this stage's kernel run on a device of `kind` at all? Control-heavy
  /// stages (sifting, estimation, interactive cascade) are host-only; the
  /// mapper never places them on accelerators.
  virtual bool feasible_on(hetero::DeviceKind kind) const noexcept = 0;

  /// Modeled work of one block of `workload` size on a device of
  /// `device_kind` (the FPGA prices worst-case iteration counts - its
  /// hardware runs fixed depth). Feeds Device::model_seconds for the
  /// mapper's cost matrix.
  virtual hetero::WorkEstimate work_model(
      const StageWorkload& workload,
      hetero::DeviceKind device_kind) const noexcept = 0;

  /// Execute the stage on ctx.device. Returns the seconds the device
  /// charged. Sets state.outcome.abort_reason on expected aborts (hot
  /// channel, short key) - the engine stops the chain there.
  virtual double run(BlockState& state, const ExecutionContext& ctx) const = 0;
};

/// The canonical five-stage chain, in execution order. `params` must
/// outlive the executors (the engine owns both).
std::vector<std::unique_ptr<StageExecutor>> make_stage_executors(
    const PostprocessParams& params);

}  // namespace qkdpp::engine
