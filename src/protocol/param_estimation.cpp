#include "protocol/param_estimation.hpp"

#include <algorithm>
#include <cmath>

#include "common/entropy.hpp"
#include "common/error.hpp"

namespace qkdpp::protocol {

QberEstimate estimate_qber(std::size_t sample_size, std::size_t mismatches,
                           double eps) {
  QKDPP_REQUIRE(mismatches <= sample_size, "mismatches exceed sample");
  QKDPP_REQUIRE(eps > 0 && eps < 1, "eps outside (0,1)");
  QberEstimate est;
  est.sample_size = sample_size;
  est.mismatches = mismatches;
  if (sample_size == 0) return est;  // qber 0, upper stays 1: no information
  est.qber =
      static_cast<double>(mismatches) / static_cast<double>(sample_size);
  est.qber_upper = std::min(1.0, est.qber + hoeffding_delta(sample_size, eps));
  return est;
}

DecoyBounds decoy_bounds(const DecoyObservations& obs) {
  DecoyBounds bounds;
  const double mu = obs.mu;
  const double nu = obs.nu;
  if (!(mu > nu) || nu <= 0) return bounds;

  // Y1 lower bound (vacuum + weak decoy, Ma et al. 2005, Eq. 34):
  //   Y1 >= mu / (mu nu - nu^2) *
  //         ( Q_nu e^nu - Q_mu e^mu (nu/mu)^2 - (mu^2 - nu^2)/mu^2 * Y0 )
  const double coefficient = mu / (mu * nu - nu * nu);
  const double term = obs.q_nu * std::exp(nu) -
                      obs.q_mu * std::exp(mu) * (nu * nu) / (mu * mu) -
                      (mu * mu - nu * nu) / (mu * mu) * obs.y0;
  const double y1 = coefficient * term;
  if (y1 <= 0) return bounds;
  bounds.y1_lower = y1;

  // e1 upper bound (Eq. 37): e1 <= (E_nu Q_nu e^nu - e0 Y0) / (Y1 nu),
  // with e0 = 1/2 the error rate of background clicks.
  const double numerator = obs.e_nu * obs.q_nu * std::exp(nu) - 0.5 * obs.y0;
  bounds.e1_upper =
      std::clamp(numerator / (y1 * nu), 0.0, 0.5);

  bounds.q1_lower = y1 * mu * std::exp(-mu);
  bounds.valid = true;
  return bounds;
}

namespace {

// Multiplicative Chernoff-style deviation for a low-rate observable: an
// absolute Hoeffding delta would swamp decoy gains of order 1e-3 at metro
// distances, so the deviation is scaled by the observed rate (floored at 1/n
// so zero-count observations still get a positive margin).
double rate_delta(double rate, std::size_t n, double eps) noexcept {
  if (n == 0) return 1.0;
  const double floor_rate = std::max(rate, 1.0 / static_cast<double>(n));
  return std::sqrt(3.0 * floor_rate * std::log(1.0 / eps) /
                   static_cast<double>(n));
}

}  // namespace

DecoyBounds decoy_bounds_finite(const DecoyObservations& obs,
                                std::size_t n_signal, std::size_t n_decoy,
                                std::size_t n_vacuum, double eps) {
  DecoyObservations worst = obs;
  const double d_mu = rate_delta(obs.q_mu, n_signal, eps);
  const double d_nu = rate_delta(obs.q_nu, n_decoy, eps);
  const double d_v = rate_delta(obs.y0, n_vacuum, eps);
  // Directions chosen to *lower* Y1 and *raise* e1:
  //   Y1 decreases with Q_mu and Y0, increases with Q_nu.
  //   e1 increases with E_nu Q_nu, decreases with Y0 and Y1.
  worst.q_mu = std::min(1.0, obs.q_mu + d_mu);
  worst.q_nu = std::max(0.0, obs.q_nu - d_nu);
  worst.y0 = std::min(1.0, obs.y0 + d_v);

  DecoyBounds bounds = decoy_bounds(worst);
  if (!bounds.valid) return bounds;

  // Recompute e1 with the adversarial direction for the error numerator
  // (larger E_nu Q_nu, smaller Y0). The margin must be derived for the
  // *product* observable E_nu*Q_nu - the error-count rate over n_decoy
  // pulses - not reused from Q_nu: the decoy gain's deviation is ~sqrt(Q_nu)
  // while the error rate's is ~sqrt(E_nu*Q_nu), a much smaller quantity, so
  // reusing d_nu both mis-sizes the confidence interval and breaks the
  // finite->asymptotic convergence direction per observable.
  const double nu = obs.nu;
  const double d_enu = rate_delta(obs.e_nu * obs.q_nu, n_decoy, eps);
  const double e_q_nu_upper =
      std::min(1.0, obs.e_nu * obs.q_nu + d_enu) * std::exp(nu);
  const double y0_lower = std::max(0.0, obs.y0 - d_v);
  const double numerator = e_q_nu_upper - 0.5 * y0_lower;
  bounds.e1_upper =
      std::clamp(numerator / (bounds.y1_lower * nu), 0.0, 0.5);
  return bounds;
}

}  // namespace qkdpp::protocol
