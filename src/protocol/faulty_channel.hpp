// Seeded, deterministic classical-channel fault injection.
//
// FaultyChannel decorates any ClassicalChannel and perturbs *egress* traffic:
// drops, single-bit corruption, duplication, reordering, bounded delay, and
// timed outage windows during which every frame is lost. All randomness comes
// from one Xoshiro256 stream keyed by the constructor seed, so a given
// (seed, traffic) pair always injects the identical fault pattern — the
// property the chaos bench's byte-identical same-seed gate rests on.
//
// The injector sits *below* the ARQ layer (ReliableChannel) and below
// authentication, mimicking a lossy network segment: retransmission heals
// what it injects, while deliberate tampering above the ARQ layer still
// surfaces as an authentication failure.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "protocol/channel.hpp"

namespace qkdpp::protocol {

/// A window of send indices (frames counted at this endpoint) during which
/// the link is dead: every frame in [begin_frame, end_frame) is dropped.
struct OutageWindow {
  std::uint64_t begin_frame = 0;
  std::uint64_t end_frame = 0;
};

/// Per-frame fault probabilities (independent draws, applied in the order
/// drop -> corrupt -> duplicate -> reorder/delay) plus outage bursts.
struct FaultProfile {
  double drop = 0.0;       ///< frame vanishes
  double corrupt = 0.0;    ///< one bit flipped at a seeded position
  double duplicate = 0.0;  ///< frame delivered twice
  double reorder = 0.0;    ///< frame held and released after a later one
  double delay = 0.0;      ///< frame held for up to max_delay_frames sends
  std::uint32_t max_delay_frames = 3;
  std::vector<OutageWindow> outages;

  bool any() const noexcept {
    return drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           delay > 0.0 || !outages.empty();
  }

  /// Throws Error{kConfig} on probabilities outside [0,1] or inverted
  /// outage windows.
  void validate() const;
};

/// Per-kind injection tallies (frames, not bits).
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t outage_dropped = 0;

  std::uint64_t total() const noexcept {
    return dropped + corrupted + duplicated + reordered + delayed +
           outage_dropped;
  }

  FaultCounters& operator+=(const FaultCounters& other) noexcept {
    dropped += other.dropped;
    corrupted += other.corrupted;
    duplicated += other.duplicated;
    reordered += other.reordered;
    delayed += other.delayed;
    outage_dropped += other.outage_dropped;
    return *this;
  }
};

class FaultyChannel final : public ClassicalChannel {
 public:
  /// Validates `profile`; `seed` keys the fault pattern.
  FaultyChannel(std::unique_ptr<ClassicalChannel> inner, FaultProfile profile,
                std::uint64_t seed);

  void send(std::vector<std::uint8_t> frame) override;
  std::vector<std::uint8_t> receive() override { return inner_->receive(); }
  std::optional<std::vector<std::uint8_t>> receive_for(
      std::chrono::microseconds timeout) override {
    return inner_->receive_for(timeout);
  }
  void close() override;

  /// Inner counters plus this injector's faults_injected.
  ChannelCounters counters() const override;

  const FaultCounters& fault_counters() const noexcept { return faults_; }

 private:
  bool in_outage(std::uint64_t frame_index) const noexcept;
  void flush_held(bool force);

  std::unique_ptr<ClassicalChannel> inner_;
  FaultProfile profile_;
  Xoshiro256 rng_;
  std::uint64_t sent_ = 0;  ///< frames offered to send(), faulted or not
  FaultCounters faults_;

  /// Frames held back by reorder/delay faults, tagged with the send index
  /// at which they are released back onto the wire.
  struct HeldFrame {
    std::vector<std::uint8_t> frame;
    std::uint64_t release_at;
  };
  std::deque<HeldFrame> held_;
};

std::unique_ptr<FaultyChannel> make_faulty_channel(
    std::unique_ptr<ClassicalChannel> inner, FaultProfile profile,
    std::uint64_t seed);

}  // namespace qkdpp::protocol
