// Basis sifting: turning detection reports into aligned raw keys.
//
// Bob announces which gates clicked and his measurement bases; Alice keeps
// the detections measured in her preparation basis and tells Bob which ones
// those were. Bits from non-signal (decoy/vacuum) pulses are flagged - they
// are estimation material, never key material.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "protocol/messages.hpp"

namespace qkdpp::protocol {

/// Alice's transmit-side log (what a real transmitter retains per pulse).
struct AliceTransmitLog {
  BitVec bits;
  BitVec bases;
  std::vector<std::uint8_t> pulse_class;  ///< sim::PulseClass values
};

/// Alice-side sifting outcome.
struct AliceSiftOutcome {
  SiftResult result;  ///< message for Bob
  BitVec sifted_key;  ///< Alice's bits at kept detections (key + estimation)
};

/// Run Alice's half of sifting against Bob's detection report.
/// Throws Error{kProtocol} if the report references pulses out of range or
/// its shape is inconsistent.
AliceSiftOutcome sift_alice(const AliceTransmitLog& log,
                            const DetectionReport& report);

/// Bob's half: select his detection bits through Alice's keep mask.
/// Throws Error{kProtocol} on shape mismatch.
BitVec sift_bob(const BitVec& bob_bits, const SiftResult& result);

}  // namespace qkdpp::protocol
