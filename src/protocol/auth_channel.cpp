#include "protocol/auth_channel.hpp"

#include "common/error.hpp"

namespace qkdpp::protocol {

namespace {

constexpr std::size_t kTagBytes = 16;

}  // namespace

void AuthenticatedChannel::send(std::vector<std::uint8_t> frame) {
  const auth::Tag tag = signer_.sign(frame);
  frame.reserve(frame.size() + kTagBytes);
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<std::uint8_t>(tag.value.lo >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<std::uint8_t>(tag.value.hi >> (8 * i)));
  }
  inner_->send(std::move(frame));
}

std::vector<std::uint8_t> AuthenticatedChannel::receive() {
  std::vector<std::uint8_t> frame = inner_->receive();
  if (frame.size() < kTagBytes) {
    throw_error(ErrorCode::kSerialization, "frame shorter than tag");
  }
  auth::Tag tag;
  const std::size_t base = frame.size() - kTagBytes;
  for (int i = 0; i < 8; ++i) {
    tag.value.lo |= std::uint64_t{frame[base + i]} << (8 * i);
    tag.value.hi |= std::uint64_t{frame[base + 8 + i]} << (8 * i);
  }
  frame.resize(base);
  if (!verifier_.verify(frame, tag)) {
    throw_error(ErrorCode::kAuthentication, "Wegman-Carter tag mismatch");
  }
  return frame;
}

}  // namespace qkdpp::protocol
