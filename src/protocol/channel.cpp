#include "protocol/channel.hpp"

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace qkdpp::protocol {

namespace {

/// Shared state of a connected endpoint pair: one queue per direction.
struct PairState {
  Mutex mutex{LockRank::kChannel, "channel.pair"};
  CondVar cv;
  /// Index = receiving side.
  std::deque<std::vector<std::uint8_t>> queue[2] QKD_GUARDED_BY(mutex);
  /// Index = closing side.
  bool closed[2] QKD_GUARDED_BY(mutex) = {false, false};
  ChannelModel model;  // set once before the endpoints exist; immutable
};

class InProcessEndpoint final : public ClassicalChannel {
 public:
  InProcessEndpoint(std::shared_ptr<PairState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~InProcessEndpoint() override { close(); }

  void send(std::vector<std::uint8_t> frame) override {
    const std::size_t frame_bytes = frame.size();
    {
      MutexLock lock(state_->mutex);
      if (state_->closed[side_]) {
        throw_error(ErrorCode::kChannelClosed, "send on closed endpoint");
      }
      if (state_->closed[1 - side_]) {
        throw_error(ErrorCode::kChannelClosed, "peer has closed");
      }
      state_->queue[1 - side_].push_back(std::move(frame));
      counters_.messages_sent += 1;
      counters_.bytes_sent += frame_bytes;
      counters_.virtual_time_s += cost_of(frame_bytes);
    }
    state_->cv.notify_all();
  }

  std::vector<std::uint8_t> receive() override {
    // Explicit wait loop (not the predicate-lambda overload): the
    // condition reads fields guarded by state_->mutex, and thread-safety
    // analysis cannot see a lambda body's lock context.
    MutexLock lock(state_->mutex);
    while (!ready_locked()) state_->cv.wait(lock);
    return take_front_locked();
  }

  std::optional<std::vector<std::uint8_t>> receive_for(
      std::chrono::microseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(state_->mutex);
    while (!ready_locked()) {
      if (state_->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !ready_locked()) {
        return std::nullopt;
      }
    }
    return take_front_locked();
  }

  void close() override {
    {
      MutexLock lock(state_->mutex);
      state_->closed[side_] = true;
    }
    state_->cv.notify_all();
  }

  ChannelCounters counters() const override {
    MutexLock lock(state_->mutex);
    return counters_;
  }

 private:
  /// A frame is waiting or the pair can never produce one; mutex held.
  bool ready_locked() const QKD_REQUIRES(state_->mutex) {
    return !state_->queue[side_].empty() || state_->closed[1 - side_] ||
           state_->closed[side_];
  }

  /// Pop the head frame (or throw on closed-and-drained); mutex held.
  std::vector<std::uint8_t> take_front_locked()
      QKD_REQUIRES(state_->mutex) {
    if (state_->queue[side_].empty()) {
      throw_error(ErrorCode::kChannelClosed, "channel closed");
    }
    auto frame = std::move(state_->queue[side_].front());
    state_->queue[side_].pop_front();
    counters_.messages_received += 1;
    counters_.bytes_received += frame.size();
    return frame;
  }

  double cost_of(std::size_t bytes) const noexcept {
    double t = state_->model.latency_s;
    if (state_->model.bandwidth_bps > 0) {
      t += static_cast<double>(bytes) * 8.0 / state_->model.bandwidth_bps;
    }
    return t;
  }

  std::shared_ptr<PairState> state_;
  int side_;
  ChannelCounters counters_ QKD_GUARDED_BY(state_->mutex);
};

class TamperingChannel final : public ClassicalChannel {
 public:
  TamperingChannel(std::unique_ptr<ClassicalChannel> inner,
                   std::uint32_t every)
      : inner_(std::move(inner)), every_(every) {}

  void send(std::vector<std::uint8_t> frame) override {
    ++sent_;
    if (every_ != 0 && sent_ % every_ == 0 && !frame.empty()) {
      frame[frame.size() / 2] ^= 0x01;
    }
    inner_->send(std::move(frame));
  }

  std::vector<std::uint8_t> receive() override { return inner_->receive(); }
  std::optional<std::vector<std::uint8_t>> receive_for(
      std::chrono::microseconds timeout) override {
    return inner_->receive_for(timeout);
  }
  void close() override { inner_->close(); }
  ChannelCounters counters() const override { return inner_->counters(); }

 private:
  std::unique_ptr<ClassicalChannel> inner_;
  std::uint32_t every_;
  std::uint64_t sent_ = 0;
};

}  // namespace

std::pair<std::unique_ptr<ClassicalChannel>, std::unique_ptr<ClassicalChannel>>
make_channel_pair(ChannelModel model) {
  auto state = std::make_shared<PairState>();
  state->model = model;
  return {std::make_unique<InProcessEndpoint>(state, 0),
          std::make_unique<InProcessEndpoint>(state, 1)};
}

std::unique_ptr<ClassicalChannel> make_tampering_channel(
    std::unique_ptr<ClassicalChannel> inner, std::uint32_t flip_byte_every) {
  return std::make_unique<TamperingChannel>(std::move(inner), flip_byte_every);
}

}  // namespace qkdpp::protocol
