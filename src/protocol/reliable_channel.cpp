#include "protocol/reliable_channel.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "common/crc.hpp"
#include "common/error.hpp"

namespace qkdpp::protocol {

namespace {

// Wire layout (little-endian): [type][u64 seq][u32 crc][payload...].
// The CRC is computed over the whole frame with the CRC field zeroed, so
// header corruption (type or sequence number) is caught, not just payload.
constexpr std::uint8_t kDataType = 0xD1;
constexpr std::uint8_t kAckType = 0xA5;
constexpr std::size_t kSeqOffset = 1;
constexpr std::size_t kCrcOffset = 9;
constexpr std::size_t kHeaderBytes = 13;

void put_u64(std::vector<std::uint8_t>& buf, std::size_t off,
             std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& buf, std::size_t off) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= std::uint64_t{buf[off + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return value;
}

std::vector<std::uint8_t> encode_frame(std::uint8_t type, std::uint64_t seq,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire(kHeaderBytes + payload.size());
  wire[0] = type;
  put_u64(wire, kSeqOffset, seq);
  std::copy(payload.begin(), payload.end(), wire.begin() + kHeaderBytes);
  const std::uint32_t crc = crc32c(wire);
  for (int i = 0; i < 4; ++i) {
    wire[kCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return wire;
}

/// Extract and re-verify the CRC in place; false on any mismatch.
bool crc_ok(std::vector<std::uint8_t>& wire) {
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= std::uint32_t{wire[kCrcOffset + static_cast<std::size_t>(i)]}
              << (8 * i);
    wire[kCrcOffset + static_cast<std::size_t>(i)] = 0;
  }
  return crc32c(wire) == stored;
}

}  // namespace

void RetryPolicy::validate() const {
  QKDPP_REQUIRE(max_retries > 0, "RetryPolicy.max_retries must be > 0");
  QKDPP_REQUIRE(base_timeout.count() > 0,
                "RetryPolicy.base_timeout must be positive");
  QKDPP_REQUIRE(backoff >= 1.0, "RetryPolicy.backoff must be >= 1");
  QKDPP_REQUIRE(jitter >= 0.0 && jitter < 1.0,
                "RetryPolicy.jitter must be in [0, 1)");
  QKDPP_REQUIRE(exchange_deadline.count() > 0,
                "RetryPolicy.exchange_deadline must be positive");
}

ReliableChannel::ReliableChannel(std::unique_ptr<ClassicalChannel> inner,
                                 RetryPolicy policy, std::uint64_t jitter_seed)
    : inner_(std::move(inner)), policy_(policy), jitter_rng_(jitter_seed) {
  policy_.validate();
}

std::chrono::microseconds ReliableChannel::next_wait(std::uint32_t attempt) {
  double wait = static_cast<double>(policy_.base_timeout.count());
  for (std::uint32_t i = 0; i < attempt; ++i) {
    wait *= policy_.backoff;
    if (wait >= static_cast<double>(policy_.max_timeout.count())) break;
  }
  wait = std::min(wait, static_cast<double>(policy_.max_timeout.count()));
  if (policy_.jitter > 0.0) {
    wait *= 1.0 + policy_.jitter * (2.0 * jitter_rng_.next_double() - 1.0);
  }
  return std::chrono::microseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(wait)));
}

void ReliableChannel::transmit(const std::vector<std::uint8_t>& wire) {
  inner_->send(wire);
}

void ReliableChannel::send_ack() {
  // Best-effort: a lost (or unsendable) ack is healed by the peer's
  // retransmission, which we dedup and re-ack.
  try {
    transmit(encode_frame(kAckType, next_deliver_seq_, {}));
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kChannelClosed) throw;
  }
}

void ReliableChannel::retransmit_unacked() {
  for (auto& [seq, entry] : unacked_) {
    if (entry.retries >= policy_.max_retries) {
      throw_error(ErrorCode::kTimeout,
                  "retransmission budget exhausted for seq " +
                      std::to_string(seq) + " after " +
                      std::to_string(entry.retries) + " retries");
    }
    entry.retries += 1;
    retransmits_ += 1;
    try {
      transmit(entry.wire);
    } catch (const Error& e) {
      // A closed peer surfaces on the next receive; keep the typed
      // closure there rather than from a background retransmission.
      if (e.code() != ErrorCode::kChannelClosed) throw;
      return;
    }
  }
}

bool ReliableChannel::absorb(std::vector<std::uint8_t> wire) {
  if (wire.size() < kHeaderBytes || !crc_ok(wire)) {
    corrupt_dropped_ += 1;
    return false;
  }
  const std::uint8_t type = wire[0];
  const std::uint64_t seq = get_u64(wire, kSeqOffset);

  if (type == kAckType) {
    // Cumulative: everything below `seq` has been delivered at the peer.
    unacked_.erase(unacked_.begin(), unacked_.lower_bound(seq));
    return false;
  }
  if (type != kDataType) {
    corrupt_dropped_ += 1;
    return false;
  }

  if (seq < next_deliver_seq_ || reorder_.count(seq) != 0) {
    // Replay or duplicate: discard idempotently, but re-ack — the peer is
    // retransmitting precisely because it never saw our acknowledgment.
    duplicates_dropped_ += 1;
    send_ack();
    return false;
  }

  reorder_.emplace(seq,
                   std::vector<std::uint8_t>(wire.begin() + kHeaderBytes,
                                             wire.end()));
  bool progressed = false;
  for (auto it = reorder_.find(next_deliver_seq_); it != reorder_.end();
       it = reorder_.find(next_deliver_seq_)) {
    deliverable_.push_back(std::move(it->second));
    reorder_.erase(it);
    next_deliver_seq_ += 1;
    progressed = true;
  }
  send_ack();
  return progressed;
}

void ReliableChannel::send(std::vector<std::uint8_t> frame) {
  const std::uint64_t seq = next_send_seq_++;
  auto wire = encode_frame(kDataType, seq, frame);
  auto [it, inserted] = unacked_.emplace(seq, Unacked{std::move(wire), 0});
  (void)inserted;
  transmit(it->second.wire);
}

std::vector<std::uint8_t> ReliableChannel::receive() {
  const auto deadline =
      std::chrono::steady_clock::now() + policy_.exchange_deadline;
  std::uint32_t attempt = 0;
  for (;;) {
    if (!deliverable_.empty()) {
      auto frame = std::move(deliverable_.front());
      deliverable_.pop_front();
      return frame;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw_error(ErrorCode::kTimeout, "exchange deadline exceeded");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    const auto wait = std::min(next_wait(attempt), remaining);
    auto wire = inner_->receive_for(wait);
    if (wire.has_value()) {
      absorb(std::move(*wire));
      attempt = 0;  // the wire is alive; restart the backoff ladder
    } else {
      retry_timeouts_ += 1;
      if (unacked_.empty()) {
        // Nothing to retransmit, yet the peer is silent: probe with a
        // re-ack. The peer may be waiting on a frame its injector is
        // holding (a delay fault releases held frames only on later
        // sends), and a blocked endpoint that emits no traffic at all can
        // otherwise stall an exchange until the deadline.
        send_ack();
      } else {
        retransmit_unacked();
      }
      attempt += 1;
    }
  }
}

void ReliableChannel::close() {
  if (closed_) return;
  closed_ = true;
  // Linger: our last DATA frame may still be unacknowledged (or lost). Keep
  // pumping acks and retransmissions briefly so the peer's session can
  // finish; without this, a drop on the final message of a block would
  // abort the peer even though we already succeeded.
  const auto deadline =
      std::chrono::steady_clock::now() + policy_.close_linger;
  std::uint32_t attempt = 0;
  try {
    while (!unacked_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                now);
      auto wire = inner_->receive_for(std::min(next_wait(attempt), remaining));
      if (wire.has_value()) {
        absorb(std::move(*wire));
        attempt = 0;
      } else {
        retry_timeouts_ += 1;
        retransmit_unacked();
        attempt += 1;
      }
    }
  } catch (const Error&) {
    // Budget exhausted or peer gone: teardown proceeds either way.
  }
  inner_->close();
}

ChannelCounters ReliableChannel::counters() const {
  ChannelCounters c = inner_->counters();
  c.retransmits += retransmits_;
  c.retry_timeouts += retry_timeouts_;
  c.duplicates_dropped += duplicates_dropped_;
  c.corrupt_dropped += corrupt_dropped_;
  return c;
}

}  // namespace qkdpp::protocol
