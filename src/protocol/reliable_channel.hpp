// ARQ decorator: exactly-once, in-order delivery over a lossy channel.
//
// ReliableChannel wraps any ClassicalChannel and runs a stop-and-wait-free
// sliding ARQ over it: every application frame becomes a DATA frame carrying
// a per-direction sequence number and a CRC32C, receivers ack cumulatively
// and buffer out-of-order arrivals, and senders retransmit unacknowledged
// frames whenever a receive wait times out — with exponential backoff and
// seeded jitter so two retransmitting peers don't lock step. CRC failures
// are treated as drops (the frame is discarded and healed by retransmission;
// the CRC is integrity plumbing, not security — Wegman-Carter authentication
// layers *above* this decorator). Replayed or duplicated frames are
// discarded idempotently and re-acked.
//
// Failure is typed, never silent: a frame that exhausts its retransmission
// budget or a receive that overruns the per-exchange deadline throws
// Error{kTimeout}, which the session maps to a typed block abort.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "protocol/channel.hpp"

namespace qkdpp::protocol {

/// Retransmission posture. Defaults suit the in-process transport where a
/// healthy round trip is microseconds; a real WAN deployment would scale
/// base_timeout to its RTT.
struct RetryPolicy {
  /// Retransmissions per frame before the sender gives up (kTimeout).
  std::uint32_t max_retries = 10;
  /// First receive-wait before retransmitting.
  std::chrono::microseconds base_timeout{1500};
  /// Wait multiplier per consecutive empty wait.
  double backoff = 2.0;
  /// Cap on the backed-off wait; keeps abort latency bounded during outages.
  std::chrono::microseconds max_timeout{50000};
  /// Seeded +/- fraction applied to every wait so peers desynchronize.
  double jitter = 0.25;
  /// Per-receive() deadline: must cover the peer's worst-case compute
  /// between protocol messages (an LDPC decode, a Toeplitz pass), not just
  /// network time. Overrunning it throws Error{kTimeout}.
  std::chrono::milliseconds exchange_deadline{5000};
  /// Grace period close() spends pumping acks/retransmits so a peer whose
  /// final frame was lost can still be healed before teardown.
  std::chrono::milliseconds close_linger{250};

  void validate() const;
};

class ReliableChannel final : public ClassicalChannel {
 public:
  /// `jitter_seed` keys only the backoff jitter; it never touches payload
  /// bytes, so delivered data is seed-independent.
  ReliableChannel(std::unique_ptr<ClassicalChannel> inner,
                  RetryPolicy policy = {}, std::uint64_t jitter_seed = 1);

  /// Sequence-stamp, checksum and transmit; the frame is retained until the
  /// peer acknowledges it.
  void send(std::vector<std::uint8_t> frame) override;

  /// Next in-order application frame, exactly once. Drives retransmission
  /// of unacked frames while waiting. Throws Error{kTimeout} on budget or
  /// deadline exhaustion, Error{kChannelClosed} once the peer is gone.
  std::vector<std::uint8_t> receive() override;

  /// Linger-pump outstanding retransmissions, then close the inner channel.
  void close() override;

  /// Inner (wire-level) counters plus this layer's retransmit/dedup/CRC
  /// tallies.
  ChannelCounters counters() const override;

 private:
  struct Unacked {
    std::vector<std::uint8_t> wire;  ///< full encoded DATA frame
    std::uint32_t retries = 0;
  };

  void transmit(const std::vector<std::uint8_t>& wire);
  void send_ack();
  void retransmit_unacked();
  /// Handle one wire frame; returns true if an application frame became
  /// deliverable.
  bool absorb(std::vector<std::uint8_t> wire);
  std::chrono::microseconds next_wait(std::uint32_t attempt);

  std::unique_ptr<ClassicalChannel> inner_;
  RetryPolicy policy_;
  Xoshiro256 jitter_rng_;

  std::uint64_t next_send_seq_ = 0;       ///< our outgoing stream
  std::map<std::uint64_t, Unacked> unacked_;

  std::uint64_t next_deliver_seq_ = 0;    ///< peer stream, next in-order seq
  std::map<std::uint64_t, std::vector<std::uint8_t>> reorder_;
  std::deque<std::vector<std::uint8_t>> deliverable_;

  bool closed_ = false;

  std::uint64_t retransmits_ = 0;
  std::uint64_t retry_timeouts_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t corrupt_dropped_ = 0;
};

}  // namespace qkdpp::protocol
