#include "protocol/faulty_channel.hpp"

#include <utility>

#include "common/error.hpp"

namespace qkdpp::protocol {

namespace {

void check_probability(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw_error(ErrorCode::kConfig,
                std::string("fault probability out of [0,1]: ") + name);
  }
}

}  // namespace

void FaultProfile::validate() const {
  check_probability(drop, "drop");
  check_probability(corrupt, "corrupt");
  check_probability(duplicate, "duplicate");
  check_probability(reorder, "reorder");
  check_probability(delay, "delay");
  for (const OutageWindow& w : outages) {
    if (w.end_frame < w.begin_frame) {
      throw_error(ErrorCode::kConfig, "outage window ends before it begins");
    }
  }
}

FaultyChannel::FaultyChannel(std::unique_ptr<ClassicalChannel> inner,
                             FaultProfile profile, std::uint64_t seed)
    : inner_(std::move(inner)), profile_(std::move(profile)), rng_(seed) {
  profile_.validate();
}

bool FaultyChannel::in_outage(std::uint64_t frame_index) const noexcept {
  for (const OutageWindow& w : profile_.outages) {
    if (frame_index >= w.begin_frame && frame_index < w.end_frame) return true;
  }
  return false;
}

void FaultyChannel::flush_held(bool force) {
  while (!held_.empty() &&
         (force || held_.front().release_at <= sent_)) {
    auto frame = std::move(held_.front().frame);
    held_.pop_front();
    inner_->send(std::move(frame));
  }
}

void FaultyChannel::send(std::vector<std::uint8_t> frame) {
  const std::uint64_t index = sent_++;

  if (in_outage(index)) {
    ++faults_.outage_dropped;
    flush_held(false);
    return;
  }
  if (profile_.drop > 0.0 && rng_.bernoulli(profile_.drop)) {
    ++faults_.dropped;
    flush_held(false);
    return;
  }
  if (profile_.corrupt > 0.0 && rng_.bernoulli(profile_.corrupt) &&
      !frame.empty()) {
    const std::uint64_t bit = rng_.next_u64() % (frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++faults_.corrupted;
  }

  bool duplicated = false;
  if (profile_.duplicate > 0.0 && rng_.bernoulli(profile_.duplicate)) {
    ++faults_.duplicated;
    duplicated = true;
  }

  // Reorder/delay hold the frame back and release it after later sends pass
  // it on the wire; the hold is bounded by max_delay_frames so a quiescent
  // sender never strands a frame past close().
  const std::uint32_t span = profile_.max_delay_frames == 0
                                 ? 1
                                 : profile_.max_delay_frames;
  if (profile_.reorder > 0.0 && rng_.bernoulli(profile_.reorder)) {
    ++faults_.reordered;
    held_.push_back({std::move(frame), index + 2});
    if (duplicated) {
      held_.push_back({held_.back().frame, index + 2});
    }
    flush_held(false);
    return;
  }
  if (profile_.delay > 0.0 && rng_.bernoulli(profile_.delay)) {
    ++faults_.delayed;
    const std::uint64_t hold = 1 + rng_.next_u64() % span;
    held_.push_back({std::move(frame), index + 1 + hold});
    if (duplicated) {
      held_.push_back({held_.back().frame, index + 1 + hold});
    }
    flush_held(false);
    return;
  }

  if (duplicated) inner_->send(frame);
  inner_->send(std::move(frame));
  flush_held(false);
}

void FaultyChannel::close() {
  // Release anything still held so a delayed frame is late, not lost —
  // losing it would turn a "bounded delay" fault into a silent drop.
  try {
    flush_held(true);
  } catch (const Error&) {
    // Peer already gone: held frames become drops, which ARQ above already
    // accounted as timeouts.
  }
  inner_->close();
}

ChannelCounters FaultyChannel::counters() const {
  ChannelCounters c = inner_->counters();
  c.faults_injected += faults_.total();
  return c;
}

std::unique_ptr<FaultyChannel> make_faulty_channel(
    std::unique_ptr<ClassicalChannel> inner, FaultProfile profile,
    std::uint64_t seed) {
  return std::make_unique<FaultyChannel>(std::move(inner), std::move(profile),
                                         seed);
}

}  // namespace qkdpp::protocol
