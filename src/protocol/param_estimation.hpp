// Parameter estimation: sampled QBER with confidence bound, plus the
// vacuum+weak decoy-state bounds on single-photon yield and error rate
// (Ma-Qi-Zhao-Lo analytic formulas with one-sided finite-size corrections).
#pragma once

#include <cstddef>

namespace qkdpp::protocol {

/// Sampled QBER estimate with a one-sided Hoeffding upper bound at
/// confidence 1 - eps.
struct QberEstimate {
  std::size_t sample_size = 0;
  std::size_t mismatches = 0;
  double qber = 0.0;
  double qber_upper = 1.0;
};

QberEstimate estimate_qber(std::size_t sample_size, std::size_t mismatches,
                           double eps);

/// Per-intensity observations feeding the decoy analysis. Gains/QBERs are
/// per emitted pulse of that class; y0 is the vacuum-class gain.
struct DecoyObservations {
  double mu = 0.48;   ///< signal intensity
  double nu = 0.1;    ///< weak decoy intensity
  double q_mu = 0.0;  ///< signal gain
  double q_nu = 0.0;  ///< decoy gain
  double e_mu = 0.0;  ///< signal QBER
  double e_nu = 0.0;  ///< decoy QBER
  double y0 = 0.0;    ///< vacuum yield
};

/// Bounds on the single-photon contribution.
struct DecoyBounds {
  double y1_lower = 0.0;  ///< lower bound on single-photon yield Y1
  double e1_upper = 0.5;  ///< upper bound on single-photon error rate e1
  double q1_lower = 0.0;  ///< lower bound on single-photon gain Q1
  bool valid = false;     ///< false when observations admit no positive Y1
};

/// Asymptotic vacuum+weak bounds.
DecoyBounds decoy_bounds(const DecoyObservations& obs);

/// Finite-size variant: each observed rate is first worst-cased by a
/// one-sided Hoeffding deviation at confidence 1 - eps, using the number of
/// pulses that produced it.
DecoyBounds decoy_bounds_finite(const DecoyObservations& obs,
                                std::size_t n_signal, std::size_t n_decoy,
                                std::size_t n_vacuum, double eps);

}  // namespace qkdpp::protocol
