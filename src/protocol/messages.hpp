// Typed protocol messages exchanged over the classical channel.
//
// Every message carries the block id it refers to, so a session can detect
// out-of-order or replayed frames cheaply (full integrity/authenticity is the
// authenticated channel's job). Wire format: 1 type byte + fields in
// ByteWriter little-endian encoding.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bitvec.hpp"

namespace qkdpp::protocol {

/// Bob -> Alice: which gates clicked and in which bases they were measured.
struct DetectionReport {
  std::uint64_t block_id = 0;
  std::uint64_t n_pulses = 0;
  std::vector<std::uint32_t> detected_idx;
  BitVec bob_bases;  ///< one bit per detection
};

/// Alice -> Bob: which detections had matching bases (mask over detections)
/// and which of the kept bits are non-signal pulses (decoy/vacuum, to be
/// fully revealed during estimation rather than keyed).
struct SiftResult {
  std::uint64_t block_id = 0;
  BitVec keep_mask;    ///< over detections
  BitVec signal_mask;  ///< over kept bits: 1 = signal pulse (key material)
};

/// Alice -> Bob: reveal request for parameter estimation. `positions` index
/// into the *sifted* string; alice_bits are her values there (disclosed).
struct PeReveal {
  std::uint64_t block_id = 0;
  std::vector<std::uint32_t> positions;
  BitVec alice_bits;
};

/// Bob -> Alice: his bits at the requested positions.
struct PeReport {
  std::uint64_t block_id = 0;
  BitVec bob_bits;
};

/// Alice -> Bob: continue/abort decision with the estimate that drove it.
struct PeVerdict {
  std::uint64_t block_id = 0;
  bool proceed = false;
  double qber_estimate = 0.0;
  double qber_upper = 0.0;
};

/// Reconciliation method selector.
enum class ReconcileMethod : std::uint8_t { kCascade = 0, kLdpc = 1 };

/// Alice -> Bob: reconciliation parameters. For LDPC the syndrome rides
/// along; for Cascade the permutation seed drives both sides' shuffles.
struct ReconcileStart {
  std::uint64_t block_id = 0;
  ReconcileMethod method = ReconcileMethod::kLdpc;
  std::uint64_t perm_seed = 0;
  std::uint32_t code_id = 0;
  std::uint32_t n_punctured = 0;
  std::uint32_t n_shortened = 0;
  double qber_hint = 0.0;
  BitVec syndrome;
};

/// Bob -> Alice (Cascade): batched parity queries over half-open ranges in
/// the pass-`pass` permuted domain.
struct ParityRequest {
  std::uint64_t block_id = 0;
  std::uint32_t pass = 0;
  std::vector<std::uint32_t> range_begins;
  std::vector<std::uint32_t> range_ends;
};

/// Alice -> Bob (Cascade): one parity bit per requested range.
struct ParityResponse {
  std::uint64_t block_id = 0;
  std::uint32_t pass = 0;
  BitVec parities;
};

/// Bob -> Alice: reconciliation finished on his side.
struct ReconcileDone {
  std::uint64_t block_id = 0;
  bool success = false;
};

/// Bob -> Alice (blind LDPC): decoding failed, reveal more punctured bits.
struct BlindRequest {
  std::uint64_t block_id = 0;
  std::uint32_t round = 0;
};

/// Alice -> Bob (blind LDPC): values of previously punctured positions.
struct BlindResponse {
  std::uint64_t block_id = 0;
  std::uint32_t round = 0;
  std::vector<std::uint32_t> positions;
  BitVec values;
};

/// Alice -> Bob: seeded universal-hash challenge over her corrected key.
struct VerifyRequest {
  std::uint64_t block_id = 0;
  std::uint64_t seed = 0;
  std::uint64_t tag_hi = 0;
  std::uint64_t tag_lo = 0;
};

/// Bob -> Alice: whether his key hashes to the same tag.
struct VerifyResponse {
  std::uint64_t block_id = 0;
  bool match = false;
};

/// Alice -> Bob: privacy-amplification parameters (Toeplitz seed + length).
struct PaParams {
  std::uint64_t block_id = 0;
  std::uint64_t seed = 0;
  std::uint64_t out_len = 0;
};

/// Both directions: final-key fingerprint for bookkeeping (not secret).
struct KeyConfirm {
  std::uint64_t block_id = 0;
  std::uint64_t key_id = 0;
  std::uint32_t crc = 0;
};

/// Either side: abandon the block (reason mirrors ErrorCode).
struct Abort {
  std::uint64_t block_id = 0;
  std::uint8_t reason = 0;
  std::string detail;
};

using Message =
    std::variant<DetectionReport, SiftResult, PeReveal, PeReport, PeVerdict,
                 ReconcileStart, ParityRequest, ParityResponse, ReconcileDone,
                 BlindRequest, BlindResponse, VerifyRequest, VerifyResponse,
                 PaParams, KeyConfirm, Abort>;

/// Stable wire tag of the alternative held by `m`.
std::uint8_t message_type(const Message& m) noexcept;
/// Human-readable name, for logs and protocol errors.
const char* message_name(const Message& m) noexcept;

std::vector<std::uint8_t> encode_message(const Message& m);
/// Throws Error{kSerialization} on malformed frames.
Message decode_message(std::span<const std::uint8_t> frame);

}  // namespace qkdpp::protocol
