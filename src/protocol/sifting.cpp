#include "protocol/sifting.hpp"

#include "common/error.hpp"

namespace qkdpp::protocol {

AliceSiftOutcome sift_alice(const AliceTransmitLog& log,
                            const DetectionReport& report) {
  const std::size_t n_pulses = log.bits.size();
  if (log.bases.size() != n_pulses || log.pulse_class.size() != n_pulses) {
    throw_error(ErrorCode::kProtocol, "inconsistent transmit log");
  }
  if (report.bob_bases.size() != report.detected_idx.size()) {
    throw_error(ErrorCode::kProtocol,
                "detection report bases/indices shape mismatch");
  }

  AliceSiftOutcome out;
  out.result.block_id = report.block_id;
  out.result.keep_mask = BitVec(report.detected_idx.size());

  std::uint32_t previous = 0;
  bool first = true;
  for (std::size_t d = 0; d < report.detected_idx.size(); ++d) {
    const std::uint32_t pulse = report.detected_idx[d];
    if (pulse >= n_pulses) {
      throw_error(ErrorCode::kProtocol, "detection index out of range");
    }
    if (!first && pulse <= previous) {
      throw_error(ErrorCode::kProtocol, "detection indices not increasing");
    }
    previous = pulse;
    first = false;

    if (log.bases.get(pulse) == report.bob_bases.get(d)) {
      out.result.keep_mask.set(d, true);
      out.sifted_key.push_back(log.bits.get(pulse));
      out.result.signal_mask.push_back(log.pulse_class[pulse] == 0);
    }
  }
  return out;
}

BitVec sift_bob(const BitVec& bob_bits, const SiftResult& result) {
  if (bob_bits.size() != result.keep_mask.size()) {
    throw_error(ErrorCode::kProtocol, "keep mask does not match detections");
  }
  BitVec sifted = bob_bits.select(result.keep_mask);
  if (sifted.size() != result.signal_mask.size()) {
    throw_error(ErrorCode::kProtocol, "signal mask does not match kept bits");
  }
  return sifted;
}

}  // namespace qkdpp::protocol
