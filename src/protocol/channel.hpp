// The authenticated-classical-channel abstraction between Alice and Bob.
//
// Post-processing correctness depends on exact accounting of what crossed
// this channel (reconciliation leakage, round counts), so the interface
// carries counters as first-class citizens. The in-process implementation
// connects two endpoints through bounded queues and models network latency /
// bandwidth as *virtual time* so tests stay fast while benches can still
// report round-trip-bound protocol costs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace qkdpp::protocol {

struct ChannelCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Modeled network time spent by this endpoint's traffic (latency +
  /// serialization at the configured bandwidth), in seconds.
  double virtual_time_s = 0.0;
};

/// Latency/bandwidth model applied per message (accounting only, no sleeps).
struct ChannelModel {
  double latency_s = 0.0;          ///< one-way latency per message
  double bandwidth_bps = 0.0;      ///< 0 = infinite
};

class ClassicalChannel {
 public:
  virtual ~ClassicalChannel() = default;

  /// Enqueue one framed message to the peer.
  virtual void send(std::vector<std::uint8_t> frame) = 0;

  /// Blocking receive of the next frame; throws Error{kChannelClosed} once
  /// the peer closed and the queue drained.
  virtual std::vector<std::uint8_t> receive() = 0;

  /// Signal end-of-session to the peer (idempotent).
  virtual void close() = 0;

  virtual ChannelCounters counters() const = 0;
};

/// A connected pair of in-process endpoints sharing a ChannelModel.
std::pair<std::unique_ptr<ClassicalChannel>, std::unique_ptr<ClassicalChannel>>
make_channel_pair(ChannelModel model = {});

/// Test hook: an endpoint wrapper that corrupts traffic. `flip_byte_every`
/// of N flips one bit in every Nth sent frame (0 disables).
std::unique_ptr<ClassicalChannel> make_tampering_channel(
    std::unique_ptr<ClassicalChannel> inner, std::uint32_t flip_byte_every);

}  // namespace qkdpp::protocol
