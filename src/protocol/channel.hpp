// The authenticated-classical-channel abstraction between Alice and Bob.
//
// Post-processing correctness depends on exact accounting of what crossed
// this channel (reconciliation leakage, round counts), so the interface
// carries counters as first-class citizens. The in-process implementation
// connects two endpoints through bounded queues and models network latency /
// bandwidth as *virtual time* so tests stay fast while benches can still
// report round-trip-bound protocol costs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace qkdpp::protocol {

struct ChannelCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Modeled network time spent by this endpoint's traffic (latency +
  /// serialization at the configured bandwidth), in seconds.
  double virtual_time_s = 0.0;

  // Fault/recovery accounting. Raw endpoints leave these zero; the fault
  // injector and the ARQ decorator fold their own tallies in so one struct
  // travels from the channel through SessionResult up to LinkReport.
  std::uint64_t retransmits = 0;         ///< data frames re-sent by ARQ
  std::uint64_t retry_timeouts = 0;      ///< receive waits that expired
  std::uint64_t duplicates_dropped = 0;  ///< replayed frames discarded
  std::uint64_t corrupt_dropped = 0;     ///< CRC-failed frames discarded
  std::uint64_t faults_injected = 0;     ///< faults a FaultyChannel applied

  ChannelCounters& operator+=(const ChannelCounters& other) noexcept {
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    virtual_time_s += other.virtual_time_s;
    retransmits += other.retransmits;
    retry_timeouts += other.retry_timeouts;
    duplicates_dropped += other.duplicates_dropped;
    corrupt_dropped += other.corrupt_dropped;
    faults_injected += other.faults_injected;
    return *this;
  }
};

/// Latency/bandwidth model applied per message (accounting only, no sleeps).
struct ChannelModel {
  double latency_s = 0.0;          ///< one-way latency per message
  double bandwidth_bps = 0.0;      ///< 0 = infinite
};

class ClassicalChannel {
 public:
  virtual ~ClassicalChannel() = default;

  /// Enqueue one framed message to the peer.
  virtual void send(std::vector<std::uint8_t> frame) = 0;

  /// Blocking receive of the next frame; throws Error{kChannelClosed} once
  /// the peer closed and the queue drained.
  virtual std::vector<std::uint8_t> receive() = 0;

  /// Timed receive: like receive() but returns std::nullopt once `timeout`
  /// elapses with nothing queued. The default implementation cannot honor
  /// the deadline and falls back to the blocking receive(); transports that
  /// support ARQ retransmission (the in-process pair does) override it.
  virtual std::optional<std::vector<std::uint8_t>> receive_for(
      std::chrono::microseconds timeout) {
    (void)timeout;
    return receive();
  }

  /// Signal end-of-session to the peer (idempotent).
  virtual void close() = 0;

  virtual ChannelCounters counters() const = 0;
};

/// A connected pair of in-process endpoints sharing a ChannelModel.
std::pair<std::unique_ptr<ClassicalChannel>, std::unique_ptr<ClassicalChannel>>
make_channel_pair(ChannelModel model = {});

/// Test hook: an endpoint wrapper that corrupts traffic. `flip_byte_every`
/// of N flips one bit in every Nth sent frame (0 disables).
std::unique_ptr<ClassicalChannel> make_tampering_channel(
    std::unique_ptr<ClassicalChannel> inner, std::uint32_t flip_byte_every);

}  // namespace qkdpp::protocol
