#include "protocol/messages.hpp"

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace qkdpp::protocol {

namespace {

enum : std::uint8_t {
  kTagDetectionReport = 1,
  kTagSiftResult,
  kTagPeReveal,
  kTagPeReport,
  kTagPeVerdict,
  kTagReconcileStart,
  kTagParityRequest,
  kTagParityResponse,
  kTagReconcileDone,
  kTagBlindRequest,
  kTagBlindResponse,
  kTagVerifyRequest,
  kTagVerifyResponse,
  kTagPaParams,
  kTagKeyConfirm,
  kTagAbort,
};

struct TypeOf {
  std::uint8_t operator()(const DetectionReport&) const { return kTagDetectionReport; }
  std::uint8_t operator()(const SiftResult&) const { return kTagSiftResult; }
  std::uint8_t operator()(const PeReveal&) const { return kTagPeReveal; }
  std::uint8_t operator()(const PeReport&) const { return kTagPeReport; }
  std::uint8_t operator()(const PeVerdict&) const { return kTagPeVerdict; }
  std::uint8_t operator()(const ReconcileStart&) const { return kTagReconcileStart; }
  std::uint8_t operator()(const ParityRequest&) const { return kTagParityRequest; }
  std::uint8_t operator()(const ParityResponse&) const { return kTagParityResponse; }
  std::uint8_t operator()(const ReconcileDone&) const { return kTagReconcileDone; }
  std::uint8_t operator()(const BlindRequest&) const { return kTagBlindRequest; }
  std::uint8_t operator()(const BlindResponse&) const { return kTagBlindResponse; }
  std::uint8_t operator()(const VerifyRequest&) const { return kTagVerifyRequest; }
  std::uint8_t operator()(const VerifyResponse&) const { return kTagVerifyResponse; }
  std::uint8_t operator()(const PaParams&) const { return kTagPaParams; }
  std::uint8_t operator()(const KeyConfirm&) const { return kTagKeyConfirm; }
  std::uint8_t operator()(const Abort&) const { return kTagAbort; }
};

struct NameOf {
  const char* operator()(const DetectionReport&) const { return "DetectionReport"; }
  const char* operator()(const SiftResult&) const { return "SiftResult"; }
  const char* operator()(const PeReveal&) const { return "PeReveal"; }
  const char* operator()(const PeReport&) const { return "PeReport"; }
  const char* operator()(const PeVerdict&) const { return "PeVerdict"; }
  const char* operator()(const ReconcileStart&) const { return "ReconcileStart"; }
  const char* operator()(const ParityRequest&) const { return "ParityRequest"; }
  const char* operator()(const ParityResponse&) const { return "ParityResponse"; }
  const char* operator()(const ReconcileDone&) const { return "ReconcileDone"; }
  const char* operator()(const BlindRequest&) const { return "BlindRequest"; }
  const char* operator()(const BlindResponse&) const { return "BlindResponse"; }
  const char* operator()(const VerifyRequest&) const { return "VerifyRequest"; }
  const char* operator()(const VerifyResponse&) const { return "VerifyResponse"; }
  const char* operator()(const PaParams&) const { return "PaParams"; }
  const char* operator()(const KeyConfirm&) const { return "KeyConfirm"; }
  const char* operator()(const Abort&) const { return "Abort"; }
};

struct Encoder {
  ByteWriter& w;

  void operator()(const DetectionReport& m) {
    w.put_u64(m.block_id);
    w.put_u64(m.n_pulses);
    w.put_u32_vec(m.detected_idx);
    w.put_bitvec(m.bob_bases);
  }
  void operator()(const SiftResult& m) {
    w.put_u64(m.block_id);
    w.put_bitvec(m.keep_mask);
    w.put_bitvec(m.signal_mask);
  }
  void operator()(const PeReveal& m) {
    w.put_u64(m.block_id);
    w.put_u32_vec(m.positions);
    w.put_bitvec(m.alice_bits);
  }
  void operator()(const PeReport& m) {
    w.put_u64(m.block_id);
    w.put_bitvec(m.bob_bits);
  }
  void operator()(const PeVerdict& m) {
    w.put_u64(m.block_id);
    w.put_u8(m.proceed ? 1 : 0);
    w.put_f64(m.qber_estimate);
    w.put_f64(m.qber_upper);
  }
  void operator()(const ReconcileStart& m) {
    w.put_u64(m.block_id);
    w.put_u8(static_cast<std::uint8_t>(m.method));
    w.put_u64(m.perm_seed);
    w.put_u32(m.code_id);
    w.put_u32(m.n_punctured);
    w.put_u32(m.n_shortened);
    w.put_f64(m.qber_hint);
    w.put_bitvec(m.syndrome);
  }
  void operator()(const ParityRequest& m) {
    w.put_u64(m.block_id);
    w.put_u32(m.pass);
    w.put_u32_vec(m.range_begins);
    w.put_u32_vec(m.range_ends);
  }
  void operator()(const ParityResponse& m) {
    w.put_u64(m.block_id);
    w.put_u32(m.pass);
    w.put_bitvec(m.parities);
  }
  void operator()(const ReconcileDone& m) {
    w.put_u64(m.block_id);
    w.put_u8(m.success ? 1 : 0);
  }
  void operator()(const BlindRequest& m) {
    w.put_u64(m.block_id);
    w.put_u32(m.round);
  }
  void operator()(const BlindResponse& m) {
    w.put_u64(m.block_id);
    w.put_u32(m.round);
    w.put_u32_vec(m.positions);
    w.put_bitvec(m.values);
  }
  void operator()(const VerifyRequest& m) {
    w.put_u64(m.block_id);
    w.put_u64(m.seed);
    w.put_u64(m.tag_hi);
    w.put_u64(m.tag_lo);
  }
  void operator()(const VerifyResponse& m) {
    w.put_u64(m.block_id);
    w.put_u8(m.match ? 1 : 0);
  }
  void operator()(const PaParams& m) {
    w.put_u64(m.block_id);
    w.put_u64(m.seed);
    w.put_u64(m.out_len);
  }
  void operator()(const KeyConfirm& m) {
    w.put_u64(m.block_id);
    w.put_u64(m.key_id);
    w.put_u32(m.crc);
  }
  void operator()(const Abort& m) {
    w.put_u64(m.block_id);
    w.put_u8(m.reason);
    w.put_string(m.detail);
  }
};

}  // namespace

std::uint8_t message_type(const Message& m) noexcept {
  return std::visit(TypeOf{}, m);
}

const char* message_name(const Message& m) noexcept {
  return std::visit(NameOf{}, m);
}

std::vector<std::uint8_t> encode_message(const Message& m) {
  ByteWriter w;
  w.put_u8(message_type(m));
  std::visit(Encoder{w}, m);
  return w.take();
}

Message decode_message(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  const std::uint8_t tag = r.get_u8();
  Message m;
  switch (tag) {
    case kTagDetectionReport: {
      DetectionReport v;
      v.block_id = r.get_u64();
      v.n_pulses = r.get_u64();
      v.detected_idx = r.get_u32_vec();
      v.bob_bases = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagSiftResult: {
      SiftResult v;
      v.block_id = r.get_u64();
      v.keep_mask = r.get_bitvec();
      v.signal_mask = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagPeReveal: {
      PeReveal v;
      v.block_id = r.get_u64();
      v.positions = r.get_u32_vec();
      v.alice_bits = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagPeReport: {
      PeReport v;
      v.block_id = r.get_u64();
      v.bob_bits = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagPeVerdict: {
      PeVerdict v;
      v.block_id = r.get_u64();
      v.proceed = r.get_u8() != 0;
      v.qber_estimate = r.get_f64();
      v.qber_upper = r.get_f64();
      m = v;
      break;
    }
    case kTagReconcileStart: {
      ReconcileStart v;
      v.block_id = r.get_u64();
      v.method = static_cast<ReconcileMethod>(r.get_u8());
      v.perm_seed = r.get_u64();
      v.code_id = r.get_u32();
      v.n_punctured = r.get_u32();
      v.n_shortened = r.get_u32();
      v.qber_hint = r.get_f64();
      v.syndrome = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagParityRequest: {
      ParityRequest v;
      v.block_id = r.get_u64();
      v.pass = r.get_u32();
      v.range_begins = r.get_u32_vec();
      v.range_ends = r.get_u32_vec();
      m = std::move(v);
      break;
    }
    case kTagParityResponse: {
      ParityResponse v;
      v.block_id = r.get_u64();
      v.pass = r.get_u32();
      v.parities = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagReconcileDone: {
      ReconcileDone v;
      v.block_id = r.get_u64();
      v.success = r.get_u8() != 0;
      m = v;
      break;
    }
    case kTagBlindRequest: {
      BlindRequest v;
      v.block_id = r.get_u64();
      v.round = r.get_u32();
      m = v;
      break;
    }
    case kTagBlindResponse: {
      BlindResponse v;
      v.block_id = r.get_u64();
      v.round = r.get_u32();
      v.positions = r.get_u32_vec();
      v.values = r.get_bitvec();
      m = std::move(v);
      break;
    }
    case kTagVerifyRequest: {
      VerifyRequest v;
      v.block_id = r.get_u64();
      v.seed = r.get_u64();
      v.tag_hi = r.get_u64();
      v.tag_lo = r.get_u64();
      m = v;
      break;
    }
    case kTagVerifyResponse: {
      VerifyResponse v;
      v.block_id = r.get_u64();
      v.match = r.get_u8() != 0;
      m = v;
      break;
    }
    case kTagPaParams: {
      PaParams v;
      v.block_id = r.get_u64();
      v.seed = r.get_u64();
      v.out_len = r.get_u64();
      m = v;
      break;
    }
    case kTagKeyConfirm: {
      KeyConfirm v;
      v.block_id = r.get_u64();
      v.key_id = r.get_u64();
      v.crc = r.get_u32();
      m = v;
      break;
    }
    case kTagAbort: {
      Abort v;
      v.block_id = r.get_u64();
      v.reason = r.get_u8();
      v.detail = r.get_string();
      m = std::move(v);
      break;
    }
    default:
      throw_error(ErrorCode::kSerialization,
                  "unknown message tag " + std::to_string(tag));
  }
  r.expect_exhausted();
  return m;
}

}  // namespace qkdpp::protocol
