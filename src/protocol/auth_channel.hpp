// Authenticated channel: every frame carries a Wegman-Carter tag.
//
// Each direction consumes its own key stream (sender's sign pool must mirror
// the receiver's verify pool bit-for-bit); tampering or desynchronization
// surfaces as Error{kAuthentication} on receive. This wrapper is what makes
// the classical channel "authenticated" in the QKD-security sense - without
// it, an adversary owning the classical network trivially man-in-the-middles
// the whole protocol.
#pragma once

#include <memory>

#include "auth/key_pool.hpp"
#include "auth/wegman_carter.hpp"
#include "protocol/channel.hpp"

namespace qkdpp::protocol {

class AuthenticatedChannel final : public ClassicalChannel {
 public:
  /// `send_pool` / `recv_pool` live with the session; both peers must hold
  /// mirrored copies (send pool of one = recv pool of the other).
  AuthenticatedChannel(std::unique_ptr<ClassicalChannel> inner,
                       auth::KeyPool& send_pool, auth::KeyPool& recv_pool)
      : inner_(std::move(inner)), signer_(send_pool), verifier_(recv_pool) {}

  void send(std::vector<std::uint8_t> frame) override;

  /// Throws Error{kAuthentication} on tag mismatch and Error{kSerialization}
  /// on frames too short to carry a tag.
  std::vector<std::uint8_t> receive() override;

  void close() override { inner_->close(); }
  ChannelCounters counters() const override { return inner_->counters(); }

 private:
  std::unique_ptr<ClassicalChannel> inner_;
  auth::WegmanCarter signer_;
  auth::WegmanCarter verifier_;
};

}  // namespace qkdpp::protocol
