// Cascade error reconciliation (Brassard-Salvail), Bob side.
//
// Full protocol: multiple passes with doubling block sizes over seeded
// shuffles, BINARY bisection of odd-parity blocks, and the eponymous
// cascading re-searches of earlier passes whenever a correction flips their
// block parities. Bisections of all odd blocks of a pass run
// level-synchronously so a batch of parity queries costs one round-trip -
// the batching that makes Cascade deployable over real links and that the
// round-count benches measure.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "reconcile/parity_oracle.hpp"

namespace qkdpp::reconcile {

struct CascadeConfig {
  std::uint32_t passes = 4;
  /// Drives the first-pass block size k1 = ceil(0.73 / qber) (clamped).
  double qber_hint = 0.02;
  /// Both sides derive pass permutations from this seed.
  std::uint64_t seed = 0;
  /// Upper clamp for k1 (protects against a ~zero QBER hint).
  std::uint32_t initial_block_cap = 1u << 14;
  /// Safety valve: a desynchronized peer (wrong permutation seed) makes the
  /// cascade chase phantom errors forever; stop after this many oracle
  /// round-trips and let verification fail the block.
  std::uint64_t max_rounds = 100000;
};

struct CascadeResult {
  std::size_t corrected_bits = 0;  ///< number of bit flips applied
  std::uint64_t leaked_bits = 0;   ///< parity bits received from Alice
  std::uint64_t rounds = 0;        ///< oracle batches (protocol round-trips)
  /// False when the round budget ran out with odd-parity blocks still
  /// unresolved: the keys provably still differ, and the caller must route
  /// the block into its verification-failure path instead of treating the
  /// output as reconciled.
  bool converged = true;

  /// Reconciliation efficiency f = leak / (n h2(q)); 1.0 is the Shannon
  /// limit, production Cascade sits around 1.05-1.2.
  double efficiency(std::size_t n, double qber) const;
};

/// First-pass block size rule of thumb (Brassard-Salvail).
std::uint32_t cascade_block_size(double qber, std::uint32_t cap);

/// Run Cascade, correcting `bob_key` in place toward Alice's key behind the
/// oracle. The oracle's pass count must be >= config.passes.
CascadeResult cascade_reconcile(BitVec& bob_key, ParityOracle& oracle,
                                const CascadeConfig& config);

}  // namespace qkdpp::reconcile
