// Rate adaptation for syndrome-based LDPC reconciliation.
//
// A fixed mother code is tuned to the observed QBER by shortening (positions
// pinned to 0, known to both sides) and puncturing (positions filled with
// the sender's private randomness, unknown to receiver and eavesdropper).
// Blind reconciliation reveals punctured values incrementally when decoding
// fails, converging on the channel's real rate without a precise prior
// estimate (Martinez-Mateo et al.).
//
// Leakage accounting (upper bound, used by the privacy-amplification
// planner): syndrome discloses m bits, of which d are "absorbed" by the
// punctured randomness => leak = m - d + (punctured values revealed later).
#pragma once

#include <cstdint>
#include <vector>

#include "reconcile/ldpc_code.hpp"

namespace qkdpp::reconcile {

/// Deterministic position classes for a frame, derived from a shared seed.
struct RateAdaptation {
  std::vector<std::uint32_t> punctured;  ///< d positions, LLR 0 at receiver
  std::vector<std::uint32_t> shortened;  ///< s positions, pinned to 0
  std::vector<std::uint32_t> payload;    ///< n - d - s key positions, ascending
};

/// Derive the (punctured, shortened, payload) partition of [0, n).
/// Both peers must call with identical arguments.
RateAdaptation derive_adaptation(std::size_t n, std::uint32_t n_punctured,
                                 std::uint32_t n_shortened,
                                 std::uint64_t seed);

/// A planned reconciliation frame.
struct FramePlan {
  std::uint32_t code_id = 0;
  std::uint32_t n_punctured = 0;
  std::uint32_t n_shortened = 0;
  std::size_t payload_bits = 0;
  /// Predicted efficiency f = (m - d) / (payload * h2(q)).
  double predicted_efficiency = 0.0;
};

/// Choose code + (d, s) for a frame of at least `min_frame` bits at
/// crossover `qber`, aiming at reconciliation efficiency `f_target`.
/// `adapt_fraction` is the d+s budget as a fraction of n (0.1 is typical).
FramePlan plan_frame(std::size_t min_frame, double qber, double f_target,
                     double adapt_fraction = 0.10);

/// Like plan_frame, but constrained to frames whose payload FITS inside a
/// key of `key_bits` (so at least one full frame can be cut from it), and
/// preferring the largest such payload. Throws Error{kConfig} when even the
/// smallest code's payload exceeds the key.
FramePlan plan_frame_fitting(std::size_t key_bits, double qber,
                             double f_target, double adapt_fraction = 0.10);

/// Like plan_frame_fitting, but shaped for the lockstep batch decoder:
/// prefer the largest code whose payload cuts the key into at least
/// `target_frames` frames, so the decoder gets enough lanes to fill its
/// vectors. Candidates stay at n >= 4096 - below that the finite-length
/// rate penalty costs more secret key than the extra lanes buy - and when
/// no such code reaches target_frames the one yielding the most frames
/// wins. Keys shorter than every >= 4096-payload fall back to
/// plan_frame_fitting (which may pick a 1024-bit frame or throw).
FramePlan plan_frame_batched(std::size_t key_bits, double qber,
                             double f_target, double adapt_fraction = 0.10,
                             std::size_t target_frames = 8);

}  // namespace qkdpp::reconcile
