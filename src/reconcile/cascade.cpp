#include "reconcile/cascade.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/entropy.hpp"
#include "common/error.hpp"

namespace qkdpp::reconcile {

double CascadeResult::efficiency(std::size_t n, double qber) const {
  const double ideal = static_cast<double>(n) * binary_entropy(qber);
  return ideal > 0 ? static_cast<double>(leaked_bits) / ideal : 0.0;
}

std::uint32_t cascade_block_size(double qber, std::uint32_t cap) {
  if (qber <= 0) return cap;
  const double k = std::ceil(0.73 / qber);
  return static_cast<std::uint32_t>(
      std::clamp(k, 2.0, static_cast<double>(cap)));
}

namespace {

/// Bob-side working state for one Cascade run.
class CascadeEngine {
 public:
  CascadeEngine(BitVec& key, ParityOracle& oracle,
                const CascadeConfig& config)
      : key_(key), oracle_(oracle), config_(config), n_(key.size()) {
    QKDPP_REQUIRE(n_ > 0, "cascade on empty key");
    const std::uint32_t cap = std::min<std::uint32_t>(
        config.initial_block_cap, static_cast<std::uint32_t>(n_));
    // Cap later passes at n/2: a single whole-key block can never split a
    // residual error pair, so every pass must keep at least two blocks.
    const auto half = static_cast<std::uint32_t>(std::max<std::size_t>(n_ / 2, 1));
    block_size_.resize(config.passes);
    block_size_[0] =
        std::min(cascade_block_size(config.qber_hint, cap), std::max(half, 2u));
    for (std::uint32_t p = 1; p < config.passes; ++p) {
      block_size_[p] = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          std::uint64_t{block_size_[p - 1]} * 2, half));
    }
    perm_.resize(config.passes);
    inv_.resize(config.passes);
    odd_.resize(config.passes);
  }

  CascadeResult run() {
    for (std::uint32_t pass = 0; pass < config_.passes; ++pass) {
      begin_pass(pass);
      resolve_all(pass);
      // Round budget exhausted: later passes could only burn more budget on
      // a key that already failed, so stop leaking parities now.
      if (!result_.converged) break;
    }
    result_.corrected_bits = corrected_;
    return result_;
  }

 private:
  std::uint32_t blocks_in_pass(std::uint32_t pass) const {
    return static_cast<std::uint32_t>(
        (n_ + block_size_[pass] - 1) / block_size_[pass]);
  }

  ParityRange block_range(std::uint32_t pass, std::uint32_t block) const {
    const std::uint64_t begin = std::uint64_t{block} * block_size_[pass];
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + block_size_[pass], n_);
    return {static_cast<std::uint32_t>(begin), static_cast<std::uint32_t>(end)};
  }

  /// Bob's parity over a permuted-domain range, straight off the live key.
  bool local_parity(std::uint32_t pass, ParityRange range) const {
    bool acc = false;
    const auto& perm = perm_[pass];
    for (std::uint32_t j = range.begin; j < range.end; ++j) {
      acc ^= key_.get(perm[j]);
    }
    return acc;
  }

  BitVec query(std::uint32_t pass, std::span<const ParityRange> ranges) {
    ++result_.rounds;
    result_.leaked_bits += ranges.size();
    return oracle_.parities(pass, ranges);
  }

  void begin_pass(std::uint32_t pass) {
    perm_[pass] = cascade_permutation(n_, config_.seed, pass);
    inv_[pass].resize(n_);
    for (std::uint32_t j = 0; j < n_; ++j) inv_[pass][perm_[pass][j]] = j;

    const std::uint32_t blocks = blocks_in_pass(pass);
    std::vector<ParityRange> ranges;
    ranges.reserve(blocks);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      ranges.push_back(block_range(pass, b));
    }
    const BitVec alice = query(pass, ranges);
    odd_[pass].assign(blocks, 0);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      odd_[pass][b] =
          alice.get(b) != local_parity(pass, ranges[b]) ? 1 : 0;
    }
  }

  /// A correction at original index flips the parity-diff flag of its block
  /// in every initialized pass.
  void apply_correction(std::uint32_t original, std::uint32_t up_to_pass) {
    key_.flip(original);
    ++corrected_;
    for (std::uint32_t p = 0; p <= up_to_pass; ++p) {
      const std::uint32_t b = inv_[p][original] / block_size_[p];
      odd_[p][b] ^= 1;
    }
  }

  /// Drain odd blocks across all initialized passes. Each iteration batches
  /// every odd block of one pass and bisects them level-synchronously.
  void resolve_all(std::uint32_t up_to_pass) {
    for (;;) {
      std::uint32_t pass = up_to_pass + 1;
      std::size_t most = 0;
      for (std::uint32_t p = 0; p <= up_to_pass; ++p) {
        const auto count = static_cast<std::size_t>(
            std::count(odd_[p].begin(), odd_[p].end(), 1));
        if (count > most) {
          most = count;
          pass = p;
        }
      }
      if (most == 0) return;
      if (result_.rounds >= config_.max_rounds) {
        // Desync safety valve tripped with odd blocks still outstanding:
        // the keys still differ and the caller must be able to tell.
        result_.converged = false;
        return;
      }
      bisect_batch(pass, up_to_pass);
    }
  }

  /// Level-synchronous BINARY over all odd blocks of `pass`: one oracle
  /// batch per bisection level, one correction per block at the end.
  void bisect_batch(std::uint32_t pass, std::uint32_t up_to_pass) {
    std::vector<ParityRange> active;
    for (std::uint32_t b = 0; b < blocks_in_pass(pass); ++b) {
      if (odd_[pass][b]) active.push_back(block_range(pass, b));
    }

    while (!active.empty()) {
      // Finished searches (single position) get corrected and retired.
      std::vector<ParityRange> still_active;
      for (const auto range : active) {
        if (range.end - range.begin == 1) {
          apply_correction(perm_[pass][range.begin], up_to_pass);
        } else {
          still_active.push_back(range);
        }
      }
      active.swap(still_active);
      if (active.empty()) break;

      // Query left halves in one batch; descend into the half that still
      // disagrees.
      std::vector<ParityRange> lefts;
      lefts.reserve(active.size());
      for (const auto range : active) {
        const std::uint32_t mid = range.begin + (range.end - range.begin) / 2;
        lefts.push_back({range.begin, mid});
      }
      const BitVec alice = query(pass, lefts);
      for (std::size_t i = 0; i < active.size(); ++i) {
        const bool mismatch_left =
            alice.get(i) != local_parity(pass, lefts[i]);
        if (mismatch_left) {
          active[i].end = lefts[i].end;
        } else {
          active[i].begin = lefts[i].end;
        }
      }
    }
  }

  BitVec& key_;
  ParityOracle& oracle_;
  const CascadeConfig& config_;
  std::size_t n_;
  std::vector<std::uint32_t> block_size_;
  std::vector<std::vector<std::uint32_t>> perm_;
  std::vector<std::vector<std::uint32_t>> inv_;
  std::vector<std::vector<std::uint8_t>> odd_;
  CascadeResult result_;
  std::size_t corrected_ = 0;
};

}  // namespace

CascadeResult cascade_reconcile(BitVec& bob_key, ParityOracle& oracle,
                                const CascadeConfig& config) {
  QKDPP_REQUIRE(config.passes >= 1, "cascade needs at least one pass");
  CascadeEngine engine(bob_key, oracle, config);
  return engine.run();
}

}  // namespace qkdpp::reconcile
