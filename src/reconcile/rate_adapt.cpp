#include "reconcile/rate_adapt.hpp"

#include <algorithm>
#include <cmath>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {

RateAdaptation derive_adaptation(std::size_t n, std::uint32_t n_punctured,
                                 std::uint32_t n_shortened,
                                 std::uint64_t seed) {
  QKDPP_REQUIRE(std::size_t{n_punctured} + n_shortened <= n,
                "adaptation exceeds frame");
  Xoshiro256 rng(seed ^ 0xada97ca7104eULL);
  const auto perm = rng.permutation(n);

  RateAdaptation adaptation;
  adaptation.punctured.assign(perm.begin(), perm.begin() + n_punctured);
  adaptation.shortened.assign(perm.begin() + n_punctured,
                              perm.begin() + n_punctured + n_shortened);
  std::sort(adaptation.punctured.begin(), adaptation.punctured.end());
  std::sort(adaptation.shortened.begin(), adaptation.shortened.end());

  std::vector<std::uint8_t> special(n, 0);
  for (const auto p : adaptation.punctured) special[p] = 1;
  for (const auto s : adaptation.shortened) special[s] = 1;
  adaptation.payload.reserve(n - n_punctured - n_shortened);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!special[v]) adaptation.payload.push_back(v);
  }
  return adaptation;
}

namespace {

FramePlan plan_with_code(std::uint32_t code_id, double qber, double f_target,
                         double adapt_fraction);

}  // namespace

FramePlan plan_frame(std::size_t min_frame, double qber, double f_target,
                     double adapt_fraction) {
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(f_target >= 1.0, "efficiency target below Shannon limit");
  QKDPP_REQUIRE(adapt_fraction >= 0 && adapt_fraction < 0.5,
                "adaptation fraction outside [0, 0.5)");
  return plan_with_code(pick_code(min_frame, qber, f_target), qber, f_target,
                        adapt_fraction);
}

FramePlan plan_frame_fitting(std::size_t key_bits, double qber,
                             double f_target, double adapt_fraction) {
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(f_target >= 1.0, "efficiency target below Shannon limit");
  QKDPP_REQUIRE(adapt_fraction >= 0 && adapt_fraction < 0.5,
                "adaptation fraction outside [0, 0.5)");
  const CodeSpec* best = nullptr;
  const CodeSpec* fallback = nullptr;  // rate too high but payload fits
  for (const auto& spec : code_table()) {
    const auto budget = static_cast<std::size_t>(adapt_fraction * spec.n);
    const std::size_t payload = spec.n - budget;
    if (payload > key_bits) continue;
    const double max_rate =
        1.0 - f_target * finite_length_penalty(spec.n) * binary_entropy(qber);
    // Among codes that respect the efficiency target, prefer the largest
    // frame (ties: higher rate leaks less).
    if (spec.rate <= max_rate &&
        (best == nullptr || spec.n > best->n ||
         (spec.n == best->n && spec.rate > best->rate))) {
      best = &spec;
    }
    if (fallback == nullptr || spec.n > fallback->n ||
        (spec.n == fallback->n && spec.rate < fallback->rate)) {
      fallback = &spec;
    }
  }
  if (best == nullptr) best = fallback;
  if (best == nullptr) {
    throw_error(ErrorCode::kConfig,
                "key of " + std::to_string(key_bits) +
                    " bits is shorter than every frame payload");
  }
  return plan_with_code(best->id, qber, f_target, adapt_fraction);
}

namespace {

FramePlan plan_with_code(std::uint32_t code_id, double qber, double f_target,
                         double adapt_fraction) {
  const LdpcCode& code = code_by_id(code_id);
  const std::size_t n = code.n();
  const std::size_t m = code.m();
  const auto budget = static_cast<std::uint32_t>(adapt_fraction * n);

  // Solve (m - d) = f_target * h2(q) * (n - budget) for d, then clamp into
  // the budget; the remainder shortens.
  const double h = binary_entropy(qber);
  const double ideal_d =
      static_cast<double>(m) -
      f_target * h * static_cast<double>(n - budget);
  const auto d = static_cast<std::uint32_t>(
      std::clamp(ideal_d, 0.0, static_cast<double>(budget)));
  const std::uint32_t s = budget - d;

  FramePlan plan;
  plan.code_id = code_id;
  plan.n_punctured = d;
  plan.n_shortened = s;
  plan.payload_bits = n - d - s;
  plan.predicted_efficiency =
      static_cast<double>(m - d) /
      (static_cast<double>(plan.payload_bits) * h);
  return plan;
}

}  // namespace

}  // namespace qkdpp::reconcile
