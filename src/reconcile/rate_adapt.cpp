#include "reconcile/rate_adapt.hpp"

#include <algorithm>
#include <cmath>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {

RateAdaptation derive_adaptation(std::size_t n, std::uint32_t n_punctured,
                                 std::uint32_t n_shortened,
                                 std::uint64_t seed) {
  QKDPP_REQUIRE(std::size_t{n_punctured} + n_shortened <= n,
                "adaptation exceeds frame");
  Xoshiro256 rng(seed ^ 0xada97ca7104eULL);
  const auto perm = rng.permutation(n);

  RateAdaptation adaptation;
  adaptation.punctured.assign(perm.begin(), perm.begin() + n_punctured);
  adaptation.shortened.assign(perm.begin() + n_punctured,
                              perm.begin() + n_punctured + n_shortened);
  std::sort(adaptation.punctured.begin(), adaptation.punctured.end());
  std::sort(adaptation.shortened.begin(), adaptation.shortened.end());

  std::vector<std::uint8_t> special(n, 0);
  for (const auto p : adaptation.punctured) special[p] = 1;
  for (const auto s : adaptation.shortened) special[s] = 1;
  adaptation.payload.reserve(n - n_punctured - n_shortened);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!special[v]) adaptation.payload.push_back(v);
  }
  return adaptation;
}

namespace {

FramePlan plan_with_code(std::uint32_t code_id, double qber, double f_target,
                         double adapt_fraction);

}  // namespace

FramePlan plan_frame(std::size_t min_frame, double qber, double f_target,
                     double adapt_fraction) {
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(f_target >= 1.0, "efficiency target below Shannon limit");
  QKDPP_REQUIRE(adapt_fraction >= 0 && adapt_fraction < 0.5,
                "adaptation fraction outside [0, 0.5)");
  return plan_with_code(pick_code(min_frame, qber, f_target), qber, f_target,
                        adapt_fraction);
}

FramePlan plan_frame_fitting(std::size_t key_bits, double qber,
                             double f_target, double adapt_fraction) {
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(f_target >= 1.0, "efficiency target below Shannon limit");
  QKDPP_REQUIRE(adapt_fraction >= 0 && adapt_fraction < 0.5,
                "adaptation fraction outside [0, 0.5)");
  const CodeSpec* best = nullptr;
  const CodeSpec* fallback = nullptr;  // rate too high but payload fits
  for (const auto& spec : code_table()) {
    const auto budget = static_cast<std::size_t>(adapt_fraction * spec.n);
    const std::size_t payload = spec.n - budget;
    if (payload > key_bits) continue;
    const double max_rate =
        1.0 - f_target * finite_length_penalty(spec.n) * binary_entropy(qber);
    // Among codes that respect the efficiency target, prefer the largest
    // frame (ties: higher rate leaks less).
    if (spec.rate <= max_rate &&
        (best == nullptr || spec.n > best->n ||
         (spec.n == best->n && spec.rate > best->rate))) {
      best = &spec;
    }
    if (fallback == nullptr || spec.n > fallback->n ||
        (spec.n == fallback->n && spec.rate < fallback->rate)) {
      fallback = &spec;
    }
  }
  if (best == nullptr) best = fallback;
  if (best == nullptr) {
    throw_error(ErrorCode::kConfig,
                "key of " + std::to_string(key_bits) +
                    " bits is shorter than every frame payload");
  }
  return plan_with_code(best->id, qber, f_target, adapt_fraction);
}

FramePlan plan_frame_batched(std::size_t key_bits, double qber,
                             double f_target, double adapt_fraction,
                             std::size_t target_frames) {
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(f_target >= 1.0, "efficiency target below Shannon limit");
  QKDPP_REQUIRE(adapt_fraction >= 0 && adapt_fraction < 0.5,
                "adaptation fraction outside [0, 0.5)");
  QKDPP_REQUIRE(target_frames >= 1, "need at least one frame");
  constexpr std::size_t kMinBatchFrameBits = 4096;
  // Mothers above rate 0.8 sit too close to their finite-length threshold:
  // measured on the n = 4096 family, the rate-0.85 code stalls for hundreds
  // of min-sum iterations (and sometimes fails outright) at operating
  // points where rate <= 0.8 codes converge in tens.
  constexpr double kMaxBatchRate = 0.81;
  const CodeSpec* best = nullptr;
  std::size_t best_frames = 0;
  bool best_strict = false;
  double best_rate_pref = 0.0;
  for (const auto& spec : code_table()) {
    if (spec.n < kMinBatchFrameBits || spec.rate > kMaxBatchRate) continue;
    const auto budget = static_cast<std::size_t>(adapt_fraction * spec.n);
    const std::size_t payload = spec.n - budget;
    if (payload > key_bits) continue;
    const double m = static_cast<double>(spec.n) * (1.0 - spec.rate);
    const double required_leak = f_target * finite_length_penalty(spec.n) *
                                 binary_entropy(qber) *
                                 static_cast<double>(payload);
    // ideal_d = m - required < 0 means even the unpunctured syndrome
    // discloses less than the plan calls for - the decode would start
    // below its reliability target with no punctured reserve to reveal.
    if (m < required_leak) continue;
    // ideal_d <= budget plans the exact target leak ("strict"); beyond the
    // budget d clamps and the frame over-discloses m - budget bits. The
    // clamped floor only engages at very low QBER, where the absolute
    // overshoot is small.
    const bool strict = m - required_leak <= static_cast<double>(budget);
    // Convergence speed is non-monotonic in mother rate at a fixed planned
    // leak: high-rate mothers run near threshold, low-rate ones need the
    // puncture budget maxed out (a third of the frame erased). The 0.75
    // mother measures fastest across the operating range, so prefer the
    // rate closest to it; among clamped codes higher rate over-leaks less.
    const double rate_pref = strict ? -std::abs(spec.rate - 0.75) : spec.rate;
    const std::size_t frames = key_bits / payload;
    // Lane count saturates at target_frames; past that, prefer the larger
    // frame (fewer, bigger codes leak less). Short of it, more lanes win.
    const std::size_t best_lanes = std::min(best_frames, target_frames);
    const std::size_t lanes = std::min(frames, target_frames);
    bool better = false;
    if (best == nullptr || lanes != best_lanes) {
      better = best == nullptr || lanes > best_lanes;
    } else if (strict != best_strict) {
      better = strict;
    } else if (spec.n != best->n) {
      better = spec.n > best->n;
    } else {
      better = rate_pref > best_rate_pref;
    }
    if (better) {
      best = &spec;
      best_frames = frames;
      best_strict = strict;
      best_rate_pref = rate_pref;
    }
  }
  if (best == nullptr) {
    return plan_frame_fitting(key_bits, qber, f_target, adapt_fraction);
  }
  // Plan the disclosure at the penalty-adjusted efficiency. Short frames
  // cannot operate at the nominal f_target: planning there just makes the
  // first decode fail and the blind loop burn iterations re-discovering
  // the finite-length gap one reveal chunk at a time (the leak ends up at
  // the penalized point either way - paying it up front converges in one
  // decode instead of several).
  return plan_with_code(best->id, qber,
                        f_target * finite_length_penalty(best->n),
                        adapt_fraction);
}

namespace {

FramePlan plan_with_code(std::uint32_t code_id, double qber, double f_target,
                         double adapt_fraction) {
  const LdpcCode& code = code_by_id(code_id);
  const std::size_t n = code.n();
  const std::size_t m = code.m();
  const auto budget = static_cast<std::uint32_t>(adapt_fraction * n);

  // Solve (m - d) = f_target * h2(q) * (n - budget) for d, then clamp into
  // the budget; the remainder shortens.
  const double h = binary_entropy(qber);
  const double ideal_d =
      static_cast<double>(m) -
      f_target * h * static_cast<double>(n - budget);
  const auto d = static_cast<std::uint32_t>(
      std::clamp(ideal_d, 0.0, static_cast<double>(budget)));
  const std::uint32_t s = budget - d;

  FramePlan plan;
  plan.code_id = code_id;
  plan.n_punctured = d;
  plan.n_shortened = s;
  plan.payload_bits = n - d - s;
  plan.predicted_efficiency =
      static_cast<double>(m - d) /
      (static_cast<double>(plan.payload_bits) * h);
  return plan;
}

}  // namespace

}  // namespace qkdpp::reconcile
