// Batched int8-quantized LDPC syndrome decoding.
//
// The throughput decoder behind the reconcile stage: layered normalized
// min-sum over 8-bit fixed-point LLRs, decoding up to 64 frames of the
// same mother code in lockstep. State is lane-major - posterior[v] and
// message r[e] are short arrays with one element per frame - so one pass
// over the (shared, 16-bit-compressed) adjacency updates every frame at
// once and the inner loops auto-vectorize across lanes, the same trick
// the clmul Toeplitz kernel plays across words.
//
// Fixed-point format: LLRs carry 3 fractional bits (scale 8) and saturate
// at +-127, so the "known" magnitude kKnownLlr (64.0) pins to the rail.
// Messages are int8; posteriors live in int16 and cannot overflow: a
// posterior is a clamped +-127 prior plus one +-127 message per layer
// step, bounded well inside int16. The normalization alpha is 26/32 =
// 0.8125, one multiply and shift per message.
//
// Every lane's arithmetic is independent of every other lane's, so a
// frame decodes bit-identically whether it rides alone or shares a batch
// - the decode-equivalence property the reconcile_batch tests pin down,
// and what lets the blind reconciliation layer account leakage the same
// way on both paths. Convergence is checked per frame each iteration:
// hard decisions are lane-packed into one word per variable, syndromes
// XOR-fold per check, and lanes leave the `unresolved` mask (and stop
// costing anything but a skipped store) as soon as their syndrome
// matches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "reconcile/ldpc_code.hpp"
#include "reconcile/ldpc_decoder.hpp"

namespace qkdpp::reconcile {

/// Fixed-point LLR scale: 3 fractional bits, saturating at +-127.
constexpr int kLlrQuantScale = 8;

/// Quantize one float LLR to the decoder's int8 format (round to nearest,
/// ties away from zero, saturate at +-127).
std::int8_t quantize_llr(float llr) noexcept;

/// Lanes per batch: one frame per bit of a lane word.
constexpr std::size_t kMaxBatchFrames = 64;

/// One frame of a lockstep batch. All jobs in a batch share the code;
/// each brings its own syndrome and float LLRs (quantized internally).
struct QuantDecodeJob {
  const BitVec* syndrome = nullptr;       ///< length code.m()
  const std::vector<float>* llr = nullptr;  ///< length code.n()
};

/// Decode up to kMaxBatchFrames frames in lockstep. `results` is resized
/// to jobs.size(); result f reports frame f's convergence, the iteration
/// it converged on (or the cap), and its hard decision (snapshotted the
/// iteration its syndrome matched; the final hard decision when it never
/// did). Scratch comes from config.arena when set, thread-local buffers
/// otherwise. Requires code.n() <= 65536 (the shared adjacency is
/// compressed to 16-bit indices) and check degrees <= 64.
void decode_syndrome_batch(const LdpcCode& code,
                           std::span<const QuantDecodeJob> jobs,
                           const DecoderConfig& config,
                           std::vector<DecodeResult>& results);

/// Single-frame facade over the same quantized kernel (a one-job batch;
/// bit-identical to the frame's result inside any batch).
DecodeResult decode_syndrome_quant(const LdpcCode& code, const BitVec& syndrome,
                                   const std::vector<float>& llr,
                                   const DecoderConfig& config);

}  // namespace qkdpp::reconcile
