// Belief-propagation decoding to a target syndrome.
//
// QKD reconciliation decodes Alice's word x_A given Bob's noisy copy: the
// decoder receives per-position LLRs (sign = Bob's bit, magnitude =
// channel confidence; 0 for punctured, +/-inf-like for shortened/revealed)
// and Alice's syndrome s_A, and searches for x with H x = s_A. Four decoder
// variants cover the ablation grid: {normalized min-sum, sum-product} x
// {flooding, layered}. Flooding exposes the data parallelism accelerators
// exploit; layered converges in roughly half the iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/threadpool.hpp"
#include "reconcile/ldpc_code.hpp"

namespace qkdpp {
class BlockArena;
}

namespace qkdpp::reconcile {

enum class BpAlgorithm : std::uint8_t { kMinSum = 0, kSumProduct = 1 };
enum class BpSchedule : std::uint8_t { kFlooding = 0, kLayered = 1 };

struct DecoderConfig {
  BpAlgorithm algorithm = BpAlgorithm::kMinSum;
  BpSchedule schedule = BpSchedule::kLayered;
  unsigned max_iterations = 60;
  float min_sum_scale = 0.8f;  ///< normalization factor alpha
  /// Use the int8-quantized layered min-sum kernel (batch_decoder.hpp)
  /// instead of the float reference decoder. decode_syndrome() itself is
  /// always the float path; frame receivers, the batched reconciler, and
  /// the timed kernels branch on this flag.
  bool quantized = true;
  /// Optional pool for flooding-schedule parallel updates (layered is
  /// inherently sequential). Null = single-threaded.
  ThreadPool* pool = nullptr;
  /// Optional scratch arena for decoder message/posterior buffers; null
  /// falls back to thread-local vectors.
  BlockArena* arena = nullptr;
};

struct DecodeResult {
  bool converged = false;
  unsigned iterations = 0;  ///< iterations actually executed
  BitVec word;              ///< hard decision (valid iff converged)
};

/// LLR magnitude for a BSC with crossover probability q.
float bsc_llr(double qber) noexcept;

/// Saturation magnitude used for "known" positions (shortened / revealed).
constexpr float kKnownLlr = 64.0f;

/// Decode to `syndrome`; `llr[v] > 0` favours bit 0 at position v.
DecodeResult decode_syndrome(const LdpcCode& code, const BitVec& syndrome,
                             const std::vector<float>& llr,
                             const DecoderConfig& config);

}  // namespace qkdpp::reconcile
