// LDPC code structure + Progressive-Edge-Growth construction.
//
// QKD reconciliation uses LDPC codes in *syndrome* (Slepian-Wolf) mode: no
// encoder is needed, only H. Codes are built from scratch with PEG
// (Hu/Eleftheriou/Arnold), which maximizes local girth greedily and yields
// reliable regular codes at every rate we need. Construction is
// deterministic given (n, profile, seed), so Alice and Bob can derive the
// same code from a code id without shipping matrices.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bitvec.hpp"

namespace qkdpp::reconcile {

/// Variable-degree profile. Regular codes have one entry {degree, 1.0}.
/// Fractions are node-based and must sum to 1.
struct DegreeProfile {
  struct Entry {
    unsigned degree;
    double fraction;
  };
  std::vector<Entry> entries;

  static DegreeProfile regular(unsigned degree) {
    return DegreeProfile{{{degree, 1.0}}};
  }
};

/// Sparse parity-check matrix in dual adjacency (check->vars, var->checks).
class LdpcCode {
 public:
  /// PEG construction: `n` variables, `m` checks, variable degrees from
  /// `profile`, deterministic for a given `seed`. Best girth properties but
  /// O(edges^2) build time - used for block lengths up to ~8k.
  static LdpcCode peg(std::size_t n, std::size_t m,
                      const DegreeProfile& profile, std::uint64_t seed);

  /// Quasi-cyclic construction: (3, check_degree)-regular from a 3 x dc
  /// base matrix of circulant shifts with the 4-cycle condition enforced.
  /// n = check_degree * lifting, m = 3 * lifting. O(edges) build time and
  /// the structure real accelerator decoders exploit; used for the large
  /// block lengths in the code table.
  static LdpcCode quasi_cyclic(std::size_t lifting, unsigned check_degree,
                               std::uint64_t seed);

  std::size_t n() const noexcept { return n_; }               ///< variables
  std::size_t m() const noexcept { return m_; }               ///< checks
  std::size_t edges() const noexcept { return edge_var_.size(); }
  double rate() const noexcept {
    return 1.0 - static_cast<double>(m_) / static_cast<double>(n_);
  }

  /// Check c's variable neighbours.
  std::span<const std::uint32_t> check_vars(std::size_t c) const noexcept {
    return {edge_var_.data() + check_offset_[c],
            check_offset_[c + 1] - check_offset_[c]};
  }
  /// Variable v's check neighbours.
  std::span<const std::uint32_t> var_checks(std::size_t v) const noexcept {
    return {var_check_.data() + var_offset_[v],
            var_offset_[v + 1] - var_offset_[v]};
  }
  /// Edge ids (indices into the check-major edge order) for variable v,
  /// aligned with var_checks(v).
  std::span<const std::uint32_t> var_edges(std::size_t v) const noexcept {
    return {var_edge_.data() + var_offset_[v],
            var_offset_[v + 1] - var_offset_[v]};
  }
  /// Offset of check c's first edge in check-major edge order.
  std::uint32_t check_edge_begin(std::size_t c) const noexcept {
    return check_offset_[c];
  }

  /// Syndrome s = H x (x has n bits, s has m bits).
  BitVec syndrome(const BitVec& x) const;

  /// True iff H x == s.
  bool syndrome_matches(const BitVec& x, const BitVec& s) const;

  /// Structural self-check: no duplicate edges, degrees consistent.
  /// Throws std::logic_error on violation (used by tests and at
  /// construction time in debug).
  void validate() const;

  /// Shortest cycle through any edge, capped at `cap` (girth estimate; 0
  /// means no cycle found up to the cap).
  unsigned girth_estimate(unsigned cap = 12) const;

 private:
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  // Check-major CSR: edge e connects check (via offsets) to edge_var_[e].
  std::vector<std::uint32_t> check_offset_;  // m+1
  std::vector<std::uint32_t> edge_var_;      // edges
  // Var-major view with alignment to edge ids.
  std::vector<std::uint32_t> var_offset_;  // n+1
  std::vector<std::uint32_t> var_check_;   // edges
  std::vector<std::uint32_t> var_edge_;    // edges
};

/// Registry of mother codes used by the protocol: code ids are stable wire
/// values; both peers reconstruct the same code deterministically. All are
/// variable-degree-3 regular PEG codes; rate = 1 - 3/dc.
struct CodeSpec {
  std::uint32_t id;
  std::size_t n;
  unsigned check_degree;  ///< dc, so m = 3n/dc
  double rate;            ///< 1 - 3/dc
};

/// The built-in code table (rates 0.5 .. 0.9 at several block lengths).
std::span<const CodeSpec> code_table() noexcept;

/// Get (and lazily build + memoize) the code for a table id.
/// Throws Error{kConfig} for unknown ids.
const LdpcCode& code_by_id(std::uint32_t id);

/// Extra rate margin required by short codes (finite-length scaling gap);
/// multiplies f_target during code selection.
double finite_length_penalty(std::size_t n) noexcept;

/// Highest-rate code at block length >= `min_n` whose operating point keeps
/// reconciliation efficiency at most f_target * finite_length_penalty(n)
/// for crossover probability `qber`. Falls back to the lowest rate.
/// Returns the code id.
std::uint32_t pick_code(std::size_t min_n, double qber, double f_target);

}  // namespace qkdpp::reconcile
