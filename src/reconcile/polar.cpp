#include "reconcile/polar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "reconcile/ldpc_decoder.hpp"  // bsc_llr, kKnownLlr

namespace qkdpp::reconcile {

PolarCode::PolarCode(unsigned log2_n, double qber, double margin) {
  QKDPP_REQUIRE(log2_n >= 2 && log2_n <= 22, "polar size out of range");
  QKDPP_REQUIRE(qber > 0 && qber < 0.5, "qber outside (0, 0.5)");
  QKDPP_REQUIRE(margin >= 1.0, "margin below Shannon limit");
  stages_ = log2_n;
  n_ = std::size_t{1} << log2_n;

  // Bhattacharyya recursion: expanding entry z into (2z - z^2, z^2) per
  // stage yields the per-channel parameter in natural index order (MSB of
  // the index decides the outermost f/g split).
  std::vector<double> z{2.0 * std::sqrt(qber * (1.0 - qber))};
  z.reserve(n_);
  for (unsigned stage = 0; stage < stages_; ++stage) {
    std::vector<double> next;
    next.reserve(z.size() * 2);
    for (const double v : z) {
      next.push_back(std::clamp(2.0 * v - v * v, 0.0, 1.0));
      next.push_back(v * v);
    }
    z.swap(next);
  }

  // Successive cancellation pays an *additive* finite-length rate gap of
  // order N^(-1/mu) with scaling exponent mu ~ 3.6 (far larger than the
  // multiplicative margin at low QBER - this is why short polar codes
  // reconcile inefficiently without list decoding, and the honest number
  // the polar bench reports).
  // Coefficient 1.4 calibrated empirically for FER of a few percent at
  // N in [2^10, 2^16] (see reconcile_polar_test and bench_polar).
  const double sc_gap =
      1.4 * std::pow(static_cast<double>(n_), -1.0 / 3.6);
  const double frozen_fraction = std::min(
      1.0, margin * binary_entropy(qber) + sc_gap);
  frozen_count_ = static_cast<std::size_t>(std::clamp(
      frozen_fraction * static_cast<double>(n_), 1.0,
      static_cast<double>(n_)));

  // Freeze the `frozen_count_` channels with the worst (largest) z.
  std::vector<std::uint32_t> order(n_);
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(frozen_count_),
                   order.end(), [&z](std::uint32_t a, std::uint32_t b) {
                     return z[a] > z[b];
                   });
  frozen_mask_ = BitVec(n_);
  for (std::size_t i = 0; i < frozen_count_; ++i) {
    frozen_mask_.set(order[i], true);
  }
}

BitVec PolarCode::transform(const BitVec& input) {
  const std::size_t n = input.size();
  QKDPP_REQUIRE(std::has_single_bit(n), "polar transform needs power of two");
  BitVec x = input;
  // Combine blocks bottom-up: for block length L, x[i] ^= x[i + L/2].
  for (std::size_t block = 2; block <= n; block <<= 1) {
    const std::size_t half = block / 2;
    for (std::size_t base = 0; base < n; base += block) {
      for (std::size_t i = 0; i < half; ++i) {
        if (x.get(base + half + i)) x.flip(base + i);
      }
    }
  }
  return x;
}

BitVec PolarCode::freeze_values(const BitVec& x) const {
  QKDPP_REQUIRE(x.size() == n_, "polar input length mismatch");
  const BitVec u = transform(x);  // involution: u = G x
  BitVec values;
  for (std::size_t i = 0; i < n_; ++i) {
    if (frozen_mask_.get(i)) values.push_back(u.get(i));
  }
  return values;
}

namespace {

inline float f_combine(float a, float b) noexcept {
  // min-sum approximation of 2 atanh(tanh(a/2) tanh(b/2)).
  const float sign = (a < 0) != (b < 0) ? -1.0f : 1.0f;
  return sign * std::min(std::fabs(a), std::fabs(b));
}

/// Depth-indexed scratch for the successive-cancellation recursion.
struct ScScratch {
  std::vector<std::vector<float>> llr;      // llr[depth]: current block LLRs
  std::vector<std::vector<std::uint8_t>> x; // x[depth]: re-encoded bits
};

}  // namespace

BitVec PolarCode::decode(const std::vector<float>& llr,
                         const BitVec& frozen_values) const {
  QKDPP_REQUIRE(llr.size() == n_, "polar LLR length mismatch");
  QKDPP_REQUIRE(frozen_values.size() == frozen_count_,
                "frozen value count mismatch");

  // Scatter the disclosed values to their u positions.
  std::vector<std::uint8_t> frozen_value(n_, 0);
  {
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (frozen_mask_.get(i)) {
        frozen_value[i] = frozen_values.get(cursor++) ? 1 : 0;
      }
    }
  }

  ScScratch scratch;
  scratch.llr.resize(stages_ + 1);
  scratch.x.resize(stages_ + 1);
  for (unsigned d = 0; d <= stages_; ++d) {
    scratch.llr[d].resize(n_ >> d);
    scratch.x[d].resize(n_ >> d);
  }
  scratch.llr[0] = llr;

  BitVec u_hat(n_);
  // Depth-first SC: decode left child under the f-transform, re-encode it,
  // decode right child under the g-transform, combine partial sums.
  auto sc = [&](auto&& self, unsigned depth, std::size_t base_u) -> void {
    const std::size_t len = n_ >> depth;
    if (len == 1) {
      bool bit;
      if (frozen_mask_.get(base_u)) {
        bit = frozen_value[base_u] != 0;
      } else {
        bit = scratch.llr[depth][0] < 0;
      }
      if (bit) u_hat.set(base_u, true);
      scratch.x[depth][0] = bit ? 1 : 0;
      return;
    }
    const std::size_t half = len / 2;
    auto& in = scratch.llr[depth];
    auto& child_llr = scratch.llr[depth + 1];
    auto& child_x = scratch.x[depth + 1];
    auto& out_x = scratch.x[depth];

    for (std::size_t i = 0; i < half; ++i) {
      child_llr[i] = f_combine(in[i], in[i + half]);
    }
    self(self, depth + 1, base_u);
    // Stash the left child's re-encoded bits in our own buffer's first half
    // before the right child overwrites the shared child scratch.
    for (std::size_t i = 0; i < half; ++i) out_x[i] = child_x[i];

    for (std::size_t i = 0; i < half; ++i) {
      child_llr[i] =
          in[i + half] + (out_x[i] ? -in[i] : in[i]);
    }
    self(self, depth + 1, base_u + half);
    for (std::size_t i = 0; i < half; ++i) {
      out_x[i] ^= child_x[i];
      out_x[i + half] = child_x[i];
    }
  };
  sc(sc, 0, 0);

  return transform(u_hat);  // x-hat = G u-hat
}

PolarOutcome polar_reconcile_local(const BitVec& alice, const BitVec& bob,
                                   double qber, double margin) {
  QKDPP_REQUIRE(alice.size() == bob.size(), "polar keys length mismatch");
  QKDPP_REQUIRE(std::has_single_bit(alice.size()),
                "polar block must be a power of two");
  const auto log2_n =
      static_cast<unsigned>(std::countr_zero(alice.size()));
  const PolarCode code(log2_n, qber, margin);

  const BitVec frozen = code.freeze_values(alice);
  const float channel = bsc_llr(qber);
  std::vector<float> llr(alice.size());
  for (std::size_t i = 0; i < alice.size(); ++i) {
    llr[i] = bob.get(i) ? -channel : channel;
  }

  PolarOutcome outcome;
  outcome.corrected = code.decode(llr, frozen);
  outcome.success = outcome.corrected == alice;
  outcome.leaked_bits = code.frozen_count();
  outcome.efficiency =
      static_cast<double>(outcome.leaked_bits) /
      (static_cast<double>(alice.size()) * binary_entropy(qber));
  return outcome;
}

}  // namespace qkdpp::reconcile
