// High-level reconciliation API: one call per frame, with exact leakage and
// efficiency reporting. Two families behind one result type:
//
//   * LdpcReconciler - one-way syndrome coding with blind (incremental)
//     rate adaptation; the Alice->Bob payload is a single message, failures
//     cost one extra round per blind reveal.
//   * Cascade (see cascade.hpp) - interactive, efficiency ~1.05-1.2 but
//     O(log n) round trips per error.
//
// The pipeline chooses per block; the benches compare them head-to-head.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "reconcile/cascade.hpp"
#include "reconcile/ldpc_decoder.hpp"
#include "reconcile/rate_adapt.hpp"

namespace qkdpp {
class BlockArena;
}

namespace qkdpp::reconcile {

struct ReconcileOutcome {
  bool success = false;
  BitVec corrected;             ///< Bob's corrected payload (= Alice's)
  std::uint64_t leaked_bits = 0;
  std::uint64_t rounds = 0;     ///< protocol round-trips consumed
  unsigned decoder_iterations = 0;
  unsigned blind_rounds = 0;
  double efficiency = 0.0;      ///< leak / (payload * h2(qber))
};

struct LdpcReconcilerConfig {
  /// Regular (3,dc) PEG codes are not capacity-tight; 1.45 keeps the frame
  /// error rate near zero without blind rescues (measured in
  /// reconcile_ldpc_test). Tighter targets trade blind round-trips for
  /// leakage - see the F4/F8 benches.
  double f_target = 1.45;
  double adapt_fraction = 0.10;
  std::size_t min_frame = 4096;
  unsigned max_blind_rounds = 4;
  /// Lockstep frames the batched planner aims to cut a key into (see
  /// plan_frame_batched); only consulted when decoder.quantized is set.
  std::size_t batch_target_frames = 8;
  DecoderConfig decoder;
};

/// Alice-side state for one LDPC frame: keeps the filled frame (payload +
/// private punctured randomness) so blind reveals can be served.
class LdpcFrameSender {
 public:
  /// `payload` must have exactly plan.payload_bits bits.
  LdpcFrameSender(const FramePlan& plan, const BitVec& payload,
                  std::uint64_t frame_seed, Xoshiro256& private_rng);

  const BitVec& syndrome() const noexcept { return syndrome_; }
  const FramePlan& plan() const noexcept { return plan_; }

  /// Serve blind round `round` (1-based): the values of the next chunk of
  /// punctured positions. Empty when everything is already revealed.
  struct Reveal {
    std::vector<std::uint32_t> positions;
    BitVec values;
  };
  Reveal reveal_chunk(unsigned round, unsigned max_rounds) const;

 private:
  FramePlan plan_;
  RateAdaptation adaptation_;
  BitVec frame_;
  BitVec syndrome_;
};

/// Bob-side decoder for one LDPC frame.
class LdpcFrameReceiver {
 public:
  LdpcFrameReceiver(const FramePlan& plan, const BitVec& payload,
                    std::uint64_t frame_seed, double qber,
                    DecoderConfig decoder);

  /// Attempt decode against Alice's syndrome. Call apply_reveal() between
  /// attempts on failure.
  struct Attempt {
    bool converged = false;
    unsigned iterations = 0;
  };
  Attempt try_decode(const BitVec& syndrome);

  void apply_reveal(const std::vector<std::uint32_t>& positions,
                    const BitVec& values);

  /// Corrected payload; only meaningful after a converged attempt.
  BitVec corrected_payload() const;

 private:
  FramePlan plan_;
  RateAdaptation adaptation_;
  std::vector<float> llr_;
  DecoderConfig decoder_;
  BitVec decoded_;
};

/// Run the whole LDPC exchange in-process (tests, benches, offline
/// pipeline): Alice = `alice_payload`, Bob = `bob_payload`.
ReconcileOutcome ldpc_reconcile_local(const BitVec& alice_payload,
                                      const BitVec& bob_payload, double qber,
                                      const FramePlan& plan,
                                      std::uint64_t frame_seed,
                                      const LdpcReconcilerConfig& config,
                                      Xoshiro256& alice_private_rng);

/// Aggregate statistics for one batched reconcile call (all counters are
/// sums over frames unless noted).
struct BatchReconcileStats {
  std::uint64_t frames = 0;
  std::uint64_t frames_ok = 0;       ///< converged frames
  std::uint64_t iterations = 0;      ///< decoder iterations, all attempts
  std::uint64_t early_exit_frames = 0;  ///< converged before the iteration cap
  std::uint64_t blind_rounds = 0;
  std::uint64_t leaked_bits = 0;
  std::uint64_t rounds = 0;          ///< protocol round-trips
};

/// Reconcile frame_seeds.size() consecutive payload-sized slices of the
/// two keys in lockstep: all frames share one quantized batch decode per
/// blind stage, failed frames apply their own reveal chunk and re-decode
/// as a shrinking sub-batch. Surviving payload pairs are appended to
/// alice_out / bob_out in frame order (failed frames are skipped but
/// their leakage still counts). Per-frame results - corrected payloads,
/// leak accounting, rounds - are bit-identical to calling
/// ldpc_reconcile_local frame by frame with the same shared private RNG
/// and a quantized DecoderConfig (the equivalence the reconcile_batch
/// tests pin down). `per_frame`, when non-null, receives one
/// ReconcileOutcome per frame. `arena` (nullable) backs the decoder and
/// payload scratch.
BatchReconcileStats ldpc_reconcile_key_batch(
    const BitVec& alice_key, const BitVec& bob_key, double qber,
    const FramePlan& plan, std::span<const std::uint64_t> frame_seeds,
    const LdpcReconcilerConfig& config, Xoshiro256& alice_private_rng,
    BlockArena* arena, BitVec& alice_out, BitVec& bob_out,
    std::vector<ReconcileOutcome>* per_frame = nullptr);

/// Run Cascade in-process; thin wrapper pairing the engine with a local
/// oracle and translating to ReconcileOutcome.
ReconcileOutcome cascade_reconcile_local(const BitVec& alice_key,
                                         const BitVec& bob_key, double qber,
                                         const CascadeConfig& config);

}  // namespace qkdpp::reconcile
