#include "reconcile/ldpc_code.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {

namespace {

/// Scratch buffers for the PEG breadth-first searches, epoch-stamped so a
/// fresh search costs O(visited) instead of O(graph).
struct PegScratch {
  std::vector<std::uint32_t> check_epoch;
  std::vector<std::uint32_t> var_epoch;
  std::vector<std::uint32_t> check_depth;
  std::vector<std::uint32_t> frontier_vars;
  std::vector<std::uint32_t> next_vars;
  std::uint32_t epoch = 0;
};

}  // namespace

LdpcCode LdpcCode::peg(std::size_t n, std::size_t m,
                       const DegreeProfile& profile, std::uint64_t seed) {
  QKDPP_REQUIRE(n > 0 && m > 0 && m < n, "PEG needs 0 < m < n");
  QKDPP_REQUIRE(!profile.entries.empty(), "empty degree profile");

  // Materialize per-variable degrees, low degrees first (PEG convention:
  // constrain the hardest-to-protect nodes while the graph is sparse).
  std::vector<unsigned> degree_of(n);
  {
    double fraction_sum = 0;
    for (const auto& e : profile.entries) fraction_sum += e.fraction;
    QKDPP_REQUIRE(std::abs(fraction_sum - 1.0) < 1e-9,
                  "degree fractions must sum to 1");
    auto sorted = profile.entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.degree < b.degree; });
    std::size_t v = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::size_t count =
          i + 1 == sorted.size()
              ? n - v
              : static_cast<std::size_t>(sorted[i].fraction * n + 0.5);
      count = std::min(count, n - v);
      for (std::size_t j = 0; j < count; ++j) degree_of[v++] = sorted[i].degree;
    }
    while (v < n) degree_of[v++] = sorted.back().degree;
  }

  Xoshiro256 rng(seed);
  std::vector<std::vector<std::uint32_t>> check_adj(m);   // check -> vars
  std::vector<std::vector<std::uint32_t>> var_adj(n);     // var -> checks
  std::vector<std::uint32_t> check_degree(m, 0);

  PegScratch scratch;
  scratch.check_epoch.assign(m, 0);
  scratch.var_epoch.assign(n, 0);
  scratch.check_depth.assign(m, 0);

  // Candidate selection: among `eligible` checks (marked by predicate),
  // lowest current degree wins, ties broken uniformly at random.
  auto pick_min_degree = [&](auto&& eligible) -> std::uint32_t {
    std::uint32_t best_degree = ~0u;
    std::uint32_t reservoir = 0;
    std::uint32_t count = 0;
    for (std::uint32_t c = 0; c < m; ++c) {
      if (!eligible(c)) continue;
      if (check_degree[c] < best_degree) {
        best_degree = check_degree[c];
        reservoir = c;
        count = 1;
      } else if (check_degree[c] == best_degree) {
        ++count;
        if (rng.uniform(count) == 0) reservoir = c;
      }
    }
    QKDPP_REQUIRE(count > 0, "PEG found no eligible check");
    return reservoir;
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    const unsigned dv = degree_of[v];
    for (unsigned k = 0; k < dv; ++k) {
      std::uint32_t chosen;
      if (k == 0) {
        chosen = pick_min_degree([](std::uint32_t) { return true; });
      } else {
        // BFS from v through the current graph; stop when the reached check
        // set saturates or covers everything.
        ++scratch.epoch;
        const std::uint32_t epoch = scratch.epoch;
        scratch.frontier_vars.clear();
        scratch.frontier_vars.push_back(v);
        scratch.var_epoch[v] = epoch;
        std::size_t reached_checks = 0;
        std::uint32_t depth = 0;
        std::uint32_t max_depth_seen = 0;
        for (;;) {
          ++depth;
          std::size_t new_checks = 0;
          scratch.next_vars.clear();
          for (const std::uint32_t fv : scratch.frontier_vars) {
            for (const std::uint32_t c : var_adj[fv]) {
              if (scratch.check_epoch[c] == epoch) continue;
              scratch.check_epoch[c] = epoch;
              scratch.check_depth[c] = depth;
              max_depth_seen = depth;
              ++new_checks;
              for (const std::uint32_t nv : check_adj[c]) {
                if (scratch.var_epoch[nv] == epoch) continue;
                scratch.var_epoch[nv] = epoch;
                scratch.next_vars.push_back(nv);
              }
            }
          }
          reached_checks += new_checks;
          if (new_checks == 0 || reached_checks == m ||
              scratch.next_vars.empty()) {
            break;
          }
          scratch.frontier_vars.swap(scratch.next_vars);
        }
        if (reached_checks < m) {
          // Connect outside the reachable set: maximizes the new edge's
          // local girth (no cycle through it yet).
          chosen = pick_min_degree([&](std::uint32_t c) {
            return scratch.check_epoch[c] != epoch;
          });
        } else {
          // Whole graph reachable: take the most distant layer.
          chosen = pick_min_degree([&](std::uint32_t c) {
            return scratch.check_depth[c] == max_depth_seen;
          });
        }
      }
      check_adj[chosen].push_back(v);
      var_adj[v].push_back(chosen);
      ++check_degree[chosen];
    }
  }

  // Pack into CSR form.
  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.check_offset_.resize(m + 1, 0);
  for (std::size_t c = 0; c < m; ++c) {
    code.check_offset_[c + 1] =
        code.check_offset_[c] + static_cast<std::uint32_t>(check_adj[c].size());
  }
  code.edge_var_.resize(code.check_offset_[m]);
  for (std::size_t c = 0; c < m; ++c) {
    std::copy(check_adj[c].begin(), check_adj[c].end(),
              code.edge_var_.begin() + code.check_offset_[c]);
  }
  code.var_offset_.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    code.var_offset_[v + 1] =
        code.var_offset_[v] + static_cast<std::uint32_t>(var_adj[v].size());
  }
  code.var_check_.resize(code.edge_var_.size());
  code.var_edge_.resize(code.edge_var_.size());
  {
    std::vector<std::uint32_t> cursor(n, 0);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::uint32_t e = code.check_offset_[c];
           e < code.check_offset_[c + 1]; ++e) {
        const std::uint32_t v = code.edge_var_[e];
        const std::uint32_t slot = code.var_offset_[v] + cursor[v]++;
        code.var_check_[slot] = static_cast<std::uint32_t>(c);
        code.var_edge_[slot] = e;
      }
    }
  }
  return code;
}

LdpcCode LdpcCode::quasi_cyclic(std::size_t lifting, unsigned check_degree,
                                std::uint64_t seed) {
  QKDPP_REQUIRE(lifting >= 8, "lifting factor too small");
  QKDPP_REQUIRE(check_degree >= 4, "check degree too small");
  constexpr unsigned kVarDegree = 3;
  const std::size_t n = check_degree * lifting;
  const std::size_t m = kVarDegree * lifting;

  // Draw circulant shifts column by column, rejecting columns that create a
  // 4-cycle: for rows i1 != i2 and columns j1 != j2 the condition is
  //   s[i1][j1] - s[i2][j1] + s[i2][j2] - s[i1][j2] != 0 (mod L).
  Xoshiro256 rng(seed ^ 0x9c0de11f7ULL);
  std::vector<std::array<std::int64_t, kVarDegree>> shifts;
  shifts.reserve(check_degree);
  const auto lift = static_cast<std::int64_t>(lifting);
  for (unsigned j = 0; j < check_degree; ++j) {
    std::array<std::int64_t, kVarDegree> column{};
    bool accepted = false;
    for (int attempt = 0; attempt < 400 && !accepted; ++attempt) {
      for (auto& s : column) {
        s = static_cast<std::int64_t>(rng.uniform(lifting));
      }
      accepted = true;
      for (const auto& other : shifts) {
        for (unsigned i1 = 0; i1 < kVarDegree && accepted; ++i1) {
          for (unsigned i2 = i1 + 1; i2 < kVarDegree; ++i2) {
            const std::int64_t delta =
                ((column[i1] - column[i2]) - (other[i1] - other[i2])) % lift;
            if (delta == 0) {
              accepted = false;
              break;
            }
          }
        }
        if (!accepted) break;
      }
    }
    // After 400 draws accept regardless (only possible for tiny liftings;
    // a rare 4-cycle degrades the decoder marginally, never correctness).
    shifts.push_back(column);
  }

  LdpcCode code;
  code.n_ = n;
  code.m_ = m;
  code.check_offset_.resize(m + 1);
  for (std::size_t c = 0; c <= m; ++c) {
    code.check_offset_[c] = static_cast<std::uint32_t>(c * check_degree);
  }
  code.edge_var_.resize(m * check_degree);
  // Check c = i*L + r connects to variable j*L + ((r - s[i][j]) mod L).
  for (unsigned i = 0; i < kVarDegree; ++i) {
    for (std::size_t r = 0; r < lifting; ++r) {
      const std::size_t c = i * lifting + r;
      for (unsigned j = 0; j < check_degree; ++j) {
        const std::int64_t k =
            (static_cast<std::int64_t>(r) - shifts[j][i] % lift + lift) % lift;
        code.edge_var_[code.check_offset_[c] + j] = static_cast<std::uint32_t>(
            j * lifting + static_cast<std::size_t>(k));
      }
    }
  }
  // Var-major view.
  code.var_offset_.resize(n + 1);
  for (std::size_t v = 0; v <= n; ++v) {
    code.var_offset_[v] = static_cast<std::uint32_t>(v * kVarDegree);
  }
  code.var_check_.resize(n * kVarDegree);
  code.var_edge_.resize(n * kVarDegree);
  {
    std::vector<std::uint32_t> cursor(n, 0);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::uint32_t e = code.check_offset_[c];
           e < code.check_offset_[c + 1]; ++e) {
        const std::uint32_t v = code.edge_var_[e];
        const std::uint32_t slot = code.var_offset_[v] + cursor[v]++;
        code.var_check_[slot] = static_cast<std::uint32_t>(c);
        code.var_edge_[slot] = e;
      }
    }
  }
  return code;
}

BitVec LdpcCode::syndrome(const BitVec& x) const {
  QKDPP_REQUIRE(x.size() == n_, "syndrome input length mismatch");
  BitVec s(m_);
  for (std::size_t c = 0; c < m_; ++c) {
    bool parity = false;
    for (const std::uint32_t v : check_vars(c)) parity ^= x.get(v);
    if (parity) s.set(c, true);
  }
  return s;
}

bool LdpcCode::syndrome_matches(const BitVec& x, const BitVec& s) const {
  QKDPP_REQUIRE(x.size() == n_ && s.size() == m_,
                "syndrome_matches shape mismatch");
  for (std::size_t c = 0; c < m_; ++c) {
    bool parity = false;
    for (const std::uint32_t v : check_vars(c)) parity ^= x.get(v);
    if (parity != s.get(c)) return false;
  }
  return true;
}

void LdpcCode::validate() const {
  if (check_offset_.size() != m_ + 1 || var_offset_.size() != n_ + 1) {
    throw std::logic_error("LdpcCode: offset table size mismatch");
  }
  if (var_check_.size() != edge_var_.size() ||
      var_edge_.size() != edge_var_.size()) {
    throw std::logic_error("LdpcCode: edge view size mismatch");
  }
  for (std::size_t c = 0; c < m_; ++c) {
    const auto vars = check_vars(c);
    std::set<std::uint32_t> unique(vars.begin(), vars.end());
    if (unique.size() != vars.size()) {
      throw std::logic_error("LdpcCode: duplicate edge at check " +
                             std::to_string(c));
    }
    for (const auto v : vars) {
      if (v >= n_) throw std::logic_error("LdpcCode: variable out of range");
    }
  }
  // Var-major view must agree with check-major edges.
  for (std::size_t v = 0; v < n_; ++v) {
    const auto checks = var_checks(v);
    const auto edges = var_edges(v);
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (edge_var_[edges[i]] != v) {
        throw std::logic_error("LdpcCode: edge view inconsistent");
      }
      const std::uint32_t c = checks[i];
      if (!(edges[i] >= check_offset_[c] && edges[i] < check_offset_[c + 1])) {
        throw std::logic_error("LdpcCode: edge not within its check range");
      }
    }
  }
}

unsigned LdpcCode::girth_estimate(unsigned) const {
  // Exact 4-cycle detection: two checks sharing two variables. PEG avoids
  // these whenever degrees permit; anything >= 6 is reported as 6.
  std::set<std::uint64_t> pairs;
  for (std::size_t v = 0; v < n_; ++v) {
    const auto checks = var_checks(v);
    for (std::size_t i = 0; i < checks.size(); ++i) {
      for (std::size_t j = i + 1; j < checks.size(); ++j) {
        const std::uint64_t a = std::min(checks[i], checks[j]);
        const std::uint64_t b = std::max(checks[i], checks[j]);
        if (!pairs.insert((a << 32) | b).second) return 4;
      }
    }
  }
  return 6;
}

namespace {

constexpr CodeSpec kCodeTable[] = {
    // id, n, dc, rate = 1 - 3/dc
    {0, 1024, 6, 0.5},     {1, 1024, 10, 0.7},    {2, 1024, 15, 0.8},
    {3, 4096, 6, 0.5},     {4, 4096, 8, 0.625},   {5, 4096, 10, 0.7},
    {6, 4096, 12, 0.75},   {7, 4096, 15, 0.8},    {8, 4096, 20, 0.85},
    {9, 16384, 6, 0.5},    {10, 16384, 8, 0.625}, {11, 16384, 10, 0.7},
    {12, 16384, 12, 0.75}, {13, 16384, 15, 0.8},  {14, 16384, 20, 0.85},
    {15, 16384, 30, 0.9},  {16, 65536, 6, 0.5},   {17, 65536, 10, 0.7},
    {18, 65536, 15, 0.8},  {19, 65536, 20, 0.85},
};

Mutex g_code_cache_mutex{LockRank::kCodeCache, "ldpc.code_cache"};
std::map<std::uint32_t, std::unique_ptr<LdpcCode>> g_code_cache
    QKD_GUARDED_BY(g_code_cache_mutex);

}  // namespace

std::span<const CodeSpec> code_table() noexcept { return kCodeTable; }

const LdpcCode& code_by_id(std::uint32_t id) {
  {
    MutexLock lock(g_code_cache_mutex);
    const auto it = g_code_cache.find(id);
    if (it != g_code_cache.end()) return *it->second;
  }
  const CodeSpec* spec = nullptr;
  for (const auto& s : kCodeTable) {
    if (s.id == id) {
      spec = &s;
      break;
    }
  }
  if (spec == nullptr) {
    throw_error(ErrorCode::kConfig, "unknown LDPC code id " + std::to_string(id));
  }
  // Build outside the lock (PEG construction takes seconds at n = 8k);
  // a racing duplicate build is wasted work but harmless. Large blocks use
  // the O(edges) quasi-cyclic construction (n may differ from the nominal
  // spec by < dc bits to keep the lifting integral).
  std::unique_ptr<LdpcCode> code;
  if (spec->n >= 16384) {
    const std::size_t lifting = spec->n / spec->check_degree;
    code = std::make_unique<LdpcCode>(LdpcCode::quasi_cyclic(
        lifting, spec->check_degree, /*seed=*/0x9d5c0e5b0f00dULL + id));
  } else {
    const std::size_t m = spec->n * 3 / spec->check_degree;
    code = std::make_unique<LdpcCode>(
        LdpcCode::peg(spec->n, m, DegreeProfile::regular(3),
                      /*seed=*/0x9d5c0e5b0f00dULL + id));
  }
  MutexLock lock(g_code_cache_mutex);
  auto [it, inserted] = g_code_cache.emplace(id, std::move(code));
  return *it->second;
}

double finite_length_penalty(std::size_t n) noexcept {
  // Finite-length scaling gap: short regular codes need extra rate margin
  // or their frame error rate explodes at the nominal operating point.
  // The 14/sqrt(n) coefficient is calibrated against measured frame error
  // rates (notably: (3,20) at n=4096 still fails ~20% of frames at
  // f_target 1.45, so q ~ 1.1% must select rate 0.8, not 0.85).
  return 1.0 + 14.0 / std::sqrt(static_cast<double>(n));
}

std::uint32_t pick_code(std::size_t min_n, double qber, double f_target) {
  const CodeSpec* best = nullptr;
  const CodeSpec* fallback = nullptr;
  for (const auto& spec : kCodeTable) {
    if (spec.n < min_n) continue;
    const double max_rate =
        1.0 - f_target * finite_length_penalty(spec.n) * binary_entropy(qber);
    if (fallback == nullptr || spec.rate < fallback->rate ||
        (spec.rate == fallback->rate && spec.n < fallback->n)) {
      fallback = &spec;
    }
    if (spec.rate <= max_rate &&
        (best == nullptr || spec.rate > best->rate ||
         (spec.rate == best->rate && spec.n < best->n))) {
      best = &spec;
    }
  }
  if (best == nullptr) best = fallback;
  if (best == nullptr) {
    throw_error(ErrorCode::kConfig,
                "no LDPC code with n >= " + std::to_string(min_n));
  }
  return best->id;
}

}  // namespace qkdpp::reconcile
