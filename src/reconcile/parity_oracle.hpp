// Parity oracle: Bob-side Cascade's window onto Alice.
//
// Cascade is an interactive protocol; everything Bob learns from Alice is
// parities of ranges of her (permuted) key. Abstracting that behind an
// oracle lets the same Cascade engine run in-process (benches, tests) and
// over the authenticated classical channel (sessions) - and makes leakage
// accounting exact: every parity bit crossing the oracle is one leaked bit.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"

namespace qkdpp::reconcile {

/// Half-open range [begin, end) in the pass-permuted domain.
struct ParityRange {
  std::uint32_t begin;
  std::uint32_t end;
};

class ParityOracle {
 public:
  virtual ~ParityOracle() = default;

  /// One batch = one protocol round-trip. Returns one parity bit per range,
  /// computed over Alice's key as permuted for `pass`.
  virtual BitVec parities(std::uint32_t pass,
                          std::span<const ParityRange> ranges) = 0;
};

/// Alice-side parity computation shared by the local oracle and the remote
/// session responder. Permutations are derived from (seed, pass); pass 0 is
/// the identity, as in standard Cascade.
class CascadeResponder {
 public:
  CascadeResponder(const BitVec& alice_key, std::uint64_t seed,
                   std::uint32_t passes);

  BitVec parities(std::uint32_t pass,
                  std::span<const ParityRange> ranges) const;

  std::size_t key_size() const noexcept { return n_; }
  std::uint32_t passes() const noexcept {
    return static_cast<std::uint32_t>(prefix_.size());
  }

 private:
  std::size_t n_;
  // Per pass: prefix parity bits (n+1 of them) of the permuted key, so any
  // range parity is two bit-reads.
  std::vector<BitVec> prefix_;
};

/// Derive the pass-`pass` permutation for key length n from the session
/// seed. Both sides must call this with identical arguments.
std::vector<std::uint32_t> cascade_permutation(std::size_t n,
                                               std::uint64_t seed,
                                               std::uint32_t pass);

/// In-process oracle with exact accounting (used by tests and benches).
class LocalParityOracle final : public ParityOracle {
 public:
  LocalParityOracle(const BitVec& alice_key, std::uint64_t seed,
                    std::uint32_t passes)
      : responder_(alice_key, seed, passes) {}

  BitVec parities(std::uint32_t pass,
                  std::span<const ParityRange> ranges) override {
    ++rounds_;
    bits_leaked_ += ranges.size();
    return responder_.parities(pass, ranges);
  }

  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t bits_leaked() const noexcept { return bits_leaked_; }

 private:
  CascadeResponder responder_;
  std::uint64_t rounds_ = 0;
  std::uint64_t bits_leaked_ = 0;
};

}  // namespace qkdpp::reconcile
