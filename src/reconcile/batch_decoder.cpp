#include "reconcile/batch_decoder.hpp"

#include <algorithm>
#include <cstring>

#include "common/arena.hpp"
#include "common/bit_transpose.hpp"
#include "common/error.hpp"

namespace qkdpp::reconcile {

std::int8_t quantize_llr(float llr) noexcept {
  float scaled = llr * static_cast<float>(kLlrQuantScale);
  scaled = scaled < -127.0f ? -127.0f : (scaled > 127.0f ? 127.0f : scaled);
  const float rounded = scaled >= 0.0f ? scaled + 0.5f : scaled - 0.5f;
  return static_cast<std::int8_t>(static_cast<int>(rounded));
}

namespace {

/// Normalization alpha = 26/32 = 0.8125, the nearest 5-bit fixed point to
/// the float decoder's 0.8. One multiply + shift per message.
constexpr int kAlphaNumerator = 26;
constexpr int kAlphaShift = 5;

/// Fallback scratch when no arena is supplied: sized by the largest batch
/// decoded on this thread, reused across calls.
struct BatchScratchVectors {
  std::vector<std::int16_t> posterior;
  std::vector<std::int8_t> r;
  std::vector<std::uint64_t> hard;
  std::vector<std::uint64_t> syn;
  std::vector<std::uint16_t> vars;
};

BatchScratchVectors& tls_batch_scratch() {
  thread_local BatchScratchVectors scratch;
  return scratch;
}

struct BatchBuffers {
  std::int16_t* posterior = nullptr;  // n * L, lane-major
  std::int8_t* r = nullptr;           // edges * L, lane-major check -> var
  std::uint64_t* hard = nullptr;      // n lane-packed hard decisions
  std::uint64_t* syn = nullptr;       // m lane-packed syndromes
  std::uint16_t* vars = nullptr;      // edges, compressed check-major H
};

BatchBuffers acquire_batch_buffers(const DecoderConfig& config, std::size_t n,
                                   std::size_t m, std::size_t edges,
                                   std::size_t lanes) {
  BatchBuffers buf;
  if (config.arena != nullptr) {
    BlockArena& arena = *config.arena;
    buf.posterior = reinterpret_cast<std::int16_t*>(
        arena.bytes(n * lanes * sizeof(std::int16_t)));
    buf.r = reinterpret_cast<std::int8_t*>(arena.bytes(edges * lanes));
    buf.hard = arena.words(n);
    buf.syn = arena.words(m);
    buf.vars = reinterpret_cast<std::uint16_t*>(
        arena.bytes(edges * sizeof(std::uint16_t)));
    return buf;
  }
  BatchScratchVectors& scratch = tls_batch_scratch();
  scratch.posterior.resize(n * lanes);
  scratch.r.resize(edges * lanes);
  scratch.hard.resize(n);
  scratch.syn.resize(m);
  scratch.vars.resize(edges);
  buf.posterior = scratch.posterior.data();
  buf.r = scratch.r.data();
  buf.hard = scratch.hard.data();
  buf.syn = scratch.syn.data();
  buf.vars = scratch.vars.data();
  return buf;
}

template <int L>
void decode_batch_impl(const LdpcCode& code,
                       std::span<const QuantDecodeJob> jobs,
                       const DecoderConfig& config, const BatchBuffers& buf,
                       std::vector<DecodeResult>& results) {
  const std::size_t n = code.n();
  const std::size_t m = code.m();
  const std::size_t batch = jobs.size();

  // Priors: lane l = frame l's quantized LLRs; pad lanes stay all-zero, so
  // their messages, posteriors, and syndrome folds are identically zero
  // and never perturb real lanes.
  std::memset(buf.posterior, 0, n * L * sizeof(std::int16_t));
  for (std::size_t f = 0; f < batch; ++f) {
    const std::vector<float>& llr = *jobs[f].llr;
    std::int16_t* post = buf.posterior + f;
    for (std::size_t v = 0; v < n; ++v) {
      post[v * L] = quantize_llr(llr[v]);
    }
  }
  std::memset(buf.r, 0, code.edges() * L);

  const BitVec* lanes[kMaxBatchFrames];
  for (std::size_t f = 0; f < batch; ++f) lanes[f] = jobs[f].syndrome;
  pack_lanes({lanes, batch}, m, buf.syn);

  results.assign(batch, DecodeResult{});
  std::uint64_t unresolved =
      batch == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << batch) - 1;

  // Per-check staging, all lanes wide. Everything below is pure int16
  // lane-parallel arithmetic with branchless selects so the compiler can
  // map each `for l` loop onto 16-byte integer vectors; sign parity lives
  // in bit 15 of `sgn` (XOR of the operands' sign bits) instead of a bool
  // so it stays in the same lanes as the data.
  std::int16_t qbuf[64 * L];  // clamped q for one check, all lanes
  std::int16_t abuf[64 * L];  // |q| staged for pass 2
  std::int16_t min1[L];
  std::int16_t min2[L];
  std::int16_t sgn[L];

  for (unsigned iter = 1; iter <= config.max_iterations && unresolved != 0;
       ++iter) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t deg = code.check_vars(c).size();
      const std::uint32_t base = code.check_edge_begin(c);
      const std::uint16_t* vars = buf.vars + base;
      const std::uint64_t syn_word = buf.syn[c];
      for (int l = 0; l < L; ++l) {
        min1[l] = std::int16_t{0x7FFF};
        min2[l] = std::int16_t{0x7FFF};
        sgn[l] = static_cast<std::int16_t>(((syn_word >> l) & 1u) << 15);
      }
      // Pass 1: reconstruct q = posterior - r (clamped to the int8 rails),
      // accumulate the per-lane sign parity and two smallest magnitudes.
      for (std::size_t i = 0; i < deg; ++i) {
        const std::int16_t* post =
            buf.posterior + std::size_t{vars[i]} * L;
        const std::int8_t* re = buf.r + (std::size_t{base} + i) * L;
        std::int16_t* qv = qbuf + i * L;
        std::int16_t* av = abuf + i * L;
        for (int l = 0; l < L; ++l) {
          std::int16_t t = static_cast<std::int16_t>(post[l] - re[l]);
          t = t < -127 ? std::int16_t{-127} : t;
          t = t > 127 ? std::int16_t{127} : t;
          qv[l] = t;
          sgn[l] = static_cast<std::int16_t>(sgn[l] ^ (t & std::int16_t(-0x8000)));
          const std::int16_t neg = static_cast<std::int16_t>(-t);
          const std::int16_t mag = t > neg ? t : neg;
          av[l] = mag;
          const std::int16_t lo = mag < min1[l] ? mag : min1[l];
          const std::int16_t hi = mag < min1[l] ? min1[l] : mag;
          min1[l] = lo;
          min2[l] = hi < min2[l] ? hi : min2[l];
        }
      }
      // Pass 2: emit messages (self-excluded minimum, normalized, signed
      // by total parity ^ own sign) and refresh posteriors in place. A
      // magnitude equal to min1 takes min2 whether or not it set min1 -
      // on ties min1 == min2, so the select is exact without an argmin.
      for (std::size_t i = 0; i < deg; ++i) {
        std::int16_t* post = buf.posterior + std::size_t{vars[i]} * L;
        std::int8_t* re = buf.r + (std::size_t{base} + i) * L;
        const std::int16_t* qv = qbuf + i * L;
        const std::int16_t* av = abuf + i * L;
        for (int l = 0; l < L; ++l) {
          std::int16_t mag = av[l] == min1[l] ? min2[l] : min1[l];
          mag = mag > 127 ? std::int16_t{127} : mag;  // deg-1 corner
          const std::int16_t scaled =
              static_cast<std::int16_t>((mag * kAlphaNumerator) >> kAlphaShift);
          // All-ones when the message is negative (parity ^ own sign), else
          // zero; (x ^ mask) - mask negates under the mask, branch-free.
          const std::int16_t mask = static_cast<std::int16_t>(
              static_cast<std::int16_t>(sgn[l] ^ qv[l]) >> 15);
          const std::int16_t updated =
              static_cast<std::int16_t>((scaled ^ mask) - mask);
          re[l] = static_cast<std::int8_t>(updated);
          post[l] = static_cast<std::int16_t>(qv[l] + updated);
        }
      }
    }
    // Lane-packed hard decisions + syndrome fold: one word per variable /
    // check carries all frames, so the convergence test costs O(n + edges)
    // for the whole batch.
    for (std::size_t v = 0; v < n; ++v) {
      const std::int16_t* post = buf.posterior + v * L;
      std::uint64_t bits = 0;
      for (int l = 0; l < L; ++l) {
        bits |= std::uint64_t{post[l] < 0} << l;
      }
      buf.hard[v] = bits;
    }
    std::uint64_t mismatch = 0;
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t deg = code.check_vars(c).size();
      const std::uint16_t* vars = buf.vars + code.check_edge_begin(c);
      std::uint64_t acc = buf.syn[c];
      for (std::size_t i = 0; i < deg; ++i) acc ^= buf.hard[vars[i]];
      mismatch |= acc;
    }
    const std::uint64_t newly = unresolved & ~mismatch;
    if (newly != 0) {
      // Snapshot each newly converged frame the iteration its syndrome
      // matched; later iterations of the surviving lanes cannot disturb it.
      for (std::size_t f = 0; f < batch; ++f) {
        if ((newly >> f) & 1u) {
          results[f].converged = true;
          results[f].iterations = iter;
          unpack_lane(buf.hard, n, static_cast<unsigned>(f), results[f].word);
        }
      }
      unresolved &= mismatch;
    }
  }
  // Frames that never converged ran the full iteration budget; report the
  // final hard decision like the float decoder does.
  for (std::size_t f = 0; f < batch; ++f) {
    if ((unresolved >> f) & 1u) {
      results[f].iterations = config.max_iterations;
      unpack_lane(buf.hard, n, static_cast<unsigned>(f), results[f].word);
    }
  }
}

std::size_t lanes_for(std::size_t batch) noexcept {
  for (const std::size_t lanes : {std::size_t{4}, std::size_t{8},
                                  std::size_t{16}, std::size_t{32}}) {
    if (batch <= lanes) return lanes;
  }
  return 64;
}

}  // namespace

void decode_syndrome_batch(const LdpcCode& code,
                           std::span<const QuantDecodeJob> jobs,
                           const DecoderConfig& config,
                           std::vector<DecodeResult>& results) {
  QKDPP_REQUIRE(!jobs.empty() && jobs.size() <= kMaxBatchFrames,
                "batch size outside [1, 64]");
  QKDPP_REQUIRE(code.n() <= 65536,
                "batch decoder stores H with 16-bit indices");
  QKDPP_REQUIRE(config.max_iterations >= 1, "need at least one iteration");
  for (const QuantDecodeJob& job : jobs) {
    QKDPP_REQUIRE(job.syndrome != nullptr && job.llr != nullptr,
                  "batch job missing syndrome or llr");
    QKDPP_REQUIRE(job.llr->size() == code.n(), "LLR length mismatch");
    QKDPP_REQUIRE(job.syndrome->size() == code.m(), "syndrome length mismatch");
  }

  const std::size_t lanes = lanes_for(jobs.size());
  const BatchBuffers buf =
      acquire_batch_buffers(config, code.n(), code.m(), code.edges(), lanes);

  // Compressed adjacency, shared by every lane: check-major var indices
  // narrowed to 16 bits (half the index bandwidth of the CSR the float
  // decoder walks).
  std::size_t edge = 0;
  for (std::size_t c = 0; c < code.m(); ++c) {
    QKDPP_REQUIRE(code.check_vars(c).size() <= 64,
                  "check degree exceeds kernel buffer");
    for (const std::uint32_t v : code.check_vars(c)) {
      buf.vars[edge++] = static_cast<std::uint16_t>(v);
    }
  }

  switch (lanes) {
    case 4:
      decode_batch_impl<4>(code, jobs, config, buf, results);
      break;
    case 8:
      decode_batch_impl<8>(code, jobs, config, buf, results);
      break;
    case 16:
      decode_batch_impl<16>(code, jobs, config, buf, results);
      break;
    case 32:
      decode_batch_impl<32>(code, jobs, config, buf, results);
      break;
    default:
      decode_batch_impl<64>(code, jobs, config, buf, results);
      break;
  }
}

DecodeResult decode_syndrome_quant(const LdpcCode& code, const BitVec& syndrome,
                                   const std::vector<float>& llr,
                                   const DecoderConfig& config) {
  const QuantDecodeJob job{&syndrome, &llr};
  std::vector<DecodeResult> results;
  decode_syndrome_batch(code, {&job, 1}, config, results);
  return std::move(results.front());
}

}  // namespace qkdpp::reconcile
