#include "reconcile/reconciler.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/entropy.hpp"
#include "common/error.hpp"
#include "reconcile/batch_decoder.hpp"

namespace qkdpp::reconcile {

LdpcFrameSender::LdpcFrameSender(const FramePlan& plan, const BitVec& payload,
                                 std::uint64_t frame_seed,
                                 Xoshiro256& private_rng)
    : plan_(plan) {
  const LdpcCode& code = code_by_id(plan.code_id);
  QKDPP_REQUIRE(payload.size() == plan.payload_bits,
                "payload does not match frame plan");
  adaptation_ = derive_adaptation(code.n(), plan.n_punctured,
                                  plan.n_shortened, frame_seed);
  frame_ = BitVec(code.n());
  for (std::size_t i = 0; i < adaptation_.payload.size(); ++i) {
    if (payload.get(i)) frame_.set(adaptation_.payload[i], true);
  }
  // Punctured positions carry the sender's *private* randomness - never
  // transmitted, unknown to Eve; shortened positions stay 0.
  for (const auto p : adaptation_.punctured) {
    if (private_rng.bernoulli(0.5)) frame_.set(p, true);
  }
  syndrome_ = code.syndrome(frame_);
}

LdpcFrameSender::Reveal LdpcFrameSender::reveal_chunk(
    unsigned round, unsigned max_rounds) const {
  QKDPP_REQUIRE(round >= 1, "blind rounds are 1-based");
  Reveal reveal;
  const std::size_t total = adaptation_.punctured.size();
  if (total == 0 || max_rounds == 0) return reveal;
  const std::size_t chunk = (total + max_rounds - 1) / max_rounds;
  const std::size_t begin = std::min(total, chunk * (round - 1));
  const std::size_t end = std::min(total, begin + chunk);
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t position = adaptation_.punctured[i];
    reveal.positions.push_back(position);
    reveal.values.push_back(frame_.get(position));
  }
  return reveal;
}

LdpcFrameReceiver::LdpcFrameReceiver(const FramePlan& plan,
                                     const BitVec& payload,
                                     std::uint64_t frame_seed, double qber,
                                     DecoderConfig decoder)
    : plan_(plan), decoder_(decoder) {
  const LdpcCode& code = code_by_id(plan.code_id);
  QKDPP_REQUIRE(payload.size() == plan.payload_bits,
                "payload does not match frame plan");
  adaptation_ = derive_adaptation(code.n(), plan.n_punctured,
                                  plan.n_shortened, frame_seed);
  const float channel = bsc_llr(qber);
  llr_.assign(code.n(), 0.0f);
  for (std::size_t i = 0; i < adaptation_.payload.size(); ++i) {
    llr_[adaptation_.payload[i]] = payload.get(i) ? -channel : channel;
  }
  for (const auto s : adaptation_.shortened) llr_[s] = kKnownLlr;
  // Punctured positions stay at LLR 0 (erasures).
}

LdpcFrameReceiver::Attempt LdpcFrameReceiver::try_decode(
    const BitVec& syndrome) {
  const LdpcCode& code = code_by_id(plan_.code_id);
  const DecodeResult result =
      decoder_.quantized ? decode_syndrome_quant(code, syndrome, llr_, decoder_)
                         : decode_syndrome(code, syndrome, llr_, decoder_);
  decoded_ = result.word;
  return Attempt{result.converged, result.iterations};
}

void LdpcFrameReceiver::apply_reveal(
    const std::vector<std::uint32_t>& positions, const BitVec& values) {
  QKDPP_REQUIRE(positions.size() == values.size(), "reveal shape mismatch");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    QKDPP_REQUIRE(positions[i] < llr_.size(), "reveal position out of range");
    llr_[positions[i]] = values.get(i) ? -kKnownLlr : kKnownLlr;
  }
}

BitVec LdpcFrameReceiver::corrected_payload() const {
  return decoded_.gather(adaptation_.payload);
}

ReconcileOutcome ldpc_reconcile_local(const BitVec& alice_payload,
                                      const BitVec& bob_payload, double qber,
                                      const FramePlan& plan,
                                      std::uint64_t frame_seed,
                                      const LdpcReconcilerConfig& config,
                                      Xoshiro256& alice_private_rng) {
  const LdpcCode& code = code_by_id(plan.code_id);
  LdpcFrameSender alice(plan, alice_payload, frame_seed, alice_private_rng);
  LdpcFrameReceiver bob(plan, bob_payload, frame_seed, qber, config.decoder);

  ReconcileOutcome outcome;
  outcome.rounds = 1;  // syndrome message
  outcome.leaked_bits = code.m() - plan.n_punctured;

  auto attempt = bob.try_decode(alice.syndrome());
  outcome.decoder_iterations = attempt.iterations;
  unsigned round = 0;
  while (!attempt.converged && round < config.max_blind_rounds) {
    ++round;
    const auto reveal = alice.reveal_chunk(round, config.max_blind_rounds);
    if (reveal.positions.empty()) break;
    bob.apply_reveal(reveal.positions, reveal.values);
    outcome.leaked_bits += reveal.positions.size();
    outcome.rounds += 1;
    attempt = bob.try_decode(alice.syndrome());
    outcome.decoder_iterations += attempt.iterations;
  }
  outcome.blind_rounds = round;
  outcome.success = attempt.converged;
  if (outcome.success) {
    outcome.corrected = bob.corrected_payload();
    // Converged to the wrong codeword? The verification stage catches it;
    // the outcome still reports success at this layer.
  }
  outcome.efficiency =
      static_cast<double>(outcome.leaked_bits) /
      (static_cast<double>(plan.payload_bits) * binary_entropy(qber));
  return outcome;
}

BatchReconcileStats ldpc_reconcile_key_batch(
    const BitVec& alice_key, const BitVec& bob_key, double qber,
    const FramePlan& plan, std::span<const std::uint64_t> frame_seeds,
    const LdpcReconcilerConfig& config, Xoshiro256& alice_private_rng,
    BlockArena* arena, BitVec& alice_out, BitVec& bob_out,
    std::vector<ReconcileOutcome>* per_frame) {
  const LdpcCode& code = code_by_id(plan.code_id);
  const std::size_t frames = frame_seeds.size();
  QKDPP_REQUIRE(alice_key.size() == bob_key.size(),
                "batch keys must have equal length");
  QKDPP_REQUIRE(frames * plan.payload_bits <= alice_key.size(),
                "frames exceed key length");
  BatchReconcileStats stats;
  stats.frames = frames;
  if (per_frame != nullptr) per_frame->assign(frames, ReconcileOutcome{});
  if (frames == 0) return stats;

  DecoderConfig decoder = config.decoder;
  if (arena != nullptr) decoder.arena = arena;

  // Alice's frames, built in frame order so her private RNG stream is
  // consumed exactly as the sequential single-frame path consumes it.
  BitVec local_payload;
  BitVec& payload = arena != nullptr ? arena->scratch_bits() : local_payload;
  std::vector<LdpcFrameSender> senders;
  senders.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    alice_key.subvec_into(f * plan.payload_bits, plan.payload_bits, payload);
    senders.emplace_back(plan, payload, frame_seeds[f], alice_private_rng);
  }

  // Bob's priors, identical to LdpcFrameReceiver's construction: channel
  // LLRs at payload positions, pinned shortened positions, erased
  // (punctured) positions at zero.
  const float channel = bsc_llr(qber);
  std::vector<RateAdaptation> adaptations(frames);
  std::vector<std::vector<float>> llrs(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    bob_key.subvec_into(f * plan.payload_bits, plan.payload_bits, payload);
    adaptations[f] = derive_adaptation(code.n(), plan.n_punctured,
                                       plan.n_shortened, frame_seeds[f]);
    std::vector<float>& llr = llrs[f];
    llr.assign(code.n(), 0.0f);
    const auto& positions = adaptations[f].payload;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      llr[positions[i]] = payload.get(i) ? -channel : channel;
    }
    for (const auto s : adaptations[f].shortened) llr[s] = kKnownLlr;
  }

  struct FrameAccount {
    std::uint64_t leaked = 0;
    std::uint64_t rounds = 1;  // syndrome message
    unsigned iterations = 0;
    unsigned blind = 0;
    bool converged = false;
    bool early_exit = false;
    BitVec corrected;
  };
  std::vector<FrameAccount> account(frames);
  for (auto& acct : account) acct.leaked = code.m() - plan.n_punctured;

  // Blind stages: every pending frame decodes in lockstep (sub-batches of
  // kMaxBatchFrames); survivors apply their own next reveal chunk and ride
  // into the next, smaller batch.
  std::vector<std::uint32_t> pending(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    pending[f] = static_cast<std::uint32_t>(f);
  }
  std::vector<QuantDecodeJob> jobs;
  std::vector<DecodeResult> results;
  while (!pending.empty()) {
    for (std::size_t off = 0; off < pending.size(); off += kMaxBatchFrames) {
      const std::size_t count =
          std::min(kMaxBatchFrames, pending.size() - off);
      jobs.clear();
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t f = pending[off + i];
        jobs.push_back(QuantDecodeJob{&senders[f].syndrome(), &llrs[f]});
      }
      decode_syndrome_batch(code, jobs, decoder, results);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t f = pending[off + i];
        FrameAccount& acct = account[f];
        acct.iterations += results[i].iterations;
        if (results[i].converged) {
          acct.converged = true;
          acct.early_exit = results[i].iterations < decoder.max_iterations;
          acct.corrected = results[i].word.gather(adaptations[f].payload);
        }
      }
    }
    std::vector<std::uint32_t> survivors;
    for (const std::uint32_t f : pending) {
      FrameAccount& acct = account[f];
      if (acct.converged || acct.blind >= config.max_blind_rounds) continue;
      acct.blind += 1;
      const auto reveal =
          senders[f].reveal_chunk(acct.blind, config.max_blind_rounds);
      if (reveal.positions.empty()) continue;  // nothing left to disclose
      for (std::size_t i = 0; i < reveal.positions.size(); ++i) {
        llrs[f][reveal.positions[i]] =
            reveal.values.get(i) ? -kKnownLlr : kKnownLlr;
      }
      acct.leaked += reveal.positions.size();
      acct.rounds += 1;
      survivors.push_back(f);
    }
    pending = std::move(survivors);
  }

  const double h = binary_entropy(qber);
  for (std::size_t f = 0; f < frames; ++f) {
    const FrameAccount& acct = account[f];
    stats.iterations += acct.iterations;
    stats.blind_rounds += acct.blind;
    stats.leaked_bits += acct.leaked;
    stats.rounds += acct.rounds;
    if (acct.converged) {
      stats.frames_ok += 1;
      if (acct.early_exit) stats.early_exit_frames += 1;
      alice_key.subvec_into(f * plan.payload_bits, plan.payload_bits, payload);
      alice_out.append(payload);
      bob_out.append(acct.corrected);
    }
    if (per_frame != nullptr) {
      ReconcileOutcome& outcome = (*per_frame)[f];
      outcome.success = acct.converged;
      outcome.corrected = acct.corrected;
      outcome.leaked_bits = acct.leaked;
      outcome.rounds = acct.rounds;
      outcome.decoder_iterations = acct.iterations;
      outcome.blind_rounds = acct.blind;
      outcome.efficiency =
          static_cast<double>(acct.leaked) /
          (static_cast<double>(plan.payload_bits) * h);
    }
  }
  return stats;
}

ReconcileOutcome cascade_reconcile_local(const BitVec& alice_key,
                                         const BitVec& bob_key, double qber,
                                         const CascadeConfig& config) {
  QKDPP_REQUIRE(alice_key.size() == bob_key.size(),
                "cascade keys must have equal length");
  LocalParityOracle oracle(alice_key, config.seed, config.passes);
  BitVec corrected = bob_key;
  const CascadeResult result = cascade_reconcile(corrected, oracle, config);

  ReconcileOutcome outcome;
  outcome.corrected = std::move(corrected);
  // Non-convergence (round budget exhausted with odd blocks outstanding)
  // means the keys provably still differ; converged runs may still carry a
  // residual undetected error pair, which verification catches.
  outcome.success = result.converged;
  outcome.leaked_bits = result.leaked_bits;
  outcome.rounds = result.rounds;
  outcome.efficiency = result.efficiency(alice_key.size(), qber);
  return outcome;
}

}  // namespace qkdpp::reconcile
