#include "reconcile/reconciler.hpp"

#include <algorithm>

#include "common/entropy.hpp"
#include "common/error.hpp"

namespace qkdpp::reconcile {

LdpcFrameSender::LdpcFrameSender(const FramePlan& plan, const BitVec& payload,
                                 std::uint64_t frame_seed,
                                 Xoshiro256& private_rng)
    : plan_(plan) {
  const LdpcCode& code = code_by_id(plan.code_id);
  QKDPP_REQUIRE(payload.size() == plan.payload_bits,
                "payload does not match frame plan");
  adaptation_ = derive_adaptation(code.n(), plan.n_punctured,
                                  plan.n_shortened, frame_seed);
  frame_ = BitVec(code.n());
  for (std::size_t i = 0; i < adaptation_.payload.size(); ++i) {
    if (payload.get(i)) frame_.set(adaptation_.payload[i], true);
  }
  // Punctured positions carry the sender's *private* randomness - never
  // transmitted, unknown to Eve; shortened positions stay 0.
  for (const auto p : adaptation_.punctured) {
    if (private_rng.bernoulli(0.5)) frame_.set(p, true);
  }
  syndrome_ = code.syndrome(frame_);
}

LdpcFrameSender::Reveal LdpcFrameSender::reveal_chunk(
    unsigned round, unsigned max_rounds) const {
  QKDPP_REQUIRE(round >= 1, "blind rounds are 1-based");
  Reveal reveal;
  const std::size_t total = adaptation_.punctured.size();
  if (total == 0 || max_rounds == 0) return reveal;
  const std::size_t chunk = (total + max_rounds - 1) / max_rounds;
  const std::size_t begin = std::min(total, chunk * (round - 1));
  const std::size_t end = std::min(total, begin + chunk);
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t position = adaptation_.punctured[i];
    reveal.positions.push_back(position);
    reveal.values.push_back(frame_.get(position));
  }
  return reveal;
}

LdpcFrameReceiver::LdpcFrameReceiver(const FramePlan& plan,
                                     const BitVec& payload,
                                     std::uint64_t frame_seed, double qber,
                                     DecoderConfig decoder)
    : plan_(plan), decoder_(decoder) {
  const LdpcCode& code = code_by_id(plan.code_id);
  QKDPP_REQUIRE(payload.size() == plan.payload_bits,
                "payload does not match frame plan");
  adaptation_ = derive_adaptation(code.n(), plan.n_punctured,
                                  plan.n_shortened, frame_seed);
  const float channel = bsc_llr(qber);
  llr_.assign(code.n(), 0.0f);
  for (std::size_t i = 0; i < adaptation_.payload.size(); ++i) {
    llr_[adaptation_.payload[i]] = payload.get(i) ? -channel : channel;
  }
  for (const auto s : adaptation_.shortened) llr_[s] = kKnownLlr;
  // Punctured positions stay at LLR 0 (erasures).
}

LdpcFrameReceiver::Attempt LdpcFrameReceiver::try_decode(
    const BitVec& syndrome) {
  const LdpcCode& code = code_by_id(plan_.code_id);
  const DecodeResult result = decode_syndrome(code, syndrome, llr_, decoder_);
  decoded_ = result.word;
  return Attempt{result.converged, result.iterations};
}

void LdpcFrameReceiver::apply_reveal(
    const std::vector<std::uint32_t>& positions, const BitVec& values) {
  QKDPP_REQUIRE(positions.size() == values.size(), "reveal shape mismatch");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    QKDPP_REQUIRE(positions[i] < llr_.size(), "reveal position out of range");
    llr_[positions[i]] = values.get(i) ? -kKnownLlr : kKnownLlr;
  }
}

BitVec LdpcFrameReceiver::corrected_payload() const {
  return decoded_.gather(adaptation_.payload);
}

ReconcileOutcome ldpc_reconcile_local(const BitVec& alice_payload,
                                      const BitVec& bob_payload, double qber,
                                      const FramePlan& plan,
                                      std::uint64_t frame_seed,
                                      const LdpcReconcilerConfig& config,
                                      Xoshiro256& alice_private_rng) {
  const LdpcCode& code = code_by_id(plan.code_id);
  LdpcFrameSender alice(plan, alice_payload, frame_seed, alice_private_rng);
  LdpcFrameReceiver bob(plan, bob_payload, frame_seed, qber, config.decoder);

  ReconcileOutcome outcome;
  outcome.rounds = 1;  // syndrome message
  outcome.leaked_bits = code.m() - plan.n_punctured;

  auto attempt = bob.try_decode(alice.syndrome());
  outcome.decoder_iterations = attempt.iterations;
  unsigned round = 0;
  while (!attempt.converged && round < config.max_blind_rounds) {
    ++round;
    const auto reveal = alice.reveal_chunk(round, config.max_blind_rounds);
    if (reveal.positions.empty()) break;
    bob.apply_reveal(reveal.positions, reveal.values);
    outcome.leaked_bits += reveal.positions.size();
    outcome.rounds += 1;
    attempt = bob.try_decode(alice.syndrome());
    outcome.decoder_iterations += attempt.iterations;
  }
  outcome.blind_rounds = round;
  outcome.success = attempt.converged;
  if (outcome.success) {
    outcome.corrected = bob.corrected_payload();
    // Converged to the wrong codeword? The verification stage catches it;
    // the outcome still reports success at this layer.
  }
  outcome.efficiency =
      static_cast<double>(outcome.leaked_bits) /
      (static_cast<double>(plan.payload_bits) * binary_entropy(qber));
  return outcome;
}

ReconcileOutcome cascade_reconcile_local(const BitVec& alice_key,
                                         const BitVec& bob_key, double qber,
                                         const CascadeConfig& config) {
  QKDPP_REQUIRE(alice_key.size() == bob_key.size(),
                "cascade keys must have equal length");
  LocalParityOracle oracle(alice_key, config.seed, config.passes);
  BitVec corrected = bob_key;
  const CascadeResult result = cascade_reconcile(corrected, oracle, config);

  ReconcileOutcome outcome;
  outcome.corrected = std::move(corrected);
  // Non-convergence (round budget exhausted with odd blocks outstanding)
  // means the keys provably still differ; converged runs may still carry a
  // residual undetected error pair, which verification catches.
  outcome.success = result.converged;
  outcome.leaked_bits = result.leaked_bits;
  outcome.rounds = result.rounds;
  outcome.efficiency = result.efficiency(alice_key.size(), qber);
  return outcome;
}

}  // namespace qkdpp::reconcile
