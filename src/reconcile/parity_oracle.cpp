#include "reconcile/parity_oracle.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {

std::vector<std::uint32_t> cascade_permutation(std::size_t n,
                                               std::uint64_t seed,
                                               std::uint32_t pass) {
  if (pass == 0) {
    std::vector<std::uint32_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) {
      identity[i] = static_cast<std::uint32_t>(i);
    }
    return identity;
  }
  // Mix the pass into the seed (splitmix-style odd constants) so passes are
  // independent permutations.
  Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (pass + 1)));
  return rng.permutation(n);
}

CascadeResponder::CascadeResponder(const BitVec& alice_key, std::uint64_t seed,
                                   std::uint32_t passes)
    : n_(alice_key.size()) {
  QKDPP_REQUIRE(passes >= 1, "cascade needs at least one pass");
  prefix_.reserve(passes);
  for (std::uint32_t pass = 0; pass < passes; ++pass) {
    const auto perm = cascade_permutation(n_, seed, pass);
    BitVec prefix(n_ + 1);
    bool acc = false;
    for (std::size_t j = 0; j < n_; ++j) {
      acc ^= alice_key.get(perm[j]);
      if (acc) prefix.set(j + 1, true);
    }
    prefix_.push_back(std::move(prefix));
  }
}

BitVec CascadeResponder::parities(std::uint32_t pass,
                                  std::span<const ParityRange> ranges) const {
  QKDPP_REQUIRE(pass < prefix_.size(), "pass out of range");
  const BitVec& prefix = prefix_[pass];
  BitVec out(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto [begin, end] = ranges[i];
    QKDPP_REQUIRE(begin <= end && end <= n_, "parity range out of bounds");
    if (prefix.get(begin) != prefix.get(end)) out.set(i, true);
  }
  return out;
}

}  // namespace qkdpp::reconcile
