// Polar-code reconciliation (successive-cancellation decoding).
//
// The third reconciliation family next to Cascade and LDPC, included because
// accelerated QKD stacks often prefer polar codes: the encode/decode
// butterfly is a fixed O(N log N) dataflow with no irregular memory access -
// ideal for FPGAs and GPUs.
//
// Scheme (asymmetric Slepian-Wolf / source coding with side information):
// the Arikan transform G = F^{(x)m}, F = [[1,0],[1,1]], is an involution
// over GF(2). Alice computes u = G x_A and discloses u on the *frozen set*
// (the N h2(q) (1+margin) synthetically-worst bit channels for BSC(q),
// selected by Bhattacharyya recursion). Bob runs SC decoding with channel
// LLRs from his correlated copy x_B and the disclosed u-bits pinned,
// recovers u-hat everywhere, and applies G again: x-hat = G u-hat = x_A.
// Leakage = |frozen set|.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"

namespace qkdpp::reconcile {

class PolarCode {
 public:
  /// N = 2^log2_n bit channels, frozen set sized/selected for BSC(`qber`)
  /// with rate margin `margin` (f_EC target: leakage = margin * N h2(q),
  /// clamped to [1, N]).
  PolarCode(unsigned log2_n, double qber, double margin);

  std::size_t n() const noexcept { return n_; }
  std::size_t frozen_count() const noexcept { return frozen_count_; }
  /// frozen_mask()[i] == true iff u_i is disclosed.
  const BitVec& frozen_mask() const noexcept { return frozen_mask_; }

  /// The Arikan transform u -> u G (involution; also the encoder).
  static BitVec transform(const BitVec& input);

  /// Alice: u = G x; returns the frozen-position values in ascending
  /// position order (the message to Bob). Leakage = frozen_count() bits.
  BitVec freeze_values(const BitVec& x) const;

  /// Bob: SC-decode x_A from his copy's LLRs + Alice's frozen values.
  /// `llr[i] > 0` means x_i likelier 0 (e.g. +/- bsc_llr(q) by Bob's bit).
  BitVec decode(const std::vector<float>& llr,
                const BitVec& frozen_values) const;

 private:
  std::size_t n_;
  unsigned stages_;
  std::size_t frozen_count_;
  BitVec frozen_mask_;
};

/// One-shot local reconciliation (mirrors ldpc_reconcile_local's role).
struct PolarOutcome {
  bool success = false;      ///< decoded copy matches (verified internally)
  BitVec corrected;          ///< Bob's estimate of Alice's key
  std::uint64_t leaked_bits = 0;
  double efficiency = 0.0;   ///< leak / (n h2(q))
};

PolarOutcome polar_reconcile_local(const BitVec& alice, const BitVec& bob,
                                   double qber, double margin);

}  // namespace qkdpp::reconcile
