#include "reconcile/ldpc_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/arena.hpp"
#include "common/error.hpp"

namespace qkdpp::reconcile {

float bsc_llr(double qber) noexcept {
  const double q = std::clamp(qber, 1e-9, 0.5 - 1e-9);
  return static_cast<float>(std::log((1.0 - q) / q));
}

namespace {

inline float clamp_llr(float x) noexcept {
  return std::clamp(x, -kKnownLlr, kKnownLlr);
}

/// tanh-domain check update guard: atanh saturates fast, so keep the
/// product away from +-1.
inline float safe_atanh(float x) noexcept {
  constexpr float kLimit = 0.9999999f;
  return std::atanh(std::clamp(x, -kLimit, kLimit));
}

/// Word-parallel sign take: build each 64-bit word in a register instead of
/// a read-modify-write per bit. Keeps the exact `< 0` semantics (so -0.0 and
/// NaN posteriors decide 0, same as the scalar reference).
void hard_decision(const float* posterior, std::size_t n, BitVec& word) {
  word.resize(n);
  auto words = word.mutable_words();
  for (std::size_t base = 0; base < n; base += 64) {
    const std::size_t lim = std::min<std::size_t>(64, n - base);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < lim; ++k) {
      acc |= std::uint64_t{posterior[base + k] < 0.0f} << k;
    }
    words[base >> 6] = acc;
  }
}

/// Per-thread decoder workspace: message/posterior buffers sized by the
/// largest code decoded on this thread, reused across frames so the
/// per-frame cost is an assign() into existing capacity instead of three
/// heap allocations. Only the fallback when no arena is supplied.
struct DecoderScratch {
  std::vector<float> r;          // check -> var
  std::vector<float> q;          // var -> check
  std::vector<float> posterior;
};

DecoderScratch& tls_scratch() {
  thread_local DecoderScratch scratch;
  return scratch;
}

/// Uninitialized float buffers for one decode: bump-allocated from the
/// block arena when the caller supplies one (freed wholesale at the block
/// boundary), thread-local vectors otherwise.
struct FloatBuffers {
  float* r = nullptr;          // check -> var, `edges` entries
  float* q = nullptr;          // var -> check, `edges` entries (flooding)
  float* posterior = nullptr;  // `n` entries
};

FloatBuffers acquire_float_buffers(const DecoderConfig& config, std::size_t n,
                                   std::size_t edges, bool need_q) {
  FloatBuffers buf;
  if (config.arena != nullptr) {
    buf.r = reinterpret_cast<float*>(config.arena->bytes(edges * sizeof(float)));
    if (need_q) {
      buf.q =
          reinterpret_cast<float*>(config.arena->bytes(edges * sizeof(float)));
    }
    buf.posterior =
        reinterpret_cast<float*>(config.arena->bytes(n * sizeof(float)));
    return buf;
  }
  DecoderScratch& scratch = tls_scratch();
  scratch.r.resize(edges);
  scratch.posterior.resize(n);
  buf.r = scratch.r.data();
  buf.posterior = scratch.posterior.data();
  if (need_q) {
    scratch.q.resize(edges);
    buf.q = scratch.q.data();
  }
  return buf;
}

/// Flooding-schedule decoder. Per-edge messages in check-major order; var
/// and check updates are embarrassingly parallel and optionally run on the
/// pool - this is the code path the accelerator backends model.
DecodeResult decode_flooding(const LdpcCode& code, const BitVec& syndrome,
                             const std::vector<float>& llr,
                             const DecoderConfig& config) {
  const std::size_t n = code.n();
  const std::size_t m = code.m();
  const std::size_t edges = code.edges();
  const FloatBuffers buf =
      acquire_float_buffers(config, n, edges, /*need_q=*/true);
  float* const r = buf.r;          // check -> var
  float* const q = buf.q;          // var -> check
  float* const posterior = buf.posterior;
  std::memset(r, 0, edges * sizeof(float));
  std::memset(q, 0, edges * sizeof(float));

  auto var_update = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      float total = llr[v];
      for (const auto e : code.var_edges(v)) total += r[e];
      posterior[v] = total;
      for (const auto e : code.var_edges(v)) q[e] = clamp_llr(total - r[e]);
    }
  };

  auto check_update = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const auto vars = code.check_vars(c);
      const std::uint32_t base = code.check_edge_begin(c);
      const float target = syndrome.get(c) ? -1.0f : 1.0f;
      if (config.algorithm == BpAlgorithm::kMinSum) {
        // Two-minimum trick.
        float min1 = kKnownLlr, min2 = kKnownLlr;
        std::size_t argmin = 0;
        float sign = target;
        for (std::size_t i = 0; i < vars.size(); ++i) {
          const float x = q[base + i];
          if (x < 0) sign = -sign;
          const float mag = std::fabs(x);
          if (mag < min1) {
            min2 = min1;
            min1 = mag;
            argmin = i;
          } else if (mag < min2) {
            min2 = mag;
          }
        }
        for (std::size_t i = 0; i < vars.size(); ++i) {
          const float x = q[base + i];
          const float self_sign = x < 0 ? -1.0f : 1.0f;
          const float mag = (i == argmin) ? min2 : min1;
          r[base + i] = config.min_sum_scale * sign * self_sign * mag;
        }
      } else {
        // Sum-product with prefix/suffix tanh products (exclusion without
        // division).
        const std::size_t deg = vars.size();
        float prefix[64];
        QKDPP_REQUIRE(deg <= 64, "check degree exceeds kernel buffer");
        float acc = 1.0f;
        for (std::size_t i = 0; i < deg; ++i) {
          prefix[i] = acc;
          acc *= std::tanh(0.5f * q[base + i]);
        }
        float suffix = 1.0f;
        for (std::size_t i = deg; i-- > 0;) {
          r[base + i] = 2.0f * safe_atanh(target * prefix[i] * suffix);
          suffix *= std::tanh(0.5f * q[base + i]);
        }
      }
    }
  };

  auto posterior_update = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      float total = llr[v];
      for (const auto e : code.var_edges(v)) total += r[e];
      posterior[v] = total;
    }
  };

  DecodeResult result;
  for (unsigned iter = 1; iter <= config.max_iterations; ++iter) {
    result.iterations = iter;
    if (config.pool != nullptr) {
      config.pool->parallel_for(0, n, 2048, var_update);
      config.pool->parallel_for(0, m, 1024, check_update);
      config.pool->parallel_for(0, n, 2048, posterior_update);
    } else {
      var_update(0, n);
      check_update(0, m);
      posterior_update(0, n);
    }
    hard_decision(posterior, n, result.word);
    if (code.syndrome_matches(result.word, syndrome)) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

/// Layered-schedule decoder: checks are processed sequentially against a
/// live posterior, roughly halving the iterations to convergence.
DecodeResult decode_layered(const LdpcCode& code, const BitVec& syndrome,
                            const std::vector<float>& llr,
                            const DecoderConfig& config) {
  const std::size_t n = code.n();
  const std::size_t m = code.m();
  const FloatBuffers buf =
      acquire_float_buffers(config, n, code.edges(), /*need_q=*/false);
  float* const r = buf.r;
  float* const posterior = buf.posterior;
  std::memset(r, 0, code.edges() * sizeof(float));
  std::memcpy(posterior, llr.data(), n * sizeof(float));

  DecodeResult result;
  for (unsigned iter = 1; iter <= config.max_iterations; ++iter) {
    result.iterations = iter;
    for (std::size_t c = 0; c < m; ++c) {
      const auto vars = code.check_vars(c);
      const std::size_t deg = vars.size();
      const std::uint32_t base = code.check_edge_begin(c);
      const float target = syndrome.get(c) ? -1.0f : 1.0f;
      float q_local[64];
      QKDPP_REQUIRE(deg <= 64, "check degree exceeds kernel buffer");
      for (std::size_t i = 0; i < deg; ++i) {
        q_local[i] = clamp_llr(posterior[vars[i]] - r[base + i]);
      }
      if (config.algorithm == BpAlgorithm::kMinSum) {
        float min1 = kKnownLlr, min2 = kKnownLlr;
        std::size_t argmin = 0;
        float sign = target;
        for (std::size_t i = 0; i < deg; ++i) {
          if (q_local[i] < 0) sign = -sign;
          const float mag = std::fabs(q_local[i]);
          if (mag < min1) {
            min2 = min1;
            min1 = mag;
            argmin = i;
          } else if (mag < min2) {
            min2 = mag;
          }
        }
        for (std::size_t i = 0; i < deg; ++i) {
          const float self_sign = q_local[i] < 0 ? -1.0f : 1.0f;
          const float mag = (i == argmin) ? min2 : min1;
          const float updated = config.min_sum_scale * sign * self_sign * mag;
          posterior[vars[i]] = q_local[i] + updated;
          r[base + i] = updated;
        }
      } else {
        float prefix[64];
        float acc = 1.0f;
        for (std::size_t i = 0; i < deg; ++i) {
          prefix[i] = acc;
          acc *= std::tanh(0.5f * q_local[i]);
        }
        float suffix = 1.0f;
        for (std::size_t i = deg; i-- > 0;) {
          const float updated =
              2.0f * safe_atanh(target * prefix[i] * suffix);
          suffix *= std::tanh(0.5f * q_local[i]);
          posterior[vars[i]] = q_local[i] + updated;
          r[base + i] = updated;
        }
      }
    }
    hard_decision(posterior, n, result.word);
    if (code.syndrome_matches(result.word, syndrome)) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace

DecodeResult decode_syndrome(const LdpcCode& code, const BitVec& syndrome,
                             const std::vector<float>& llr,
                             const DecoderConfig& config) {
  QKDPP_REQUIRE(llr.size() == code.n(), "LLR length mismatch");
  QKDPP_REQUIRE(syndrome.size() == code.m(), "syndrome length mismatch");
  QKDPP_REQUIRE(config.max_iterations >= 1, "need at least one iteration");
  if (config.schedule == BpSchedule::kFlooding) {
    return decode_flooding(code, syndrome, llr, config);
  }
  return decode_layered(code, syndrome, llr, config);
}

}  // namespace qkdpp::reconcile
