// Secret-key length accounting: how many bits survive privacy amplification.
//
// Finite-key leftover-hash-lemma budget (Tomamichel/Renner-style, simplified
// composable form):
//
//   l = n (1 - h2(e_ph + delta_pe)) - leak_EC - log2(2/eps_corr)
//       - 2 log2(1/(2 eps_pa))
//
// where n is the reconciled key length, e_ph the phase-error estimate,
// delta_pe the sampling penalty, leak_EC every bit reconciliation disclosed.
// The asymptotic decoy-state rate (per pulse) for benches reproducing the
// SKR-vs-distance curve is also here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qkdpp::privacy {

/// Composable security-parameter budget. Defaults give overall failure
/// probability of order 1e-10 per block.
struct SecurityParams {
  double eps_pe = 1e-10;    ///< parameter-estimation confidence
  double eps_corr = 1e-15;  ///< correctness (verification collision)
  double eps_pa = 1e-10;    ///< privacy-amplification smoothing
};

struct PaPlan {
  std::size_t input_bits = 0;
  std::size_t output_bits = 0;
  double phase_error_bound = 0.5;  ///< e_ph + sampling penalty, clamped
  bool viable = false;             ///< output_bits > 0
};

/// Finite-key plan for one block.
///   n_key:       reconciled bits entering PA
///   n_sample:    bits sacrificed for estimation (drives the penalty)
///   phase_error: observed/estimated phase error rate (BB84: = sampled QBER)
///   leak_ec:     reconciliation leakage in bits (syndrome + reveals + tags)
PaPlan plan_privacy_amplification(std::size_t n_key, std::size_t n_sample,
                                  double phase_error, std::uint64_t leak_ec,
                                  const SecurityParams& params = {});

/// Asymptotic decoy-state BB84 secret key rate per *emitted signal pulse*:
///   R = q_sift [ Q1 (1 - h2(e1_upper)) - Q_mu f_ec h2(E_mu) ]
/// Negative results are clamped to 0.
double decoy_key_rate_asymptotic(double q_sift, double q1_lower,
                                 double e1_upper, double q_mu, double e_mu,
                                 double f_ec);

}  // namespace qkdpp::privacy
