// Toeplitz-matrix universal hashing for privacy amplification.
//
// A random r x n binary Toeplitz matrix is a 2-universal hash family, and by
// the leftover hash lemma compresses the reconciled key to its private
// length. Three bit-exact implementations:
//
//   * direct  - word-sliced: for every set input bit, XOR a shifted window
//     of the seed into the output. O(|x|_1 * r / 64); unbeatable on tiny or
//     very sparse inputs.
//   * clmul   - the Toeplitz product is the middle slice of the carry-less
//     convolution x * t, computed as a word-level binary-polynomial
//     multiply (Karatsuba over a windowed/PCLMUL schoolbook, see
//     common/clmul.hpp). The default CPU kernel: with hardware PCLMUL the
//     measured crossover vs direct is <= 2^6 input bits and it stays ahead
//     of the NTT at every size (>= 100x at 10^5-bit blocks on the bench
//     machine, 0.7 ms vs 75 ms).
//   * ntt     - the same convolution computed exactly with the
//     mod-998244353 NTT after expanding every bit to a uint32 lane.
//     O(N log N) but with a ~64x wider data path than clmul; kept as the
//     reference oracle and as the kernel the bandwidth-rich gpu-sim
//     backend models (accelerators implement the transform, not the
//     word-twiddling).
//
// Seed convention: t has n + r - 1 bits; output y_j = XOR_i x_i t[n-1+j-i],
// i.e. y = (x conv t)[n-1 .. n-1+r).
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"

namespace qkdpp::privacy {

/// Expand a 64-bit protocol seed into Toeplitz seed bits (xoshiro stream).
/// Both peers derive identical seeds from the PaParams message.
BitVec toeplitz_seed(std::uint64_t seed, std::size_t nbits);

/// Direct word-sliced Toeplitz product. seed.size() == input.size()+out_len-1.
BitVec toeplitz_hash_direct(const BitVec& input, const BitVec& seed,
                            std::size_t out_len);

/// Carry-less-convolution Toeplitz product; bit-identical to direct/NTT.
BitVec toeplitz_hash_clmul(const BitVec& input, const BitVec& seed,
                           std::size_t out_len);

/// NTT-convolution Toeplitz product; bit-identical to the direct version.
BitVec toeplitz_hash_ntt(const BitVec& input, const BitVec& seed,
                         std::size_t out_len);

/// Size-dispatching entry point (direct below kClmulCrossover, clmul above).
BitVec toeplitz_hash(const BitVec& input, const BitVec& seed,
                     std::size_t out_len);

/// Input length beyond which toeplitz_hash() switches from the direct
/// window-XOR kernel to the clmul convolution. With hardware PCLMUL the
/// measured crossover is at or below 64 bits (see bench_toeplitz); kept
/// slightly conservative so portable-clmul builds on sparse inputs do not
/// regress.
constexpr std::size_t kClmulCrossover = std::size_t{1} << 6;

}  // namespace qkdpp::privacy
