// Toeplitz-matrix universal hashing for privacy amplification.
//
// A random r x n binary Toeplitz matrix is a 2-universal hash family, and by
// the leftover hash lemma compresses the reconciled key to its private
// length. Two bit-exact implementations:
//
//   * direct  - word-sliced: for every set input bit, XOR a shifted window
//     of the seed into the output. O(|x|_1 * r / 64); the 1/64 word
//     parallelism makes it surprisingly strong on CPUs.
//   * ntt     - the Toeplitz product is a slice of the GF(2) convolution
//     x * t, computed exactly with the mod-998244353 NTT. O(N log N).
//     Measured CPU crossover vs direct is ~2^19 input bits (bench_toeplitz);
//     on bandwidth-rich accelerators the NTT wins far earlier, which is why
//     it is the kernel the gpu-sim backend models.
//
// Seed convention: t has n + r - 1 bits; output y_j = XOR_i x_i t[n-1+j-i],
// i.e. y = (x conv t)[n-1 .. n-1+r).
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"

namespace qkdpp::privacy {

/// Expand a 64-bit protocol seed into Toeplitz seed bits (xoshiro stream).
/// Both peers derive identical seeds from the PaParams message.
BitVec toeplitz_seed(std::uint64_t seed, std::size_t nbits);

/// Direct word-sliced Toeplitz product. seed.size() == input.size()+out_len-1.
BitVec toeplitz_hash_direct(const BitVec& input, const BitVec& seed,
                            std::size_t out_len);

/// NTT-convolution Toeplitz product; bit-identical to the direct version.
BitVec toeplitz_hash_ntt(const BitVec& input, const BitVec& seed,
                         std::size_t out_len);

/// Size-dispatching entry point (direct below kNttCrossover, NTT above).
BitVec toeplitz_hash(const BitVec& input, const BitVec& seed,
                     std::size_t out_len);

/// Input length beyond which the NTT path is selected by toeplitz_hash()
/// (measured CPU crossover, see bench_toeplitz).
constexpr std::size_t kNttCrossover = std::size_t{1} << 19;

}  // namespace qkdpp::privacy
