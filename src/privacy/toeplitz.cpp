#include "privacy/toeplitz.hpp"

#include <vector>

#include "common/clmul.hpp"
#include "common/error.hpp"
#include "common/ntt.hpp"
#include "common/rng.hpp"

namespace qkdpp::privacy {

BitVec toeplitz_seed(std::uint64_t seed, std::size_t nbits) {
  Xoshiro256 rng(seed ^ 0x70e9117200fULL);
  return rng.random_bits(nbits);
}

namespace {

void check_shapes(const BitVec& input, const BitVec& seed,
                  std::size_t out_len) {
  QKDPP_REQUIRE(out_len > 0, "empty Toeplitz output");
  QKDPP_REQUIRE(!input.empty(), "empty Toeplitz input");
  QKDPP_REQUIRE(seed.size() == input.size() + out_len - 1,
                "Toeplitz seed length must be n + r - 1");
}

/// dest ^= window of `src` starting at bit `offset`, length = dest.size().
void xor_window(BitVec& dest, const BitVec& src, std::size_t offset) {
  const std::size_t nbits = dest.size();
  auto dest_words = dest.mutable_words();
  const auto src_words = src.words();
  const std::size_t shift = offset & 63;
  const std::size_t first = offset >> 6;
  const std::size_t n_words = dest_words.size();
  if (shift == 0) {
    for (std::size_t w = 0; w < n_words; ++w) {
      dest_words[w] ^= src_words[first + w];
    }
  } else {
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t value = src_words[first + w] >> shift;
      if (first + w + 1 < src_words.size()) {
        value |= src_words[first + w + 1] << (64 - shift);
      }
      dest_words[w] ^= value;
    }
  }
  // Re-establish the tail invariant (the window may have brought in bits
  // beyond dest's logical length).
  const std::size_t tail = nbits & 63;
  if (tail != 0) dest_words[n_words - 1] &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace

BitVec toeplitz_hash_direct(const BitVec& input, const BitVec& seed,
                            std::size_t out_len) {
  check_shapes(input, seed, out_len);
  const std::size_t n = input.size();
  BitVec out(out_len);
  // y_j = XOR_i x_i t[n-1+j-i]  =>  for each set x_i, XOR the window
  // t[n-1-i .. n-1-i+r) into y.
  for (std::size_t i = 0; i < n; ++i) {
    if (input.get(i)) xor_window(out, seed, n - 1 - i);
  }
  return out;
}

BitVec toeplitz_hash_clmul(const BitVec& input, const BitVec& seed,
                           std::size_t out_len) {
  check_shapes(input, seed, out_len);
  // y = (x conv t)[n-1 .. n-1+r): one word-level carry-less multiply, then
  // a word-sliced window copy.
  return gf2_poly_mul(input, seed).subvec(input.size() - 1, out_len);
}

BitVec toeplitz_hash_ntt(const BitVec& input, const BitVec& seed,
                         std::size_t out_len) {
  check_shapes(input, seed, out_len);
  const std::size_t n = input.size();
  QKDPP_REQUIRE(n + seed.size() - 1 <= kNttMaxLength,
                "Toeplitz block exceeds NTT transform limit");

  std::vector<std::uint32_t> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = input.get(i);
  std::vector<std::uint32_t> t(seed.size());
  for (std::size_t i = 0; i < seed.size(); ++i) t[i] = seed.get(i);

  const auto conv = ntt_convolve(x, t);
  BitVec out(out_len);
  for (std::size_t j = 0; j < out_len; ++j) {
    if (conv[n - 1 + j] & 1u) out.set(j, true);
  }
  return out;
}

BitVec toeplitz_hash(const BitVec& input, const BitVec& seed,
                     std::size_t out_len) {
  if (input.size() >= kClmulCrossover) {
    return toeplitz_hash_clmul(input, seed, out_len);
  }
  return toeplitz_hash_direct(input, seed, out_len);
}

}  // namespace qkdpp::privacy
