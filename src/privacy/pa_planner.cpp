#include "privacy/pa_planner.hpp"

#include <algorithm>
#include <cmath>

#include "common/entropy.hpp"
#include "common/error.hpp"

namespace qkdpp::privacy {

PaPlan plan_privacy_amplification(std::size_t n_key, std::size_t n_sample,
                                  double phase_error, std::uint64_t leak_ec,
                                  const SecurityParams& params) {
  QKDPP_REQUIRE(phase_error >= 0 && phase_error <= 1, "phase error outside [0,1]");
  QKDPP_REQUIRE(params.eps_pe > 0 && params.eps_corr > 0 && params.eps_pa > 0,
                "security parameters must be positive");
  PaPlan plan;
  plan.input_bits = n_key;
  if (n_key == 0) return plan;

  const double penalty = sampling_correction(n_key, n_sample, params.eps_pe);
  plan.phase_error_bound = std::min(0.5, phase_error + penalty);

  const double entropy_rate = 1.0 - binary_entropy(plan.phase_error_bound);
  // Both epsilon costs are key-length *penalties*: for lax epsilons
  // (eps_corr > 2, eps_pa > 0.5) the raw formulas go negative, which would
  // *credit* the adversary's failure allowance back as secret key. A cost
  // can never be less than zero bits.
  const double correctness_cost =
      std::max(0.0, std::log2(2.0 / params.eps_corr));
  const double pa_cost =
      std::max(0.0, 2.0 * std::log2(1.0 / (2.0 * params.eps_pa)));
  const double length = static_cast<double>(n_key) * entropy_rate -
                        static_cast<double>(leak_ec) - correctness_cost -
                        pa_cost;
  if (length >= 1.0) {
    // Hashing cannot stretch: never emit more bits than went in.
    plan.output_bits =
        std::min<std::size_t>(static_cast<std::size_t>(length), n_key);
    plan.viable = true;
  }
  return plan;
}

double decoy_key_rate_asymptotic(double q_sift, double q1_lower,
                                 double e1_upper, double q_mu, double e_mu,
                                 double f_ec) {
  const double secret = q1_lower * (1.0 - binary_entropy(e1_upper));
  const double correction = q_mu * f_ec * binary_entropy(e_mu);
  return std::max(0.0, q_sift * (secret - correction));
}

}  // namespace qkdpp::privacy
