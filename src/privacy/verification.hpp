// Error verification: confirm both reconciled keys are identical before
// privacy amplification, with an eps-universal polynomial hash over
// GF(2^128). Collision probability <= ceil(len_bytes/16 + 1) / 2^128 per
// challenge, charged against eps_corr in the security budget. The tag is
// derived from a fresh public seed each time, so reconciliation cannot
// adaptively bias it.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "common/gf2.hpp"

namespace qkdpp::privacy {

/// Tag of `key` under the hash point derived from `seed`.
U128 verification_tag(const BitVec& key, std::uint64_t seed);

/// Convenience: do two keys (held by one process, e.g. in tests) verify?
inline bool keys_verify(const BitVec& a, const BitVec& b,
                        std::uint64_t seed) {
  return verification_tag(a, seed) == verification_tag(b, seed);
}

}  // namespace qkdpp::privacy
