#include "privacy/verification.hpp"

#include "common/rng.hpp"

namespace qkdpp::privacy {

namespace {

/// Horner evaluation of the key's 16-byte blocks at point r (same
/// construction as auth::poly_hash, reimplemented on BitVec bytes to keep
/// the privacy module independent of the auth module).
U128 poly_eval(U128 r, const std::vector<std::uint8_t>& bytes) {
  U128 h{0, static_cast<std::uint64_t>(bytes.size())};
  h = gf128_mul(h, r);
  for (std::size_t pos = 0; pos < bytes.size(); pos += 16) {
    U128 block{0, 0};
    const std::size_t n = std::min<std::size_t>(16, bytes.size() - pos);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t byte = bytes[pos + i];
      if (i < 8) {
        block.lo |= byte << (8 * i);
      } else {
        block.hi |= byte << (8 * (i - 8));
      }
    }
    h ^= block;
    h = gf128_mul(h, r);
  }
  return h;
}

}  // namespace

U128 verification_tag(const BitVec& key, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x5eedf0011ULL);
  const U128 r{rng.next_u64(), rng.next_u64()};
  return poly_eval(r, key.to_bytes());
}

}  // namespace qkdpp::privacy
