// Mini key-management store, ETSI GS QKD 014 flavoured.
//
// Distilled keys land here under monotonically increasing ids; consumers
// draw either "any next key material" (get_key) or a specific key by id
// (get_key_with_id) - the two-endpoint pattern the ETSI local API uses so
// that an SAE pair can agree on which key secures which flow. Thread-safe;
// consumption is destructive exactly once.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "common/bitvec.hpp"

namespace qkdpp::pipeline {

struct StoredKey {
  std::uint64_t key_id = 0;
  BitVec bits;
};

class KeyStore {
 public:
  /// Deposit a distilled key; returns its assigned id.
  std::uint64_t deposit(BitVec key);

  /// Oldest unconsumed key (FIFO), if any. Destructive.
  std::optional<StoredKey> get_key();

  /// Specific key by id (peer-designated). Destructive; nullopt if absent
  /// or already consumed.
  std::optional<StoredKey> get_key_with_id(std::uint64_t key_id);

  std::size_t keys_available() const;
  std::uint64_t bits_available() const;
  std::uint64_t total_deposited_bits() const;
  std::uint64_t total_consumed_bits() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, BitVec> keys_;
  std::uint64_t next_id_ = 1;
  std::uint64_t deposited_bits_ = 0;
  std::uint64_t consumed_bits_ = 0;
};

}  // namespace qkdpp::pipeline
