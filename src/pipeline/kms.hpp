// Mini key-management store, ETSI GS QKD 014 flavoured.
//
// Distilled keys land here under monotonically increasing ids; consumers
// draw either "any next key material" (get_key) or a specific key by id
// (get_key_with_id) - the two-endpoint pattern the ETSI local API uses so
// that an SAE pair can agree on which key secures which flow. Thread-safe;
// consumption is destructive exactly once.
//
// Internally the key map is striped across `KeyStoreConfig::shards`
// shards (id % shards), each with its own lock, and every aggregate
// counter (deposited/consumed/rejected bits, occupancy, id mint) is an
// atomic - so concurrent depositors and consumers touching different keys
// never contend on a global mutex. Capacity enforcement is a CAS
// reservation on the occupancy atomic; only depositors that must *block*
// for space (kBlock policy) take a shared slow-path mutex, and close()
// wakes all of them at once across every shard.
//
// The store is bounded: `capacity_bits` caps the material held at once
// (0 = unbounded). A deposit that would overflow is either rejected with a
// statistic (kReject - the orchestrator's default, so a slow consumer shows
// up as `rejected_bits` instead of unbounded memory) or blocks the
// depositor until consumers drain space (kBlock - classic backpressure;
// close() releases blocked depositors on shutdown). Empty keys are always
// rejected: a zero-bit "key" has no material, and minting an id for it
// would let consumers draw nothing while keys_available() claims otherwise.
// Every rejection carries a typed RejectReason (DepositResult), so callers
// can distinguish a capacity bound from a shutdown instead of decoding an
// id==0 sentinel. Draws are attributed per consumer name for ETSI-style
// SAE accounting; an empty name is attributed to the reserved "anonymous"
// consumer so unlabeled draws stay visible in the ledger.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/bitvec.hpp"
#include "common/mutex.hpp"

namespace qkdpp::pipeline {

struct StoredKey {
  std::uint64_t key_id = 0;
  BitVec bits;
};

/// Why a deposit was refused. kNone means the key was accepted.
enum class RejectReason : std::uint8_t {
  kNone = 0,      ///< accepted: DepositResult::key_id is valid
  kEmpty,         ///< zero-bit key (no material to store)
  kOversized,     ///< larger than the whole store capacity (can never fit)
  kCapacity,      ///< store full under kReject
  kClosed,        ///< blocked depositor released by close()
  kCount_,        ///< sentinel: number of reasons, not a reason itself
};
inline constexpr std::size_t kRejectReasonCount =
    static_cast<std::size_t>(RejectReason::kCount_);

/// Stable human-readable name (logs, JSON error details, tests).
const char* to_string(RejectReason reason) noexcept;

/// Outcome of KeyStore::deposit: the minted id on acceptance, the typed
/// reason on rejection. Replaces the old `returns 0 on rejection` sentinel.
struct DepositResult {
  std::uint64_t key_id = 0;
  RejectReason reason = RejectReason::kNone;

  bool accepted() const noexcept { return reason == RejectReason::kNone; }
  explicit operator bool() const noexcept { return accepted(); }
};

/// Ledger name unlabeled draws are attributed to.
inline constexpr std::string_view kAnonymousConsumer = "anonymous";

/// What a deposit does when it would push the store past capacity.
enum class OverflowPolicy : std::uint8_t {
  kReject = 0,  ///< drop the key, count it in rejected_keys/rejected_bits
  kBlock = 1,   ///< block the depositor until consumers free space
};

struct KeyStoreConfig {
  std::uint64_t capacity_bits = 0;  ///< 0 = unbounded
  OverflowPolicy on_overflow = OverflowPolicy::kReject;
  std::size_t shards = 8;  ///< lock stripes for the key map (min 1)
};

class KeyStore {
 public:
  KeyStore() : KeyStore(KeyStoreConfig{}) {}
  explicit KeyStore(KeyStoreConfig config);

  const KeyStoreConfig& config() const noexcept { return config_; }

  /// Deposit a distilled key. The result carries the assigned id on
  /// acceptance, or the typed reason the key was refused (empty, larger
  /// than the whole capacity, over capacity under kReject, or blocked
  /// past close() under kBlock).
  DepositResult deposit(BitVec key);

  /// Oldest unconsumed key (FIFO), if any. Destructive; the draw is
  /// attributed to `consumer`.
  std::optional<StoredKey> get_key(std::string_view consumer = {});

  /// Specific key by id (peer-designated). Destructive; nullopt if absent
  /// or already consumed.
  std::optional<StoredKey> get_key_with_id(std::uint64_t key_id,
                                           std::string_view consumer = {});

  /// Release *all* depositors blocked on a full store (kBlock), across
  /// every shard; their keys are rejected. Further deposits still succeed
  /// while space allows.
  void close();

  std::size_t keys_available() const;
  std::uint64_t bits_available() const;
  std::uint64_t total_deposited_bits() const;
  std::uint64_t total_consumed_bits() const;
  std::uint64_t rejected_keys() const;
  std::uint64_t rejected_bits() const;
  /// Rejections broken down by reason (kNone is always zero).
  std::uint64_t rejected_keys(RejectReason reason) const;

  /// Bits drawn so far by `consumer` (as passed to the get_* calls; the
  /// empty name reads the reserved "anonymous" ledger entry).
  std::uint64_t consumed_by(std::string_view consumer) const;
  /// Snapshot of the full per-consumer draw ledger.
  std::map<std::string, std::uint64_t> draw_accounting() const;

 private:
  /// One lock stripe of the key map; padded so neighbouring shards'
  /// mutexes never share a cache line.
  struct alignas(64) Shard {
    // One rank for every shard: the FIFO scan and the takers lock shards
    // strictly one at a time, so two shard locks are never held together.
    mutable Mutex mutex{LockRank::kStoreShard, "kms.shard"};
    std::map<std::uint64_t, BitVec> keys QKD_GUARDED_BY(mutex);
  };

  Shard& shard_of(std::uint64_t key_id) const noexcept {
    return shards_[key_id % shard_count_];
  }

  /// CAS-reserve `bits` of occupancy; false when it would overflow.
  bool try_reserve(std::uint64_t bits) noexcept;
  /// Return occupancy after a draw and wake blocked depositors if any.
  void release_bits(std::uint64_t bits) noexcept;
  void account_draw(std::string_view consumer, std::uint64_t bits);
  DepositResult reject(RejectReason reason, std::uint64_t bits);
  std::optional<StoredKey> take_from_shard(Shard& shard, std::uint64_t key_id,
                                           std::string_view consumer);

  KeyStoreConfig config_;
  std::size_t shard_count_ = 1;
  std::unique_ptr<Shard[]> shards_;

  /// Aggregates (lock-free readers/writers).
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> in_store_bits_{0};
  std::atomic<std::uint64_t> keys_count_{0};
  std::atomic<std::uint64_t> deposited_bits_{0};
  std::atomic<std::uint64_t> consumed_bits_{0};
  std::atomic<std::uint64_t> rejected_bits_{0};
  std::array<std::atomic<std::uint64_t>, kRejectReasonCount>
      rejected_by_reason_{};
  std::atomic<bool> closed_{false};

  /// Slow path for kBlock depositors waiting on space; consumers only
  /// touch it when space_waiters_ says someone is actually parked.
  Mutex space_mutex_{LockRank::kStoreSpace, "kms.space"};
  CondVar space_;
  std::atomic<std::size_t> space_waiters_{0};

  /// Per-consumer draw ledger (names span shards, so it stays unified).
  mutable Mutex ledger_mutex_{LockRank::kStoreLedger, "kms.ledger"};
  std::map<std::string, std::uint64_t, std::less<>> drawn_
      QKD_GUARDED_BY(ledger_mutex_);
};

}  // namespace qkdpp::pipeline
