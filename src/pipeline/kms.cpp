#include "pipeline/kms.hpp"

#include <numeric>

namespace qkdpp::pipeline {

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kEmpty: return "empty";
    case RejectReason::kOversized: return "oversized";
    case RejectReason::kCapacity: return "capacity";
    case RejectReason::kClosed: return "closed";
    case RejectReason::kCount_: break;
  }
  return "unknown";
}

bool KeyStore::fits_locked(std::uint64_t bits) const noexcept {
  if (config_.capacity_bits == 0) return true;
  return deposited_bits_ - consumed_bits_ + bits <= config_.capacity_bits;
}

void KeyStore::consume_locked(std::string_view consumer, std::uint64_t bits) {
  consumed_bits_ += bits;
  if (consumer.empty()) consumer = kAnonymousConsumer;
  const auto it = drawn_.find(consumer);
  if (it != drawn_.end()) {
    it->second += bits;
  } else {
    drawn_.emplace(std::string(consumer), bits);
  }
}

DepositResult KeyStore::reject_locked(RejectReason reason,
                                      std::uint64_t bits) {
  ++rejected_by_reason_[static_cast<std::size_t>(reason)];
  rejected_bits_ += bits;
  return DepositResult{0, reason};
}

DepositResult KeyStore::deposit(BitVec key) {
  std::unique_lock lock(mutex_);
  // An empty key carries no material; minting an id would let consumers
  // draw zero-bit "keys" that still count toward keys_available().
  if (key.size() == 0) return reject_locked(RejectReason::kEmpty, 0);
  if (config_.capacity_bits != 0 && key.size() > config_.capacity_bits) {
    return reject_locked(RejectReason::kOversized, key.size());
  }
  if (!fits_locked(key.size())) {
    if (config_.on_overflow == OverflowPolicy::kBlock) {
      space_.wait(lock, [&] { return closed_ || fits_locked(key.size()); });
      if (!fits_locked(key.size())) {  // released by close()
        return reject_locked(RejectReason::kClosed, key.size());
      }
    } else {
      return reject_locked(RejectReason::kCapacity, key.size());
    }
  }
  const std::uint64_t id = next_id_++;
  deposited_bits_ += key.size();
  keys_.emplace(id, std::move(key));
  return DepositResult{id, RejectReason::kNone};
}

std::optional<StoredKey> KeyStore::get_key(std::string_view consumer) {
  std::scoped_lock lock(mutex_);
  if (keys_.empty()) return std::nullopt;
  auto it = keys_.begin();
  StoredKey out{it->first, std::move(it->second)};
  consume_locked(consumer, out.bits.size());
  keys_.erase(it);
  space_.notify_all();
  return out;
}

std::optional<StoredKey> KeyStore::get_key_with_id(std::uint64_t key_id,
                                                   std::string_view consumer) {
  std::scoped_lock lock(mutex_);
  const auto it = keys_.find(key_id);
  if (it == keys_.end()) return std::nullopt;
  StoredKey out{it->first, std::move(it->second)};
  consume_locked(consumer, out.bits.size());
  keys_.erase(it);
  space_.notify_all();
  return out;
}

void KeyStore::close() {
  std::scoped_lock lock(mutex_);
  closed_ = true;
  space_.notify_all();
}

std::size_t KeyStore::keys_available() const {
  std::scoped_lock lock(mutex_);
  return keys_.size();
}

std::uint64_t KeyStore::bits_available() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_ - consumed_bits_;
}

std::uint64_t KeyStore::total_deposited_bits() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_;
}

std::uint64_t KeyStore::total_consumed_bits() const {
  std::scoped_lock lock(mutex_);
  return consumed_bits_;
}

std::uint64_t KeyStore::rejected_keys() const {
  std::scoped_lock lock(mutex_);
  return std::accumulate(rejected_by_reason_.begin(),
                         rejected_by_reason_.end(), std::uint64_t{0});
}

std::uint64_t KeyStore::rejected_bits() const {
  std::scoped_lock lock(mutex_);
  return rejected_bits_;
}

std::uint64_t KeyStore::rejected_keys(RejectReason reason) const {
  // kCount_ is a public enumerator; guard rather than index past the end.
  if (static_cast<std::size_t>(reason) >= kRejectReasonCount) return 0;
  std::scoped_lock lock(mutex_);
  return rejected_by_reason_[static_cast<std::size_t>(reason)];
}

std::uint64_t KeyStore::consumed_by(std::string_view consumer) const {
  std::scoped_lock lock(mutex_);
  if (consumer.empty()) consumer = kAnonymousConsumer;
  const auto it = drawn_.find(consumer);
  return it != drawn_.end() ? it->second : 0;
}

std::map<std::string, std::uint64_t> KeyStore::draw_accounting() const {
  std::scoped_lock lock(mutex_);
  return {drawn_.begin(), drawn_.end()};
}

}  // namespace qkdpp::pipeline
