#include "pipeline/kms.hpp"

namespace qkdpp::pipeline {

bool KeyStore::fits_locked(std::uint64_t bits) const noexcept {
  if (config_.capacity_bits == 0) return true;
  return deposited_bits_ - consumed_bits_ + bits <= config_.capacity_bits;
}

void KeyStore::consume_locked(std::string_view consumer, std::uint64_t bits) {
  consumed_bits_ += bits;
  const auto it = drawn_.find(consumer);
  if (it != drawn_.end()) {
    it->second += bits;
  } else {
    drawn_.emplace(std::string(consumer), bits);
  }
}

std::uint64_t KeyStore::deposit(BitVec key) {
  std::unique_lock lock(mutex_);
  // An empty key carries no material; minting an id would let consumers
  // draw zero-bit "keys" that still count toward keys_available().
  const bool oversized =
      config_.capacity_bits != 0 && key.size() > config_.capacity_bits;
  if (key.size() == 0 || oversized) {
    ++rejected_keys_;
    rejected_bits_ += key.size();
    return 0;
  }
  if (!fits_locked(key.size())) {
    if (config_.on_overflow == OverflowPolicy::kBlock) {
      space_.wait(lock, [&] { return closed_ || fits_locked(key.size()); });
    }
    if (!fits_locked(key.size())) {  // kReject, or kBlock released by close()
      ++rejected_keys_;
      rejected_bits_ += key.size();
      return 0;
    }
  }
  const std::uint64_t id = next_id_++;
  deposited_bits_ += key.size();
  keys_.emplace(id, std::move(key));
  return id;
}

std::optional<StoredKey> KeyStore::get_key(std::string_view consumer) {
  std::scoped_lock lock(mutex_);
  if (keys_.empty()) return std::nullopt;
  auto it = keys_.begin();
  StoredKey out{it->first, std::move(it->second)};
  consume_locked(consumer, out.bits.size());
  keys_.erase(it);
  space_.notify_all();
  return out;
}

std::optional<StoredKey> KeyStore::get_key_with_id(std::uint64_t key_id,
                                                   std::string_view consumer) {
  std::scoped_lock lock(mutex_);
  const auto it = keys_.find(key_id);
  if (it == keys_.end()) return std::nullopt;
  StoredKey out{it->first, std::move(it->second)};
  consume_locked(consumer, out.bits.size());
  keys_.erase(it);
  space_.notify_all();
  return out;
}

void KeyStore::close() {
  std::scoped_lock lock(mutex_);
  closed_ = true;
  space_.notify_all();
}

std::size_t KeyStore::keys_available() const {
  std::scoped_lock lock(mutex_);
  return keys_.size();
}

std::uint64_t KeyStore::bits_available() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_ - consumed_bits_;
}

std::uint64_t KeyStore::total_deposited_bits() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_;
}

std::uint64_t KeyStore::total_consumed_bits() const {
  std::scoped_lock lock(mutex_);
  return consumed_bits_;
}

std::uint64_t KeyStore::rejected_keys() const {
  std::scoped_lock lock(mutex_);
  return rejected_keys_;
}

std::uint64_t KeyStore::rejected_bits() const {
  std::scoped_lock lock(mutex_);
  return rejected_bits_;
}

std::uint64_t KeyStore::consumed_by(std::string_view consumer) const {
  std::scoped_lock lock(mutex_);
  const auto it = drawn_.find(consumer);
  return it != drawn_.end() ? it->second : 0;
}

std::map<std::string, std::uint64_t> KeyStore::draw_accounting() const {
  std::scoped_lock lock(mutex_);
  return {drawn_.begin(), drawn_.end()};
}

}  // namespace qkdpp::pipeline
