#include "pipeline/kms.hpp"

#include <algorithm>
#include <limits>

namespace qkdpp::pipeline {

const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kEmpty: return "empty";
    case RejectReason::kOversized: return "oversized";
    case RejectReason::kCapacity: return "capacity";
    case RejectReason::kClosed: return "closed";
    case RejectReason::kCount_: break;
  }
  return "unknown";
}

KeyStore::KeyStore(KeyStoreConfig config)
    : config_(config),
      shard_count_(std::max<std::size_t>(1, config.shards)),
      shards_(std::make_unique<Shard[]>(shard_count_)) {}

bool KeyStore::try_reserve(std::uint64_t bits) noexcept {
  // relaxed: optimistic first read and CAS-failure reload - the seq_cst
  // success order below is the only edge anything synchronizes on.
  std::uint64_t cur = in_store_bits_.load(std::memory_order_relaxed);
  for (;;) {
    if (config_.capacity_bits != 0 && cur + bits > config_.capacity_bits) {
      return false;
    }
    if (in_store_bits_.compare_exchange_weak(cur, cur + bits,
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed)) {
      return true;
    }
  }
}

void KeyStore::release_bits(std::uint64_t bits) noexcept {
  in_store_bits_.fetch_sub(bits, std::memory_order_seq_cst);
  // Dekker with the kBlock slow path: a parking depositor raises
  // space_waiters_ under space_mutex_ *before* re-trying the reservation,
  // and we subtract the occupancy *before* reading the waiter count - at
  // least one side observes the other, so no depositor sleeps through the
  // space it was waiting for.
  if (space_waiters_.load(std::memory_order_seq_cst) > 0) {
    MutexLock lock(space_mutex_);
    space_.notify_all();
  }
}

void KeyStore::account_draw(std::string_view consumer, std::uint64_t bits) {
  // relaxed: statistics counter; readers only need an eventually-exact
  // total, never ordering against the key material itself.
  consumed_bits_.fetch_add(bits, std::memory_order_relaxed);
  if (consumer.empty()) consumer = kAnonymousConsumer;
  MutexLock lock(ledger_mutex_);
  const auto it = drawn_.find(consumer);
  if (it != drawn_.end()) {
    it->second += bits;
  } else {
    drawn_.emplace(std::string(consumer), bits);
  }
}

DepositResult KeyStore::reject(RejectReason reason, std::uint64_t bits) {
  // relaxed: statistics counters, same contract as consumed_bits_.
  rejected_by_reason_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  rejected_bits_.fetch_add(bits, std::memory_order_relaxed);
  return DepositResult{0, reason};
}

DepositResult KeyStore::deposit(BitVec key) {
  // An empty key carries no material; minting an id would let consumers
  // draw zero-bit "keys" that still count toward keys_available().
  if (key.size() == 0) return reject(RejectReason::kEmpty, 0);
  const std::uint64_t bits = key.size();
  if (config_.capacity_bits != 0 && bits > config_.capacity_bits) {
    return reject(RejectReason::kOversized, bits);
  }
  if (!try_reserve(bits)) {
    if (config_.on_overflow != OverflowPolicy::kBlock) {
      return reject(RejectReason::kCapacity, bits);
    }
    bool reserved = false;
    {
      MutexLock lock(space_mutex_);
      space_waiters_.fetch_add(1, std::memory_order_seq_cst);
      // Reservation first: a depositor woken with space available takes
      // it even when the wake came from close() - only a close with *no*
      // space rejects the key.
      space_.wait(lock, [&] {
        reserved = try_reserve(bits);
        return reserved || closed_.load(std::memory_order_seq_cst);
      });
      space_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
    if (!reserved) return reject(RejectReason::kClosed, bits);
  }
  // relaxed: next_id_ only needs uniqueness (RMW atomicity gives that);
  // deposited_bits_ is a statistics counter.
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  deposited_bits_.fetch_add(bits, std::memory_order_relaxed);
  Shard& shard = shard_of(id);
  {
    MutexLock lock(shard.mutex);
    shard.keys.emplace(id, std::move(key));
  }
  keys_count_.fetch_add(1, std::memory_order_release);
  return DepositResult{id, RejectReason::kNone};
}

std::optional<StoredKey> KeyStore::take_from_shard(Shard& shard,
                                                   std::uint64_t key_id,
                                                   std::string_view consumer) {
  StoredKey out;
  {
    MutexLock lock(shard.mutex);
    const auto it = shard.keys.find(key_id);
    if (it == shard.keys.end()) return std::nullopt;
    out = StoredKey{it->first, std::move(it->second)};
    shard.keys.erase(it);
  }
  keys_count_.fetch_sub(1, std::memory_order_release);
  account_draw(consumer, out.bits.size());
  release_bits(out.bits.size());
  return out;
}

std::optional<StoredKey> KeyStore::get_key(std::string_view consumer) {
  // FIFO across shards: find the smallest head id over every shard, then
  // take it. A concurrent draw can empty the chosen slot between the scan
  // and the take; retry the scan (draw order between racing consumers is
  // unobservable anyway, sequential callers always see strict FIFO).
  for (;;) {
    std::uint64_t best_id = std::numeric_limits<std::uint64_t>::max();
    Shard* best = nullptr;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      Shard& shard = shards_[s];
      MutexLock lock(shard.mutex);
      if (!shard.keys.empty() && shard.keys.begin()->first < best_id) {
        best_id = shard.keys.begin()->first;
        best = &shard;
      }
    }
    if (best == nullptr) return std::nullopt;
    if (auto out = take_from_shard(*best, best_id, consumer)) return out;
  }
}

std::optional<StoredKey> KeyStore::get_key_with_id(std::uint64_t key_id,
                                                   std::string_view consumer) {
  return take_from_shard(shard_of(key_id), key_id, consumer);
}

void KeyStore::close() {
  closed_.store(true, std::memory_order_seq_cst);
  // Take the mutex so the broadcast cannot land between a blocked
  // depositor's predicate check and its sleep; every waiter across every
  // shard parks on this one cv, so one broadcast wakes them all.
  MutexLock lock(space_mutex_);
  space_.notify_all();
}

std::size_t KeyStore::keys_available() const {
  return keys_count_.load(std::memory_order_acquire);
}

std::uint64_t KeyStore::bits_available() const {
  return in_store_bits_.load(std::memory_order_acquire);
}

std::uint64_t KeyStore::total_deposited_bits() const {
  return deposited_bits_.load(std::memory_order_acquire);
}

std::uint64_t KeyStore::total_consumed_bits() const {
  return consumed_bits_.load(std::memory_order_acquire);
}

std::uint64_t KeyStore::rejected_keys() const {
  std::uint64_t total = 0;
  for (const auto& counter : rejected_by_reason_) {
    total += counter.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t KeyStore::rejected_bits() const {
  return rejected_bits_.load(std::memory_order_acquire);
}

std::uint64_t KeyStore::rejected_keys(RejectReason reason) const {
  // kCount_ is a public enumerator; guard rather than index past the end.
  if (static_cast<std::size_t>(reason) >= kRejectReasonCount) return 0;
  return rejected_by_reason_[static_cast<std::size_t>(reason)].load(
      std::memory_order_acquire);
}

std::uint64_t KeyStore::consumed_by(std::string_view consumer) const {
  if (consumer.empty()) consumer = kAnonymousConsumer;
  MutexLock lock(ledger_mutex_);
  const auto it = drawn_.find(consumer);
  return it != drawn_.end() ? it->second : 0;
}

std::map<std::string, std::uint64_t> KeyStore::draw_accounting() const {
  MutexLock lock(ledger_mutex_);
  return {drawn_.begin(), drawn_.end()};
}

}  // namespace qkdpp::pipeline
