#include "pipeline/kms.hpp"

namespace qkdpp::pipeline {

std::uint64_t KeyStore::deposit(BitVec key) {
  std::scoped_lock lock(mutex_);
  const std::uint64_t id = next_id_++;
  deposited_bits_ += key.size();
  keys_.emplace(id, std::move(key));
  return id;
}

std::optional<StoredKey> KeyStore::get_key() {
  std::scoped_lock lock(mutex_);
  if (keys_.empty()) return std::nullopt;
  auto it = keys_.begin();
  StoredKey out{it->first, std::move(it->second)};
  consumed_bits_ += out.bits.size();
  keys_.erase(it);
  return out;
}

std::optional<StoredKey> KeyStore::get_key_with_id(std::uint64_t key_id) {
  std::scoped_lock lock(mutex_);
  const auto it = keys_.find(key_id);
  if (it == keys_.end()) return std::nullopt;
  StoredKey out{it->first, std::move(it->second)};
  consumed_bits_ += out.bits.size();
  keys_.erase(it);
  return out;
}

std::size_t KeyStore::keys_available() const {
  std::scoped_lock lock(mutex_);
  return keys_.size();
}

std::uint64_t KeyStore::bits_available() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_ - consumed_bits_;
}

std::uint64_t KeyStore::total_deposited_bits() const {
  std::scoped_lock lock(mutex_);
  return deposited_bits_;
}

std::uint64_t KeyStore::total_consumed_bits() const {
  std::scoped_lock lock(mutex_);
  return consumed_bits_;
}

}  // namespace qkdpp::pipeline
