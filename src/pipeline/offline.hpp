// Offline (single-process) post-processing pipeline.
//
// Holds both endpoints of the link in one process and runs the complete
// distillation chain - simulate, sift, estimate, reconcile, verify,
// amplify - over blocks of pulses, with per-stage wall-clock timings and an
// exact leakage ledger. This is the workhorse behind the throughput benches
// (F1, T2) and the quickstart; the two-party state machines over a real
// channel live in session.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "privacy/pa_planner.hpp"
#include "reconcile/reconciler.hpp"
#include "protocol/messages.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::pipeline {

struct OfflineConfig {
  sim::LinkConfig link;
  std::size_t pulses_per_block = 1 << 20;
  /// Fraction of sifted *signal* bits sacrificed to parameter estimation.
  double pe_fraction = 0.10;
  /// Abort threshold on the estimated QBER (BB84 hard limit is 11%).
  double qber_abort = 0.11;
  protocol::ReconcileMethod method = protocol::ReconcileMethod::kLdpc;
  reconcile::LdpcReconcilerConfig ldpc;
  reconcile::CascadeConfig cascade;
  privacy::SecurityParams security;
};

/// Wall-clock seconds per stage for one block (drives experiment F1).
struct StageTimings {
  double simulate = 0.0;  ///< not post-processing; reported separately
  double sift = 0.0;
  double estimate = 0.0;
  double reconcile = 0.0;
  double verify = 0.0;
  double amplify = 0.0;

  double post_processing_total() const noexcept {
    return sift + estimate + reconcile + verify + amplify;
  }
};

struct BlockOutcome {
  std::uint64_t block_id = 0;
  bool success = false;
  std::string abort_reason;

  std::size_t pulses = 0;
  std::size_t detections = 0;
  std::size_t sifted_bits = 0;       ///< matched-basis detections
  std::size_t key_candidate_bits = 0;///< signal-class sifted bits
  std::size_t pe_sample_bits = 0;
  double qber_estimate = 0.0;
  double qber_upper = 0.0;

  std::size_t reconciled_bits = 0;   ///< payload that survived framing
  std::uint64_t leak_ec_bits = 0;
  double efficiency = 0.0;
  std::uint64_t reconcile_rounds = 0;

  std::size_t final_key_bits = 0;
  BitVec final_key;                  ///< identical on both ends by construction

  StageTimings timings;

  /// Secret key rate per emitted pulse.
  double skr_per_pulse() const noexcept {
    return pulses ? static_cast<double>(final_key_bits) /
                        static_cast<double>(pulses)
                  : 0.0;
  }
};

class OfflinePipeline {
 public:
  explicit OfflinePipeline(OfflineConfig config);

  const OfflineConfig& config() const noexcept { return config_; }

  /// Run one block end to end. Aborted blocks return success=false with the
  /// stage that aborted in abort_reason (this is the expected behaviour on
  /// hot channels, not an exception).
  BlockOutcome process_block(std::uint64_t block_id, Xoshiro256& rng);

 private:
  OfflineConfig config_;
  sim::Bb84Simulator simulator_;
};

}  // namespace qkdpp::pipeline
