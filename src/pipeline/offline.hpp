// Offline (single-process) pipeline: a thin adapter over PostprocessEngine.
//
// Holds both endpoints of the link in one process: it simulates a block of
// pulses (the "hardware", timed separately) and hands the raw detection
// material to engine::PostprocessEngine, which owns the complete
// distillation chain - sift, estimate, reconcile, verify, amplify - with
// each stage placed on a device by the mapping optimizer. All stage logic,
// timings and the leakage ledger live in src/engine/; this file only adds
// the simulator and the block-size policy. The two-party state machines
// over a real channel live in session.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::pipeline {

// Block-level result types are engine types; aliased for source
// compatibility with pre-engine callers.
using engine::BlockOutcome;
using engine::StageTimings;

struct OfflineConfig : engine::PostprocessParams {
  sim::LinkConfig link;
  std::size_t pulses_per_block = std::size_t{1} << 20;
  /// Device roster + placement policy for the underlying engine. The
  /// default single-CPU roster reproduces the classic all-host pipeline;
  /// pass engine::EngineOptions::standard() to let the mapper spread the
  /// stages over the heterogeneous device set.
  engine::EngineOptions engine_options = engine::EngineOptions::cpu_only();
};

class OfflinePipeline {
 public:
  explicit OfflinePipeline(OfflineConfig config);

  const OfflineConfig& config() const noexcept { return config_; }

  /// The engine this pipeline adapts (placement, device accounting).
  const engine::PostprocessEngine& postprocess_engine() const noexcept {
    return *engine_;
  }

  /// Run one block end to end. Aborted blocks return success=false with the
  /// stage that aborted in abort_reason (this is the expected behaviour on
  /// hot channels, not an exception).
  BlockOutcome process_block(std::uint64_t block_id, Xoshiro256& rng);

 private:
  OfflineConfig config_;
  sim::Bb84Simulator simulator_;
  std::unique_ptr<engine::PostprocessEngine> engine_;
};

}  // namespace qkdpp::pipeline
