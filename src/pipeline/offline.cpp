#include "pipeline/offline.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "engine/sim_adapter.hpp"

namespace qkdpp::pipeline {

OfflinePipeline::OfflinePipeline(OfflineConfig config)
    : config_(std::move(config)), simulator_(config_.link) {
  QKDPP_REQUIRE(config_.pulses_per_block > 0, "empty block");
  engine_ = std::make_unique<engine::PostprocessEngine>(
      static_cast<const engine::PostprocessParams&>(config_),
      config_.engine_options);
}

BlockOutcome OfflinePipeline::process_block(std::uint64_t block_id,
                                            Xoshiro256& rng) {
  // --- link simulation (the "hardware"; timed separately) ----------------
  Stopwatch stopwatch;
  const sim::DetectionRecord record =
      simulator_.run(config_.pulses_per_block, rng);
  const double simulate_seconds = stopwatch.seconds();

  const engine::BlockInput input = engine::make_block_input(record, block_id);
  BlockOutcome outcome = engine_->process_block(input, block_id, rng);
  outcome.timings.simulate = simulate_seconds;
  return outcome;
}

}  // namespace qkdpp::pipeline
