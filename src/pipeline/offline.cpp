#include "pipeline/offline.hpp"

#include <algorithm>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "privacy/toeplitz.hpp"
#include "privacy/verification.hpp"
#include "protocol/param_estimation.hpp"
#include "protocol/sifting.hpp"

namespace qkdpp::pipeline {

OfflinePipeline::OfflinePipeline(OfflineConfig config)
    : config_(std::move(config)), simulator_(config_.link) {
  QKDPP_REQUIRE(config_.pulses_per_block > 0, "empty block");
  QKDPP_REQUIRE(config_.pe_fraction > 0 && config_.pe_fraction < 1,
                "pe fraction outside (0,1)");
}

BlockOutcome OfflinePipeline::process_block(std::uint64_t block_id,
                                            Xoshiro256& rng) {
  BlockOutcome outcome;
  outcome.block_id = block_id;
  outcome.pulses = config_.pulses_per_block;

  // --- link simulation (the "hardware"; timed separately) ----------------
  Stopwatch stopwatch;
  const sim::DetectionRecord record =
      simulator_.run(config_.pulses_per_block, rng);
  outcome.timings.simulate = stopwatch.seconds();
  outcome.detections = record.detections();

  // --- sifting ------------------------------------------------------------
  stopwatch.reset();
  protocol::DetectionReport report;
  report.block_id = block_id;
  report.n_pulses = record.n_pulses;
  report.detected_idx = record.detected_idx;
  report.bob_bases = record.bob_bases;

  const protocol::AliceTransmitLog log{record.alice_bits, record.alice_bases,
                                       record.alice_class};
  const auto sift = protocol::sift_alice(log, report);
  const BitVec bob_sifted = protocol::sift_bob(record.bob_bits, sift.result);
  outcome.sifted_bits = sift.sifted_key.size();
  outcome.timings.sift = stopwatch.seconds();

  // --- parameter estimation ------------------------------------------------
  stopwatch.reset();
  // Key candidates = signal-class sifted bits; everything else is revealed.
  std::vector<std::uint32_t> signal_positions;
  signal_positions.reserve(outcome.sifted_bits);
  std::size_t revealed_mismatches = 0;
  std::size_t revealed_count = 0;
  for (std::size_t i = 0; i < sift.sifted_key.size(); ++i) {
    if (sift.result.signal_mask.get(i)) {
      signal_positions.push_back(static_cast<std::uint32_t>(i));
    } else {
      ++revealed_count;
      revealed_mismatches +=
          sift.sifted_key.get(i) != bob_sifted.get(i);
    }
  }
  outcome.key_candidate_bits = signal_positions.size();
  if (signal_positions.size() < 64) {
    outcome.abort_reason = "insufficient sifted key";
    outcome.timings.estimate = stopwatch.seconds();
    return outcome;
  }

  const auto sample_size = static_cast<std::size_t>(
      config_.pe_fraction * static_cast<double>(signal_positions.size()));
  const auto sample_of_signal =
      rng.sample_without_replacement(signal_positions.size(), sample_size);
  std::size_t sample_mismatches = 0;
  std::vector<std::uint8_t> sampled(signal_positions.size(), 0);
  for (const auto s : sample_of_signal) {
    sampled[s] = 1;
    const std::uint32_t position = signal_positions[s];
    sample_mismatches +=
        sift.sifted_key.get(position) != bob_sifted.get(position);
  }
  // Pool the revealed non-signal bits into the estimate as well.
  const auto estimate = protocol::estimate_qber(
      sample_size + revealed_count, sample_mismatches + revealed_mismatches,
      config_.security.eps_pe);
  outcome.pe_sample_bits = estimate.sample_size;
  outcome.qber_estimate = estimate.qber;
  outcome.qber_upper = estimate.qber_upper;
  outcome.timings.estimate = stopwatch.seconds();

  // Abort on the point estimate: the eps_pe-confidence upper bound is for
  // the PA planner's phase-error budget, not the go/no-go decision (it
  // would reject every modest-sized block).
  if (estimate.qber >= config_.qber_abort) {
    outcome.abort_reason = "qber above abort threshold";
    return outcome;
  }

  // Remaining key: unsampled signal positions.
  BitVec alice_key, bob_key;
  for (std::size_t s = 0; s < signal_positions.size(); ++s) {
    if (sampled[s]) continue;
    const std::uint32_t position = signal_positions[s];
    alice_key.push_back(sift.sifted_key.get(position));
    bob_key.push_back(bob_sifted.get(position));
  }

  // --- reconciliation -------------------------------------------------------
  stopwatch.reset();
  // Effective crossover for decoding: the point estimate, floored to keep
  // the LLRs finite on ultra-clean channels.
  const double qber_for_decoding = std::max(estimate.qber, 1e-4);
  BitVec alice_reconciled, bob_reconciled;
  if (config_.method == protocol::ReconcileMethod::kLdpc) {
    reconcile::FramePlan plan;
    try {
      plan = reconcile::plan_frame_fitting(alice_key.size(),
                                           qber_for_decoding,
                                           config_.ldpc.f_target,
                                           config_.ldpc.adapt_fraction);
    } catch (const Error&) {
      outcome.abort_reason = "key shorter than one reconciliation frame";
      outcome.timings.reconcile = stopwatch.seconds();
      return outcome;
    }
    const std::size_t frames = alice_key.size() / plan.payload_bits;
    for (std::size_t f = 0; f < frames; ++f) {
      const BitVec alice_payload =
          alice_key.subvec(f * plan.payload_bits, plan.payload_bits);
      const BitVec bob_payload =
          bob_key.subvec(f * plan.payload_bits, plan.payload_bits);
      const std::uint64_t frame_seed =
          (block_id << 20) ^ (f * 0x9e3779b97f4a7c15ULL);
      const auto result = reconcile::ldpc_reconcile_local(
          alice_payload, bob_payload, qber_for_decoding, plan, frame_seed,
          config_.ldpc, rng);
      outcome.leak_ec_bits += result.leaked_bits;
      outcome.reconcile_rounds += result.rounds;
      if (!result.success) {
        // Frame lost: skip it (its leakage still counts - Eve heard it).
        continue;
      }
      alice_reconciled.append(alice_payload);
      bob_reconciled.append(result.corrected);
    }
  } else {
    reconcile::CascadeConfig cascade = config_.cascade;
    cascade.qber_hint = qber_for_decoding;
    cascade.seed = block_id * 0x2545f4914f6cdd1dULL + 1;
    const auto result = reconcile::cascade_reconcile_local(
        alice_key, bob_key, qber_for_decoding, cascade);
    outcome.leak_ec_bits += result.leaked_bits;
    outcome.reconcile_rounds += result.rounds;
    alice_reconciled = alice_key;
    bob_reconciled = result.corrected;
  }
  outcome.reconciled_bits = bob_reconciled.size();
  if (outcome.reconciled_bits == 0) {
    outcome.abort_reason = "reconciliation produced no frames";
    outcome.timings.reconcile = stopwatch.seconds();
    return outcome;
  }
  outcome.efficiency =
      static_cast<double>(outcome.leak_ec_bits) /
      (static_cast<double>(outcome.reconciled_bits) *
       binary_entropy(std::max(estimate.qber, 1e-4)));
  outcome.timings.reconcile = stopwatch.seconds();

  // --- verification ----------------------------------------------------------
  stopwatch.reset();
  const std::uint64_t verify_seed = rng.next_u64();
  if (privacy::verification_tag(alice_reconciled, verify_seed) !=
      privacy::verification_tag(bob_reconciled, verify_seed)) {
    outcome.abort_reason = "verification mismatch";
    outcome.timings.verify = stopwatch.seconds();
    return outcome;
  }
  constexpr std::uint64_t kVerifyTagBits = 128;  // tag reveals <= its length
  outcome.timings.verify = stopwatch.seconds();

  // --- privacy amplification --------------------------------------------------
  stopwatch.reset();
  const auto plan = privacy::plan_privacy_amplification(
      bob_reconciled.size(), outcome.pe_sample_bits, estimate.qber,
      outcome.leak_ec_bits + kVerifyTagBits, config_.security);
  if (!plan.viable) {
    outcome.abort_reason = "no extractable secret key";
    outcome.timings.amplify = stopwatch.seconds();
    return outcome;
  }
  const BitVec seed = privacy::toeplitz_seed(
      rng.next_u64(), bob_reconciled.size() + plan.output_bits - 1);
  outcome.final_key =
      privacy::toeplitz_hash(bob_reconciled, seed, plan.output_bits);
  outcome.final_key_bits = outcome.final_key.size();
  outcome.timings.amplify = stopwatch.seconds();
  outcome.success = true;
  return outcome;
}

}  // namespace qkdpp::pipeline
