// Two-party post-processing session over the classical channel.
//
// Alice and Bob run as peers (typically on two threads or two processes)
// exchanging the typed messages of protocol/messages.hpp over any
// ClassicalChannel - usually the AuthenticatedChannel wrapper, so every
// frame is Wegman-Carter tagged. The session covers the complete chain:
//
//   Bob:   DetectionReport ->                        (his clicks + bases)
//   Alice:                 <- SiftResult
//   Alice:                 <- PeReveal               (estimation positions)
//   Bob:   PeReport ->
//   Alice:                 <- PeVerdict              (continue / abort)
//   Alice:                 <- ReconcileStart         (per frame | cascade)
//          ... ParityRequest/ParityResponse | BlindRequest/BlindResponse ...
//   Bob:   ReconcileDone ->
//   Alice:                 <- VerifyRequest
//   Bob:   VerifyResponse ->
//   Alice:                 <- PaParams
//   both:  KeyConfirm      (non-secret bookkeeping)
//
// The per-stage computations (PE position selection, key extraction,
// leakage accounting, PA application) are the engine's shared primitives
// (engine/primitives.hpp) - this file only owns the message choreography,
// so both deployments distill bit-identical keys from the same raw
// material. Abort at any decision point is a message, not an exception;
// both sides return success=false with the same reason.
//
// Channel faults are typed aborts too: a retransmission budget or exchange
// deadline blown at the ARQ layer (Error{kTimeout}), a peer hang-up
// (kChannelClosed), or a Wegman-Carter tag mismatch (kAuthentication) ends
// the block with success=false and SessionResult::fault_code set, after a
// best-effort Abort message to the peer — the orchestrator's circuit
// breaker consumes these instead of the process unwinding. A corrupted or
// replayed message is either healed below (ReliableChannel dedup + CRC +
// retransmit) or lands here as one of those typed aborts; it can never
// become a delivered key, because verification still gates delivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "engine/params.hpp"
#include "protocol/channel.hpp"
#include "protocol/sifting.hpp"

namespace qkdpp::pipeline {

/// The session consumes the same parameter set as the engine and the
/// offline pipeline - one struct, three deployments.
using SessionConfig = engine::PostprocessParams;

struct SessionResult {
  bool success = false;
  std::string abort_reason;
  /// Set when the block died to a transport/authentication fault rather
  /// than a protocol decision: the ErrorCode the channel stack surfaced
  /// (kTimeout, kChannelClosed, kAuthentication, ...). Empty for protocol
  /// aborts (high QBER, verification mismatch, short key).
  std::optional<ErrorCode> fault_code;

  BitVec final_key;
  std::uint64_t key_id = 0;  ///< shared id (block id based)

  std::size_t sifted_bits = 0;
  std::size_t key_candidate_bits = 0;
  double qber_estimate = 0.0;
  std::uint64_t leak_ec_bits = 0;
  std::size_t reconciled_bits = 0;
  protocol::ChannelCounters channel;
};

/// Bob's raw-detection view (what a receiver actually has).
struct BobDetections {
  std::uint64_t block_id = 0;
  std::uint64_t n_pulses = 0;
  std::vector<std::uint32_t> detected_idx;
  BitVec bits;
  BitVec bases;
};

/// Run Alice's side to completion for one block.
SessionResult run_alice_session(protocol::ClassicalChannel& channel,
                                const protocol::AliceTransmitLog& log,
                                std::uint64_t block_id,
                                const SessionConfig& config, Xoshiro256& rng);

/// Run Bob's side to completion for one block.
SessionResult run_bob_session(protocol::ClassicalChannel& channel,
                              const BobDetections& detections,
                              const SessionConfig& config);

}  // namespace qkdpp::pipeline
