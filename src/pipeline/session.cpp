#include "pipeline/session.hpp"

#include "common/crc.hpp"
#include "common/error.hpp"
#include "engine/primitives.hpp"
#include "privacy/pa_planner.hpp"
#include "privacy/verification.hpp"
#include "protocol/messages.hpp"
#include "protocol/param_estimation.hpp"

namespace qkdpp::pipeline {

namespace {

using protocol::Abort;
using protocol::BlindRequest;
using protocol::BlindResponse;
using protocol::ClassicalChannel;
using protocol::DetectionReport;
using protocol::KeyConfirm;
using protocol::Message;
using protocol::PaParams;
using protocol::ParityRequest;
using protocol::ParityResponse;
using protocol::PeReport;
using protocol::PeReveal;
using protocol::PeVerdict;
using protocol::ReconcileDone;
using protocol::ReconcileMethod;
using protocol::ReconcileStart;
using protocol::SiftResult;
using protocol::VerifyRequest;
using protocol::VerifyResponse;

/// Control-flow unwind for peer-initiated aborts (expected outcome, turned
/// into SessionResult at the top level - never escapes this file).
struct AbortSignal {
  std::string reason;
};

void send_msg(ClassicalChannel& channel, const Message& message) {
  channel.send(protocol::encode_message(message));
}

void send_abort(ClassicalChannel& channel, std::uint64_t block_id,
                const std::string& reason) {
  send_msg(channel, Abort{block_id, 0, reason});
}

template <typename T>
T expect_msg(ClassicalChannel& channel) {
  Message message = protocol::decode_message(channel.receive());
  if (auto* abort = std::get_if<Abort>(&message)) {
    throw AbortSignal{abort->detail};
  }
  auto* typed = std::get_if<T>(&message);
  if (typed == nullptr) {
    throw_error(ErrorCode::kProtocol,
                std::string("unexpected message ") +
                    protocol::message_name(message));
  }
  return std::move(*typed);
}

/// Convert a channel/auth failure into a typed abort on `result` and tell
/// the peer (best effort — the channel may already be dead; a lost Abort
/// just means the peer aborts on its own deadline instead).
void record_fault(SessionResult& result, ClassicalChannel& channel,
                  std::uint64_t block_id, const Error& error) {
  result.success = false;
  result.abort_reason = error.what();
  result.fault_code = error.code();
  if (error.code() != ErrorCode::kChannelClosed) {
    try {
      send_abort(channel, block_id, error.what());
    } catch (const Error&) {
    }
  }
}

std::uint32_t pa_params_crc(const PaParams& params) {
  std::uint8_t bytes[24];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(params.block_id >> (8 * i));
    bytes[8 + i] = static_cast<std::uint8_t>(params.seed >> (8 * i));
    bytes[16 + i] = static_cast<std::uint8_t>(params.out_len >> (8 * i));
  }
  return crc32c(bytes);
}

/// Bob-side oracle that forwards parity queries over the channel.
class RemoteParityOracle final : public reconcile::ParityOracle {
 public:
  RemoteParityOracle(ClassicalChannel& channel, std::uint64_t block_id)
      : channel_(channel), block_id_(block_id) {}

  BitVec parities(std::uint32_t pass,
                  std::span<const reconcile::ParityRange> ranges) override {
    ParityRequest request;
    request.block_id = block_id_;
    request.pass = pass;
    request.range_begins.reserve(ranges.size());
    request.range_ends.reserve(ranges.size());
    for (const auto range : ranges) {
      request.range_begins.push_back(range.begin);
      request.range_ends.push_back(range.end);
    }
    send_msg(channel_, request);
    auto response = expect_msg<ParityResponse>(channel_);
    if (response.parities.size() != ranges.size()) {
      throw_error(ErrorCode::kProtocol, "parity response shape mismatch");
    }
    return std::move(response.parities);
  }

 private:
  ClassicalChannel& channel_;
  std::uint64_t block_id_;
};

}  // namespace

SessionResult run_alice_session(ClassicalChannel& channel,
                                const protocol::AliceTransmitLog& log,
                                std::uint64_t block_id,
                                const SessionConfig& config, Xoshiro256& rng) {
  SessionResult result;
  result.key_id = block_id;
  try {
    // --- sifting ---------------------------------------------------------
    const auto report = expect_msg<DetectionReport>(channel);
    if (report.block_id != block_id) {
      throw_error(ErrorCode::kProtocol, "detection report for wrong block");
    }
    const auto sift = protocol::sift_alice(log, report);
    send_msg(channel, sift.result);
    result.sifted_bits = sift.sifted_key.size();

    // --- parameter estimation ---------------------------------------------
    const auto split =
        engine::split_sifted(sift.sifted_key, sift.result.signal_mask);
    result.key_candidate_bits = split.signal_positions.size();
    if (split.signal_positions.size() < 64) {
      send_abort(channel, block_id, "insufficient sifted key");
      result.abort_reason = "insufficient sifted key";
      result.channel = channel.counters();
      return result;
    }
    PeReveal reveal;
    reveal.block_id = block_id;
    reveal.positions =
        engine::choose_pe_positions(split, config.pe_fraction, rng);
    for (const auto p : reveal.positions) {
      reveal.alice_bits.push_back(sift.sifted_key.get(p));
    }
    send_msg(channel, reveal);

    const auto pe_report = expect_msg<PeReport>(channel);
    if (pe_report.bob_bits.size() != reveal.positions.size()) {
      throw_error(ErrorCode::kProtocol, "PE report shape mismatch");
    }
    const std::size_t mismatches =
        BitVec::hamming_distance(reveal.alice_bits, pe_report.bob_bits);
    const auto estimate = protocol::estimate_qber(
        reveal.positions.size(), mismatches, config.security.eps_pe);
    result.qber_estimate = estimate.qber;

    PeVerdict verdict;
    verdict.block_id = block_id;
    verdict.qber_estimate = estimate.qber;
    verdict.qber_upper = estimate.qber_upper;
    // Go/no-go on the point estimate (the confidence bound feeds PA).
    verdict.proceed = estimate.qber < config.qber_abort;
    send_msg(channel, verdict);
    if (!verdict.proceed) {
      result.abort_reason = "qber above abort threshold";
      result.channel = channel.counters();
      return result;
    }

    const BitVec key = engine::remaining_key(
        sift.sifted_key, sift.result.signal_mask, reveal.positions);
    const double qber_hint = engine::qber_floor(estimate.qber);

    // --- reconciliation -----------------------------------------------------
    BitVec reconciled;
    if (config.method == ReconcileMethod::kLdpc) {
      reconcile::FramePlan plan;
      try {
        plan = reconcile::plan_frame_fitting(key.size(), qber_hint,
                                             config.ldpc.f_target,
                                             config.ldpc.adapt_fraction);
      } catch (const Error&) {
        send_abort(channel, block_id, "key shorter than one frame");
        result.abort_reason = "key shorter than one frame";
        result.channel = channel.counters();
        return result;
      }
      const std::size_t frames = key.size() / plan.payload_bits;
      const reconcile::LdpcCode& code = reconcile::code_by_id(plan.code_id);
      for (std::size_t f = 0; f < frames; ++f) {
        const BitVec payload =
            key.subvec(f * plan.payload_bits, plan.payload_bits);
        const std::uint64_t frame_seed = rng.next_u64();
        reconcile::LdpcFrameSender sender(plan, payload, frame_seed, rng);

        ReconcileStart start;
        start.block_id = block_id;
        start.method = ReconcileMethod::kLdpc;
        start.perm_seed = frame_seed;
        start.code_id = plan.code_id;
        start.n_punctured = plan.n_punctured;
        start.n_shortened = plan.n_shortened;
        start.qber_hint = qber_hint;
        start.syndrome = sender.syndrome();
        send_msg(channel, start);
        result.leak_ec_bits += code.m() - plan.n_punctured;

        // Serve blind rounds until Bob reports the frame done.
        for (;;) {
          Message message = protocol::decode_message(channel.receive());
          if (auto* abort = std::get_if<Abort>(&message)) {
            throw AbortSignal{abort->detail};
          }
          if (auto* blind = std::get_if<BlindRequest>(&message)) {
            const auto chunk = sender.reveal_chunk(
                blind->round, config.ldpc.max_blind_rounds);
            BlindResponse response;
            response.block_id = block_id;
            response.round = blind->round;
            response.positions = chunk.positions;
            response.values = chunk.values;
            result.leak_ec_bits += chunk.positions.size();
            send_msg(channel, response);
            continue;
          }
          if (auto* done = std::get_if<ReconcileDone>(&message)) {
            if (done->success) reconciled.append(payload);
            break;
          }
          throw_error(ErrorCode::kProtocol,
                      std::string("unexpected message during "
                                  "reconciliation: ") +
                          protocol::message_name(message));
        }
      }
    } else {
      // Cascade: Alice is the parity server.
      const std::uint64_t perm_seed = rng.next_u64();
      ReconcileStart start;
      start.block_id = block_id;
      start.method = ReconcileMethod::kCascade;
      start.perm_seed = perm_seed;
      start.qber_hint = qber_hint;
      send_msg(channel, start);

      const reconcile::CascadeResponder responder(key, perm_seed,
                                                  config.cascade.passes);
      for (;;) {
        Message message = protocol::decode_message(channel.receive());
        if (auto* abort = std::get_if<Abort>(&message)) {
          throw AbortSignal{abort->detail};
        }
        if (auto* request = std::get_if<ParityRequest>(&message)) {
          if (request->range_begins.size() != request->range_ends.size()) {
            throw_error(ErrorCode::kProtocol, "parity request shape");
          }
          std::vector<reconcile::ParityRange> ranges;
          ranges.reserve(request->range_begins.size());
          for (std::size_t i = 0; i < request->range_begins.size(); ++i) {
            ranges.push_back(
                {request->range_begins[i], request->range_ends[i]});
          }
          ParityResponse response;
          response.block_id = block_id;
          response.pass = request->pass;
          response.parities = responder.parities(request->pass, ranges);
          result.leak_ec_bits += ranges.size();
          send_msg(channel, response);
          continue;
        }
        if (auto* done = std::get_if<ReconcileDone>(&message)) {
          // Bob reports round-budget exhaustion (keys provably still
          // differ): leave `reconciled` empty so the no-reconciled-frames
          // abort below fires instead of leaking a doomed verification tag.
          if (done->success) reconciled = key;
          break;
        }
        throw_error(ErrorCode::kProtocol, "unexpected message in cascade");
      }
    }
    result.reconciled_bits = reconciled.size();
    if (reconciled.empty()) {
      send_abort(channel, block_id, "no reconciled frames");
      result.abort_reason = "no reconciled frames";
      result.channel = channel.counters();
      return result;
    }

    // --- verification ---------------------------------------------------------
    VerifyRequest verify;
    verify.block_id = block_id;
    verify.seed = rng.next_u64();
    const U128 tag = privacy::verification_tag(reconciled, verify.seed);
    verify.tag_hi = tag.hi;
    verify.tag_lo = tag.lo;
    send_msg(channel, verify);
    const auto verify_response = expect_msg<VerifyResponse>(channel);
    if (!verify_response.match) {
      send_abort(channel, block_id, "verification mismatch");
      result.abort_reason = "verification mismatch";
      result.channel = channel.counters();
      return result;
    }

    // --- privacy amplification --------------------------------------------------
    const auto pa_plan = privacy::plan_privacy_amplification(
        reconciled.size(), reveal.positions.size(), estimate.qber,
        result.leak_ec_bits + engine::kVerifyTagBits, config.security);
    if (!pa_plan.viable) {
      send_abort(channel, block_id, "no extractable secret key");
      result.abort_reason = "no extractable secret key";
      result.channel = channel.counters();
      return result;
    }
    PaParams pa;
    pa.block_id = block_id;
    pa.seed = rng.next_u64();
    pa.out_len = pa_plan.output_bits;
    send_msg(channel, pa);
    result.final_key =
        engine::apply_toeplitz(pa.seed, reconciled, pa_plan.output_bits);

    // --- confirmation (non-secret parameter checksum) ---------------------------
    KeyConfirm confirm{block_id, block_id, pa_params_crc(pa)};
    send_msg(channel, confirm);
    const auto bob_confirm = expect_msg<KeyConfirm>(channel);
    if (bob_confirm.crc != confirm.crc) {
      throw_error(ErrorCode::kProtocol, "key confirmation mismatch");
    }
    result.success = true;
  } catch (const AbortSignal& abort) {
    result.abort_reason = abort.reason;
  } catch (const Error& error) {
    record_fault(result, channel, block_id, error);
  }
  result.channel = channel.counters();
  return result;
}

SessionResult run_bob_session(ClassicalChannel& channel,
                              const BobDetections& detections,
                              const SessionConfig& config) {
  SessionResult result;
  result.key_id = detections.block_id;
  const std::uint64_t block_id = detections.block_id;
  try {
    // --- sifting ---------------------------------------------------------
    DetectionReport report;
    report.block_id = block_id;
    report.n_pulses = detections.n_pulses;
    report.detected_idx = detections.detected_idx;
    report.bob_bases = detections.bases;
    send_msg(channel, report);

    const auto sift_result = expect_msg<SiftResult>(channel);
    const BitVec sifted = protocol::sift_bob(detections.bits, sift_result);
    result.sifted_bits = sifted.size();

    // --- parameter estimation ---------------------------------------------
    const auto reveal = expect_msg<PeReveal>(channel);
    PeReport pe_report;
    pe_report.block_id = block_id;
    for (const auto p : reveal.positions) {
      if (p >= sifted.size()) {
        throw_error(ErrorCode::kProtocol, "PE position out of range");
      }
      pe_report.bob_bits.push_back(sifted.get(p));
    }
    send_msg(channel, pe_report);

    const auto verdict = expect_msg<PeVerdict>(channel);
    result.qber_estimate = verdict.qber_estimate;
    if (!verdict.proceed) {
      result.abort_reason = "qber above abort threshold";
      result.channel = channel.counters();
      return result;
    }

    const BitVec key = engine::remaining_key(sifted, sift_result.signal_mask,
                                             reveal.positions);
    result.key_candidate_bits = key.size();

    // --- reconciliation -----------------------------------------------------
    BitVec reconciled;
    const auto first_start = expect_msg<ReconcileStart>(channel);
    if (first_start.method == ReconcileMethod::kLdpc) {
      reconcile::FramePlan plan;
      plan.code_id = first_start.code_id;
      plan.n_punctured = first_start.n_punctured;
      plan.n_shortened = first_start.n_shortened;
      const reconcile::LdpcCode& code = reconcile::code_by_id(plan.code_id);
      plan.payload_bits = code.n() - plan.n_punctured - plan.n_shortened;
      const std::size_t frames = key.size() / plan.payload_bits;
      if (frames == 0) {
        throw_error(ErrorCode::kProtocol, "frame plan larger than key");
      }

      ReconcileStart start = first_start;
      for (std::size_t f = 0; f < frames; ++f) {
        if (f > 0) start = expect_msg<ReconcileStart>(channel);
        const BitVec payload =
            key.subvec(f * plan.payload_bits, plan.payload_bits);
        reconcile::LdpcFrameReceiver receiver(
            plan, payload, start.perm_seed,
            engine::qber_floor(start.qber_hint), config.ldpc.decoder);
        auto attempt = receiver.try_decode(start.syndrome);
        unsigned round = 0;
        while (!attempt.converged && round < config.ldpc.max_blind_rounds) {
          ++round;
          send_msg(channel, BlindRequest{block_id, round});
          const auto blind = expect_msg<BlindResponse>(channel);
          result.leak_ec_bits += blind.positions.size();
          if (blind.positions.empty()) break;  // nothing left to reveal
          receiver.apply_reveal(blind.positions, blind.values);
          attempt = receiver.try_decode(start.syndrome);
        }
        result.leak_ec_bits += code.m() - plan.n_punctured;
        send_msg(channel, ReconcileDone{block_id, attempt.converged});
        if (attempt.converged) reconciled.append(receiver.corrected_payload());
      }
    } else {
      // Cascade: Bob drives, Alice serves parities.
      RemoteParityOracle oracle(channel, block_id);
      reconcile::CascadeConfig cascade = config.cascade;
      cascade.qber_hint = engine::qber_floor(first_start.qber_hint);
      cascade.seed = first_start.perm_seed;
      BitVec corrected = key;
      const auto cascade_result =
          reconcile::cascade_reconcile(corrected, oracle, cascade);
      result.leak_ec_bits += cascade_result.leaked_bits;
      // Report the real convergence state: on round-budget exhaustion the
      // keys provably still differ and verification (which both peers still
      // run, keeping the message flow fixed) is guaranteed to fail.
      send_msg(channel, ReconcileDone{block_id, cascade_result.converged});
      reconciled = std::move(corrected);
    }
    result.reconciled_bits = reconciled.size();

    // --- verification ---------------------------------------------------------
    const auto verify = expect_msg<VerifyRequest>(channel);
    const U128 tag = privacy::verification_tag(reconciled, verify.seed);
    const bool match = tag.hi == verify.tag_hi && tag.lo == verify.tag_lo;
    send_msg(channel, VerifyResponse{block_id, match});
    if (!match) {
      // Alice will send Abort; consume it for a clean shutdown.
      try {
        (void)expect_msg<VerifyResponse>(channel);
      } catch (const AbortSignal&) {
      }
      result.abort_reason = "verification mismatch";
      result.channel = channel.counters();
      return result;
    }

    // --- privacy amplification --------------------------------------------------
    const auto pa = expect_msg<PaParams>(channel);
    result.final_key = engine::apply_toeplitz(
        pa.seed, reconciled, static_cast<std::size_t>(pa.out_len));

    // --- confirmation -----------------------------------------------------------
    const auto alice_confirm = expect_msg<KeyConfirm>(channel);
    KeyConfirm confirm{block_id, block_id, pa_params_crc(pa)};
    send_msg(channel, confirm);
    if (alice_confirm.crc != confirm.crc) {
      throw_error(ErrorCode::kProtocol, "key confirmation mismatch");
    }
    result.success = true;
  } catch (const AbortSignal& abort) {
    result.abort_reason = abort.reason;
  } catch (const Error& error) {
    record_fault(result, channel, block_id, error);
  }
  result.channel = channel.counters();
  return result;
}

}  // namespace qkdpp::pipeline
