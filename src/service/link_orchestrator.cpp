#include "service/link_orchestrator.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/threadpool.hpp"
#include "engine/sim_adapter.hpp"
#include "pipeline/session.hpp"
#include "protocol/channel.hpp"

namespace qkdpp::service {

namespace {

/// Price this link's nominal per-block workload for the mapper: the
/// analytic channel model predicts the sifted/key volume and QBER a block
/// of `pulses_per_block` produces at this distance, so short metro links
/// and long lossy WAN links present genuinely different WorkEstimates and
/// the shared-device arbitration weighs them accordingly. `current` is the
/// channel as the schedule has perturbed it; `qber_override` (when >= 0)
/// substitutes a measured windowed QBER for the analytic prediction.
engine::StageWorkload workload_for(const LinkSpec& spec,
                                   const sim::LinkConfig& current,
                                   double qber_override = -1.0) {
  const sim::AnalyticLink model(current);
  const auto& source = current.source;
  const double gain = sim::expected_mean_gain(current);
  const auto pulses = static_cast<double>(spec.pulses_per_block);

  engine::StageWorkload workload;
  workload.pulses = spec.pulses_per_block;
  // Half the detections survive basis sifting.
  workload.sifted_bits = static_cast<std::size_t>(
      std::max(1.0, pulses * gain * 0.5));
  // Signal-class sifted bits minus the estimation sample enter the key.
  workload.key_bits = static_cast<std::size_t>(std::max(
      1.0, static_cast<double>(workload.sifted_bits) * source.p_signal *
               (1.0 - spec.params.pe_fraction)));
  workload.qber =
      qber_override >= 0 ? qber_override : model.qber(source.mu_signal);
  return workload;
}

double mean(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  return std::accumulate(window.begin(), window.end(), 0.0) /
         static_cast<double>(window.size());
}

/// SplitMix64-style per-block seed derivation: the session transport gives
/// every block its own RNG and fault streams, so a fault-timing-dependent
/// abort in block k cannot shift the randomness (and hence the keys) of
/// block k+1 — the byte-identical same-seed guarantee rests on this.
std::uint64_t block_seed(std::uint64_t link_seed, std::uint64_t block_id,
                         std::uint64_t salt) noexcept {
  std::uint64_t z =
      link_seed + 0x9e3779b97f4a7c15ULL * (block_id + 1) + (salt << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void push_window(std::deque<double>& window, double value,
                 std::size_t capacity) {
  window.push_back(value);
  while (window.size() > std::max<std::size_t>(1, capacity)) {
    window.pop_front();
  }
}

}  // namespace

CircuitBreakerPolicy CircuitBreakerPolicy::standard() {
  CircuitBreakerPolicy policy;
  policy.open_after_aborts = 3;
  policy.cooldown_blocks = 4;
  policy.cooldown_backoff = 2.0;
  policy.max_cooldown_blocks = 32;
  return policy;
}

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

ReplanPolicy ReplanPolicy::adaptive() {
  ReplanPolicy policy;
  policy.period_blocks = 8;
  policy.qber_delta = 0.015;
  policy.throughput_drop = 0.40;
  policy.window = 4;
  policy.adapt_reconciler = true;
  return policy;
}

LinkOrchestrator::LinkOrchestrator(OrchestratorConfig config)
    : config_(std::move(config)) {
  if (config_.links.empty()) {
    throw_error(ErrorCode::kConfig, "orchestrator needs at least one link");
  }
  devices_ = std::make_shared<hetero::DeviceSet>(config_.devices,
                                                 config_.device_threads);
  for (const auto& event : config_.device_events) {
    if (event.device_index >= devices_->size()) {
      throw_error(ErrorCode::kConfig, "device event outside roster");
    }
    events_.emplace_back(event);
  }
  for (auto& spec : config_.links) {
    spec.link.validate();
    QKDPP_REQUIRE(spec.pulses_per_block > 0, "empty block");
    if (!link_index_.emplace(spec.name, links_.size()).second) {
      throw_error(ErrorCode::kConfig,
                  "duplicate link name '" + spec.name +
                      "' (link_index would be ambiguous)");
    }
    links_.emplace_back(spec, config_.store);
    // Seed the live health with the analytic channel view so the network
    // router has a sensible QBER weight before the first block distills.
    // relaxed: health mirror - readers tolerate a stale sample by design.
    links_.back().live_qber.store(
        sim::AnalyticLink(spec.link).qber(spec.link.source.mu_signal),
        std::memory_order_relaxed);

    engine::EngineOptions options;
    options.shared_devices = devices_;
    options.policy = config_.policy;
    options.threads = config_.device_threads;
    options.workload = workload_for(spec, spec.link);
    links_.back().engine = std::make_unique<engine::PostprocessEngine>(
        spec.params, std::move(options));
    links_.back().roster_seen = devices_->roster_version();
  }
}

std::optional<std::size_t> LinkOrchestrator::link_index(
    std::string_view name) const {
  const auto it = link_index_.find(name);
  if (it == link_index_.end()) return std::nullopt;
  return it->second;
}

LinkHealth LinkOrchestrator::link_health(std::size_t i) const {
  const LinkState& state = links_[i];
  LinkHealth health;
  // relaxed: health snapshot - each field is independently published at a
  // block boundary; readers route/report on approximate, possibly torn
  // cross-field views by design.
  health.windowed_qber = state.live_qber.load(std::memory_order_relaxed);
  health.blocks_ok = state.live_blocks_ok.load(std::memory_order_relaxed);
  health.blocks_aborted =
      state.live_blocks_aborted.load(std::memory_order_relaxed);
  health.consecutive_aborts =
      state.live_abort_streak.load(std::memory_order_relaxed);
  health.distilling = state.live_distilling.load(std::memory_order_relaxed);
  health.breaker_open =
      state.live_breaker_open.load(std::memory_order_relaxed);
  return health;
}

void LinkOrchestrator::apply_device_events(std::uint64_t block_index) {
  for (auto& state : events_) {
    const auto& event = state.event;
    if (block_index >= event.offline_at_block &&
        !state.removed.exchange(true)) {
      devices_->set_online(event.device_index, false);
    }
    if (event.online_at_block > event.offline_at_block &&
        block_index >= event.online_at_block &&
        !state.restored.exchange(true)) {
      devices_->set_online(event.device_index, true);
    }
  }
}

engine::BlockOutcome LinkOrchestrator::run_session_block(
    LinkState& state, std::uint64_t block_id, std::uint64_t block_index,
    const sim::DetectionRecord& record, LinkReport& report) {
  const LinkSpec& spec = state.spec;
  const protocol::FaultProfile profile = spec.schedule.fault_profile_at(
      spec.channel_faults, block_index);
  const std::uint64_t seed = spec.rng_seed;

  auto [raw_alice, raw_bob] = protocol::make_channel_pair();
  auto faulty_alice = protocol::make_faulty_channel(
      std::move(raw_alice), profile, block_seed(seed, block_id, 1));
  auto faulty_bob = protocol::make_faulty_channel(
      std::move(raw_bob), profile, block_seed(seed, block_id, 2));
  // Keep injector handles: the ARQ layer owns them, but their per-kind
  // fault tallies outlive the sessions and feed the report.
  protocol::FaultyChannel* alice_faults = faulty_alice.get();
  protocol::FaultyChannel* bob_faults = faulty_bob.get();
  protocol::ReliableChannel alice_channel(std::move(faulty_alice),
                                          spec.channel_retry,
                                          block_seed(seed, block_id, 3));
  protocol::ReliableChannel bob_channel(std::move(faulty_bob),
                                        spec.channel_retry,
                                        block_seed(seed, block_id, 4));

  const engine::BlockInput input = engine::make_block_input(record, block_id);
  pipeline::BobDetections detections;
  detections.block_id = block_id;
  detections.n_pulses = input.report.n_pulses;
  detections.detected_idx = input.report.detected_idx;
  detections.bits = input.bob_bits;
  detections.bases = input.report.bob_bases;

  auto bob_future = std::async(std::launch::async, [&] {
    auto r = pipeline::run_bob_session(bob_channel, detections, spec.params);
    // Close inside the task: close() lingers to pump retransmissions of
    // Bob's final frame, which only helps while Alice is still listening.
    bob_channel.close();
    return r;
  });
  // Per-block session RNG (PE positions, frame seeds, verify/PA seeds):
  // derived from (link seed, block id) so key material is identical across
  // runs whatever the fault timing did to previous blocks.
  Xoshiro256 session_rng(block_seed(seed, block_id, 0));
  const pipeline::SessionResult alice = pipeline::run_alice_session(
      alice_channel, input.log, block_id, spec.params, session_rng);
  alice_channel.close();
  const pipeline::SessionResult bob = bob_future.get();

  report.channel += alice.channel;
  report.channel += bob.channel;
  report.faults += alice_faults->fault_counters();
  report.faults += bob_faults->fault_counters();
  for (const auto& side : {alice, bob}) {
    if (!side.fault_code.has_value()) continue;
    if (*side.fault_code == ErrorCode::kAuthentication) {
      ++report.auth_aborts;
    } else if (*side.fault_code == ErrorCode::kTimeout ||
               *side.fault_code == ErrorCode::kChannelClosed) {
      ++report.channel_aborts;
    }
  }

  engine::BlockOutcome outcome;
  outcome.block_id = block_id;
  outcome.pulses = spec.pulses_per_block;
  outcome.sifted_bits = alice.sifted_bits;
  outcome.key_candidate_bits = alice.key_candidate_bits;
  outcome.qber_estimate = alice.qber_estimate;
  // Sentinel for the window feed: a session killed by a channel or auth
  // fault may carry a partial estimate; only a fault-free one (PE always
  // floors a completed estimate above zero) is a channel measurement.
  const bool channel_fault =
      alice.fault_code.has_value() || bob.fault_code.has_value();
  outcome.pe_sample_bits =
      (!channel_fault && alice.qber_estimate > 0.0) ? 1 : 0;
  outcome.leak_ec_bits = alice.leak_ec_bits;
  outcome.reconciled_bits = alice.reconciled_bits;
  if (alice.success && bob.success) {
    if (alice.final_key == bob.final_key) {
      outcome.success = true;
      outcome.final_key = alice.final_key;
      outcome.final_key_bits = alice.final_key.size();
    } else {
      // Verification and the PA-parameter checksum make this unreachable
      // short of a protocol bug; count it loudly instead of delivering.
      ++report.mismatched_keys;
      outcome.abort_reason = "endpoint key mismatch";
    }
  } else {
    outcome.abort_reason =
        !alice.success ? alice.abort_reason : bob.abort_reason;
  }
  return outcome;
}

void LinkOrchestrator::run_link(std::size_t i, LinkReport& report) {
  LinkState& state = links_[i];
  // relaxed: health mirror - single writer (this link thread), readers
  // tolerate staleness by design.
  state.live_distilling.store(true, std::memory_order_relaxed);
  const ReplanPolicy& policy = config_.replan;
  report.name = state.spec.name;
  report.length_km = state.spec.link.channel.length_km;

  // Sliding-window channel/throughput view driving adaptation. The QBER
  // window holds measured per-block estimates (deterministic per seed);
  // the throughput window holds wall-clock block times (placement only).
  std::deque<double> qber_window;
  std::deque<double> seconds_window;
  const sim::AnalyticLink nominal(state.spec.link);
  double qber_at_plan = nominal.qber(state.spec.link.source.mu_signal);
  double best_window_rate = 0.0;
  std::uint64_t last_plan_block = 0;

  const CircuitBreakerPolicy& breaker = config_.breaker;
  if (breaker.enabled() && state.breaker_state == BreakerState::kOpen) {
    // A breaker left open by a previous run probes immediately: its pending
    // cooldown was counted in the previous run's block indices.
    state.breaker_probe_block = 0;
  }

  Stopwatch link_clock;
  for (std::uint64_t b = 0; b < state.spec.blocks; ++b) {
    apply_device_events(b);

    if (breaker.enabled() && state.breaker_state == BreakerState::kOpen) {
      if (b < state.breaker_probe_block) {
        // Shed the block instead of burning a full retransmission budget
        // against a channel we already know is dark.
        ++report.breaker_skipped_blocks;
        continue;
      }
      state.breaker_state = BreakerState::kHalfOpen;
    }

    // A roster change invalidates the placement outright: replan before
    // committing the next block to a device that is no longer there.
    if (policy.enabled()) {
      const std::uint64_t roster_now = devices_->roster_version();
      if (roster_now != state.roster_seen) {
        state.engine->replan(workload_for(
            state.spec, state.spec.schedule.config_at(state.spec.link, b),
            qber_window.empty() ? -1.0 : mean(qber_window)));
        ++report.replans;
        state.roster_seen = roster_now;
        last_plan_block = b;
        if (!qber_window.empty()) qber_at_plan = mean(qber_window);
      }
    }

    const std::uint64_t block_id = state.next_block_id++;
    Stopwatch block_clock;
    sim::DetectionRecord record;
    if (state.spec.schedule.empty()) {
      record = state.simulator.run(state.spec.pulses_per_block, state.rng);
    } else {
      // Sample the scheduled channel for this block index: the simulator
      // is cheap to rebuild and the physics stays seed-deterministic.
      const sim::Bb84Simulator simulator(
          state.spec.schedule.config_at(state.spec.link, b));
      record = simulator.run(state.spec.pulses_per_block, state.rng);
    }
    engine::BlockOutcome outcome;
    if (state.spec.session_transport) {
      outcome = run_session_block(state, block_id, b, record, report);
    } else {
      const engine::BlockInput input =
          engine::make_block_input(record, block_id);
      outcome = state.engine->process_block(input, block_id, state.rng);
    }
    // Decode statistics accumulate for aborted blocks too - a failed block
    // still spent iterations and disclosed its syndromes.
    report.reconcile_frames += outcome.reconcile_frames;
    report.decoder_iterations += outcome.decoder_iterations;
    report.reconcile_early_exit_frames += outcome.reconcile_early_exit_frames;
    report.reconcile_leak_bits += outcome.leak_ec_bits;
    if (outcome.success) {
      ++report.blocks_ok;
      // relaxed: health mirror counters, single writer, stale reads fine.
      state.live_blocks_ok.fetch_add(1, std::memory_order_relaxed);
      state.live_abort_streak.store(0, std::memory_order_relaxed);
      // Typed deposit outcome: rejected material is accounted from the
      // result itself instead of sampling the store's counters around the
      // run (which misattributed rejections when other depositors share
      // the store).
      const pipeline::DepositResult deposited =
          state.store.deposit(outcome.final_key);
      if (deposited.accepted()) {
        report.secret_bits += outcome.final_key_bits;
      } else {
        ++report.rejected_keys;
        report.rejected_bits += outcome.final_key_bits;
      }
    } else {
      ++report.blocks_aborted;
      // relaxed: health mirror counters, single writer, stale reads fine.
      state.live_blocks_aborted.fetch_add(1, std::memory_order_relaxed);
      state.live_abort_streak.fetch_add(1, std::memory_order_relaxed);
      if (outcome.abort_reason == engine::kAbortDeviceOffline) {
        ++report.offline_aborts;
      }
    }

    if (breaker.enabled()) {
      if (outcome.success) {
        state.breaker_state = BreakerState::kClosed;
        state.breaker_cooldown = static_cast<double>(breaker.cooldown_blocks);
      } else {
        const bool probe_failed =
            state.breaker_state == BreakerState::kHalfOpen;
        // relaxed: reading back our own thread's streak counter.
        const std::uint64_t streak =
            state.live_abort_streak.load(std::memory_order_relaxed);
        if (probe_failed || streak >= breaker.open_after_aborts) {
          // A failed half-open probe backs the cooldown off geometrically;
          // a fresh abort streak starts from the base cooldown.
          state.breaker_cooldown =
              probe_failed
                  ? std::min(static_cast<double>(breaker.max_cooldown_blocks),
                             state.breaker_cooldown * breaker.cooldown_backoff)
                  : static_cast<double>(breaker.cooldown_blocks);
          state.breaker_state = BreakerState::kOpen;
          ++report.breaker_opens;
          state.breaker_probe_block =
              b + 1 + static_cast<std::uint64_t>(state.breaker_cooldown);
        }
      }
      // relaxed: health mirror, single writer, stale reads fine.
      state.live_breaker_open.store(
          state.breaker_state != BreakerState::kClosed,
          std::memory_order_relaxed);
    }

    // Feed the windows and evaluate the remaining triggers at the block
    // boundary; in-flight blocks of other links are never drained. An
    // aborted block feeds the QBER window only while its estimate sits
    // below the abort ceiling: a reconcile failure at 8% is a real
    // operating point the adaptation must react to (the LDPC->Cascade
    // switch on a QBER burst depends on exactly those blocks), but an
    // outage block estimated at ~50% — or a session killed by a channel
    // fault, which never produced a trustworthy estimate — says nothing
    // about the channel the *next* block will see, and mixing those in
    // skewed replan triggers and relay routing costs long after recovery.
    if (outcome.pe_sample_bits > 0 &&
        (outcome.success ||
         outcome.qber_estimate <= state.spec.params.qber_abort)) {
      push_window(qber_window, outcome.qber_estimate, policy.window);
    }
    push_window(seconds_window, block_clock.seconds(), policy.window);
    const double windowed_qber = mean(qber_window);
    report.windowed_qber = windowed_qber;
    if (!qber_window.empty()) {
      // relaxed: health mirror, single writer, stale reads fine.
      state.live_qber.store(windowed_qber, std::memory_order_relaxed);
    }

    bool replan = false;
    if (policy.adapt_reconciler && policy.enabled() && !qber_window.empty()) {
      // A method change flips reconcile's device feasibility (Cascade is
      // host-only), so the stale placement must be refreshed right away.
      replan = state.engine->adapt_to_qber(windowed_qber);
    }
    if (!policy.enabled() || b + 1 >= state.spec.blocks) continue;

    if (policy.period_blocks > 0 &&
        b + 1 - last_plan_block >= policy.period_blocks) {
      replan = true;
    }
    if (policy.qber_delta > 0 && !qber_window.empty() &&
        std::abs(windowed_qber - qber_at_plan) >= policy.qber_delta) {
      replan = true;
    }
    if (policy.throughput_drop > 0 &&
        seconds_window.size() >= std::max<std::size_t>(2, policy.window)) {
      const double rate = 1.0 / std::max(1e-12, mean(seconds_window));
      best_window_rate = std::max(best_window_rate, rate);
      if (rate < (1.0 - policy.throughput_drop) * best_window_rate) {
        replan = true;
      }
    }
    if (replan) {
      state.engine->replan(workload_for(
          state.spec, state.spec.schedule.config_at(state.spec.link, b + 1),
          qber_window.empty() ? -1.0 : windowed_qber));
      ++report.replans;
      last_plan_block = b + 1;
      if (!qber_window.empty()) qber_at_plan = windowed_qber;
      best_window_rate = 0.0;
      state.roster_seen = devices_->roster_version();
    }
  }
  report.wall_seconds = link_clock.seconds();
  report.breaker_state = state.breaker_state;
  // relaxed: health mirror, single writer, stale reads fine.
  state.live_distilling.store(false, std::memory_order_relaxed);

  const auto placement = state.engine->placement();
  for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
    report.stage_devices.push_back(placement.device_of(s));
  }
  if (report.wall_seconds > 0) {
    report.secret_bits_per_s =
        static_cast<double>(report.secret_bits) / report.wall_seconds;
    report.blocks_per_s =
        static_cast<double>(report.blocks_ok + report.blocks_aborted) /
        report.wall_seconds;
  }
}

OrchestratorReport LinkOrchestrator::run() {
  // Serialize overlapping fleets: per-link rng streams and block counters
  // are single-writer, and a second concurrent run() would interleave them.
  MutexLock gate(run_mutex_);
  // Bounded by default: min(links, hardware threads). One OS thread per
  // link stops scaling long before 128 links (oversubscription thrash);
  // a work-stealing pool keeps every core busy while idle-link tasks wait
  // their turn. Links are deterministic regardless of which worker runs
  // them (per-link rng stream + block order live in LinkState).
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers =
      config_.workers ? config_.workers : std::min(links_.size(), hw);
  ThreadPool pool(workers);

  std::vector<LinkReport> reports(links_.size());
  Stopwatch fleet_clock;
  std::vector<std::future<void>> done;
  done.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    done.push_back(
        pool.submit([this, i, &reports] { run_link(i, reports[i]); }));
  }
  for (auto& future : done) future.get();

  OrchestratorReport report;
  report.wall_seconds = fleet_clock.seconds();
  report.pool = pool.stats();
  report.links = std::move(reports);
  for (const auto& link : report.links) {
    report.blocks_ok += link.blocks_ok;
    report.blocks_aborted += link.blocks_aborted;
    report.secret_bits += link.secret_bits;
  }
  if (report.wall_seconds > 0) {
    report.secret_bits_per_s =
        static_cast<double>(report.secret_bits) / report.wall_seconds;
    report.blocks_per_s =
        static_cast<double>(report.blocks_ok + report.blocks_aborted) /
        report.wall_seconds;
  }
  return report;
}

}  // namespace qkdpp::service
