#include "service/link_orchestrator.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/threadpool.hpp"
#include "engine/sim_adapter.hpp"

namespace qkdpp::service {

namespace {

/// Price this link's nominal per-block workload for the mapper: the
/// analytic channel model predicts the sifted/key volume and QBER a block
/// of `pulses_per_block` produces at this distance, so short metro links
/// and long lossy WAN links present genuinely different WorkEstimates and
/// the shared-device arbitration weighs them accordingly.
engine::StageWorkload workload_for(const LinkSpec& spec) {
  const sim::AnalyticLink model(spec.link);
  const auto& source = spec.link.source;
  const double gain = sim::expected_mean_gain(spec.link);
  const auto pulses = static_cast<double>(spec.pulses_per_block);

  engine::StageWorkload workload;
  workload.pulses = spec.pulses_per_block;
  // Half the detections survive basis sifting.
  workload.sifted_bits = static_cast<std::size_t>(
      std::max(1.0, pulses * gain * 0.5));
  // Signal-class sifted bits minus the estimation sample enter the key.
  workload.key_bits = static_cast<std::size_t>(std::max(
      1.0, static_cast<double>(workload.sifted_bits) * source.p_signal *
               (1.0 - spec.params.pe_fraction)));
  workload.qber = model.qber(source.mu_signal);
  return workload;
}

}  // namespace

LinkOrchestrator::LinkOrchestrator(OrchestratorConfig config)
    : config_(std::move(config)) {
  if (config_.links.empty()) {
    throw_error(ErrorCode::kConfig, "orchestrator needs at least one link");
  }
  devices_ = std::make_shared<hetero::DeviceSet>(config_.devices,
                                                 config_.device_threads);
  for (auto& spec : config_.links) {
    spec.link.validate();
    QKDPP_REQUIRE(spec.pulses_per_block > 0, "empty block");
    links_.emplace_back(spec, config_.store);

    engine::EngineOptions options;
    options.shared_devices = devices_;
    options.policy = config_.policy;
    options.threads = config_.device_threads;
    options.workload = workload_for(spec);
    links_.back().engine = std::make_unique<engine::PostprocessEngine>(
        spec.params, std::move(options));
  }
}

OrchestratorReport LinkOrchestrator::run() {
  const std::size_t workers =
      config_.workers ? config_.workers : links_.size();
  ThreadPool pool(workers);

  std::vector<LinkReport> reports(links_.size());
  Stopwatch fleet_clock;
  std::vector<std::future<void>> done;
  done.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    done.push_back(pool.submit([this, i, &reports] {
      LinkState& state = links_[i];
      LinkReport report;
      report.name = state.spec.name;
      report.length_km = state.spec.link.channel.length_km;
      const auto& placement = state.engine->placement();
      for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
        report.stage_devices.push_back(placement.device_of(s));
      }
      const std::uint64_t rejected_keys_before = state.store.rejected_keys();
      const std::uint64_t rejected_bits_before = state.store.rejected_bits();

      Stopwatch link_clock;
      for (std::uint64_t b = 0; b < state.spec.blocks; ++b) {
        const std::uint64_t block_id = state.next_block_id++;
        const sim::DetectionRecord record =
            state.simulator.run(state.spec.pulses_per_block, state.rng);
        const engine::BlockInput input =
            engine::make_block_input(record, block_id);
        const engine::BlockOutcome outcome =
            state.engine->process_block(input, block_id, state.rng);
        if (!outcome.success) {
          ++report.blocks_aborted;
          continue;
        }
        ++report.blocks_ok;
        if (state.store.deposit(outcome.final_key) != 0) {
          report.secret_bits += outcome.final_key_bits;
        }
      }
      report.wall_seconds = link_clock.seconds();
      report.rejected_keys =
          state.store.rejected_keys() - rejected_keys_before;
      report.rejected_bits =
          state.store.rejected_bits() - rejected_bits_before;
      if (report.wall_seconds > 0) {
        report.secret_bits_per_s =
            static_cast<double>(report.secret_bits) / report.wall_seconds;
        report.blocks_per_s =
            static_cast<double>(report.blocks_ok + report.blocks_aborted) /
            report.wall_seconds;
      }
      reports[i] = std::move(report);
    }));
  }
  for (auto& future : done) future.get();

  OrchestratorReport report;
  report.wall_seconds = fleet_clock.seconds();
  report.links = std::move(reports);
  for (const auto& link : report.links) {
    report.blocks_ok += link.blocks_ok;
    report.blocks_aborted += link.blocks_aborted;
    report.secret_bits += link.secret_bits;
  }
  if (report.wall_seconds > 0) {
    report.secret_bits_per_s =
        static_cast<double>(report.secret_bits) / report.wall_seconds;
    report.blocks_per_s =
        static_cast<double>(report.blocks_ok + report.blocks_aborted) /
        report.wall_seconds;
  }
  return report;
}

}  // namespace qkdpp::service
