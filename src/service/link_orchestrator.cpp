#include "service/link_orchestrator.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/threadpool.hpp"
#include "engine/sim_adapter.hpp"

namespace qkdpp::service {

namespace {

/// Price this link's nominal per-block workload for the mapper: the
/// analytic channel model predicts the sifted/key volume and QBER a block
/// of `pulses_per_block` produces at this distance, so short metro links
/// and long lossy WAN links present genuinely different WorkEstimates and
/// the shared-device arbitration weighs them accordingly. `current` is the
/// channel as the schedule has perturbed it; `qber_override` (when >= 0)
/// substitutes a measured windowed QBER for the analytic prediction.
engine::StageWorkload workload_for(const LinkSpec& spec,
                                   const sim::LinkConfig& current,
                                   double qber_override = -1.0) {
  const sim::AnalyticLink model(current);
  const auto& source = current.source;
  const double gain = sim::expected_mean_gain(current);
  const auto pulses = static_cast<double>(spec.pulses_per_block);

  engine::StageWorkload workload;
  workload.pulses = spec.pulses_per_block;
  // Half the detections survive basis sifting.
  workload.sifted_bits = static_cast<std::size_t>(
      std::max(1.0, pulses * gain * 0.5));
  // Signal-class sifted bits minus the estimation sample enter the key.
  workload.key_bits = static_cast<std::size_t>(std::max(
      1.0, static_cast<double>(workload.sifted_bits) * source.p_signal *
               (1.0 - spec.params.pe_fraction)));
  workload.qber =
      qber_override >= 0 ? qber_override : model.qber(source.mu_signal);
  return workload;
}

double mean(const std::deque<double>& window) {
  if (window.empty()) return 0.0;
  return std::accumulate(window.begin(), window.end(), 0.0) /
         static_cast<double>(window.size());
}

void push_window(std::deque<double>& window, double value,
                 std::size_t capacity) {
  window.push_back(value);
  while (window.size() > std::max<std::size_t>(1, capacity)) {
    window.pop_front();
  }
}

}  // namespace

ReplanPolicy ReplanPolicy::adaptive() {
  ReplanPolicy policy;
  policy.period_blocks = 8;
  policy.qber_delta = 0.015;
  policy.throughput_drop = 0.40;
  policy.window = 4;
  policy.adapt_reconciler = true;
  return policy;
}

LinkOrchestrator::LinkOrchestrator(OrchestratorConfig config)
    : config_(std::move(config)) {
  if (config_.links.empty()) {
    throw_error(ErrorCode::kConfig, "orchestrator needs at least one link");
  }
  devices_ = std::make_shared<hetero::DeviceSet>(config_.devices,
                                                 config_.device_threads);
  for (const auto& event : config_.device_events) {
    if (event.device_index >= devices_->size()) {
      throw_error(ErrorCode::kConfig, "device event outside roster");
    }
    events_.emplace_back(event);
  }
  for (auto& spec : config_.links) {
    spec.link.validate();
    QKDPP_REQUIRE(spec.pulses_per_block > 0, "empty block");
    if (!link_index_.emplace(spec.name, links_.size()).second) {
      throw_error(ErrorCode::kConfig,
                  "duplicate link name '" + spec.name +
                      "' (link_index would be ambiguous)");
    }
    links_.emplace_back(spec, config_.store);
    // Seed the live health with the analytic channel view so the network
    // router has a sensible QBER weight before the first block distills.
    links_.back().live_qber.store(
        sim::AnalyticLink(spec.link).qber(spec.link.source.mu_signal),
        std::memory_order_relaxed);

    engine::EngineOptions options;
    options.shared_devices = devices_;
    options.policy = config_.policy;
    options.threads = config_.device_threads;
    options.workload = workload_for(spec, spec.link);
    links_.back().engine = std::make_unique<engine::PostprocessEngine>(
        spec.params, std::move(options));
    links_.back().roster_seen = devices_->roster_version();
  }
}

std::optional<std::size_t> LinkOrchestrator::link_index(
    std::string_view name) const {
  const auto it = link_index_.find(name);
  if (it == link_index_.end()) return std::nullopt;
  return it->second;
}

LinkHealth LinkOrchestrator::link_health(std::size_t i) const {
  const LinkState& state = links_[i];
  LinkHealth health;
  health.windowed_qber = state.live_qber.load(std::memory_order_relaxed);
  health.blocks_ok = state.live_blocks_ok.load(std::memory_order_relaxed);
  health.blocks_aborted =
      state.live_blocks_aborted.load(std::memory_order_relaxed);
  health.consecutive_aborts =
      state.live_abort_streak.load(std::memory_order_relaxed);
  health.distilling = state.live_distilling.load(std::memory_order_relaxed);
  return health;
}

void LinkOrchestrator::apply_device_events(std::uint64_t block_index) {
  for (auto& state : events_) {
    const auto& event = state.event;
    if (block_index >= event.offline_at_block &&
        !state.removed.exchange(true)) {
      devices_->set_online(event.device_index, false);
    }
    if (event.online_at_block > event.offline_at_block &&
        block_index >= event.online_at_block &&
        !state.restored.exchange(true)) {
      devices_->set_online(event.device_index, true);
    }
  }
}

void LinkOrchestrator::run_link(std::size_t i, LinkReport& report) {
  LinkState& state = links_[i];
  state.live_distilling.store(true, std::memory_order_relaxed);
  const ReplanPolicy& policy = config_.replan;
  report.name = state.spec.name;
  report.length_km = state.spec.link.channel.length_km;

  // Sliding-window channel/throughput view driving adaptation. The QBER
  // window holds measured per-block estimates (deterministic per seed);
  // the throughput window holds wall-clock block times (placement only).
  std::deque<double> qber_window;
  std::deque<double> seconds_window;
  const sim::AnalyticLink nominal(state.spec.link);
  double qber_at_plan = nominal.qber(state.spec.link.source.mu_signal);
  double best_window_rate = 0.0;
  std::uint64_t last_plan_block = 0;

  Stopwatch link_clock;
  for (std::uint64_t b = 0; b < state.spec.blocks; ++b) {
    apply_device_events(b);

    // A roster change invalidates the placement outright: replan before
    // committing the next block to a device that is no longer there.
    if (policy.enabled()) {
      const std::uint64_t roster_now = devices_->roster_version();
      if (roster_now != state.roster_seen) {
        state.engine->replan(workload_for(
            state.spec, state.spec.schedule.config_at(state.spec.link, b),
            qber_window.empty() ? -1.0 : mean(qber_window)));
        ++report.replans;
        state.roster_seen = roster_now;
        last_plan_block = b;
        if (!qber_window.empty()) qber_at_plan = mean(qber_window);
      }
    }

    const std::uint64_t block_id = state.next_block_id++;
    Stopwatch block_clock;
    sim::DetectionRecord record;
    if (state.spec.schedule.empty()) {
      record = state.simulator.run(state.spec.pulses_per_block, state.rng);
    } else {
      // Sample the scheduled channel for this block index: the simulator
      // is cheap to rebuild and the physics stays seed-deterministic.
      const sim::Bb84Simulator simulator(
          state.spec.schedule.config_at(state.spec.link, b));
      record = simulator.run(state.spec.pulses_per_block, state.rng);
    }
    const engine::BlockInput input =
        engine::make_block_input(record, block_id);
    const engine::BlockOutcome outcome =
        state.engine->process_block(input, block_id, state.rng);
    if (outcome.success) {
      ++report.blocks_ok;
      state.live_blocks_ok.fetch_add(1, std::memory_order_relaxed);
      state.live_abort_streak.store(0, std::memory_order_relaxed);
      // Typed deposit outcome: rejected material is accounted from the
      // result itself instead of sampling the store's counters around the
      // run (which misattributed rejections when other depositors share
      // the store).
      const pipeline::DepositResult deposited =
          state.store.deposit(outcome.final_key);
      if (deposited.accepted()) {
        report.secret_bits += outcome.final_key_bits;
      } else {
        ++report.rejected_keys;
        report.rejected_bits += outcome.final_key_bits;
      }
    } else {
      ++report.blocks_aborted;
      state.live_blocks_aborted.fetch_add(1, std::memory_order_relaxed);
      state.live_abort_streak.fetch_add(1, std::memory_order_relaxed);
      if (outcome.abort_reason == engine::kAbortDeviceOffline) {
        ++report.offline_aborts;
      }
    }

    // Feed the windows and evaluate the remaining triggers at the block
    // boundary; in-flight blocks of other links are never drained.
    if (outcome.pe_sample_bits > 0) {
      push_window(qber_window, outcome.qber_estimate, policy.window);
    }
    push_window(seconds_window, block_clock.seconds(), policy.window);
    const double windowed_qber = mean(qber_window);
    report.windowed_qber = windowed_qber;
    if (!qber_window.empty()) {
      state.live_qber.store(windowed_qber, std::memory_order_relaxed);
    }

    bool replan = false;
    if (policy.adapt_reconciler && policy.enabled() && !qber_window.empty()) {
      // A method change flips reconcile's device feasibility (Cascade is
      // host-only), so the stale placement must be refreshed right away.
      replan = state.engine->adapt_to_qber(windowed_qber);
    }
    if (!policy.enabled() || b + 1 >= state.spec.blocks) continue;

    if (policy.period_blocks > 0 &&
        b + 1 - last_plan_block >= policy.period_blocks) {
      replan = true;
    }
    if (policy.qber_delta > 0 && !qber_window.empty() &&
        std::abs(windowed_qber - qber_at_plan) >= policy.qber_delta) {
      replan = true;
    }
    if (policy.throughput_drop > 0 &&
        seconds_window.size() >= std::max<std::size_t>(2, policy.window)) {
      const double rate = 1.0 / std::max(1e-12, mean(seconds_window));
      best_window_rate = std::max(best_window_rate, rate);
      if (rate < (1.0 - policy.throughput_drop) * best_window_rate) {
        replan = true;
      }
    }
    if (replan) {
      state.engine->replan(workload_for(
          state.spec, state.spec.schedule.config_at(state.spec.link, b + 1),
          qber_window.empty() ? -1.0 : windowed_qber));
      ++report.replans;
      last_plan_block = b + 1;
      if (!qber_window.empty()) qber_at_plan = windowed_qber;
      best_window_rate = 0.0;
      state.roster_seen = devices_->roster_version();
    }
  }
  report.wall_seconds = link_clock.seconds();
  state.live_distilling.store(false, std::memory_order_relaxed);

  const auto placement = state.engine->placement();
  for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
    report.stage_devices.push_back(placement.device_of(s));
  }
  if (report.wall_seconds > 0) {
    report.secret_bits_per_s =
        static_cast<double>(report.secret_bits) / report.wall_seconds;
    report.blocks_per_s =
        static_cast<double>(report.blocks_ok + report.blocks_aborted) /
        report.wall_seconds;
  }
}

OrchestratorReport LinkOrchestrator::run() {
  const std::size_t workers =
      config_.workers ? config_.workers : links_.size();
  ThreadPool pool(workers);

  std::vector<LinkReport> reports(links_.size());
  Stopwatch fleet_clock;
  std::vector<std::future<void>> done;
  done.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    done.push_back(
        pool.submit([this, i, &reports] { run_link(i, reports[i]); }));
  }
  for (auto& future : done) future.get();

  OrchestratorReport report;
  report.wall_seconds = fleet_clock.seconds();
  report.links = std::move(reports);
  for (const auto& link : report.links) {
    report.blocks_ok += link.blocks_ok;
    report.blocks_aborted += link.blocks_aborted;
    report.secret_bits += link.secret_bits;
  }
  if (report.wall_seconds > 0) {
    report.secret_bits_per_s =
        static_cast<double>(report.secret_bits) / report.wall_seconds;
    report.blocks_per_s =
        static_cast<double>(report.blocks_ok + report.blocks_aborted) /
        report.wall_seconds;
  }
  return report;
}

}  // namespace qkdpp::service
