// LinkOrchestrator: many concurrent QKD links distilling into a bounded
// key-management layer on one physical machine.
//
// Deployed QKD networks are not one link: a trusted node terminates many
// spans of different lengths (metro access, regional backbone, WAN), and
// the post-processing host serves all of them at once. The orchestrator
// owns N independent links - each a LinkConfig (physics) plus a
// PostprocessEngine (distillation) - placed over one *shared*
// hetero::DeviceSet. Engines are constructed in link order, so each
// placement is arbitrated against the device load earlier links already
// committed (the mapper's base_load path): a device that is optimal for
// one link in isolation stops being chosen once other links have loaded
// it. run() drives every link concurrently on a thread pool; distilled
// keys land in a per-link-pair bounded KeyStore (ETSI GS QKD 014
// flavoured), where a slow consumer shows up as rejected_bits or as
// backpressure instead of unbounded memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "engine/engine.hpp"
#include "engine/params.hpp"
#include "hetero/device_set.hpp"
#include "pipeline/kms.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/reliable_channel.hpp"
#include "sim/bb84.hpp"
#include "sim/link_config.hpp"
#include "sim/scenario.hpp"

namespace qkdpp::service {

/// One QKD link: a physical channel plus its post-processing parameters.
struct LinkSpec {
  std::string name;
  sim::LinkConfig link;
  engine::PostprocessParams params;
  std::size_t pulses_per_block = std::size_t{1} << 20;
  std::uint64_t blocks = 4;      ///< blocks to distill per run()
  std::uint64_t rng_seed = 1;    ///< per-link deterministic stream
  /// Time-varying channel: perturbations applied to `link` per block index
  /// within a run (empty = stationary channel, the pre-scenario behaviour).
  sim::LinkSchedule schedule;
  /// Distill through the two-party session choreography over an in-process
  /// classical channel (ARQ over the fault injector) instead of the
  /// single-process engine fast path. This is the deployment shape whose
  /// retry/timeout/degradation behaviour the fault timeline exercises; the
  /// engine path exchanges no classical messages, so faults cannot touch it.
  bool session_transport = false;
  /// Standing egress fault profile of the classical channel (session
  /// transport only; the schedule's channel_faults phases overlay it per
  /// block).
  protocol::FaultProfile channel_faults;
  /// ARQ posture of the session transport (retries, backoff, deadlines).
  protocol::RetryPolicy channel_retry;
};

/// Per-link circuit breaker: an unbroken abort streak opens the circuit,
/// the link skips (rather than burns retry budgets on) the cooldown window,
/// then a single half-open probe block decides between re-closing and
/// re-opening with a multiplied cooldown. Disabled by default — aborts are
/// cheap on the engine fast path; arm it for session-transport links where
/// every channel-fault abort costs a full retransmission budget.
struct CircuitBreakerPolicy {
  /// Consecutive aborts that open the circuit (0 = breaker disabled).
  std::uint64_t open_after_aborts = 0;
  /// Blocks skipped after the first open before the half-open probe.
  std::uint64_t cooldown_blocks = 4;
  /// Cooldown multiplier applied on every failed half-open probe.
  double cooldown_backoff = 2.0;
  /// Cooldown growth cap.
  std::uint64_t max_cooldown_blocks = 64;

  bool enabled() const noexcept { return open_after_aborts > 0; }

  /// The posture the chaos bench and the examples run: open after 3
  /// consecutive aborts, 4-block cooldown doubling up to 32.
  static CircuitBreakerPolicy standard();
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,    ///< normal operation
  kOpen = 1,      ///< cooling down, blocks are skipped
  kHalfOpen = 2,  ///< one probe block in flight
};

const char* to_string(BreakerState state) noexcept;

/// When and why a link re-runs its engine's placement search mid-run. All
/// triggers are evaluated at block boundaries; in-flight blocks are never
/// drained (they finish on the placement they started with). Reconciler
/// adaptation (cascade passes, LDPC rate target) depends only on the
/// windowed QBER estimate, so adapted runs stay bit-deterministic per seed
/// even though placement triggers may consult wall-clock throughput.
struct ReplanPolicy {
  /// Replan every N blocks (0 = no periodic replanning).
  std::uint64_t period_blocks = 0;
  /// Replan when the windowed QBER moved at least this far from the value
  /// the current plan was made for (0 = disabled).
  double qber_delta = 0.0;
  /// Replan when windowed blocks/s falls below (1 - drop) x the best
  /// window seen since the last plan (0 = disabled).
  double throughput_drop = 0.0;
  /// Sliding-window length, in blocks, for the QBER and throughput
  /// estimates feeding the triggers and the reconciler adaptation.
  std::size_t window = 6;
  /// Retune the reconciler to the windowed QBER (method crossover between
  /// offloadable LDPC frames and low-leakage Cascade, pass count in the
  /// hot band - see PostprocessEngine::adapt_to_qber). When the adaptation
  /// changes the method, the link replans immediately: reconcile's device
  /// feasibility flips with it. Only consulted while the policy is
  /// enabled() - the sliding windows that feed the adaptation exist only
  /// on the dynamic path, so arm at least one trigger (period_blocks is
  /// the cheapest) to get adaptation; the default-constructed policy is
  /// fully static regardless of this flag.
  bool adapt_reconciler = true;

  /// Any trigger armed? Roster changes (device hot-remove/re-add) always
  /// force a replan while enabled.
  bool enabled() const noexcept {
    return period_blocks > 0 || qber_delta > 0 || throughput_drop > 0;
  }

  /// The default adaptive posture the examples/benches run: periodic
  /// refresh plus QBER and throughput triggers.
  static ReplanPolicy adaptive();
  /// Construction-time placement only (the PR-1 behaviour).
  static ReplanPolicy static_placement() { return ReplanPolicy{}; }
};

struct OrchestratorConfig {
  std::vector<LinkSpec> links;
  /// Shared roster; empty selects the standard four-kind set.
  std::vector<hetero::DeviceProps> devices;
  /// Host threads backing the shared set's parallel kernels (0 = hw).
  std::size_t device_threads = 0;
  /// Worker threads driving links. 0 = min(link count, hardware threads):
  /// a bounded work-stealing pool, so 128 links on a 16-core host run 16
  /// at a time instead of oversubscribing 128 OS threads. Per-link
  /// determinism is unaffected - each link's rng stream and block order
  /// live in its LinkState, not in which worker runs it.
  std::size_t workers = 0;
  engine::PlacementPolicy policy = engine::PlacementPolicy::kOptimized;
  /// Bound applied to every link pair's KeyStore.
  pipeline::KeyStoreConfig store;
  /// Adaptive re-planning posture (default: static, the PR-1 behaviour).
  ReplanPolicy replan;
  /// Shared-roster fault timeline, keyed by per-link block index: a device
  /// goes offline once any link reaches offline_at_block and returns once
  /// any link reaches online_at_block. Asynchronous with respect to
  /// in-flight blocks, exactly like pulling a real accelerator.
  std::vector<sim::DeviceEvent> device_events;
  /// Fleet-wide circuit-breaker posture (default disabled).
  CircuitBreakerPolicy breaker;
};

/// Per-link outcome of one run().
struct LinkReport {
  std::string name;
  double length_km = 0.0;
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t secret_bits = 0;       ///< accepted into the link's KeyStore
  std::uint64_t rejected_keys = 0;     ///< store-level rejections (bound hit)
  std::uint64_t rejected_bits = 0;
  double wall_seconds = 0.0;
  double secret_bits_per_s = 0.0;
  double blocks_per_s = 0.0;
  std::vector<std::string> stage_devices;  ///< final placement, per stage
  std::uint64_t replans = 0;               ///< mid-run placement refreshes
  std::uint64_t offline_aborts = 0;  ///< blocks lost to a hot-removed device
  double windowed_qber = 0.0;        ///< last sliding-window QBER estimate

  // Reconciliation decode statistics, summed over every processed block
  // (engine-path links; session-transport links leave them zero). Exposes
  // the batch decoder's behaviour - iteration pressure, early-exit rate,
  // disclosed bits - to reports and the bench JSON.
  std::uint64_t reconcile_frames = 0;             ///< LDPC frames decoded
  std::uint64_t decoder_iterations = 0;           ///< BP iterations, summed
  std::uint64_t reconcile_early_exit_frames = 0;  ///< converged before the cap
  std::uint64_t reconcile_leak_bits = 0;          ///< error-correction leakage

  // Degradation observability (ISSUE 7): the session transport's channel
  // accounting and the breaker's behaviour, so a chaotic run is measured,
  // not inferred. Engine-path links leave the channel/fault counters zero.
  std::uint64_t channel_aborts = 0;  ///< blocks lost to kTimeout/kChannelClosed
  std::uint64_t auth_aborts = 0;     ///< blocks lost to a MAC failure
  /// Both sides succeeded but produced different keys: must stay zero —
  /// verification gates delivery, so a nonzero count is a protocol bug.
  std::uint64_t mismatched_keys = 0;
  std::uint64_t breaker_opens = 0;           ///< closed/half-open -> open
  std::uint64_t breaker_skipped_blocks = 0;  ///< blocks not attempted
  BreakerState breaker_state = BreakerState::kClosed;  ///< at end of run
  protocol::ChannelCounters channel;  ///< both session endpoints, summed
  protocol::FaultCounters faults;     ///< injected on this link's channel
};

/// Live per-link channel health, readable while run() is in flight (the
/// network layer routes relay traffic on it). Values are sampled at block
/// boundaries by the link thread; between runs they hold the last run's
/// final state (or the analytic nominal before the first block).
struct LinkHealth {
  double windowed_qber = 0.0;  ///< sliding-window QBER estimate
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  /// Aborted blocks since the last success: a link that is hard-down (an
  /// outage scenario, a saturating Eve) shows an unbroken abort streak,
  /// which is the router's "edge is down" signal.
  std::uint64_t consecutive_aborts = 0;
  bool distilling = false;  ///< a run() is currently driving this link
  /// The link's circuit is open or half-open: the router treats the edge
  /// like admin-down and the delivery facade answers 503 for starved pairs.
  bool breaker_open = false;
};

struct OrchestratorReport {
  std::vector<LinkReport> links;
  double wall_seconds = 0.0;           ///< whole-fleet wall clock
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t secret_bits = 0;
  double secret_bits_per_s = 0.0;      ///< aggregate over fleet wall time
  double blocks_per_s = 0.0;
  /// Final snapshot of the link pool's counters (queue depth, steals,
  /// busy workers) — the contention observability the scale bench reports.
  ThreadPool::Stats pool;
};

class LinkOrchestrator {
 public:
  /// Builds one engine per link over the shared device set, in link order
  /// (placement arbitration is deterministic). Throws Error{kConfig} on an
  /// empty link list.
  explicit LinkOrchestrator(OrchestratorConfig config);

  std::size_t link_count() const noexcept { return links_.size(); }
  const LinkSpec& link_spec(std::size_t i) const { return links_[i].spec; }
  /// Index of the link named `name` (the identity a delivery facade keys
  /// SAE registrations on), or nullopt when no such link exists. O(1):
  /// the relay layer resolves a link per hop per request, so a
  /// registry-scale topology must not linear-scan here.
  std::optional<std::size_t> link_index(std::string_view name) const;
  /// Live channel health of link `i` (thread-safe; readable mid-run).
  LinkHealth link_health(std::size_t i) const;
  const engine::PostprocessEngine& link_engine(std::size_t i) const {
    return *links_[i].engine;
  }
  /// The link pair's bounded key store (thread-safe; consumers may draw
  /// concurrently with a running distillation).
  pipeline::KeyStore& key_store(std::size_t i) { return links_[i].store; }
  const hetero::DeviceSet& device_set() const noexcept { return *devices_; }

  /// Drive all links concurrently: each link distills spec.blocks blocks
  /// and deposits every successful key into its store. Repeatable; stores
  /// and rng streams carry over between runs. Serialized: overlapping
  /// calls queue on the run gate (LinkState block counters and rng streams
  /// are single-writer per link, so two interleaved fleets would corrupt
  /// determinism).
  OrchestratorReport run();

 private:
  struct LinkState {
    LinkSpec spec;
    sim::Bb84Simulator simulator;
    std::unique_ptr<engine::PostprocessEngine> engine;
    pipeline::KeyStore store;
    Xoshiro256 rng;
    std::uint64_t next_block_id = 1;
    /// Roster version the link's current placement was planned against.
    /// Set at engine construction, so a device event that lands between
    /// construction and the link thread starting still triggers the
    /// catch-up replan at the first block.
    std::uint64_t roster_seen = 0;
    /// Live health mirror, published at block boundaries for concurrent
    /// readers (link_health); the link thread is the only writer.
    std::atomic<double> live_qber{0.0};
    std::atomic<std::uint64_t> live_blocks_ok{0};
    std::atomic<std::uint64_t> live_blocks_aborted{0};
    std::atomic<std::uint64_t> live_abort_streak{0};
    std::atomic<bool> live_distilling{false};
    std::atomic<bool> live_breaker_open{false};

    /// Breaker bookkeeping (link thread only; mirrored to the atomic).
    BreakerState breaker_state = BreakerState::kClosed;
    std::uint64_t breaker_probe_block = 0;  ///< per-run block index of probe
    double breaker_cooldown = 0.0;          ///< current cooldown, in blocks

    LinkState(LinkSpec s, pipeline::KeyStoreConfig store_config)
        : spec(std::move(s)),
          simulator(spec.link),
          store(store_config),
          rng(spec.rng_seed) {}
  };

  /// Heterogeneous string hashing so link_index(string_view) never
  /// materializes a std::string per lookup.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  /// One shared-roster fault with apply-once latches (several link threads
  /// race past the same block index; the first one through flips the set).
  struct DeviceEventState {
    sim::DeviceEvent event;
    std::atomic<bool> removed{false};
    std::atomic<bool> restored{false};

    explicit DeviceEventState(sim::DeviceEvent e) : event(e) {}
  };

  void apply_device_events(std::uint64_t block_index);
  void run_link(std::size_t i, LinkReport& report);
  /// One block over the session transport: Alice and Bob distill the
  /// simulated detections across an in-process classical channel wearing
  /// the block's fault profile under the ARQ layer. Returns an
  /// engine-shaped outcome so downstream accounting is path-agnostic;
  /// channel/fault counters accumulate onto `report`.
  engine::BlockOutcome run_session_block(LinkState& state,
                                         std::uint64_t block_id,
                                         std::uint64_t block_index,
                                         const sim::DetectionRecord& record,
                                         LinkReport& report);

  OrchestratorConfig config_;
  /// Run gate: the outermost lock in the repo (nothing may be held when a
  /// fleet starts). Held across the whole fleet drive, which reaches every
  /// lower-ranked lock from the link worker threads; the gate itself is
  /// only ever taken by the caller of run(), never by a worker.
  Mutex run_mutex_{LockRank::kOrchestrator, "orchestrator.run"};
  std::shared_ptr<hetero::DeviceSet> devices_;
  std::deque<LinkState> links_;  // LinkState is pinned (store owns a mutex)
  std::deque<DeviceEventState> events_;  // pinned (atomics)
  /// name -> index, immutable after construction (O(1) link_index).
  std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>
      link_index_;
};

}  // namespace qkdpp::service
