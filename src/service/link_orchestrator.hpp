// LinkOrchestrator: many concurrent QKD links distilling into a bounded
// key-management layer on one physical machine.
//
// Deployed QKD networks are not one link: a trusted node terminates many
// spans of different lengths (metro access, regional backbone, WAN), and
// the post-processing host serves all of them at once. The orchestrator
// owns N independent links - each a LinkConfig (physics) plus a
// PostprocessEngine (distillation) - placed over one *shared*
// hetero::DeviceSet. Engines are constructed in link order, so each
// placement is arbitrated against the device load earlier links already
// committed (the mapper's base_load path): a device that is optimal for
// one link in isolation stops being chosen once other links have loaded
// it. run() drives every link concurrently on a thread pool; distilled
// keys land in a per-link-pair bounded KeyStore (ETSI GS QKD 014
// flavoured), where a slow consumer shows up as rejected_bits or as
// backpressure instead of unbounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "engine/params.hpp"
#include "hetero/device_set.hpp"
#include "pipeline/kms.hpp"
#include "sim/bb84.hpp"
#include "sim/link_config.hpp"

namespace qkdpp::service {

/// One QKD link: a physical channel plus its post-processing parameters.
struct LinkSpec {
  std::string name;
  sim::LinkConfig link;
  engine::PostprocessParams params;
  std::size_t pulses_per_block = std::size_t{1} << 20;
  std::uint64_t blocks = 4;      ///< blocks to distill per run()
  std::uint64_t rng_seed = 1;    ///< per-link deterministic stream
};

struct OrchestratorConfig {
  std::vector<LinkSpec> links;
  /// Shared roster; empty selects the standard four-kind set.
  std::vector<hetero::DeviceProps> devices;
  /// Host threads backing the shared set's parallel kernels (0 = hw).
  std::size_t device_threads = 0;
  /// Worker threads driving links (0 = one per link).
  std::size_t workers = 0;
  engine::PlacementPolicy policy = engine::PlacementPolicy::kOptimized;
  /// Bound applied to every link pair's KeyStore.
  pipeline::KeyStoreConfig store;
};

/// Per-link outcome of one run().
struct LinkReport {
  std::string name;
  double length_km = 0.0;
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t secret_bits = 0;       ///< accepted into the link's KeyStore
  std::uint64_t rejected_keys = 0;     ///< store-level rejections (bound hit)
  std::uint64_t rejected_bits = 0;
  double wall_seconds = 0.0;
  double secret_bits_per_s = 0.0;
  double blocks_per_s = 0.0;
  std::vector<std::string> stage_devices;  ///< chosen placement, per stage
};

struct OrchestratorReport {
  std::vector<LinkReport> links;
  double wall_seconds = 0.0;           ///< whole-fleet wall clock
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t secret_bits = 0;
  double secret_bits_per_s = 0.0;      ///< aggregate over fleet wall time
  double blocks_per_s = 0.0;
};

class LinkOrchestrator {
 public:
  /// Builds one engine per link over the shared device set, in link order
  /// (placement arbitration is deterministic). Throws Error{kConfig} on an
  /// empty link list.
  explicit LinkOrchestrator(OrchestratorConfig config);

  std::size_t link_count() const noexcept { return links_.size(); }
  const LinkSpec& link_spec(std::size_t i) const { return links_[i].spec; }
  const engine::PostprocessEngine& link_engine(std::size_t i) const {
    return *links_[i].engine;
  }
  /// The link pair's bounded key store (thread-safe; consumers may draw
  /// concurrently with a running distillation).
  pipeline::KeyStore& key_store(std::size_t i) { return links_[i].store; }
  const hetero::DeviceSet& device_set() const noexcept { return *devices_; }

  /// Drive all links concurrently: each link distills spec.blocks blocks
  /// and deposits every successful key into its store. Repeatable; stores
  /// and rng streams carry over between runs.
  OrchestratorReport run();

 private:
  struct LinkState {
    LinkSpec spec;
    sim::Bb84Simulator simulator;
    std::unique_ptr<engine::PostprocessEngine> engine;
    pipeline::KeyStore store;
    Xoshiro256 rng;
    std::uint64_t next_block_id = 1;

    LinkState(LinkSpec s, pipeline::KeyStoreConfig store_config)
        : spec(std::move(s)),
          simulator(spec.link),
          store(store_config),
          rng(spec.rng_seed) {}
  };

  OrchestratorConfig config_;
  std::shared_ptr<hetero::DeviceSet> devices_;
  std::deque<LinkState> links_;  // LinkState is pinned (store owns a mutex)
};

}  // namespace qkdpp::service
