#include "sim/bb84.hpp"

#include <cmath>

namespace qkdpp::sim {

Bb84Simulator::Bb84Simulator(LinkConfig config) : config_(config) {
  config_.validate();
}

DetectionRecord Bb84Simulator::run(std::size_t n_pulses,
                                   Xoshiro256& rng) const {
  DetectionRecord record;
  record.n_pulses = n_pulses;
  record.alice_bits = rng.random_bits(n_pulses);
  record.alice_bases = rng.random_bits(n_pulses);
  record.alice_class.resize(n_pulses);

  const double eta = config_.overall_transmittance();
  const double y0 = 2.0 * config_.detector.dark_count_prob;
  const double e_d = config_.channel.misalignment;
  const double f_eve = config_.eve.intercept_fraction;
  const double intensities[3] = {config_.source.mu_signal,
                                 config_.source.mu_decoy,
                                 config_.source.mu_vacuum};
  const double p_signal = config_.source.p_signal;
  const double p_decoy = config_.source.p_decoy;

  double dead_until = -1.0;  // pulse index until which the detector is blind

  for (std::size_t i = 0; i < n_pulses; ++i) {
    // Intensity class selection.
    const double u = rng.next_double();
    const auto cls = u < p_signal                ? PulseClass::kSignal
                     : (u < p_signal + p_decoy) ? PulseClass::kDecoy
                                                : PulseClass::kVacuum;
    record.alice_class[i] = static_cast<std::uint8_t>(cls);

    bool state_bit = record.alice_bits.get(i);
    bool state_basis = record.alice_bases.get(i);

    // Intercept-resend: Eve measures in a random basis and re-prepares.
    if (f_eve > 0.0 && rng.bernoulli(f_eve)) {
      const bool eve_basis = rng.bernoulli(0.5);
      const bool eve_bit = eve_basis == state_basis ? state_bit
                                                    : rng.bernoulli(0.5);
      state_bit = eve_bit;
      state_basis = eve_basis;
    }

    // Photon statistics and channel survival.
    const double mu = intensities[static_cast<std::size_t>(cls)];
    const std::uint32_t n_photons =
        config_.source.single_photon_ideal ? 1u : rng.poisson(mu);
    bool signal_click = false;
    if (n_photons > 0) {
      // P(at least one of n photons detected) = 1 - (1-eta)^n.
      signal_click = rng.bernoulli(1.0 - std::pow(1.0 - eta, n_photons));
    }
    const bool dark_click = rng.bernoulli(y0);

    if (static_cast<double>(i) < dead_until) continue;  // detector blind
    if (!signal_click && !dark_click) continue;

    if (config_.detector.dead_time_gates > 0) {
      dead_until = static_cast<double>(i) + config_.detector.dead_time_gates;
    }

    const bool bob_basis = rng.bernoulli(0.5);
    bool bob_bit;
    if (signal_click) {
      if (bob_basis == state_basis) {
        bob_bit = state_bit != rng.bernoulli(e_d);
      } else {
        bob_bit = rng.bernoulli(0.5);
      }
    } else {
      bob_bit = rng.bernoulli(0.5);  // pure dark count
    }

    record.detected_idx.push_back(static_cast<std::uint32_t>(i));
    record.bob_bits.push_back(bob_bit);
    record.bob_bases.push_back(bob_basis);
  }
  return record;
}

LinkStats Bb84Simulator::stats(const DetectionRecord& record) {
  LinkStats stats;
  for (std::size_t i = 0; i < record.n_pulses; ++i) {
    ++stats.per_class[record.alice_class[i]].sent;
    ++stats.total.sent;
  }
  for (std::size_t d = 0; d < record.detections(); ++d) {
    const std::uint32_t pulse = record.detected_idx[d];
    auto& cls = stats.per_class[record.alice_class[pulse]];
    ++cls.detected;
    ++stats.total.detected;
    if (record.bob_bases.get(d) == record.alice_bases.get(pulse)) {
      ++cls.sifted;
      ++stats.total.sifted;
      if (record.bob_bits.get(d) != record.alice_bits.get(pulse)) {
        ++cls.errors;
        ++stats.total.errors;
      }
    }
  }
  return stats;
}

}  // namespace qkdpp::sim
