// Physical-layer configuration of the simulated decoy-state BB84 link.
//
// The simulator replaces the paper's physical QKD testbed (see DESIGN.md
// substitution table): it produces raw-key streams whose statistics (gain,
// QBER, basis-match rate, decoy yields) follow the standard weak-coherent-
// pulse channel model, so every post-processing code path downstream is
// exercised exactly as it would be by detector hardware.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qkdpp::sim {

/// Optical channel between Alice and Bob.
struct ChannelConfig {
  double length_km = 25.0;
  double attenuation_db_per_km = 0.2;  ///< standard telecom fiber at 1550 nm
  double insertion_loss_db = 1.0;      ///< connectors, mux/demux
  double misalignment = 0.015;         ///< intrinsic bit-flip probability e_d

  /// Fraction of photons that survive the fiber (excluding detector).
  double transmittance() const noexcept;
};

/// Bob's single-photon detector pair (gated APD model).
struct DetectorConfig {
  double efficiency = 0.20;        ///< eta_det
  double dark_count_prob = 1e-6;   ///< per-gate dark click probability Y0/2
  double dead_time_gates = 0.0;    ///< gates blinded after a click
};

/// Alice's decoy-state weak-coherent-pulse source (vacuum + weak decoy).
struct SourceConfig {
  double mu_signal = 0.48;   ///< mean photon number, signal state
  double mu_decoy = 0.1;     ///< mean photon number, weak decoy
  double mu_vacuum = 0.0;    ///< vacuum state
  double p_signal = 0.90;    ///< emission probabilities (sum to 1)
  double p_decoy = 0.05;
  double p_vacuum = 0.05;
  bool single_photon_ideal = false;  ///< bypass Poisson: exactly one photon
};

/// Active eavesdropper: intercept-resend on a fraction of pulses.
struct EveConfig {
  double intercept_fraction = 0.0;
};

/// Intensity class of an emitted pulse.
enum class PulseClass : std::uint8_t { kSignal = 0, kDecoy = 1, kVacuum = 2 };

struct LinkConfig {
  ChannelConfig channel;
  DetectorConfig detector;
  SourceConfig source;
  EveConfig eve;

  /// Overall single-photon transmittance eta = eta_channel * eta_detector.
  double overall_transmittance() const noexcept;

  /// Throws Error{kConfig} on out-of-range parameters.
  void validate() const;
};

/// Analytic expectations from the standard WCP channel model, used by tests
/// and by the decoy-state analysis as ground truth.
struct AnalyticLink {
  explicit AnalyticLink(const LinkConfig& config);

  /// Background click probability per gate (both detectors).
  double y0() const noexcept { return y0_; }
  /// Expected overall gain Q_mu = Y0 + 1 - exp(-eta*mu) for intensity mu.
  double gain(double mu) const noexcept;
  /// Expected QBER for intensity mu.
  double qber(double mu) const noexcept;
  /// Yield of an n-photon pulse: Y_n = Y0 + 1 - (1-eta)^n (Y0-overlap
  /// neglected, standard approximation).
  double yield(unsigned n_photons) const noexcept;

 private:
  double eta_;
  double y0_;
  double misalignment_;
  double intercept_;
};

/// Expected per-pulse detection probability averaged over the source's
/// intensity mix: p_signal Q_mu + p_decoy Q_nu + p_vacuum Y0.
double expected_mean_gain(const LinkConfig& config) noexcept;

/// Pulses per block so that ~`target_sifted_bits` survive basis sifting
/// (half the detections), clamped to [min_pulses, max_pulses] - the
/// accumulate-to-a-block-size policy real systems run, shared by the
/// orchestrator's workload pricing and the examples/benches.
std::size_t pulses_for_sifted_target(const LinkConfig& config,
                                     double target_sifted_bits,
                                     std::size_t min_pulses,
                                     std::size_t max_pulses) noexcept;

}  // namespace qkdpp::sim
