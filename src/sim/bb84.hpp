// Monte-Carlo decoy-state BB84 link simulator.
//
// Emits pulse-by-pulse records: Alice's full transmit log plus Bob's
// detection log (bit/basis for each clicked gate). Sifting, parameter
// estimation and everything downstream live in qkdpp::protocol - this module
// is purely the "hardware".
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "sim/link_config.hpp"

namespace qkdpp::sim {

/// One simulation batch. Alice-side arrays are indexed by pulse id
/// [0, n_pulses); Bob-side arrays are indexed by detection order and
/// `detected_idx` maps back to pulse ids.
struct DetectionRecord {
  std::size_t n_pulses = 0;
  BitVec alice_bits;                        ///< per pulse
  BitVec alice_bases;                       ///< per pulse (0 = Z, 1 = X)
  std::vector<std::uint8_t> alice_class;    ///< per pulse, PulseClass
  std::vector<std::uint32_t> detected_idx;  ///< pulse ids that clicked
  BitVec bob_bits;                          ///< per detection
  BitVec bob_bases;                         ///< per detection

  std::size_t detections() const noexcept { return detected_idx.size(); }
};

/// Empirical per-intensity statistics of a batch (ground truth view used by
/// simulator tests and by benches to label workloads; the protocol stack
/// never reads these).
struct LinkStats {
  struct PerClass {
    std::size_t sent = 0;
    std::size_t detected = 0;
    std::size_t sifted = 0;    ///< detected with matching bases
    std::size_t errors = 0;    ///< sifted bits differing from Alice's
    double gain() const noexcept {
      return sent ? static_cast<double>(detected) / static_cast<double>(sent)
                  : 0.0;
    }
    double qber() const noexcept {
      return sifted ? static_cast<double>(errors) / static_cast<double>(sifted)
                    : 0.0;
    }
  };
  PerClass per_class[3];
  PerClass total;
};

class Bb84Simulator {
 public:
  explicit Bb84Simulator(LinkConfig config);

  const LinkConfig& config() const noexcept { return config_; }

  /// Simulate `n_pulses` gated pulses.
  DetectionRecord run(std::size_t n_pulses, Xoshiro256& rng) const;

  /// Ground-truth statistics of a batch.
  static LinkStats stats(const DetectionRecord& record);

 private:
  LinkConfig config_;
};

}  // namespace qkdpp::sim
