// Time-varying link scenarios: piecewise timelines of LinkConfig
// perturbations plus shared-roster device fault events.
//
// A deployed link is not stationary: fiber attenuation drifts with the
// diurnal thermal cycle, alignment transients spike the QBER, an active
// eavesdropper ramps up, detectors age, and accelerators on the shared
// post-processing host get hot-removed for maintenance. A LinkSchedule
// describes these as perturbations over half-open block-index ranges; the
// orchestrator samples `config_at(base, block)` before simulating each
// block, so the same schedule + seed always produces the same physics
// (the determinism the scenario tests pin down). DeviceEvents are the
// roster-side counterpart: they take a device of the shared DeviceSet
// offline (and optionally back online) at given block indices, which is
// what exercises the engines' re-planning path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "protocol/faulty_channel.hpp"
#include "sim/link_config.hpp"

namespace qkdpp::sim {

enum class PerturbationKind : std::uint8_t {
  /// Sinusoidal attenuation offset (dB/km): the 24h-compressed thermal
  /// cycle. `magnitude` is the peak offset, `period_blocks` the full cycle.
  kAttenuationDrift = 0,
  /// Flat misalignment increase over [begin, end): an alignment transient
  /// or polarization burst. `magnitude` adds to channel.misalignment.
  kQberBurst = 1,
  /// Eve ramps intercept-resend linearly from 0 to `magnitude` across
  /// [begin, end) and holds it afterwards.
  kEveRamp = 2,
  /// Detector efficiency decays linearly to `magnitude` x nominal across
  /// [begin, end) and stays degraded afterwards (APD aging / icing).
  kDetectorDegradation = 3,
  /// Hard link outage over [begin, end): a fiber cut or an adversary owning
  /// the span. Modeled as full intercept-resend plus saturated
  /// misalignment, so every block in the window fails parameter estimation
  /// deterministically - the link distills nothing and a network-layer
  /// router sees an unbroken abort streak on this edge. `magnitude` is
  /// ignored.
  kLinkOutage = 4,
};

const char* to_string(PerturbationKind kind) noexcept;

/// One perturbation of the base LinkConfig over [begin_block, end_block).
struct Perturbation {
  PerturbationKind kind = PerturbationKind::kQberBurst;
  std::uint64_t begin_block = 0;
  std::uint64_t end_block = 0;  ///< half-open; <= begin means "never active"
  /// Kind-specific strength: peak dB/km offset, misalignment delta, peak
  /// intercept fraction, or the terminal efficiency multiplier in (0, 1].
  double magnitude = 0.0;
  /// kAttenuationDrift only: blocks per full sinusoid cycle (<= 0 uses the
  /// active range length as one cycle).
  double period_blocks = 0.0;
};

/// Hot-remove (and optional re-add) of a shared-roster device, keyed by the
/// per-link block index the orchestrator drives scenarios with.
struct DeviceEvent {
  std::size_t device_index = 0;
  std::uint64_t offline_at_block = 0;
  /// Block index at which the device returns; <= offline_at_block means it
  /// stays offline for the rest of the run.
  std::uint64_t online_at_block = 0;
};

/// A classical-channel fault phase: over per-link block indices
/// [begin_block, end_block) the session transport overlays `profile` on the
/// link's standing fault profile. This is the *service* channel failing
/// (the quantum channel keeps producing detections) — the complement of
/// kLinkOutage, which kills the physics while the classical network stays
/// healthy.
struct ChannelFaultPhase {
  std::uint64_t begin_block = 0;
  std::uint64_t end_block = 0;  ///< half-open; <= begin means "never active"
  protocol::FaultProfile profile;
};

/// Piecewise timeline of perturbations applied to one link's base config.
struct LinkSchedule {
  std::vector<Perturbation> perturbations;
  /// Classical-channel fault timeline, sampled per block by links running
  /// the session transport (ignored on the in-process engine fast path,
  /// which exchanges no classical messages).
  std::vector<ChannelFaultPhase> channel_faults;

  bool empty() const noexcept {
    return perturbations.empty() && channel_faults.empty();
  }

  /// The link as block `block` sees it: every active perturbation applied
  /// to `base`, with results clamped into LinkConfig::validate() range.
  LinkConfig config_at(const LinkConfig& base, std::uint64_t block) const;

  /// The classical-channel fault profile block `block` distills under:
  /// `base` (the link's standing profile) overlaid with every active
  /// phase. Probabilities combine by max; outage windows accumulate.
  protocol::FaultProfile fault_profile_at(const protocol::FaultProfile& base,
                                          std::uint64_t block) const;
};

/// A named dynamic-link workload: the schedule, the fault events against
/// the shared roster, and how many blocks the timeline spans.
struct ScenarioConfig {
  std::string name;
  std::uint64_t blocks = 16;
  LinkSchedule schedule;
  std::vector<DeviceEvent> device_events;

  /// Throws Error{kConfig} on empty name, zero blocks, inverted
  /// perturbation ranges or out-of-range magnitudes.
  void validate() const;
};

/// Shipped scenarios (the matrix dynamic_link/bench_scenarios iterate):
/// a 24h-compressed diurnal attenuation + misalignment cycle,
ScenarioConfig diurnal_scenario(std::uint64_t blocks = 24);
/// a mid-run QBER burst riding a quiet channel,
ScenarioConfig qber_burst_scenario(std::uint64_t blocks = 18);
/// an eavesdropper ramping up to an abort-worthy intercept fraction,
ScenarioConfig eve_ramp_scenario(std::uint64_t blocks = 18);
/// detectors degrading to a fraction of nominal efficiency,
ScenarioConfig detector_degradation_scenario(std::uint64_t blocks = 18);
/// and a device hot-remove/re-add fault on the shared roster.
ScenarioConfig device_hot_remove_scenario(std::uint64_t blocks = 18);

/// Mid-run hard outage of the link over [~1/3, ~2/3) of the timeline: the
/// route-perturbation scenario the network layer re-routes around. Not part
/// of shipped_scenarios() - a dead link has no adaptive-vs-static story for
/// bench_scenarios; it exists to take a topology *edge* down.
ScenarioConfig link_outage_scenario(std::uint64_t blocks = 18);

/// Classical-channel loss burst over the middle third: 5% frame drop + 1%
/// bit corruption, the ARQ layer's bread-and-butter degradation case (and
/// the chaos bench's goodput-gated profile). Session-transport links only.
ScenarioConfig loss_burst_scenario(std::uint64_t blocks = 18);

/// Classical-channel outage over the middle third: every service-channel
/// frame lost while the quantum layer keeps clicking. Blocks in the window
/// abort on retransmission timeout; the orchestrator's circuit breaker is
/// what keeps the link from burning full retry budgets on every one.
ScenarioConfig channel_outage_scenario(std::uint64_t blocks = 18);

/// All shipped scenarios, scaled to `blocks` timeline steps each.
std::vector<ScenarioConfig> shipped_scenarios(std::uint64_t blocks = 0);

}  // namespace qkdpp::sim
