#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qkdpp::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Progress through [begin, end) in [0, 1]; blocks past the end hold 1.0
/// (ramps and degradations persist after the transition finishes).
double progress(const Perturbation& p, std::uint64_t block) noexcept {
  if (block < p.begin_block) return 0.0;
  if (p.end_block <= p.begin_block + 1) return 1.0;
  const double span = static_cast<double>(p.end_block - p.begin_block);
  return std::min(1.0, static_cast<double>(block - p.begin_block) / span);
}

bool active(const Perturbation& p, std::uint64_t block) noexcept {
  return block >= p.begin_block && block < p.end_block;
}

}  // namespace

const char* to_string(PerturbationKind kind) noexcept {
  switch (kind) {
    case PerturbationKind::kAttenuationDrift: return "attenuation-drift";
    case PerturbationKind::kQberBurst: return "qber-burst";
    case PerturbationKind::kEveRamp: return "eve-ramp";
    case PerturbationKind::kDetectorDegradation: return "detector-degradation";
    case PerturbationKind::kLinkOutage: return "link-outage";
  }
  return "unknown";
}

LinkConfig LinkSchedule::config_at(const LinkConfig& base,
                                   std::uint64_t block) const {
  LinkConfig config = base;
  for (const auto& p : perturbations) {
    switch (p.kind) {
      case PerturbationKind::kAttenuationDrift: {
        if (!active(p, block)) break;
        const double period = p.period_blocks > 0
                                  ? p.period_blocks
                                  : static_cast<double>(
                                        std::max<std::uint64_t>(
                                            1, p.end_block - p.begin_block));
        const double phase =
            2.0 * kPi * static_cast<double>(block - p.begin_block) / period;
        config.channel.attenuation_db_per_km = std::max(
            0.0, config.channel.attenuation_db_per_km +
                     p.magnitude * std::sin(phase));
        break;
      }
      case PerturbationKind::kQberBurst:
        if (!active(p, block)) break;
        config.channel.misalignment =
            std::min(0.5, config.channel.misalignment + p.magnitude);
        break;
      case PerturbationKind::kEveRamp:
        // Ramps hold their terminal value after end_block: an eavesdropper
        // does not politely leave when the ramp window closes.
        if (p.end_block <= p.begin_block) break;  // never active
        config.eve.intercept_fraction = std::clamp(
            config.eve.intercept_fraction + p.magnitude * progress(p, block),
            0.0, 1.0);
        break;
      case PerturbationKind::kDetectorDegradation: {
        // Linear decay from 1 to `magnitude` x nominal; persists afterwards.
        if (p.end_block <= p.begin_block) break;  // never active
        const double scale =
            1.0 + (p.magnitude - 1.0) * progress(p, block);
        config.detector.efficiency =
            std::clamp(config.detector.efficiency * scale, 1e-6, 1.0);
        break;
      }
      case PerturbationKind::kLinkOutage:
        // Hard down: every pulse intercepted and the channel maximally
        // misaligned pushes the QBER to ~50%, so parameter estimation
        // aborts every block in the window - deterministically, which is
        // what lets same-seed network failover runs replay identically.
        if (!active(p, block)) break;
        config.eve.intercept_fraction = 1.0;
        config.channel.misalignment = 0.5;
        break;
    }
  }
  return config;
}

protocol::FaultProfile LinkSchedule::fault_profile_at(
    const protocol::FaultProfile& base, std::uint64_t block) const {
  protocol::FaultProfile profile = base;
  for (const auto& phase : channel_faults) {
    if (block < phase.begin_block || block >= phase.end_block) continue;
    const auto& p = phase.profile;
    profile.drop = std::max(profile.drop, p.drop);
    profile.corrupt = std::max(profile.corrupt, p.corrupt);
    profile.duplicate = std::max(profile.duplicate, p.duplicate);
    profile.reorder = std::max(profile.reorder, p.reorder);
    profile.delay = std::max(profile.delay, p.delay);
    profile.max_delay_frames =
        std::max(profile.max_delay_frames, p.max_delay_frames);
    profile.outages.insert(profile.outages.end(), p.outages.begin(),
                           p.outages.end());
  }
  return profile;
}

void ScenarioConfig::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw_error(ErrorCode::kConfig, what);
  };
  check(!name.empty(), "scenario needs a name");
  check(blocks > 0, "scenario needs at least one block");
  for (const auto& p : schedule.perturbations) {
    check(p.end_block >= p.begin_block, "inverted perturbation range");
    switch (p.kind) {
      case PerturbationKind::kAttenuationDrift:
        check(p.magnitude >= 0, "negative attenuation drift magnitude");
        break;
      case PerturbationKind::kQberBurst:
        check(p.magnitude >= 0 && p.magnitude <= 0.5,
              "qber burst magnitude outside [0, 0.5]");
        break;
      case PerturbationKind::kEveRamp:
        check(p.magnitude >= 0 && p.magnitude <= 1.0,
              "eve ramp magnitude outside [0, 1]");
        break;
      case PerturbationKind::kDetectorDegradation:
        check(p.magnitude > 0 && p.magnitude <= 1.0,
              "detector degradation multiplier outside (0, 1]");
        break;
      case PerturbationKind::kLinkOutage:
        break;  // magnitude unused: an outage has no strength knob
    }
  }
  for (const auto& phase : schedule.channel_faults) {
    check(phase.end_block >= phase.begin_block,
          "inverted channel fault phase");
    phase.profile.validate();  // throws its own kConfig on bad rates
  }
  for (const auto& event : device_events) {
    check(event.offline_at_block < blocks, "device event past scenario end");
  }
}

namespace {

/// Scale a block index designed against `design` blocks to `blocks`.
std::uint64_t at(std::uint64_t index, std::uint64_t design,
                 std::uint64_t blocks) noexcept {
  return index * blocks / design;
}

}  // namespace

ScenarioConfig diurnal_scenario(std::uint64_t blocks) {
  // One compressed 24h cycle: attenuation breathes with the thermal cycle
  // and alignment wanders through the afternoon (re-tracked at "night").
  ScenarioConfig scenario;
  scenario.name = "diurnal";
  scenario.blocks = blocks;
  Perturbation drift;
  drift.kind = PerturbationKind::kAttenuationDrift;
  drift.begin_block = 0;
  drift.end_block = blocks;
  drift.magnitude = 0.08;  // dB/km peak, ~+-2 dB over a 25 km span
  drift.period_blocks = static_cast<double>(blocks);
  scenario.schedule.perturbations.push_back(drift);
  Perturbation afternoon;
  afternoon.kind = PerturbationKind::kQberBurst;
  afternoon.begin_block = at(8, 24, blocks);
  afternoon.end_block = at(16, 24, blocks);
  afternoon.magnitude = 0.030;
  scenario.schedule.perturbations.push_back(afternoon);
  return scenario;
}

ScenarioConfig qber_burst_scenario(std::uint64_t blocks) {
  // A quiet channel with one hard polarization transient in the middle:
  // QBER jumps from ~1.7% to ~8% for a third of the run, then recovers.
  ScenarioConfig scenario;
  scenario.name = "qber-burst";
  scenario.blocks = blocks;
  Perturbation burst;
  burst.kind = PerturbationKind::kQberBurst;
  burst.begin_block = at(6, 18, blocks);
  burst.end_block = at(12, 18, blocks);
  burst.magnitude = 0.065;
  scenario.schedule.perturbations.push_back(burst);
  return scenario;
}

ScenarioConfig eve_ramp_scenario(std::uint64_t blocks) {
  // Intercept-resend ramping to 30% of pulses: the QBER climbs toward the
  // abort threshold and the post-processing has to ride the slope.
  ScenarioConfig scenario;
  scenario.name = "eve-ramp";
  scenario.blocks = blocks;
  Perturbation ramp;
  ramp.kind = PerturbationKind::kEveRamp;
  ramp.begin_block = at(5, 18, blocks);
  ramp.end_block = at(14, 18, blocks);
  ramp.magnitude = 0.30;
  scenario.schedule.perturbations.push_back(ramp);
  return scenario;
}

ScenarioConfig detector_degradation_scenario(std::uint64_t blocks) {
  // APDs icing up: efficiency decays to 40% of nominal over most of the
  // run, shrinking blocks and pushing the dark-count QBER floor up.
  ScenarioConfig scenario;
  scenario.name = "detector-degradation";
  scenario.blocks = blocks;
  Perturbation decay;
  decay.kind = PerturbationKind::kDetectorDegradation;
  decay.begin_block = at(4, 18, blocks);
  decay.end_block = at(15, 18, blocks);
  decay.magnitude = 0.40;
  scenario.schedule.perturbations.push_back(decay);
  return scenario;
}

ScenarioConfig device_hot_remove_scenario(std::uint64_t blocks) {
  // Maintenance pulls the accelerator mid-run and returns it near the end:
  // device 2 of the standard roster (gpu-sim) goes dark for half the run.
  ScenarioConfig scenario;
  scenario.name = "device-hot-remove";
  scenario.blocks = blocks;
  DeviceEvent fault;
  fault.device_index = 2;
  fault.offline_at_block = at(4, 18, blocks);
  fault.online_at_block = at(14, 18, blocks);
  scenario.device_events.push_back(fault);
  return scenario;
}

ScenarioConfig link_outage_scenario(std::uint64_t blocks) {
  // A fiber cut in the middle third of the run: the link distills nothing
  // while the cut is open, then comes back. Every block in the window
  // aborts deterministically, so a same-seed replay reroutes identically.
  ScenarioConfig scenario;
  scenario.name = "link-outage";
  scenario.blocks = blocks;
  Perturbation outage;
  outage.kind = PerturbationKind::kLinkOutage;
  outage.begin_block = at(6, 18, blocks);
  outage.end_block = at(12, 18, blocks);
  scenario.schedule.perturbations.push_back(outage);
  return scenario;
}

ScenarioConfig loss_burst_scenario(std::uint64_t blocks) {
  // The classical service channel degrades for the middle third: 5% of
  // frames vanish and 1% take a bit flip. The ARQ layer heals all of it;
  // the cost is retransmission latency, which the chaos bench gates at
  // >= 0.7x clean goodput.
  ScenarioConfig scenario;
  scenario.name = "loss-burst";
  scenario.blocks = blocks;
  ChannelFaultPhase burst;
  burst.begin_block = at(6, 18, blocks);
  burst.end_block = at(12, 18, blocks);
  burst.profile.drop = 0.05;
  burst.profile.corrupt = 0.01;
  scenario.schedule.channel_faults.push_back(burst);
  return scenario;
}

ScenarioConfig channel_outage_scenario(std::uint64_t blocks) {
  // The service channel goes fully dark for the middle third while the
  // quantum layer keeps producing detections: every block in the window
  // exhausts its retransmission budget and aborts with kTimeout. The
  // breaker opens on the abort streak and half-open probes rediscover the
  // channel once the outage lifts.
  ScenarioConfig scenario;
  scenario.name = "channel-outage";
  scenario.blocks = blocks;
  ChannelFaultPhase outage;
  outage.begin_block = at(6, 18, blocks);
  outage.end_block = at(12, 18, blocks);
  outage.profile.drop = 1.0;
  scenario.schedule.channel_faults.push_back(outage);
  return scenario;
}

std::vector<ScenarioConfig> shipped_scenarios(std::uint64_t blocks) {
  std::vector<ScenarioConfig> scenarios;
  if (blocks == 0) {
    scenarios = {diurnal_scenario(), qber_burst_scenario(),
                 eve_ramp_scenario(), detector_degradation_scenario(),
                 device_hot_remove_scenario()};
  } else {
    scenarios = {diurnal_scenario(blocks), qber_burst_scenario(blocks),
                 eve_ramp_scenario(blocks),
                 detector_degradation_scenario(blocks),
                 device_hot_remove_scenario(blocks)};
  }
  for (const auto& scenario : scenarios) scenario.validate();
  return scenarios;
}

}  // namespace qkdpp::sim
