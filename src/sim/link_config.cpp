#include "sim/link_config.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qkdpp::sim {

double ChannelConfig::transmittance() const noexcept {
  const double loss_db = length_km * attenuation_db_per_km + insertion_loss_db;
  return std::pow(10.0, -loss_db / 10.0);
}

double LinkConfig::overall_transmittance() const noexcept {
  return channel.transmittance() * detector.efficiency;
}

void LinkConfig::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw_error(ErrorCode::kConfig, what);
  };
  check(channel.length_km >= 0, "negative fiber length");
  check(channel.attenuation_db_per_km >= 0, "negative attenuation");
  check(channel.misalignment >= 0 && channel.misalignment <= 0.5,
        "misalignment outside [0, 0.5]");
  check(detector.efficiency > 0 && detector.efficiency <= 1,
        "detector efficiency outside (0, 1]");
  check(detector.dark_count_prob >= 0 && detector.dark_count_prob < 0.5,
        "dark count probability outside [0, 0.5)");
  check(detector.dead_time_gates >= 0, "negative dead time");
  check(source.mu_signal > 0, "signal intensity must be positive");
  check(source.mu_decoy >= 0 && source.mu_decoy < source.mu_signal,
        "decoy intensity must be in [0, mu_signal)");
  check(source.mu_vacuum >= 0 && source.mu_vacuum < source.mu_decoy + 1e-12,
        "vacuum intensity must not exceed decoy");
  const double psum = source.p_signal + source.p_decoy + source.p_vacuum;
  check(std::abs(psum - 1.0) < 1e-9, "pulse class probabilities must sum to 1");
  check(source.p_signal > 0, "signal probability must be positive");
  check(eve.intercept_fraction >= 0 && eve.intercept_fraction <= 1,
        "intercept fraction outside [0, 1]");
}

AnalyticLink::AnalyticLink(const LinkConfig& config)
    : eta_(config.overall_transmittance()),
      y0_(2.0 * config.detector.dark_count_prob),
      misalignment_(config.channel.misalignment),
      intercept_(config.eve.intercept_fraction) {}

double AnalyticLink::gain(double mu) const noexcept {
  return y0_ + 1.0 - std::exp(-eta_ * mu);
}

double AnalyticLink::qber(double mu) const noexcept {
  // Intercept-resend on fraction f: Eve guesses the basis right half the
  // time (error e_d as usual) and wrong half the time (Bob's sifted bit is
  // random): e_eff = (1-f) e_d + f (e_d/2 + 1/4).
  const double e_eff = (1.0 - intercept_) * misalignment_ +
                       intercept_ * (misalignment_ / 2.0 + 0.25);
  const double signal = 1.0 - std::exp(-eta_ * mu);
  const double q = gain(mu);
  if (q <= 0) return 0.0;
  return (0.5 * y0_ + e_eff * signal) / q;
}

double AnalyticLink::yield(unsigned n_photons) const noexcept {
  return y0_ + 1.0 - std::pow(1.0 - eta_, n_photons);
}

double expected_mean_gain(const LinkConfig& config) noexcept {
  const AnalyticLink model(config);
  const SourceConfig& source = config.source;
  return source.p_signal * model.gain(source.mu_signal) +
         source.p_decoy * model.gain(source.mu_decoy) +
         source.p_vacuum * model.y0();
}

std::size_t pulses_for_sifted_target(const LinkConfig& config,
                                     double target_sifted_bits,
                                     std::size_t min_pulses,
                                     std::size_t max_pulses) noexcept {
  const double gain = expected_mean_gain(config);
  const double wanted =
      gain > 0 ? target_sifted_bits / (0.5 * gain)
               : static_cast<double>(max_pulses);
  return static_cast<std::size_t>(
      std::clamp(wanted, static_cast<double>(min_pulses),
                 static_cast<double>(max_pulses)));
}

}  // namespace qkdpp::sim
