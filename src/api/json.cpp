#include "api/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"

namespace qkdpp::api {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw_error(ErrorCode::kSerialization, "json: " + what);
}

/// Recursive-descent parser over a string_view cursor. Strict JSON
/// (RFC 8259): no comments, no trailing commas, UTF-16 escapes decoded
/// to UTF-8. Depth-limited so adversarial nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) malformed("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  /// Shadows the file-scope malformed(): every parse error names the byte
  /// offset the cursor died at, so a client staring at a 400 can find the
  /// broken spot in its own request instead of re-bisecting the payload.
  [[noreturn]] void malformed(const std::string& what) const {
    throw_error(ErrorCode::kSerialization,
                "json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) malformed("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      malformed(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) malformed("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        malformed("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        malformed("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        malformed("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') malformed("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(object));
      if (c != ',') malformed("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(array));
      if (c != ',') malformed("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) malformed("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        malformed("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) malformed("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        malformed("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) malformed("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              malformed("unpaired surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) malformed("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            malformed("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: malformed("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) malformed("bad number");
    // Leading zeros are invalid JSON ("01"), a single "0" is fine.
    if (pos_ - digits_start > 1 && text_[digits_start] == '0') {
      malformed("leading zero in number");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_start) malformed("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) malformed("bad exponent");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Integer overflow: fall through to double like other parsers do.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      malformed("unparseable number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf;
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (!is_bool()) malformed("expected bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (!is_int()) malformed("expected integer");
  return std::get<std::int64_t>(value_);
}

std::uint64_t Json::as_uint() const {
  const std::int64_t value = as_int();
  if (value < 0) malformed("expected non-negative integer");
  return static_cast<std::uint64_t>(value);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (!is_double()) malformed("expected number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) malformed("expected string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) malformed("expected array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) malformed("expected object");
  return std::get<Object>(value_);
}

const Json& Json::at(std::string_view key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) {
    malformed("missing field '" + std::string(key) + "'");
  }
  return it->second;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

Json& Json::set(std::string_view key, Json value) {
  if (is_null()) value_ = Object{};
  if (!is_object()) malformed("set() on non-object");
  auto& object = std::get<Object>(value_);
  return object.insert_or_assign(std::string(key), std::move(value))
      .first->second;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  if (!is_array()) malformed("push_back() on non-array");
  std::get<Array>(value_).push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  malformed("size() on non-container");
}

void Json::dump_to(std::string& out) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    std::array<char, 24> buf;
    const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(),
                                         std::get<std::int64_t>(value_));
    out.append(buf.data(), ptr);
  } else if (is_double()) {
    const double value = std::get<double>(value_);
    if (!std::isfinite(value)) {
      malformed("cannot serialize non-finite number");
    }
    std::array<char, 32> buf;
    const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(),
                                         value);
    out.append(buf.data(), ptr);
  } else if (is_string()) {
    dump_string(std::get<std::string>(value_), out);
  } else if (is_array()) {
    out.push_back('[');
    const auto& array = std::get<Array>(value_);
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out.push_back(',');
      array[i].dump_to(out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    const auto& object = std::get<Object>(value_);
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      value.dump_to(out);
    }
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace qkdpp::api
