#include "api/key_delivery.hpp"

#include <array>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace qkdpp::api {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string to_hex(const BitVec& bits) {
  const auto bytes = bits.to_bytes();
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t byte : bytes) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0F]);
  }
  return out;
}

bool is_hex_lower(char c) noexcept {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Composite registry key; '/' is rejected in SAE ids, so unambiguous.
std::string pair_key(std::string_view master, std::string_view slave) {
  std::string key;
  key.reserve(master.size() + slave.size() + 1);
  key.append(master);
  key.push_back('/');
  key.append(slave);
  return key;
}

}  // namespace

bool KeyDeliveryService::is_uuid(std::string_view text) noexcept {
  if (text.size() != 36) return false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-') return false;
    } else if (!is_hex_lower(text[i])) {
      return false;
    }
  }
  return true;
}

void KeySource::describe_exhaustion(std::vector<std::string>&) const {}

std::optional<BitVec> LinkStoreSource::draw(std::string_view consumer) {
  auto drawn = store_.get_key(consumer);
  if (!drawn.has_value()) return std::nullopt;
  return std::move(drawn->bits);
}

void LinkStoreSource::describe_exhaustion(
    std::vector<std::string>& details) const {
  // If the store has been refusing deposits, say why: a capacity-bound
  // store explains an exhausted pair better than "no material" does.
  for (std::size_t r = 1; r < pipeline::kRejectReasonCount; ++r) {
    const auto reason = static_cast<pipeline::RejectReason>(r);
    if (const auto count = store_.rejected_keys(reason); count > 0) {
      details.push_back(std::string("store_rejected_") +
                        pipeline::to_string(reason) + "=" +
                        std::to_string(count));
    }
  }
  if (orchestrator_ == nullptr) return;
  // Say whether the starvation is transient (link distilling, wait) or
  // structural (breaker open: the classical channel is timing out and no
  // deposits will land until a probe re-closes it).
  const service::LinkHealth health = orchestrator_->link_health(link_);
  details.push_back(std::string("link_distilling=") +
                    (health.distilling ? "true" : "false"));
  if (health.breaker_open) {
    details.push_back("link_breaker=open");
    details.push_back("link_consecutive_aborts=" +
                      std::to_string(health.consecutive_aborts));
  }
}

std::uint64_t LinkStoreSource::retry_after_hint_ms() const {
  if (orchestrator_ == nullptr) return 0;
  const service::LinkHealth health = orchestrator_->link_health(link_);
  // Breaker open: material resumes only after the cooldown's half-open
  // probe succeeds, so tell clients to stay away longer than the
  // block-cadence hint a healthy-but-drained link gets.
  if (health.breaker_open) return 2000;
  if (health.distilling) return 250;
  return 0;
}

KeyDeliveryService::KeyDeliveryService(
    service::LinkOrchestrator& orchestrator, KeyDeliveryConfig config)
    : orchestrator_(orchestrator), config_(std::move(config)) {}

void KeyDeliveryService::register_pair(SaePair pair) {
  const auto link = orchestrator_.link_index(pair.link_name);
  if (!link.has_value()) {
    throw_error(ErrorCode::kConfig,
                "unknown link '" + pair.link_name + "'");
  }
  register_pair(std::move(pair),
                std::make_shared<LinkStoreSource>(
                    orchestrator_.key_store(*link), orchestrator_, *link));
}

void KeyDeliveryService::register_pair(SaePair pair,
                                       std::shared_ptr<KeySource> source) {
  if (source == nullptr) {
    throw_error(ErrorCode::kConfig, "pair needs a key source");
  }
  if (pair.master_sae_id.empty() || pair.slave_sae_id.empty()) {
    throw_error(ErrorCode::kConfig, "SAE ids must be non-empty");
  }
  // The dispatcher routes on "/api/v1/keys/{SAE}/{endpoint}": an id with
  // a '/' would register fine yet be unreachable over the wire (the path
  // splitter would cut it short and 404 every request).
  if (pair.master_sae_id.find('/') != std::string::npos ||
      pair.slave_sae_id.find('/') != std::string::npos) {
    throw_error(ErrorCode::kConfig, "SAE ids must not contain '/'");
  }
  if (pair.master_sae_id == pair.slave_sae_id) {
    throw_error(ErrorCode::kConfig, "master and slave SAE must differ");
  }
  // The store's ledger reserves this name for unlabeled draws; an SAE
  // registered under it would have its accounting silently merged with
  // anonymous traffic.
  if (pair.master_sae_id == pipeline::kAnonymousConsumer ||
      pair.slave_sae_id == pipeline::kAnonymousConsumer) {
    std::string what = "reserved consumer name: ";
    what += pipeline::kAnonymousConsumer;
    throw_error(ErrorCode::kConfig, what);
  }
  if (pair.default_key_size == 0 || pair.default_key_size % 8 != 0 ||
      pair.min_key_size == 0 || pair.min_key_size % 8 != 0 ||
      pair.max_key_size % 8 != 0 || pair.min_key_size > pair.max_key_size ||
      pair.default_key_size < pair.min_key_size ||
      pair.default_key_size > pair.max_key_size) {
    throw_error(ErrorCode::kConfig,
                "key sizes must be multiples of 8 bits with "
                "min <= default <= max");
  }
  if (pair.max_key_per_request == 0) {
    throw_error(ErrorCode::kConfig, "max_key_per_request must be >= 1");
  }
  if (pair.max_pending_keys == 0) {
    throw_error(ErrorCode::kConfig, "max_pending_keys must be >= 1");
  }
  WriterLock lock(registry_mutex_);
  const std::string key = pair_key(pair.master_sae_id, pair.slave_sae_id);
  if (index_.find(key) != index_.end()) {
    throw_error(ErrorCode::kConfig,
                "pair (" + pair.master_sae_id + ", " + pair.slave_sae_id +
                    ") already registered");
  }
  // The UUID scheme encodes 14 bits of pair index (mint_uuid_locked);
  // past that, structural uniqueness across pairs would silently degrade
  // to rng collision odds.
  if (pairs_.size() >= (std::size_t{1} << 14)) {
    throw_error(ErrorCode::kConfig, "pair registry full (2^14 pairs)");
  }
  // Golden-ratio stride: distinct, well-mixed UUID stream per pair.
  const std::uint64_t seed =
      config_.uuid_seed + 0x9e3779b97f4a7c15ULL * (pairs_.size() + 1);
  pairs_.emplace_back(std::move(pair), std::move(source), pairs_.size(),
                      seed);
  index_.emplace(key, &pairs_.back());  // deque elements are pinned
}

const KeyDeliveryService::PairState* KeyDeliveryService::find_pair(
    std::string_view master, std::string_view slave) const {
  ReaderLock lock(registry_mutex_);
  const auto it = index_.find(pair_key(master, slave));
  return it != index_.end() ? it->second : nullptr;
}

KeyDeliveryService::PairState* KeyDeliveryService::find_pair(
    std::string_view master, std::string_view slave) {
  return const_cast<PairState*>(
      std::as_const(*this).find_pair(master, slave));
}

std::string KeyDeliveryService::mint_uuid_locked(PairState& pair) {
  // RFC 4122 shaped, but structurally unique instead of merely
  // probabilistically: the first half is the pair's seeded rng stream, the
  // second half encodes (pair index, per-pair counter), so two deliveries
  // can never share an id - the bench's zero-duplicate gate is a property
  // of construction, not of 128-bit collision odds.
  std::array<std::uint8_t, 16> bytes{};
  const std::uint64_t random = pair.uuid_rng.next_u64();
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(random >> (8 * i));
  }
  const std::uint64_t counter = pair.uuid_counter++;
  bytes[8] = static_cast<std::uint8_t>(0x80 | ((pair.index >> 8) & 0x3F));
  bytes[9] = static_cast<std::uint8_t>(pair.index);
  for (int i = 0; i < 6; ++i) {
    bytes[10 + i] = static_cast<std::uint8_t>(counter >> (8 * (5 - i)));
  }
  bytes[6] = static_cast<std::uint8_t>(0x40 | (bytes[6] & 0x0F));  // v4

  std::string out;
  out.reserve(36);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    out.push_back(kHexDigits[bytes[i] >> 4]);
    out.push_back(kHexDigits[bytes[i] & 0x0F]);
  }
  return out;
}

Result<StatusResponse> KeyDeliveryService::get_status(
    std::string_view caller_sae, std::string_view peer_sae) const {
  if (caller_sae.empty() || peer_sae.empty()) {
    return Result<StatusResponse>::failure(kStatusBadRequest,
                                           "SAE ids must be non-empty");
  }
  // Either side of the pair may ask for status, naming its peer.
  const PairState* pair = find_pair(caller_sae, peer_sae);
  if (pair == nullptr) pair = find_pair(peer_sae, caller_sae);
  if (pair == nullptr) {
    return Result<StatusResponse>::failure(
        kStatusUnauthorized,
        "no registered SAE pair for caller '" + std::string(caller_sae) +
            "' and peer '" + std::string(peer_sae) + "'");
  }

  const auto capacity = pair->source->capacity_bits();
  MutexLock lock(pair->mutex);
  StatusResponse status;
  status.source_kme_id = config_.source_kme_id;
  status.target_kme_id = config_.target_kme_id;
  status.master_sae_id = pair->spec.master_sae_id;
  status.slave_sae_id = pair->spec.slave_sae_id;
  status.key_size = pair->spec.default_key_size;
  status.stored_key_count =
      (pair->source->bits_available() + pair->residual.size()) /
      pair->spec.default_key_size;
  status.max_key_count =
      capacity == 0 ? 0 : capacity / pair->spec.default_key_size;
  status.max_key_per_request = pair->spec.max_key_per_request;
  status.max_key_size = pair->spec.max_key_size;
  status.min_key_size = pair->spec.min_key_size;
  status.pending_key_count = pair->pending.size();
  return Result<StatusResponse>::success(std::move(status));
}

Result<KeyContainer> KeyDeliveryService::get_key(std::string_view caller_sae,
                                                 std::string_view slave_sae,
                                                 const KeyRequest& request) {
  if (caller_sae.empty() || slave_sae.empty()) {
    return Result<KeyContainer>::failure(kStatusBadRequest,
                                         "SAE ids must be non-empty");
  }
  PairState* pair = find_pair(caller_sae, slave_sae);
  if (pair == nullptr) {
    return Result<KeyContainer>::failure(
        kStatusUnauthorized,
        "SAE '" + std::string(caller_sae) +
            "' is not the registered master for slave '" +
            std::string(slave_sae) + "'");
  }
  if (request.number == 0) {
    return Result<KeyContainer>::failure(kStatusBadRequest,
                                         "number must be >= 1");
  }
  if (request.number > pair->spec.max_key_per_request) {
    return Result<KeyContainer>::failure(
        kStatusBadRequest,
        "number exceeds max_key_per_request",
        {std::to_string(request.number) + " > " +
         std::to_string(pair->spec.max_key_per_request)});
  }
  const std::uint64_t size =
      request.size == 0 ? pair->spec.default_key_size : request.size;
  if (size % 8 != 0 || size < pair->spec.min_key_size ||
      size > pair->spec.max_key_size) {
    return Result<KeyContainer>::failure(
        kStatusBadRequest,
        "size must be a multiple of 8 in [min_key_size, max_key_size]",
        {"size=" + std::to_string(size)});
  }

  KeySource& source = *pair->source;
  MutexLock lock(pair->mutex);
  KeyContainer container;
  // Segments are cut at a moving offset and the residual is compacted
  // once at the end: per-key subvec-of-the-remainder would re-copy the
  // whole (possibly multi-kilobit) buffer for every minted key.
  std::size_t offset = 0;
  bool backpressured = false;
  for (std::uint64_t n = 0; n < request.number; ++n) {
    // Handover backpressure: stop minting for a slave that is not
    // collecting, instead of retaining unbounded copies.
    if (pair->pending.size() >= pair->spec.max_pending_keys) {
      backpressured = true;
      break;
    }
    // Top the residual up to one key's worth from the source; chunk
    // tails below `size` stay buffered for the next request, so
    // segmentation never drops a distilled bit. Only draw while this key
    // can still be completed: draining a shared source into this pair's
    // private residual on a hopeless request would starve the other pairs
    // of material the source could have served them.
    while (pair->residual.size() - offset < size) {
      if (pair->residual.size() - offset + source.bits_available() < size) {
        break;
      }
      auto drawn = source.draw(pair->spec.master_sae_id);
      if (!drawn.has_value()) break;
      pair->residual.append(*drawn);
    }
    if (pair->residual.size() - offset < size) break;
    BitVec bits = pair->residual.subvec(offset, size);
    offset += size;

    DeliveredKey delivered;
    delivered.key_id = mint_uuid_locked(*pair);
    delivered.key = to_hex(bits);
    pair->pending.emplace(delivered.key_id, std::move(bits));
    container.keys.push_back(std::move(delivered));

    ++pair->stats.delivered_keys;
    pair->stats.delivered_bits += size;
    ++pair->stats.pending_keys;
    pair->stats.pending_bits += size;
  }
  if (offset > 0) {
    pair->residual =
        pair->residual.subvec(offset, pair->residual.size() - offset);
  }
  pair->stats.buffered_bits = pair->residual.size();

  if (container.keys.empty()) {
    if (backpressured) {
      return Result<KeyContainer>::failure(
          kStatusUnavailable, "pending handover backlog full",
          {"pending_keys=" + std::to_string(pair->pending.size()),
           "max_pending_keys=" +
               std::to_string(pair->spec.max_pending_keys)});
    }
    std::vector<std::string> details = {
        "source_bits=" + std::to_string(source.bits_available()),
        "buffered_bits=" + std::to_string(pair->residual.size()),
        "requested_size=" + std::to_string(size)};
    if (const auto hint = source.retry_after_hint_ms(); hint > 0) {
      details.push_back("retry_after_ms=" + std::to_string(hint));
    }
    source.describe_exhaustion(details);
    return Result<KeyContainer>::failure(
        kStatusUnavailable, "key material exhausted for this pair",
        std::move(details));
  }
  return Result<KeyContainer>::success(std::move(container));
}

Result<KeyContainer> KeyDeliveryService::get_key_with_ids(
    std::string_view caller_sae, std::string_view master_sae,
    const KeyIdsRequest& request) {
  if (caller_sae.empty() || master_sae.empty()) {
    return Result<KeyContainer>::failure(kStatusBadRequest,
                                         "SAE ids must be non-empty");
  }
  PairState* pair = find_pair(master_sae, caller_sae);
  if (pair == nullptr) {
    return Result<KeyContainer>::failure(
        kStatusUnauthorized,
        "SAE '" + std::string(caller_sae) +
            "' is not the registered slave for master '" +
            std::string(master_sae) + "'");
  }
  if (request.key_ids.empty()) {
    return Result<KeyContainer>::failure(kStatusBadRequest,
                                         "key_IDs must be non-empty");
  }
  if (request.key_ids.size() > pair->spec.max_key_per_request) {
    return Result<KeyContainer>::failure(
        kStatusBadRequest, "key_IDs exceeds max_key_per_request");
  }
  std::vector<std::string> bad;
  for (const auto& id : request.key_ids) {
    if (!is_uuid(id)) bad.push_back(id);
  }
  if (!bad.empty()) {
    return Result<KeyContainer>::failure(
        kStatusBadRequest, "malformed key_ID", std::move(bad));
  }
  // A repeated id inside one batch would be a double delivery of the same
  // key: reject it as malformed before touching the handover state.
  std::set<std::string_view> unique_ids;
  for (const auto& id : request.key_ids) {
    if (!unique_ids.insert(id).second) {
      return Result<KeyContainer>::failure(
          kStatusBadRequest, "duplicate key_ID in request", {id});
    }
  }

  MutexLock lock(pair->mutex);
  // All-or-nothing: verify every id is retained before consuming any, so
  // a failed batch leaves the handover state untouched.
  std::vector<std::string> missing;
  for (const auto& id : request.key_ids) {
    if (pair->pending.find(id) == pair->pending.end()) missing.push_back(id);
  }
  if (!missing.empty()) {
    return Result<KeyContainer>::failure(
        kStatusBadRequest, "unknown or already-collected key_ID",
        std::move(missing));
  }

  KeyContainer container;
  for (const auto& id : request.key_ids) {
    const auto it = pair->pending.find(id);
    DeliveredKey delivered;
    delivered.key_id = id;
    delivered.key = to_hex(it->second);
    ++pair->stats.collected_keys;
    pair->stats.collected_bits += it->second.size();
    --pair->stats.pending_keys;
    pair->stats.pending_bits -= it->second.size();
    pair->pending.erase(it);
    container.keys.push_back(std::move(delivered));
  }
  return Result<KeyContainer>::success(std::move(container));
}

std::optional<PairStats> KeyDeliveryService::pair_stats(
    std::string_view master_sae, std::string_view slave_sae) const {
  const PairState* pair = find_pair(master_sae, slave_sae);
  if (pair == nullptr) return std::nullopt;
  MutexLock lock(pair->mutex);
  return pair->stats;
}

std::size_t KeyDeliveryService::pair_count() const {
  ReaderLock lock(registry_mutex_);
  return pairs_.size();
}

}  // namespace qkdpp::api
