#include "api/dtos.hpp"

#include "common/error.hpp"

namespace qkdpp::api {

namespace {

[[noreturn]] void bad_shape(const std::string& what) {
  throw_error(ErrorCode::kSerialization, "dto: " + what);
}

/// Optional unsigned field with a default (ETSI omits fields at their
/// defaults; a present field must still be a non-negative integer).
std::uint64_t uint_or(const Json& json, std::string_view key,
                      std::uint64_t fallback) {
  const Json* field = json.find(key);
  return field ? field->as_uint() : fallback;
}

}  // namespace

Json StatusResponse::to_json() const {
  Json json = Json::object();
  json.set("source_KME_ID", source_kme_id);
  json.set("target_KME_ID", target_kme_id);
  json.set("master_SAE_ID", master_sae_id);
  json.set("slave_SAE_ID", slave_sae_id);
  json.set("key_size", key_size);
  json.set("stored_key_count", stored_key_count);
  json.set("max_key_count", max_key_count);
  json.set("max_key_per_request", max_key_per_request);
  json.set("max_key_size", max_key_size);
  json.set("min_key_size", min_key_size);
  json.set("pending_key_count", pending_key_count);
  return json;
}

StatusResponse StatusResponse::from_json(const Json& json) {
  StatusResponse status;
  status.source_kme_id = json.at("source_KME_ID").as_string();
  status.target_kme_id = json.at("target_KME_ID").as_string();
  status.master_sae_id = json.at("master_SAE_ID").as_string();
  status.slave_sae_id = json.at("slave_SAE_ID").as_string();
  status.key_size = json.at("key_size").as_uint();
  status.stored_key_count = json.at("stored_key_count").as_uint();
  status.max_key_count = json.at("max_key_count").as_uint();
  status.max_key_per_request = json.at("max_key_per_request").as_uint();
  status.max_key_size = json.at("max_key_size").as_uint();
  status.min_key_size = json.at("min_key_size").as_uint();
  status.pending_key_count = uint_or(json, "pending_key_count", 0);
  return status;
}

Json KeyRequest::to_json() const {
  Json json = Json::object();
  json.set("number", number);
  json.set("size", size);
  return json;
}

KeyRequest KeyRequest::from_json(const Json& json) {
  if (!json.is_object()) bad_shape("key request must be an object");
  KeyRequest request;
  request.number = uint_or(json, "number", 1);
  request.size = uint_or(json, "size", 0);
  return request;
}

Json KeyIdsRequest::to_json() const {
  Json ids = Json::array();
  for (const auto& id : key_ids) {
    Json entry = Json::object();
    entry.set("key_ID", id);
    ids.push_back(std::move(entry));
  }
  Json json = Json::object();
  json.set("key_IDs", std::move(ids));
  return json;
}

KeyIdsRequest KeyIdsRequest::from_json(const Json& json) {
  KeyIdsRequest request;
  for (const Json& entry : json.at("key_IDs").as_array()) {
    request.key_ids.push_back(entry.at("key_ID").as_string());
  }
  return request;
}

Json DeliveredKey::to_json() const {
  Json json = Json::object();
  json.set("key_ID", key_id);
  json.set("key", key);
  return json;
}

DeliveredKey DeliveredKey::from_json(const Json& json) {
  DeliveredKey delivered;
  delivered.key_id = json.at("key_ID").as_string();
  delivered.key = json.at("key").as_string();
  return delivered;
}

Json KeyContainer::to_json() const {
  Json keys_json = Json::array();
  for (const auto& key : keys) keys_json.push_back(key.to_json());
  Json json = Json::object();
  json.set("keys", std::move(keys_json));
  return json;
}

KeyContainer KeyContainer::from_json(const Json& json) {
  KeyContainer container;
  for (const Json& entry : json.at("keys").as_array()) {
    container.keys.push_back(DeliveredKey::from_json(entry));
  }
  return container;
}

Json ApiError::to_json() const {
  Json json = Json::object();
  json.set("status", std::int64_t{status});
  json.set("message", message);
  if (!details.empty()) {
    Json details_json = Json::array();
    for (const auto& detail : details) details_json.push_back(detail);
    json.set("details", std::move(details_json));
  }
  return json;
}

ApiError ApiError::from_json(const Json& json) {
  ApiError error;
  error.status = static_cast<int>(json.at("status").as_int());
  error.message = json.at("message").as_string();
  if (const Json* details = json.find("details")) {
    for (const Json& entry : details->as_array()) {
      error.details.push_back(entry.as_string());
    }
  }
  return error;
}

Json Request::to_json() const {
  Json json = Json::object();
  json.set("method", method);
  json.set("target", target);
  json.set("caller", caller);
  json.set("body", body);
  return json;
}

Request Request::from_json(const Json& json) {
  Request request;
  request.method = json.at("method").as_string();
  request.target = json.at("target").as_string();
  request.caller = json.at("caller").as_string();
  if (const Json* body = json.find("body")) request.body = *body;
  return request;
}

Json Response::to_json() const {
  Json json = Json::object();
  json.set("status", std::int64_t{status});
  json.set("body", body);
  return json;
}

Response Response::from_json(const Json& json) {
  Response response;
  response.status = static_cast<int>(json.at("status").as_int());
  if (const Json* body = json.find("body")) response.body = *body;
  return response;
}

}  // namespace qkdpp::api
