// ETSI GS QKD 014-shaped data transfer objects for the key-delivery API.
//
// One struct per wire object of the ETSI local key delivery API, each with
// a to_json()/from_json() pair so the service and dispatcher exchange
// *serialized* requests - exactly what an HTTP transport shim would carry.
// JSON field names follow the ETSI spelling (key_ID, stored_key_count,
// master_SAE_ID, ...) so a compliant client maps 1:1:
//
//   StatusResponse  <-> "Status"        (GET  /keys/{slave}/status)
//   KeyRequest      <-> "Key request"   (POST /keys/{slave}/enc_keys)
//   KeyIdsRequest   <-> "Key IDs"       (POST /keys/{master}/dec_keys)
//   KeyContainer    <-> "Key container" (response carrying key_ID + key)
//   ApiError        <-> "Error"         (message + details, plus the
//                                        HTTP-like status the transport
//                                        would put on the wire)
//
// from_json() throws qkdpp::Error{kSerialization} on malformed or
// wrongly-typed input; the dispatcher maps that to status 400.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace qkdpp::api {

/// ETSI "Status": what one SAE pair's delivery endpoint can do right now.
struct StatusResponse {
  std::string source_kme_id;   ///< KME terminating the master SAE's side
  std::string target_kme_id;   ///< KME terminating the slave SAE's side
  std::string master_sae_id;
  std::string slave_sae_id;
  std::uint64_t key_size = 0;            ///< default delivered-key size, bits
  std::uint64_t stored_key_count = 0;    ///< keys deliverable right now
  std::uint64_t max_key_count = 0;       ///< store bound, in keys (0 = none)
  std::uint64_t max_key_per_request = 0;
  std::uint64_t max_key_size = 0;        ///< bits
  std::uint64_t min_key_size = 0;        ///< bits
  /// Extension: keys delivered to the master and retained for the slave
  /// (ETSI allows vendor extensions; exposed so both SAEs can see the
  /// handover backlog).
  std::uint64_t pending_key_count = 0;

  Json to_json() const;
  static StatusResponse from_json(const Json& json);
  friend bool operator==(const StatusResponse&,
                         const StatusResponse&) = default;
};

/// ETSI "Key request": the master SAE asks for `number` keys of `size`
/// bits each (0 = the pair's default size).
struct KeyRequest {
  std::uint64_t number = 1;
  std::uint64_t size = 0;

  Json to_json() const;
  static KeyRequest from_json(const Json& json);
  friend bool operator==(const KeyRequest&, const KeyRequest&) = default;
};

/// ETSI "Key IDs": the slave SAE names the keys (by UUID) the master
/// already holds.
struct KeyIdsRequest {
  std::vector<std::string> key_ids;

  Json to_json() const;
  static KeyIdsRequest from_json(const Json& json);
  friend bool operator==(const KeyIdsRequest&, const KeyIdsRequest&) = default;
};

/// ETSI "Key": one delivered key - a 128-bit UUID both SAEs reference plus
/// the key material (lowercase hex of the little-endian byte serialization).
struct DeliveredKey {
  std::string key_id;
  std::string key;

  Json to_json() const;
  static DeliveredKey from_json(const Json& json);
  friend bool operator==(const DeliveredKey&, const DeliveredKey&) = default;
};

/// ETSI "Key container": the batch a single request delivered.
struct KeyContainer {
  std::vector<DeliveredKey> keys;

  Json to_json() const;
  static KeyContainer from_json(const Json& json);
  friend bool operator==(const KeyContainer&, const KeyContainer&) = default;
};

/// HTTP-like status codes the service speaks (the subset ETSI 014 uses).
inline constexpr int kStatusOk = 200;
inline constexpr int kStatusBadRequest = 400;    ///< malformed request
inline constexpr int kStatusUnauthorized = 401;  ///< unknown SAE / pair
inline constexpr int kStatusNotFound = 404;      ///< no such route
/// Known route, unsupported method; details name the expected method(s),
/// so a client can distinguish "wrong verb" from "no such path" (404).
inline constexpr int kStatusMethodNotAllowed = 405;
inline constexpr int kStatusUnavailable = 503;   ///< exhausted / backpressure
inline constexpr int kStatusInternal = 500;      ///< unexpected typed error

/// ETSI "Error" plus the transport status code.
struct ApiError {
  int status = 0;
  std::string message;
  std::vector<std::string> details;

  Json to_json() const;
  static ApiError from_json(const Json& json);
  friend bool operator==(const ApiError&, const ApiError&) = default;
};

/// Transport envelope for one request: what an HTTP shim would decompose
/// into method + path + authenticated caller identity + body. The caller
/// field stands in for the TLS client identity ETSI relies on.
struct Request {
  std::string method;  ///< "GET" or "POST"
  std::string target;  ///< e.g. "/api/v1/keys/sae-bob/enc_keys"
  std::string caller;  ///< authenticated SAE id of the requester
  Json body;           ///< null for GET

  Json to_json() const;
  static Request from_json(const Json& json);
  friend bool operator==(const Request&, const Request&) = default;
};

/// Transport envelope for one response.
struct Response {
  int status = kStatusOk;
  Json body;

  bool ok() const noexcept { return status == kStatusOk; }

  Json to_json() const;
  static Response from_json(const Json& json);
  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace qkdpp::api
