// KeyDeliveryService: the ETSI GS QKD 014-aligned delivery facade over the
// LinkOrchestrator.
//
// The orchestrator distills variable-size blocks into per-link KeyStores;
// applications want fixed-size keys with identities both ends of a link
// can name. This facade closes that gap, per registered SAE pair
// (master = the application end that requests keys, slave = the peer end
// that later fetches the same keys by id, both bound to one KeySource -
// an orchestrator link's store for adjacent SAEs, or a trusted-node relay
// route from src/network/ for SAEs on non-adjacent nodes):
//
//   * get_status      - what the pair's endpoint can deliver right now
//   * get_key         - master draws `number` keys of `size` bits: distilled
//                       blocks are drawn from the link's KeyStore (draws
//                       attributed to the master SAE), segmented at `size`
//                       bits, and each segment is minted a stable 128-bit
//                       UUID key id; the segment is simultaneously retained
//                       for the slave
//   * get_key_with_ids- slave fetches the retained keys by UUID (exactly
//                       once; the handover copy is destroyed on delivery)
//
// Block tails smaller than `size` stay in a per-pair residual buffer and
// join the next request, so no distilled bit is ever dropped by
// segmentation: for every pair, bits drawn from the store ==
// delivered_bits + buffered_bits (PairStats), the conservation law the
// bench asserts.
//
// Failures are values, not exceptions: every entry point returns
// Result<T> carrying either the DTO or an ApiError with an HTTP-like
// status (400 malformed, 401 unknown SAE/pair, 503 exhausted) - the
// explicit, auditable trust boundary between the post-processing engine
// and key consumers. All entry points are thread-safe; per-pair state is
// independently locked so concurrent SAE pairs never contend.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/dtos.hpp"
#include "common/bitvec.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "pipeline/kms.hpp"
#include "service/link_orchestrator.hpp"

namespace qkdpp::api {

/// Where a registered SAE pair's key material comes from. The facade's
/// original source is one orchestrator link's KeyStore (LinkStoreSource,
/// adjacent SAEs); the network layer supplies a relay-backed source for
/// SAE pairs on non-adjacent nodes. Implementations must be safe to call
/// concurrently with running distillation; the service serializes calls
/// per pair under the pair mutex.
class KeySource {
 public:
  virtual ~KeySource() = default;
  /// Bits the source could hand out right now (an estimate under
  /// concurrency; draw() is the ground truth).
  virtual std::uint64_t bits_available() const = 0;
  /// Backing capacity bound in bits (0 = unbounded/unknown), for the ETSI
  /// status max_key_count field.
  virtual std::uint64_t capacity_bits() const = 0;
  /// Destructively draw the next chunk of key material (a distilled block,
  /// a relayed segment - sizes vary; the service segments and buffers the
  /// tail). nullopt when nothing can be produced right now.
  virtual std::optional<BitVec> draw(std::string_view consumer) = 0;
  /// Append "why am I empty" diagnostics to a 503 error's detail list.
  virtual void describe_exhaustion(std::vector<std::string>& details) const;
  /// Advisory client back-off for a 503, in milliseconds (the ApiError
  /// carries it as a Retry-After-style detail; an HTTP shim would emit the
  /// header). 0 = no estimate: nothing suggests material is coming.
  virtual std::uint64_t retry_after_hint_ms() const { return 0; }
};

/// The point-to-point source: one orchestrator link's bounded KeyStore.
/// When constructed with the link's orchestrator coordinates it also
/// surfaces the link's live health on exhaustion (is the link still
/// distilling? has its circuit breaker opened?), which is what turns a
/// bare 503 into an actionable one.
class LinkStoreSource final : public KeySource {
 public:
  explicit LinkStoreSource(pipeline::KeyStore& store) : store_(store) {}
  LinkStoreSource(pipeline::KeyStore& store,
                  const service::LinkOrchestrator& orchestrator,
                  std::size_t link)
      : store_(store), orchestrator_(&orchestrator), link_(link) {}
  std::uint64_t bits_available() const override {
    return store_.bits_available();
  }
  std::uint64_t capacity_bits() const override {
    return store_.config().capacity_bits;
  }
  std::optional<BitVec> draw(std::string_view consumer) override;
  void describe_exhaustion(std::vector<std::string>& details) const override;
  std::uint64_t retry_after_hint_ms() const override;

 private:
  pipeline::KeyStore& store_;
  const service::LinkOrchestrator* orchestrator_ = nullptr;
  std::size_t link_ = 0;
};

/// One registered master/slave SAE pair served from one key source (an
/// orchestrator link for adjacent SAEs, a relay route for non-adjacent).
struct SaePair {
  std::string master_sae_id;  ///< caller of get_key
  std::string slave_sae_id;   ///< caller of get_key_with_ids
  /// Orchestrator link backing this pair. Ignored (may be empty) when the
  /// pair is registered with an explicit KeySource.
  std::string link_name;
  std::uint64_t default_key_size = 256;    ///< bits, when a request says 0
  std::uint64_t max_key_per_request = 128;
  std::uint64_t max_key_size = 4096;       ///< bits, multiple of 8
  std::uint64_t min_key_size = 64;         ///< bits, multiple of 8
  /// Cap on keys retained for a slave that has not collected yet. A dead
  /// slave peer otherwise turns every enc_keys call into unbounded
  /// retained memory - the same slow-consumer failure the bounded
  /// KeyStore exists to prevent, one layer up. At the cap, get_key stops
  /// minting and reports 503 backpressure.
  std::uint64_t max_pending_keys = 4096;
};

struct KeyDeliveryConfig {
  std::string source_kme_id = "kme-local";
  std::string target_kme_id = "kme-peer";
  /// Seed of the deterministic UUID streams (one per pair). Key ids must
  /// be unpredictable in a deployment; a seeded stream keeps tests and
  /// benches reproducible, same stance as common/rng.
  std::uint64_t uuid_seed = 0x014;
};

/// Either the successful DTO or the typed ApiError.
template <typename T>
struct Result {
  std::optional<T> value;
  ApiError error;

  bool ok() const noexcept { return value.has_value(); }
  const T& operator*() const { return *value; }
  const T* operator->() const { return &*value; }

  static Result success(T dto) { return Result{std::move(dto), {}}; }
  static Result failure(int status, std::string message,
                        std::vector<std::string> details = {}) {
    return Result{std::nullopt,
                  ApiError{status, std::move(message), std::move(details)}};
  }
};

/// Per-pair delivery accounting (bits are exact, never sampled).
struct PairStats {
  std::uint64_t delivered_keys = 0;  ///< minted + returned to the master
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;  ///< fetched by the slave (<= delivered)
  std::uint64_t collected_bits = 0;
  std::uint64_t buffered_bits = 0;   ///< residual tail awaiting segmentation
  std::uint64_t pending_keys = 0;    ///< retained for the slave right now
  std::uint64_t pending_bits = 0;
};

class KeyDeliveryService {
 public:
  /// The orchestrator must outlive the service. Key material flows only
  /// through the orchestrator's per-link stores; the service never touches
  /// engines or devices.
  KeyDeliveryService(service::LinkOrchestrator& orchestrator,
                     KeyDeliveryConfig config = {});

  /// Register a master/slave pair on a link. Throws Error{kConfig} on an
  /// unknown link, empty SAE ids, a duplicate (master, slave) pair, or a
  /// key-size configuration that is not a multiple of 8 bits.
  void register_pair(SaePair pair);

  /// Register a pair over an explicit key source (the network layer's
  /// relay-backed sources use this; pair.link_name is ignored). The ETSI
  /// surface - get_status/get_key/get_key_with_ids, UUID minting, residual
  /// buffering, conservation accounting - is identical for both kinds of
  /// pair: a consumer cannot tell adjacent from relayed.
  void register_pair(SaePair pair, std::shared_ptr<KeySource> source);

  /// ETSI GET status: either SAE of a pair may ask, naming the peer.
  Result<StatusResponse> get_status(std::string_view caller_sae,
                                    std::string_view peer_sae) const;

  /// ETSI POST enc_keys: the master SAE (caller) requests keys for the
  /// pair it forms with `slave_sae`.
  Result<KeyContainer> get_key(std::string_view caller_sae,
                               std::string_view slave_sae,
                               const KeyRequest& request);

  /// ETSI POST dec_keys: the slave SAE (caller) fetches, by UUID, keys the
  /// master already drew on the pair it forms with `master_sae`.
  /// All-or-nothing: one unknown id fails the request (400) and consumes
  /// nothing, so a retry after a typo cannot half-deliver a batch.
  Result<KeyContainer> get_key_with_ids(std::string_view caller_sae,
                                        std::string_view master_sae,
                                        const KeyIdsRequest& request);

  /// Exact delivery accounting for one pair; nullopt when unregistered.
  std::optional<PairStats> pair_stats(std::string_view master_sae,
                                      std::string_view slave_sae) const;

  std::size_t pair_count() const;
  const KeyDeliveryConfig& config() const noexcept { return config_; }

  /// Syntactic UUID check (8-4-4-4-12 lowercase hex), exposed for input
  /// validation in tests and transports.
  static bool is_uuid(std::string_view text) noexcept;

 private:
  struct PairState {
    SaePair spec;
    std::shared_ptr<KeySource> source;
    std::size_t index = 0;  ///< registration order, mixed into UUIDs
    // Ranked above the tap and store locks: get_key deliberately holds the
    // pair mutex across source->draw(), which reaches relay taps and store
    // shards (the per-pair serialization the ETSI semantics need).
    mutable Mutex mutex{LockRank::kPair, "api.pair"};
    /// Tail of the last drawn block, < key_size bits.
    BitVec residual QKD_GUARDED_BY(mutex);
    /// Keys delivered to the master, retained until the slave collects.
    std::map<std::string, BitVec> pending QKD_GUARDED_BY(mutex);
    Xoshiro256 uuid_rng QKD_GUARDED_BY(mutex);
    /// Structural uniqueness guarantee.
    std::uint64_t uuid_counter QKD_GUARDED_BY(mutex) = 0;
    PairStats stats QKD_GUARDED_BY(mutex);

    PairState(SaePair s, std::shared_ptr<KeySource> key_source,
              std::size_t pair_index, std::uint64_t seed)
        : spec(std::move(s)),
          source(std::move(key_source)),
          index(pair_index),
          uuid_rng(seed) {}
  };

  std::string mint_uuid_locked(PairState& pair) QKD_REQUIRES(pair.mutex);
  const PairState* find_pair(std::string_view master,
                             std::string_view slave) const;
  PairState* find_pair(std::string_view master, std::string_view slave);

  service::LinkOrchestrator& orchestrator_;
  KeyDeliveryConfig config_;
  /// Guards pairs_/index_ layout only (registration); lookups take it
  /// shared, so requests on different pairs contend on nothing but their
  /// own mutex. Never held together with a pair mutex: find_pair releases
  /// it before returning the (pinned) PairState pointer.
  mutable SharedMutex registry_mutex_{LockRank::kRegistry, "api.registry"};
  /// Pinned: PairState owns a mutex.
  std::deque<PairState> pairs_ QKD_GUARDED_BY(registry_mutex_);
  /// O(log n) request routing over a registry sized for 2^14 pairs. Keyed
  /// "master/slave" - '/' cannot occur in an SAE id (register_pair
  /// rejects it), so the composite key is unambiguous.
  std::map<std::string, PairState*, std::less<>> index_
      QKD_GUARDED_BY(registry_mutex_);
};

}  // namespace qkdpp::api
