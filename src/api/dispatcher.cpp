#include "api/dispatcher.hpp"

#include <utility>

#include "common/error.hpp"

namespace qkdpp::api {

namespace {

constexpr std::string_view kKeysPrefix = "/api/v1/keys/";

Response error_response(int status, std::string message,
                        std::vector<std::string> details = {}) {
  Response response;
  response.status = status;
  response.body =
      ApiError{status, std::move(message), std::move(details)}.to_json();
  return response;
}

template <typename T>
Response from_result(Result<T> result) {
  Response response;
  if (result.ok()) {
    response.status = kStatusOk;
    response.body = result->to_json();
  } else {
    response.status = result.error.status;
    response.body = result.error.to_json();
  }
  return response;
}

/// Known path, wrong verb: 405 with the expected method(s) in the detail
/// string, so a client fixing its verb is not chasing a 404.
Response method_not_allowed(std::string_view endpoint,
                            std::string_view method,
                            std::string_view expected) {
  std::string message(endpoint);
  message += " does not support ";
  message += method.empty() ? std::string_view("(empty method)") : method;
  return error_response(kStatusMethodNotAllowed, std::move(message),
                        {"expected: " + std::string(expected)});
}

}  // namespace

Response Dispatcher::dispatch(const Request& request) {
  // The no-throw guarantee lives here, not in every route: a typed Error
  // escaping the service or DTO serialization must degrade to a response,
  // because the transport loop behind this call has nothing to catch with.
  try {
    return route(request);
  } catch (const Error& error) {
    const int status = error.code() == ErrorCode::kSerialization
                           ? kStatusBadRequest
                           : kStatusInternal;
    return error_response(status, error.what());
  }
}

Response Dispatcher::route(const Request& request) {
  // Target shape: /api/v1/keys/{peer_SAE_ID}/{endpoint}
  if (request.target.compare(0, kKeysPrefix.size(), kKeysPrefix) != 0) {
    return error_response(kStatusNotFound,
                          "no such route: " + request.target);
  }
  const std::string_view rest =
      std::string_view(request.target).substr(kKeysPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= rest.size()) {
    return error_response(kStatusNotFound,
                          "no such route: " + request.target);
  }
  const std::string_view peer = rest.substr(0, slash);
  const std::string_view endpoint = rest.substr(slash + 1);

  if (endpoint == "status") {
    if (request.method != "GET") {
      return method_not_allowed("status", request.method, "GET");
    }
    return from_result(service_.get_status(request.caller, peer));
  }
  if (endpoint == "enc_keys") {
    KeyRequest key_request;  // GET = the ETSI default request (1 key)
    if (request.method == "POST") {
      try {
        key_request = KeyRequest::from_json(request.body);
      } catch (const Error& error) {
        return error_response(kStatusBadRequest, error.what());
      }
    } else if (request.method != "GET") {
      return method_not_allowed("enc_keys", request.method, "GET or POST");
    }
    return from_result(service_.get_key(request.caller, peer, key_request));
  }
  if (endpoint == "dec_keys") {
    if (request.method != "POST") {
      return method_not_allowed("dec_keys", request.method, "POST");
    }
    KeyIdsRequest ids_request;
    try {
      ids_request = KeyIdsRequest::from_json(request.body);
    } catch (const Error& error) {
      return error_response(kStatusBadRequest, error.what());
    }
    return from_result(
        service_.get_key_with_ids(request.caller, peer, ids_request));
  }
  return error_response(kStatusNotFound, "no such route: " + request.target);
}

std::string Dispatcher::dispatch(std::string_view request_json) {
  Request request;
  try {
    request = Request::from_json(Json::parse(request_json));
  } catch (const Error& error) {
    return error_response(kStatusBadRequest, error.what()).to_json().dump();
  }
  return dispatch(request).to_json().dump();
}

}  // namespace qkdpp::api
