// Dispatcher: routes serialized ETSI 014-shaped requests to the
// KeyDeliveryService.
//
// This is the transport-independent half of an HTTP server: it consumes a
// Request envelope (method + target path + authenticated caller + JSON
// body - exactly the tuple an HTTP/socket shim would decode) and produces
// a Response envelope (status + JSON body). Plugging in a real transport
// is then a thin loop: read bytes, call dispatch(), write bytes.
//
// Routes (ETSI GS QKD 014 local key delivery API paths):
//   GET  /api/v1/keys/{slave_SAE_ID}/status     -> get_status
//   POST /api/v1/keys/{slave_SAE_ID}/enc_keys   -> get_key
//   GET  /api/v1/keys/{slave_SAE_ID}/enc_keys   -> get_key (defaults)
//   POST /api/v1/keys/{master_SAE_ID}/dec_keys  -> get_key_with_ids
//
// Error mapping: malformed envelope/body JSON -> 400, unknown route ->
// 404, unsupported method on a known route -> 405 (the expected method is
// named in the error details), service-level failures keep the ApiError
// status the service chose (400/401/503).
#pragma once

#include <string>
#include <string_view>

#include "api/dtos.hpp"
#include "api/key_delivery.hpp"

namespace qkdpp::api {

class Dispatcher {
 public:
  explicit Dispatcher(KeyDeliveryService& service) : service_(service) {}

  /// Route one decoded request. Never throws on bad input: every failure
  /// becomes a Response carrying an ApiError body.
  Response dispatch(const Request& request);

  /// Fully serialized path: parse the request envelope from JSON text,
  /// route it, serialize the response envelope. The bench drives this -
  /// it is the complete serialize -> dispatch -> segment -> deliver path
  /// a transport would exercise.
  std::string dispatch(std::string_view request_json);

 private:
  Response route(const Request& request);

  KeyDeliveryService& service_;
};

}  // namespace qkdpp::api
