// Minimal JSON value model for the key-delivery API layer.
//
// The API subsystem needs exactly one serialization format - the
// ETSI GS QKD 014 local delivery API is JSON-over-HTTP - and the repo
// bakes in no third-party JSON dependency, so this is a small, strict
// implementation: an immutable-ish tagged value (null / bool / int64 /
// double / string / array / object), a recursive-descent parser, and a
// deterministic serializer (object keys sorted, so dumps are stable for
// tests and logs). Integers are kept distinct from doubles: key/bit
// counters are 64-bit and must not round-trip through a double mantissa.
//
// Parsing failures throw qkdpp::Error{kSerialization} - the same taxonomy
// the wire-protocol codecs use - and the dispatcher maps them to an
// HTTP-like 400.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace qkdpp::api {

class Json {
 public:
  using Array = std::vector<Json>;
  // Sorted keys: dump() output is deterministic regardless of insertion
  // order, which the round-trip tests and bench JSON tails rely on. The
  // transparent comparator lets at()/find() look up by string_view
  // without materializing a key string per field access.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Throws Error{kSerialization} on malformed input or nesting
  /// deeper than an internal limit.
  static Json parse(std::string_view text);

  bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  bool is_bool() const noexcept { return holds<bool>(); }
  bool is_int() const noexcept { return holds<std::int64_t>(); }
  bool is_double() const noexcept { return holds<double>(); }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return holds<std::string>(); }
  bool is_array() const noexcept { return holds<Array>(); }
  bool is_object() const noexcept { return holds<Object>(); }

  /// Checked accessors: throw Error{kSerialization} on a type mismatch
  /// (the caller is decoding untrusted input; a mismatch is a malformed
  /// request, not a programming error).
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;  ///< as_int, rejecting negatives
  double as_double() const;       ///< any number, widened
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field lookup; throws on non-objects or a missing key.
  const Json& at(std::string_view key) const;
  /// Object field lookup returning nullptr when absent (optional fields).
  const Json* find(std::string_view key) const;
  /// Object field assignment (creates the object value if null).
  Json& set(std::string_view key, Json value);
  /// Array append (creates the array value if null).
  void push_back(Json value);

  std::size_t size() const;

  /// Compact serialization (no whitespace), deterministic key order.
  std::string dump() const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  template <typename T>
  bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Object>
      value_;
};

}  // namespace qkdpp::api
