// Execution trace: per-item, per-stage timing events from a streaming
// pipeline run, exportable as CSV for offline visualization (Gantt-style
// occupancy plots are how heterogeneous-pipeline papers show overlap).
// Thread-safe; attach one to a StreamPipeline stage's work lambda.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/stats.hpp"

namespace qkdpp::hetero {

struct TraceEvent {
  std::string stage;
  std::string device;
  std::uint64_t item = 0;
  double start_s = 0.0;    ///< seconds since trace epoch
  double end_s = 0.0;      ///< wall-clock end
  double charged_s = 0.0;  ///< device-charged (modeled) duration
};

class ExecutionTrace {
 public:
  ExecutionTrace() : epoch_() {}

  /// Record one completed unit of work. `start_offset_s` is the wall start
  /// relative to the trace epoch (use stamp() before the work runs).
  void record(std::string stage, std::string device, std::uint64_t item,
              double start_offset_s, double charged_s);

  /// Seconds since this trace was constructed (for stamping starts).
  double stamp() const noexcept { return epoch_.seconds(); }

  std::size_t size() const;
  std::vector<TraceEvent> events() const;

  /// CSV: stage,device,item,start_s,end_s,charged_s (header included).
  void write_csv(std::ostream& out) const;

  /// Wall-clock busy fraction of a device over the traced interval
  /// (sum of its event durations / trace span). Returns 0 for an unknown
  /// device or an empty trace.
  double device_occupancy(const std::string& device) const;

 private:
  mutable Mutex mutex_{LockRank::kTrace, "trace.events"};
  Stopwatch epoch_;
  std::vector<TraceEvent> events_ QKD_GUARDED_BY(mutex_);
};

/// EWMA feedback from observed stage executions into the mapper's cost
/// model. The mapper prices stages from WorkEstimate models; reality
/// drifts (QBER moves the decoder's iteration count, pool contention moves
/// CPU wall-clock), so each completed stage reports the seconds the model
/// predicted for its device alongside the seconds actually charged. The
/// exponentially weighted ratio observed/predicted is the per-stage
/// correction replan() multiplies into every device's modeled cost - the
/// standard assumption that mispricing is workload-scale, not
/// device-specific. Thread-safe, like ExecutionTrace.
class StageCostModel {
 public:
  /// `alpha` is the EWMA weight of the newest sample (0 < alpha <= 1).
  explicit StageCostModel(std::size_t stages, double alpha = 0.25);

  std::size_t stages() const noexcept { return stage_count_; }

  /// Record one completed stage execution. Samples with a non-positive
  /// predicted cost are dropped (no ratio to learn from).
  void observe(std::size_t stage, double predicted_s, double observed_s);

  /// Multiplicative correction for `stage`'s modeled cost; 1.0 until the
  /// first sample arrives.
  double correction(std::size_t stage) const;

  /// EWMA of the observed seconds per item for `stage` (0 until sampled).
  double observed_seconds(std::size_t stage) const;

  std::uint64_t samples(std::size_t stage) const;

 private:
  std::size_t stage_count_;
  double alpha_;
  mutable Mutex mutex_{LockRank::kTrace, "trace.cost_model"};
  /// EWMA of observed / predicted.
  std::vector<double> ratio_ QKD_GUARDED_BY(mutex_);
  /// EWMA of observed seconds.
  std::vector<double> observed_ QKD_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> samples_ QKD_GUARDED_BY(mutex_);
};

}  // namespace qkdpp::hetero
