// Execution trace: per-item, per-stage timing events from a streaming
// pipeline run, exportable as CSV for offline visualization (Gantt-style
// occupancy plots are how heterogeneous-pipeline papers show overlap).
// Thread-safe; attach one to a StreamPipeline stage's work lambda.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace qkdpp::hetero {

struct TraceEvent {
  std::string stage;
  std::string device;
  std::uint64_t item = 0;
  double start_s = 0.0;    ///< seconds since trace epoch
  double end_s = 0.0;      ///< wall-clock end
  double charged_s = 0.0;  ///< device-charged (modeled) duration
};

class ExecutionTrace {
 public:
  ExecutionTrace() : epoch_() {}

  /// Record one completed unit of work. `start_offset_s` is the wall start
  /// relative to the trace epoch (use stamp() before the work runs).
  void record(std::string stage, std::string device, std::uint64_t item,
              double start_offset_s, double charged_s);

  /// Seconds since this trace was constructed (for stamping starts).
  double stamp() const noexcept { return epoch_.seconds(); }

  std::size_t size() const;
  std::vector<TraceEvent> events() const;

  /// CSV: stage,device,item,start_s,end_s,charged_s (header included).
  void write_csv(std::ostream& out) const;

  /// Wall-clock busy fraction of a device over the traced interval
  /// (sum of its event durations / trace span). Returns 0 for an unknown
  /// device or an empty trace.
  double device_occupancy(const std::string& device) const;

 private:
  mutable std::mutex mutex_;
  Stopwatch epoch_;
  std::vector<TraceEvent> events_;
};

}  // namespace qkdpp::hetero
