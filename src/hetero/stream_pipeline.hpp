// Bounded-queue streaming pipeline: one worker per stage, items flow
// through in order; backpressure propagates through the bounded queues.
// This is the execution skeleton that turns per-stage kernels + a device
// mapping into sustained pipeline throughput - the object the mapping
// optimizer (mapper.hpp) reasons about.
//
// Concurrency design: each stage owns its *input* queue, with its own
// mutex + condition variables. Neighbouring stages only ever contend on
// the single queue they share, so stages mapped to different devices run
// lock-free with respect to each other - under one global lock (the old
// design) every enqueue/dequeue serialized the whole pipeline. End-of-
// stream and failure propagate queue-to-queue: finish() closes the first
// queue, each worker closes its downstream queue when its input drains,
// and a failing stage flags the shared atomic and wakes every waiter.
//
// Header-only template so the runtime stays independent of the item type
// (the key pipeline streams KeyBlocks; tests stream synthetic items).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hetero/device.hpp"

namespace qkdpp::hetero {

/// Aggregate per-stage execution statistics.
struct StageStats {
  std::string name;
  std::uint64_t items = 0;
  double busy_seconds = 0.0;     ///< sum of per-item work wall time
  double charged_seconds = 0.0;  ///< sum of device-charged (modeled) time
};

template <typename Item>
class StreamPipeline {
 public:
  struct Stage {
    std::string name;
    Device* device = nullptr;  ///< optional; informational + accounting
    /// Process one item in place; return seconds charged by the device
    /// (0 = untimed stage). Exceptions abort the pipeline.
    std::function<double(Item&)> work;
  };

  StreamPipeline(std::vector<Stage> stages, std::size_t queue_capacity)
      : stages_(std::move(stages)), capacity_(queue_capacity) {
    QKDPP_REQUIRE(!stages_.empty(), "pipeline needs at least one stage");
    QKDPP_REQUIRE(queue_capacity >= 1, "queue capacity must be positive");
    queues_.reserve(stages_.size());
    stats_.resize(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      queues_.push_back(std::make_unique<StageQueue>());
      stats_[s].name = stages_[s].name;
    }
    workers_.reserve(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      workers_.emplace_back([this, s] { stage_loop(s); });
    }
  }

  ~StreamPipeline() {
    // Abandon anything still queued; wake every waiter and join.
    failed_.store(true, std::memory_order_release);
    wake_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Feed one item; blocks while the first queue is full (backpressure).
  void push(Item item) {
    StageQueue& queue = *queues_.front();
    std::unique_lock lock(queue.mutex);
    queue.not_full.wait(lock, [&] {
      return failed_.load(std::memory_order_acquire) ||
             queue.items.size() < capacity_;
    });
    if (failed_.load(std::memory_order_acquire)) rethrow_failure();
    queue.items.push_back(std::move(item));
    queue.not_empty.notify_one();
  }

  /// Signal end-of-stream and wait for in-flight items to drain. Rethrows
  /// the first stage exception, if any.
  void finish() {
    close(*queues_.front());
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (failed_.load(std::memory_order_acquire)) rethrow_failure();
  }

  /// Completed items, in order, after finish().
  std::vector<Item>& results() { return results_; }

  std::vector<StageStats> stats() const {
    std::vector<StageStats> out(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      std::scoped_lock lock(queues_[s]->mutex);
      out[s] = stats_[s];
    }
    return out;
  }

 private:
  /// One stage's input queue: the only synchronization point shared between
  /// stage s-1 (producer) and stage s (consumer).
  struct StageQueue {
    mutable std::mutex mutex;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<Item> items;
    bool closed = false;  ///< upstream finished; drain and exit
  };

  void rethrow_failure() {
    std::scoped_lock lock(failure_mutex_);
    if (failure_) std::rethrow_exception(failure_);
    throw_error(ErrorCode::kChannelClosed, "pipeline aborted");
  }

  void close(StageQueue& queue) {
    {
      std::scoped_lock lock(queue.mutex);
      queue.closed = true;
    }
    queue.not_empty.notify_all();
  }

  void wake_all() {
    for (auto& queue : queues_) {
      std::scoped_lock lock(queue->mutex);
      queue->not_empty.notify_all();
      queue->not_full.notify_all();
    }
  }

  void fail(std::exception_ptr error) {
    {
      std::scoped_lock lock(failure_mutex_);
      if (!failure_) failure_ = error;
    }
    failed_.store(true, std::memory_order_release);
    wake_all();
  }

  /// Move one item downstream; false when the pipeline failed meanwhile.
  bool enqueue(StageQueue& queue, Item&& item) {
    std::unique_lock lock(queue.mutex);
    queue.not_full.wait(lock, [&] {
      return failed_.load(std::memory_order_acquire) ||
             queue.items.size() < capacity_;
    });
    if (failed_.load(std::memory_order_acquire)) return false;
    queue.items.push_back(std::move(item));
    queue.not_empty.notify_one();
    return true;
  }

  void stage_loop(std::size_t s) {
    StageQueue& in = *queues_[s];
    for (;;) {
      Item item;
      {
        std::unique_lock lock(in.mutex);
        in.not_empty.wait(lock, [&] {
          return failed_.load(std::memory_order_acquire) ||
                 !in.items.empty() || in.closed;
        });
        if (failed_.load(std::memory_order_acquire)) return;
        if (in.items.empty()) break;  // closed and drained: stage complete
        item = std::move(in.items.front());
        in.items.pop_front();
        in.not_full.notify_one();  // release producer backpressure
      }

      Stopwatch stopwatch;
      double charged = 0.0;
      try {
        charged = stages_[s].work(item);
      } catch (...) {
        fail(std::current_exception());
        return;
      }
      const double wall = stopwatch.seconds();

      {
        std::scoped_lock lock(in.mutex);
        stats_[s].items += 1;
        stats_[s].busy_seconds += wall;
        stats_[s].charged_seconds += charged;
      }
      if (s + 1 < stages_.size()) {
        if (!enqueue(*queues_[s + 1], std::move(item))) return;
      } else {
        // Single consumer: only this worker touches results_, and callers
        // read it after finish() joins.
        results_.push_back(std::move(item));
      }
    }
    if (s + 1 < stages_.size()) close(*queues_[s + 1]);
  }

  std::vector<Stage> stages_;
  std::size_t capacity_ = 1;

  std::vector<std::unique_ptr<StageQueue>> queues_;  ///< input queue per stage
  std::vector<StageStats> stats_;  ///< slot s guarded by queues_[s]->mutex
  std::vector<Item> results_;

  std::atomic<bool> failed_{false};
  std::mutex failure_mutex_;
  std::exception_ptr failure_;  ///< guarded by failure_mutex_

  std::vector<std::thread> workers_;
};

}  // namespace qkdpp::hetero
