// Bounded-queue streaming pipeline: one worker per stage, items flow
// through in order; backpressure propagates through the bounded queues.
// This is the execution skeleton that turns per-stage kernels + a device
// mapping into sustained pipeline throughput - the object the mapping
// optimizer (mapper.hpp) reasons about.
//
// Concurrency design: each stage owns its *input* ring - a lock-free SPSC
// bounded ring (spsc_ring.hpp) whose single producer is the upstream
// stage's worker and single consumer is this stage's worker. Neighbouring
// stages hand items over through two cache lines of acquire/release
// atomics; stages mapped to different devices share no lock at all (the
// PR 2 design still took one mutex+cv pair per queue on every handoff).
// End-of-stream propagates ring-to-ring: finish() closes the first ring,
// each worker closes its downstream ring when its input drains. Failure
// poisons every ring at once, which unblocks both endpoints of each ring
// immediately. Per-stage stats are single-writer atomics, so stats() is
// readable mid-run without touching the hot path.
//
// Header-only template so the runtime stays independent of the item type
// (the key pipeline streams KeyBlocks; tests stream synthetic items).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "hetero/device.hpp"

namespace qkdpp::hetero {

/// Aggregate per-stage execution statistics.
struct StageStats {
  std::string name;
  std::uint64_t items = 0;
  double busy_seconds = 0.0;     ///< sum of per-item work wall time
  double charged_seconds = 0.0;  ///< sum of device-charged (modeled) time
};

template <typename Item>
class StreamPipeline {
 public:
  struct Stage {
    std::string name;
    Device* device = nullptr;  ///< optional; informational + accounting
    /// Process one item in place; return seconds charged by the device
    /// (0 = untimed stage). Exceptions abort the pipeline.
    std::function<double(Item&)> work;
  };

  /// `queue_capacity` bounds each inter-stage ring; the ring rounds it up
  /// to the next power of two.
  StreamPipeline(std::vector<Stage> stages, std::size_t queue_capacity)
      : stages_(std::move(stages)) {
    QKDPP_REQUIRE(!stages_.empty(), "pipeline needs at least one stage");
    QKDPP_REQUIRE(queue_capacity >= 1, "queue capacity must be positive");
    rings_.reserve(stages_.size());
    stats_ = std::make_unique<StatsSlot[]>(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      rings_.push_back(std::make_unique<SpscRing<Item>>(queue_capacity));
      stats_[s].name = stages_[s].name;
    }
    workers_.reserve(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      workers_.emplace_back([this, s] { stage_loop(s); });
    }
  }

  ~StreamPipeline() {
    // Abandon anything still queued; poison unblocks every endpoint.
    failed_.store(true, std::memory_order_release);
    for (auto& ring : rings_) ring->poison();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Feed one item; blocks while the first ring is full (backpressure).
  void push(Item item) {
    if (!rings_.front()->push(std::move(item))) rethrow_failure();
  }

  /// Signal end-of-stream and wait for in-flight items to drain. Rethrows
  /// the first stage exception, if any.
  void finish() {
    rings_.front()->close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (failed_.load(std::memory_order_acquire)) rethrow_failure();
  }

  /// Completed items, in order, after finish().
  std::vector<Item>& results() { return results_; }

  std::vector<StageStats> stats() const {
    std::vector<StageStats> out(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      out[s].name = stats_[s].name;
      out[s].items = stats_[s].items.load(std::memory_order_acquire);
      out[s].busy_seconds =
          stats_[s].busy_seconds.load(std::memory_order_acquire);
      out[s].charged_seconds =
          stats_[s].charged_seconds.load(std::memory_order_acquire);
    }
    return out;
  }

 private:
  /// Stats slot: written only by stage s's worker, read by stats() from
  /// any thread (single-writer, so plain load/add/store suffices).
  struct StatsSlot {
    std::string name;
    std::atomic<std::uint64_t> items{0};
    std::atomic<double> busy_seconds{0.0};
    std::atomic<double> charged_seconds{0.0};
  };

  void rethrow_failure() {
    MutexLock lock(failure_mutex_);
    if (failure_) std::rethrow_exception(failure_);
    throw_error(ErrorCode::kChannelClosed, "pipeline aborted");
  }

  void fail(std::exception_ptr error) {
    {
      MutexLock lock(failure_mutex_);
      if (!failure_) failure_ = error;
    }
    failed_.store(true, std::memory_order_release);
    for (auto& ring : rings_) ring->poison();
  }

  void stage_loop(std::size_t s) {
    SpscRing<Item>& in = *rings_[s];
    StatsSlot& slot = stats_[s];
    for (;;) {
      std::optional<Item> item = in.pop();
      if (!item) {
        if (failed_.load(std::memory_order_acquire)) return;
        break;  // closed and drained: stage complete
      }

      Stopwatch stopwatch;
      double charged = 0.0;
      try {
        charged = stages_[s].work(*item);
      } catch (...) {
        fail(std::current_exception());
        return;
      }
      const double wall = stopwatch.seconds();

      // relaxed: single-writer slots - only this worker writes them, so
      // the read half of each read-modify-write cannot race; the release
      // store is what publishes the new value to stats() readers.
      slot.items.store(slot.items.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
      slot.busy_seconds.store(
          slot.busy_seconds.load(std::memory_order_relaxed) + wall,
          std::memory_order_release);
      slot.charged_seconds.store(
          slot.charged_seconds.load(std::memory_order_relaxed) + charged,
          std::memory_order_release);

      if (s + 1 < stages_.size()) {
        // push() returns false only when the ring was poisoned (the next
        // stage's worker is the only closer of its own input and never
        // closes it while we are alive) - i.e. the pipeline failed.
        if (!rings_[s + 1]->push(std::move(*item))) return;
      } else {
        // Single consumer: only this worker touches results_, and callers
        // read it after finish() joins.
        results_.push_back(std::move(*item));
      }
    }
    if (s + 1 < stages_.size()) rings_[s + 1]->close();
  }

  std::vector<Stage> stages_;

  std::vector<std::unique_ptr<SpscRing<Item>>> rings_;  ///< input per stage
  std::unique_ptr<StatsSlot[]> stats_;
  std::vector<Item> results_;

  std::atomic<bool> failed_{false};
  Mutex failure_mutex_{LockRank::kStreamFailure, "stream.failure"};
  std::exception_ptr failure_ QKD_GUARDED_BY(failure_mutex_);

  std::vector<std::thread> workers_;
};

}  // namespace qkdpp::hetero
