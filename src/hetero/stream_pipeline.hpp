// Bounded-queue streaming pipeline: one worker per stage, items flow
// through in order; backpressure propagates through the bounded queues.
// This is the execution skeleton that turns per-stage kernels + a device
// mapping into sustained pipeline throughput - the object the mapping
// optimizer (mapper.hpp) reasons about.
//
// Header-only template so the runtime stays independent of the item type
// (the key pipeline streams KeyBlocks; tests stream synthetic items).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hetero/device.hpp"

namespace qkdpp::hetero {

/// Aggregate per-stage execution statistics.
struct StageStats {
  std::string name;
  std::uint64_t items = 0;
  double busy_seconds = 0.0;     ///< sum of per-item work wall time
  double charged_seconds = 0.0;  ///< sum of device-charged (modeled) time
};

template <typename Item>
class StreamPipeline {
 public:
  struct Stage {
    std::string name;
    Device* device = nullptr;  ///< optional; informational + accounting
    /// Process one item in place; return seconds charged by the device
    /// (0 = untimed stage). Exceptions abort the pipeline.
    std::function<double(Item&)> work;
  };

  StreamPipeline(std::vector<Stage> stages, std::size_t queue_capacity)
      : stages_(std::move(stages)), queues_(stages_.size()) {
    QKDPP_REQUIRE(!stages_.empty(), "pipeline needs at least one stage");
    QKDPP_REQUIRE(queue_capacity >= 1, "queue capacity must be positive");
    capacity_ = queue_capacity;
    stats_.resize(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      stats_[s].name = stages_[s].name;
    }
    workers_.reserve(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      workers_.emplace_back([this, s] { stage_loop(s); });
    }
  }

  ~StreamPipeline() {
    // Abandon anything still queued; join workers.
    {
      std::scoped_lock lock(mutex_);
      done_ = true;
      failed_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  /// Feed one item; blocks while the first queue is full (backpressure).
  void push(Item item) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] {
      return failed_ || queues_[0].size() < capacity_;
    });
    if (failed_) rethrow_failure_locked();
    queues_[0].push_back(std::move(item));
    cv_.notify_all();
  }

  /// Signal end-of-stream and wait for in-flight items to drain. Rethrows
  /// the first stage exception, if any.
  void finish() {
    {
      std::scoped_lock lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    std::scoped_lock lock(mutex_);
    if (failed_) rethrow_failure_locked();
  }

  /// Completed items, in order, after finish().
  std::vector<Item>& results() { return results_; }

  std::vector<StageStats> stats() const {
    std::scoped_lock lock(mutex_);
    return stats_;
  }

 private:
  void rethrow_failure_locked() {
    if (failure_) std::rethrow_exception(failure_);
    throw_error(ErrorCode::kChannelClosed, "pipeline aborted");
  }

  void stage_loop(std::size_t s) {
    for (;;) {
      Item item;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this, s] {
          return failed_ || !queues_[s].empty() || upstream_finished(s);
        });
        if (failed_) return;
        if (queues_[s].empty()) {
          // Upstream has finished and nothing is queued: stage complete.
          stage_done_[s] = true;
          cv_.notify_all();
          return;
        }
        item = std::move(queues_[s].front());
        queues_[s].pop_front();
        cv_.notify_all();  // release producer backpressure
      }

      Stopwatch stopwatch;
      double charged = 0.0;
      try {
        charged = stages_[s].work(item);
      } catch (...) {
        std::scoped_lock lock(mutex_);
        failed_ = true;
        if (!failure_) failure_ = std::current_exception();
        cv_.notify_all();
        return;
      }
      const double wall = stopwatch.seconds();

      std::unique_lock lock(mutex_);
      stats_[s].items += 1;
      stats_[s].busy_seconds += wall;
      stats_[s].charged_seconds += charged;
      if (s + 1 < stages_.size()) {
        cv_.wait(lock, [this, s] {
          return failed_ || queues_[s + 1].size() < capacity_;
        });
        if (failed_) return;
        queues_[s + 1].push_back(std::move(item));
      } else {
        results_.push_back(std::move(item));
      }
      cv_.notify_all();
    }
  }

  bool upstream_finished(std::size_t s) const {
    if (s == 0) return done_;
    return stage_done_[s - 1];
  }

  std::vector<Stage> stages_;
  std::size_t capacity_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::deque<Item>> queues_;
  std::vector<bool> stage_done_ = std::vector<bool>(stages_.size(), false);
  std::vector<Item> results_;
  std::vector<StageStats> stats_;
  bool done_ = false;
  bool failed_ = false;
  std::exception_ptr failure_;

  std::vector<std::thread> workers_;
};

}  // namespace qkdpp::hetero
