#include "hetero/device.hpp"

#include <algorithm>

namespace qkdpp::hetero {

const char* to_string(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kCpuScalar: return "cpu-scalar";
    case DeviceKind::kCpuParallel: return "cpu-parallel";
    case DeviceKind::kGpuSim: return "gpu-sim";
    case DeviceKind::kFpgaSim: return "fpga-sim";
  }
  return "unknown";
}

double Device::model_seconds(const WorkEstimate& estimate) const noexcept {
  const double compute_s = estimate.ops / (props_.compute_gops * 1e9);
  const double memory_s =
      estimate.bytes_touched / (props_.mem_bandwidth_gbps * 1e9);
  double t = props_.launch_latency_s + std::max(compute_s, memory_s);
  if (props_.transfer_gbps > 0 && estimate.bytes_transferred > 0) {
    t += 2.0 * props_.transfer_latency_s +
         estimate.bytes_transferred / (props_.transfer_gbps * 1e9);
  }
  return t;
}

double Device::execute(const std::function<WorkEstimate()>& body) {
  const bool modeled =
      props_.kind == DeviceKind::kGpuSim || props_.kind == DeviceKind::kFpgaSim;
  Stopwatch stopwatch;
  const WorkEstimate estimate = body();
  const double charged =
      modeled ? model_seconds(estimate) : stopwatch.seconds();
  {
    MutexLock lock(mutex_);
    busy_s_ += charged;
    ++launches_;
  }
  return charged;
}

double Device::busy_seconds() const {
  MutexLock lock(mutex_);
  return busy_s_;
}

std::uint64_t Device::kernels_launched() const {
  MutexLock lock(mutex_);
  return launches_;
}

DeviceProps cpu_scalar_props() {
  DeviceProps props;
  props.name = "cpu-scalar";
  props.kind = DeviceKind::kCpuScalar;
  props.compute_gops = 3.0;
  props.mem_bandwidth_gbps = 20.0;
  return props;
}

DeviceProps cpu_parallel_props(std::size_t threads) {
  DeviceProps props;
  props.name = "cpu-parallel";
  props.kind = DeviceKind::kCpuParallel;
  props.compute_gops = 3.0 * static_cast<double>(std::max<std::size_t>(1, threads));
  props.mem_bandwidth_gbps = 35.0;
  return props;
}

DeviceProps gpu_sim_props() {
  DeviceProps props;
  props.name = "gpu-sim";
  props.kind = DeviceKind::kGpuSim;
  // Mid-range discrete accelerator: high arithmetic and memory throughput,
  // but every batch pays launch overhead and a PCIe round trip.
  props.compute_gops = 4000.0;
  props.mem_bandwidth_gbps = 450.0;
  props.transfer_gbps = 12.0;
  props.transfer_latency_s = 10e-6;
  props.launch_latency_s = 8e-6;
  return props;
}

DeviceProps fpga_sim_props() {
  DeviceProps props;
  props.name = "fpga-sim";
  props.kind = DeviceKind::kFpgaSim;
  // Deep-pipelined streaming core: moderate clock-limited throughput,
  // negligible launch cost, DMA-attached. Flat behaviour vs iteration count
  // comes from the kernels charging worst-case ops on this device kind.
  props.compute_gops = 150.0;
  props.mem_bandwidth_gbps = 40.0;
  props.transfer_gbps = 10.0;
  props.transfer_latency_s = 4e-6;
  props.launch_latency_s = 1e-6;
  return props;
}

}  // namespace qkdpp::hetero
