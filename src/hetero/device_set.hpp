// Shared device roster for multi-link deployments.
//
// One physical machine serves many QKD links: the links' engines must
// contend for the same Device objects (accounting, pools) instead of each
// assuming exclusive ownership. DeviceSet owns the pinned Device objects
// plus the host thread pool backing their parallel kernels, and keeps the
// arbitration ledger: every engine that places its stages on the set
// commits the per-device seconds/item its placement adds, and later
// engines price their placement against the committed load (see the
// mapper's base_load overloads). Construction-time commits are expected to
// happen sequentially (the orchestrator builds engines one by one);
// Device::execute itself is thread-safe, so the runtime side is free to
// run all links concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/threadpool.hpp"
#include "hetero/device.hpp"

namespace qkdpp::hetero {

class DeviceSet {
 public:
  /// Empty `props` selects the standard four-kind roster (cpu-scalar,
  /// cpu-parallel, gpu-sim, fpga-sim). `threads == 0` means hardware
  /// concurrency for the pool backing non-scalar kernels.
  explicit DeviceSet(std::vector<DeviceProps> props = {},
                     std::size_t threads = 0);

  DeviceSet(const DeviceSet&) = delete;
  DeviceSet& operator=(const DeviceSet&) = delete;

  std::size_t size() const noexcept { return devices_.size(); }
  Device& device(std::size_t i) { return devices_[i]; }
  const Device& device(std::size_t i) const { return devices_[i]; }

  /// Add `seconds_per_item[d]` to each device's committed steady-state
  /// load. Throws Error{kConfig} on length mismatch.
  void commit_loads(const std::vector<double>& seconds_per_item);

  /// Retract a previously committed placement (the replan path: an engine
  /// un-commits its old placement before committing the new one). Clamps
  /// at zero so float drift never leaves a phantom negative load. Throws
  /// Error{kConfig} on length mismatch.
  void uncommit_loads(const std::vector<double>& seconds_per_item);

  /// Per-device seconds/item committed by every placement so far.
  std::vector<double> committed_loads() const;

  /// Hot-remove / re-add device `i`. Bumps roster_version() so engines and
  /// the orchestrator can cheaply detect that placements are stale.
  void set_online(std::size_t i, bool online);

  /// Monotonic counter incremented by every set_online() transition.
  std::uint64_t roster_version() const noexcept {
    return roster_version_.load(std::memory_order_acquire);
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
  std::deque<Device> devices_;  // Device is pinned (owns a mutex)
  std::atomic<std::uint64_t> roster_version_{0};
  mutable Mutex mutex_{LockRank::kDeviceSet, "device_set.ledger"};
  std::vector<double> committed_ QKD_GUARDED_BY(mutex_);
};

}  // namespace qkdpp::hetero
