#include "hetero/device_set.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace qkdpp::hetero {

DeviceSet::DeviceSet(std::vector<DeviceProps> props, std::size_t threads) {
  const std::size_t pool_threads =
      threads ? threads
              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (props.empty()) {
    props = {cpu_scalar_props(), cpu_parallel_props(pool_threads),
             gpu_sim_props(), fpga_sim_props()};
  }
  // CpuScalar stays single-threaded by definition; everything else
  // (including the sims, which execute host-side) shares the pool.
  const bool needs_pool =
      std::any_of(props.begin(), props.end(), [](const DeviceProps& p) {
        return p.kind != DeviceKind::kCpuScalar;
      });
  if (needs_pool) {
    pool_ = std::make_unique<ThreadPool>(pool_threads);
  }
  for (auto& p : props) {
    ThreadPool* pool =
        p.kind == DeviceKind::kCpuScalar ? nullptr : pool_.get();
    devices_.emplace_back(std::move(p), pool);
  }
  committed_.assign(devices_.size(), 0.0);
}

void DeviceSet::commit_loads(const std::vector<double>& seconds_per_item) {
  MutexLock lock(mutex_);
  if (seconds_per_item.size() != committed_.size()) {
    throw_error(ErrorCode::kConfig, "committed load length mismatch");
  }
  for (std::size_t d = 0; d < committed_.size(); ++d) {
    committed_[d] += seconds_per_item[d];
  }
}

void DeviceSet::uncommit_loads(const std::vector<double>& seconds_per_item) {
  MutexLock lock(mutex_);
  if (seconds_per_item.size() != committed_.size()) {
    throw_error(ErrorCode::kConfig, "committed load length mismatch");
  }
  for (std::size_t d = 0; d < committed_.size(); ++d) {
    committed_[d] = std::max(0.0, committed_[d] - seconds_per_item[d]);
  }
}

std::vector<double> DeviceSet::committed_loads() const {
  MutexLock lock(mutex_);
  return committed_;
}

void DeviceSet::set_online(std::size_t i, bool online) {
  if (i >= devices_.size()) {
    throw_error(ErrorCode::kConfig, "device index outside roster");
  }
  devices_[i].set_online(online);
  roster_version_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace qkdpp::hetero
