// Timed stage kernels: the post-processing hot loops wrapped with device
// cost reporting. Every kernel executes the real computation (host-side,
// bit-exact regardless of device) and reports a WorkEstimate from which
// simulated devices derive their modeled time:
//
//   ldpc decode   ops = iterations * edges * kOpsPerEdge  (FpgaSim charges
//                 worst-case max_iterations - hardware runs fixed depth)
//   syndrome      ops = edges
//   toeplitz      ops = 3 * N log2 N * kOpsPerButterfly (NTT) with
//                 N = next pow2 of n + r - 1
//   poly tag      ops = (bytes/16) * kOpsPerGfMul
//
// Batched entry points amortize one launch + one transfer across a batch -
// the effect experiment F3 quantifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "common/gf2.hpp"
#include "hetero/device.hpp"
#include "privacy/toeplitz.hpp"
#include "reconcile/ldpc_decoder.hpp"

namespace qkdpp::hetero {

/// Model constants (documented knobs, not magic).
constexpr double kOpsPerEdge = 12.0;        ///< BP var+check update per edge
constexpr double kOpsPerButterfly = 10.0;   ///< NTT butterfly incl. mulmod
constexpr double kOpsPerGfMul = 220.0;      ///< software GF(2^128) multiply
constexpr double kBytesPerEdge = 10.0;      ///< BP message traffic per edge

/// One decoding job of a batch.
struct DecodeJob {
  const BitVec* syndrome = nullptr;
  const std::vector<float>* llr = nullptr;
};

/// Decode a batch of frames of the same code on `device`. Returns seconds
/// charged; per-frame results land in `results` (resized).
double timed_ldpc_decode(Device& device, const reconcile::LdpcCode& code,
                         std::span<const DecodeJob> jobs,
                         const reconcile::DecoderConfig& config,
                         std::vector<reconcile::DecodeResult>& results);

/// Syndrome computation for a batch of words.
double timed_syndrome(Device& device, const reconcile::LdpcCode& code,
                      std::span<const BitVec> words,
                      std::vector<BitVec>& syndromes);

/// Toeplitz privacy amplification (NTT path on accelerators, dispatching
/// on size for CPU).
double timed_toeplitz(Device& device, const BitVec& input, const BitVec& seed,
                      std::size_t out_len, BitVec& out);

/// GF(2^128) polynomial tag over a byte message (verification / WC auth).
double timed_poly_tag(Device& device, std::span<const std::uint8_t> message,
                      std::uint64_t seed, U128& tag);

}  // namespace qkdpp::hetero
