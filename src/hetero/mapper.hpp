// Stage -> device mapping optimizer.
//
// Given the per-item cost of running each stage on each device, choose the
// assignment that maximizes steady-state pipeline throughput. Stages mapped
// to the same device share it: the device's load is the sum of its stages'
// per-item costs, and pipeline throughput is 1 / max_device_load. The
// search is exhaustive (|devices|^|stages| is tiny for real pipelines) so
// the result is provably optimal under the model - the property the mapper
// tests pin down and the F8 ablation compares against naive placements.
//
// Shared-device arbitration: when several links' pipelines contend for one
// physical device set, each placement is optimized against the load the
// earlier links already committed to each device (`base_load` overloads).
// A device that is cheap in isolation but already saturated by another
// link's stages stops being the bottleneck-optimal choice - the
// WorkEstimate-weighted arbitration the orchestrator relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qkdpp::hetero {

struct MappingProblem {
  std::vector<std::string> stage_names;
  std::vector<std::string> device_names;
  /// seconds_per_item[stage][device]; use kInfeasible for "cannot run here".
  std::vector<std::vector<double>> seconds_per_item;
};

constexpr double kInfeasible = 1e30;

struct MappingResult {
  std::vector<std::uint32_t> device_of_stage;
  double throughput_items_per_s = 0.0;  ///< 1 / bottleneck device load
  double bottleneck_load_s = 0.0;
  std::uint32_t bottleneck_device = 0;
};

/// Exhaustive optimal mapping. Throws Error{kConfig} on shape mismatch or if
/// some stage has no feasible device.
MappingResult optimize_mapping(const MappingProblem& problem);

/// Exhaustive optimal mapping against devices already carrying
/// `base_load[d]` seconds/item of other pipelines' work. The reported
/// bottleneck/throughput include the base load (steady-state view of the
/// shared system).
MappingResult optimize_mapping(const MappingProblem& problem,
                               const std::vector<double>& base_load);

/// Baseline: everything on one device (for ablation benches).
MappingResult fixed_mapping(const MappingProblem& problem,
                            std::uint32_t device);

/// Baseline: each stage on its individually fastest device, ignoring
/// contention (the greedy trap the optimizer avoids).
MappingResult greedy_mapping(const MappingProblem& problem);

/// Evaluate an arbitrary assignment under the sharing model.
MappingResult evaluate_mapping(const MappingProblem& problem,
                               const std::vector<std::uint32_t>& assignment);

/// Evaluate an assignment on devices already carrying `base_load[d]`
/// seconds/item of external work.
MappingResult evaluate_mapping(const MappingProblem& problem,
                               const std::vector<std::uint32_t>& assignment,
                               const std::vector<double>& base_load);

}  // namespace qkdpp::hetero
