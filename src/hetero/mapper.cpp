#include "hetero/mapper.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qkdpp::hetero {

namespace {

void check_problem(const MappingProblem& problem) {
  const std::size_t stages = problem.stage_names.size();
  const std::size_t devices = problem.device_names.size();
  if (stages == 0 || devices == 0) {
    throw_error(ErrorCode::kConfig, "empty mapping problem");
  }
  if (problem.seconds_per_item.size() != stages) {
    throw_error(ErrorCode::kConfig, "cost matrix row count mismatch");
  }
  for (const auto& row : problem.seconds_per_item) {
    if (row.size() != devices) {
      throw_error(ErrorCode::kConfig, "cost matrix column count mismatch");
    }
    if (std::all_of(row.begin(), row.end(),
                    [](double c) { return c >= kInfeasible; })) {
      throw_error(ErrorCode::kConfig, "stage has no feasible device");
    }
  }
}

void check_base_load(const MappingProblem& problem,
                     const std::vector<double>& base_load) {
  if (base_load.size() != problem.device_names.size()) {
    throw_error(ErrorCode::kConfig, "base load length mismatch");
  }
  for (const double load : base_load) {
    if (load < 0.0) {
      throw_error(ErrorCode::kConfig, "base load must be non-negative");
    }
  }
}

}  // namespace

MappingResult evaluate_mapping(const MappingProblem& problem,
                               const std::vector<std::uint32_t>& assignment,
                               const std::vector<double>& base_load) {
  check_problem(problem);
  check_base_load(problem, base_load);
  if (assignment.size() != problem.stage_names.size()) {
    throw_error(ErrorCode::kConfig, "assignment length mismatch");
  }
  std::vector<double> load = base_load;
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    const std::uint32_t d = assignment[s];
    if (d >= load.size()) {
      throw_error(ErrorCode::kConfig, "assignment device out of range");
    }
    load[d] += problem.seconds_per_item[s][d];
  }
  MappingResult result;
  result.device_of_stage = assignment;
  const auto it = std::max_element(load.begin(), load.end());
  result.bottleneck_load_s = *it;
  result.bottleneck_device =
      static_cast<std::uint32_t>(std::distance(load.begin(), it));
  result.throughput_items_per_s =
      result.bottleneck_load_s > 0 ? 1.0 / result.bottleneck_load_s : 0.0;
  return result;
}

MappingResult evaluate_mapping(const MappingProblem& problem,
                               const std::vector<std::uint32_t>& assignment) {
  return evaluate_mapping(problem, assignment,
                          std::vector<double>(problem.device_names.size(), 0.0));
}

MappingResult optimize_mapping(const MappingProblem& problem,
                               const std::vector<double>& base_load) {
  check_problem(problem);
  check_base_load(problem, base_load);
  const std::size_t stages = problem.stage_names.size();
  const std::size_t devices = problem.device_names.size();

  std::vector<std::uint32_t> assignment(stages, 0);
  std::vector<std::uint32_t> best;
  double best_load = kInfeasible;

  // Odometer enumeration of devices^stages.
  for (;;) {
    double load_ok = true;
    std::vector<double> load = base_load;
    for (std::size_t s = 0; s < stages && load_ok; ++s) {
      const double cost = problem.seconds_per_item[s][assignment[s]];
      if (cost >= kInfeasible) load_ok = false;
      load[assignment[s]] += cost;
    }
    if (load_ok) {
      const double bottleneck = *std::max_element(load.begin(), load.end());
      if (bottleneck < best_load) {
        best_load = bottleneck;
        best = assignment;
      }
    }
    // Advance odometer.
    std::size_t s = 0;
    while (s < stages) {
      if (++assignment[s] < devices) break;
      assignment[s] = 0;
      ++s;
    }
    if (s == stages) break;
  }
  return evaluate_mapping(problem, best, base_load);
}

MappingResult optimize_mapping(const MappingProblem& problem) {
  return optimize_mapping(problem,
                          std::vector<double>(problem.device_names.size(), 0.0));
}

MappingResult fixed_mapping(const MappingProblem& problem,
                            std::uint32_t device) {
  check_problem(problem);
  if (device >= problem.device_names.size()) {
    throw_error(ErrorCode::kConfig, "fixed device out of range");
  }
  return evaluate_mapping(
      problem,
      std::vector<std::uint32_t>(problem.stage_names.size(), device));
}

MappingResult greedy_mapping(const MappingProblem& problem) {
  check_problem(problem);
  std::vector<std::uint32_t> assignment;
  assignment.reserve(problem.stage_names.size());
  for (const auto& row : problem.seconds_per_item) {
    const auto it = std::min_element(row.begin(), row.end());
    assignment.push_back(
        static_cast<std::uint32_t>(std::distance(row.begin(), it)));
  }
  return evaluate_mapping(problem, assignment);
}

}  // namespace qkdpp::hetero
