#include "hetero/kernels.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "privacy/verification.hpp"

namespace qkdpp::hetero {

namespace {

bool is_simulated(const Device& device) noexcept {
  return device.kind() == DeviceKind::kGpuSim ||
         device.kind() == DeviceKind::kFpgaSim;
}

}  // namespace

double timed_ldpc_decode(Device& device, const reconcile::LdpcCode& code,
                         std::span<const DecodeJob> jobs,
                         const reconcile::DecoderConfig& config,
                         std::vector<reconcile::DecodeResult>& results) {
  QKDPP_REQUIRE(!jobs.empty(), "empty decode batch");
  results.clear();
  results.reserve(jobs.size());

  reconcile::DecoderConfig effective = config;
  effective.pool = device.pool();
  if (device.kind() == DeviceKind::kGpuSim ||
      device.kind() == DeviceKind::kFpgaSim) {
    // Accelerators run the data-parallel flooding schedule.
    effective.schedule = reconcile::BpSchedule::kFlooding;
  }

  return device.execute([&]() -> WorkEstimate {
    double total_iterations = 0;
    for (const DecodeJob& job : jobs) {
      results.push_back(reconcile::decode_syndrome(code, *job.syndrome,
                                                   *job.llr, effective));
      total_iterations += results.back().iterations;
    }
    if (device.kind() == DeviceKind::kFpgaSim) {
      // Fixed-depth hardware pipeline: charged at worst case always.
      total_iterations =
          static_cast<double>(effective.max_iterations) * jobs.size();
    }
    WorkEstimate estimate;
    const auto edges = static_cast<double>(code.edges());
    estimate.ops = total_iterations * edges * kOpsPerEdge;
    estimate.bytes_touched = total_iterations * edges * kBytesPerEdge;
    // Transfer: LLRs in (4 bytes each), hard decisions out (1 bit each).
    estimate.bytes_transferred =
        static_cast<double>(jobs.size()) *
        (static_cast<double>(code.n()) * 4.0 + code.m() / 8.0 + code.n() / 8.0);
    return estimate;
  });
}

double timed_syndrome(Device& device, const reconcile::LdpcCode& code,
                      std::span<const BitVec> words,
                      std::vector<BitVec>& syndromes) {
  QKDPP_REQUIRE(!words.empty(), "empty syndrome batch");
  syndromes.clear();
  syndromes.reserve(words.size());
  return device.execute([&]() -> WorkEstimate {
    for (const BitVec& word : words) syndromes.push_back(code.syndrome(word));
    WorkEstimate estimate;
    const auto edges = static_cast<double>(code.edges());
    estimate.ops = edges * static_cast<double>(words.size());
    estimate.bytes_touched = estimate.ops / 2.0;  // bit gathers
    estimate.bytes_transferred =
        static_cast<double>(words.size()) *
        static_cast<double>(code.n() + code.m()) / 8.0;
    return estimate;
  });
}

double timed_toeplitz(Device& device, const BitVec& input, const BitVec& seed,
                      std::size_t out_len, BitVec& out) {
  return device.execute([&]() -> WorkEstimate {
    // Accelerators always take the NTT path (that is the kernel they
    // implement); CPU picks the faster of the two for its size.
    if (is_simulated(device)) {
      out = privacy::toeplitz_hash_ntt(input, seed, out_len);
    } else {
      out = privacy::toeplitz_hash(input, seed, out_len);
    }
    WorkEstimate estimate;
    const double conv_len =
        static_cast<double>(input.size() + seed.size() - 1);
    const double n_fft = std::pow(2.0, std::ceil(std::log2(conv_len)));
    estimate.ops = 3.0 * n_fft * std::log2(n_fft) * kOpsPerButterfly;
    estimate.bytes_touched = 3.0 * n_fft * 4.0 * std::log2(n_fft);
    estimate.bytes_transferred =
        (static_cast<double>(input.size()) + static_cast<double>(seed.size()) +
         static_cast<double>(out_len)) /
        8.0;
    return estimate;
  });
}

double timed_poly_tag(Device& device, std::span<const std::uint8_t> message,
                      std::uint64_t seed, U128& tag) {
  return device.execute([&]() -> WorkEstimate {
    BitVec bits = BitVec::from_bytes(message, message.size() * 8);
    tag = privacy::verification_tag(bits, seed);
    WorkEstimate estimate;
    const double blocks = static_cast<double>(message.size()) / 16.0 + 1.0;
    estimate.ops = blocks * kOpsPerGfMul;
    estimate.bytes_touched = static_cast<double>(message.size());
    estimate.bytes_transferred = static_cast<double>(message.size()) + 16.0;
    return estimate;
  });
}

}  // namespace qkdpp::hetero
