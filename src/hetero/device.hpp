// Device abstraction for the heterogeneous post-processing runtime.
//
// Four device classes model the hardware mix the paper's perspective spans:
//
//   CpuScalar   - one host core; times are real wall-clock.
//   CpuParallel - host thread pool; times are real wall-clock.
//   GpuSim      - discrete-accelerator model: the SAME kernel arithmetic is
//                 executed on host threads for bit-exact results, while the
//                 clock charged is an analytic model
//                    t = launch + 2*transfer_latency + bytes_pcie/bw_pcie
//                        + max(ops/throughput, bytes_touched/mem_bw)
//   FpgaSim     - deep-pipelined streaming accelerator: flat per-bit rate
//                 plus pipeline fill latency, insensitive to iteration
//                 counts (the FPGA runs worst-case iterations in hardware).
//
// This is the documented substitution for CUDA/FPGA hardware that the
// evaluation machine does not have (DESIGN.md section 1): scheduling
// decisions, batching effects and transfer accounting are driven by the
// same quantities that govern the real devices.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.hpp"
#include "common/stats.hpp"
#include "common/threadpool.hpp"

namespace qkdpp::hetero {

enum class DeviceKind : std::uint8_t {
  kCpuScalar = 0,
  kCpuParallel = 1,
  kGpuSim = 2,
  kFpgaSim = 3,
};

const char* to_string(DeviceKind kind) noexcept;

struct DeviceProps {
  std::string name;
  DeviceKind kind = DeviceKind::kCpuScalar;
  double compute_gops = 1.0;        ///< useful kernel ops/s, in Gops
  double mem_bandwidth_gbps = 10.0; ///< device memory bytes/s, in GB/s
  double transfer_gbps = 0.0;       ///< host link bytes/s (0 = unified)
  double transfer_latency_s = 0.0;  ///< per-direction transfer latency
  double launch_latency_s = 0.0;    ///< per-kernel-launch overhead
};

/// What a kernel execution cost, as reported by the kernel itself after
/// running (some costs - e.g. BP iteration counts - are only known then).
struct WorkEstimate {
  double ops = 0.0;               ///< arithmetic work actually performed
  double bytes_touched = 0.0;     ///< device-memory traffic
  double bytes_transferred = 0.0; ///< host <-> device traffic
};

class Device {
 public:
  explicit Device(DeviceProps props, ThreadPool* pool = nullptr)
      : props_(std::move(props)), pool_(pool) {}

  const DeviceProps& props() const noexcept { return props_; }
  DeviceKind kind() const noexcept { return props_.kind; }
  const std::string& name() const noexcept { return props_.name; }

  /// Pool for kernels that parallelize on the host (CpuParallel, and the
  /// sims - which execute host-side for correctness). Null for CpuScalar.
  ThreadPool* pool() const noexcept { return pool_; }

  /// Hot-remove / re-add: an offline device stays in the roster (indices
  /// and accounting survive) but must not receive new work - the mapper
  /// prices it infeasible and the engine aborts blocks whose placement
  /// still targets it. In-flight kernels are not interrupted.
  bool online() const noexcept {
    return online_.load(std::memory_order_acquire);
  }
  void set_online(bool online) noexcept {
    online_.store(online, std::memory_order_release);
  }

  /// Run `body` (which performs the real computation and reports its cost).
  /// Returns the seconds charged to this device: measured wall time for CPU
  /// kinds, modeled time for the simulated accelerators.
  double execute(const std::function<WorkEstimate()>& body);

  /// Total seconds charged so far (thread-safe).
  double busy_seconds() const;
  std::uint64_t kernels_launched() const;

  /// Pure model query: what would work costing `estimate` be charged?
  double model_seconds(const WorkEstimate& estimate) const noexcept;

 private:
  DeviceProps props_;
  ThreadPool* pool_;
  std::atomic<bool> online_{true};
  mutable Mutex mutex_{LockRank::kDevice, "device.accounting"};
  double busy_s_ QKD_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t launches_ QKD_GUARDED_BY(mutex_) = 0;
};

/// Standard device set used by benches and examples. The GPU/FPGA property
/// sheets approximate a mid-range discrete accelerator and a deep-pipelined
/// decoder core; see EXPERIMENTS.md for the calibration discussion.
DeviceProps cpu_scalar_props();
DeviceProps cpu_parallel_props(std::size_t threads);
DeviceProps gpu_sim_props();
DeviceProps fpga_sim_props();

}  // namespace qkdpp::hetero
