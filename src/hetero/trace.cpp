#include "hetero/trace.hpp"

#include <algorithm>

namespace qkdpp::hetero {

void ExecutionTrace::record(std::string stage, std::string device,
                            std::uint64_t item, double start_offset_s,
                            double charged_s) {
  TraceEvent event;
  event.stage = std::move(stage);
  event.device = std::move(device);
  event.item = item;
  event.start_s = start_offset_s;
  event.end_s = epoch_.seconds();
  event.charged_s = charged_s;
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t ExecutionTrace::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> ExecutionTrace::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void ExecutionTrace::write_csv(std::ostream& out) const {
  out << "stage,device,item,start_s,end_s,charged_s\n";
  std::scoped_lock lock(mutex_);
  for (const auto& event : events_) {
    out << event.stage << ',' << event.device << ',' << event.item << ','
        << event.start_s << ',' << event.end_s << ',' << event.charged_s
        << '\n';
  }
}

double ExecutionTrace::device_occupancy(const std::string& device) const {
  std::scoped_lock lock(mutex_);
  if (events_.empty()) return 0.0;
  double busy = 0.0;
  double span_end = 0.0;
  double span_start = events_.front().start_s;
  for (const auto& event : events_) {
    span_start = std::min(span_start, event.start_s);
    span_end = std::max(span_end, event.end_s);
    if (event.device == device) busy += event.end_s - event.start_s;
  }
  const double span = span_end - span_start;
  return span > 0 ? std::min(1.0, busy / span) : 0.0;
}

}  // namespace qkdpp::hetero
