#include "hetero/trace.hpp"

#include <algorithm>

namespace qkdpp::hetero {

void ExecutionTrace::record(std::string stage, std::string device,
                            std::uint64_t item, double start_offset_s,
                            double charged_s) {
  TraceEvent event;
  event.stage = std::move(stage);
  event.device = std::move(device);
  event.item = item;
  event.start_s = start_offset_s;
  event.end_s = epoch_.seconds();
  event.charged_s = charged_s;
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t ExecutionTrace::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> ExecutionTrace::events() const {
  MutexLock lock(mutex_);
  return events_;
}

void ExecutionTrace::write_csv(std::ostream& out) const {
  out << "stage,device,item,start_s,end_s,charged_s\n";
  MutexLock lock(mutex_);
  for (const auto& event : events_) {
    out << event.stage << ',' << event.device << ',' << event.item << ','
        << event.start_s << ',' << event.end_s << ',' << event.charged_s
        << '\n';
  }
}

double ExecutionTrace::device_occupancy(const std::string& device) const {
  MutexLock lock(mutex_);
  if (events_.empty()) return 0.0;
  double busy = 0.0;
  double span_end = 0.0;
  double span_start = events_.front().start_s;
  for (const auto& event : events_) {
    span_start = std::min(span_start, event.start_s);
    span_end = std::max(span_end, event.end_s);
    if (event.device == device) busy += event.end_s - event.start_s;
  }
  const double span = span_end - span_start;
  return span > 0 ? std::min(1.0, busy / span) : 0.0;
}

StageCostModel::StageCostModel(std::size_t stages, double alpha)
    : stage_count_(stages),
      alpha_(std::clamp(alpha, 1e-3, 1.0)),
      ratio_(stages, 1.0),
      observed_(stages, 0.0),
      samples_(stages, 0) {}

void StageCostModel::observe(std::size_t stage, double predicted_s,
                             double observed_s) {
  if (stage >= stage_count_ || predicted_s <= 0.0 || observed_s < 0.0) return;
  const double sample_ratio = observed_s / predicted_s;
  MutexLock lock(mutex_);
  if (samples_[stage] == 0) {
    ratio_[stage] = sample_ratio;
    observed_[stage] = observed_s;
  } else {
    ratio_[stage] += alpha_ * (sample_ratio - ratio_[stage]);
    observed_[stage] += alpha_ * (observed_s - observed_[stage]);
  }
  ++samples_[stage];
}

double StageCostModel::correction(std::size_t stage) const {
  if (stage >= stage_count_) return 1.0;
  MutexLock lock(mutex_);
  return samples_[stage] ? ratio_[stage] : 1.0;
}

double StageCostModel::observed_seconds(std::size_t stage) const {
  if (stage >= stage_count_) return 0.0;
  MutexLock lock(mutex_);
  return observed_[stage];
}

std::uint64_t StageCostModel::samples(std::size_t stage) const {
  if (stage >= stage_count_) return 0;
  MutexLock lock(mutex_);
  return samples_[stage];
}

}  // namespace qkdpp::hetero
