#include "auth/key_pool.hpp"

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace qkdpp::auth {

void KeyPool::replenish(const BitVec& bits) {
  MutexLock lock(mutex_);
  // Compact lazily: drop consumed prefix when it dominates storage.
  if (head_ > 0 && head_ >= bits_.size() / 2) {
    bits_ = bits_.subvec(head_, bits_.size() - head_);
    head_ = 0;
  }
  bits_.append(bits);
  replenished_ += bits.size();
}

BitVec KeyPool::draw(std::size_t nbits) {
  MutexLock lock(mutex_);
  if (bits_.size() - head_ < nbits) {
    throw_error(ErrorCode::kKeyExhausted,
                "key pool has " + std::to_string(bits_.size() - head_) +
                    " bits, need " + std::to_string(nbits));
  }
  BitVec out = bits_.subvec(head_, nbits);
  head_ += nbits;
  consumed_ += nbits;
  return out;
}

std::size_t KeyPool::available() const {
  MutexLock lock(mutex_);
  return bits_.size() - head_;
}

std::uint64_t KeyPool::total_consumed() const {
  MutexLock lock(mutex_);
  return consumed_;
}

std::uint64_t KeyPool::total_replenished() const {
  MutexLock lock(mutex_);
  return replenished_;
}

}  // namespace qkdpp::auth
