// Pre-shared symmetric key pool backing Wegman-Carter authentication.
//
// QKD bootstraps authentication from a small pre-shared secret and
// replenishes it from produced key (see Section 1.1.2-style descriptions of
// the authenticated classical channel). The pool is a FIFO bit store with an
// exact consumption ledger so the pipeline can account how much of the
// produced key is plowed back into authentication.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "common/mutex.hpp"

namespace qkdpp::auth {

class KeyPool {
 public:
  KeyPool() = default;
  explicit KeyPool(BitVec initial) : bits_(std::move(initial)) {}

  /// Append fresh key material (e.g. a slice of distilled key).
  void replenish(const BitVec& bits);

  /// Remove and return exactly `nbits`; throws Error{kKeyExhausted} if the
  /// pool is short (callers must treat that as a session-fatal condition).
  BitVec draw(std::size_t nbits);

  std::size_t available() const;
  std::uint64_t total_consumed() const;
  std::uint64_t total_replenished() const;

 private:
  mutable Mutex mutex_{LockRank::kAuthPool, "auth.pool"};
  BitVec bits_ QKD_GUARDED_BY(mutex_);
  /// Bits consumed from the front of bits_.
  std::size_t head_ QKD_GUARDED_BY(mutex_) = 0;
  std::uint64_t consumed_ QKD_GUARDED_BY(mutex_) = 0;
  std::uint64_t replenished_ QKD_GUARDED_BY(mutex_) = 0;
};

}  // namespace qkdpp::auth
