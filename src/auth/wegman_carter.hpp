// Wegman-Carter information-theoretic message authentication.
//
// Tag = PolyHash_r(message) XOR otp, where PolyHash is Horner evaluation
// over GF(2^128) and (r, otp) are 256 fresh key-pool bits per tag. The
// polynomial hash family is eps-almost-XOR-universal with
// eps = ceil(len/16 + 1) / 2^128, so OTP encryption of the tag yields an
// unconditionally secure MAC with forgery probability eps per message -
// exactly the construction QKD deployments use for the classical channel.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitvec.hpp"
#include "common/gf2.hpp"
#include "auth/key_pool.hpp"

namespace qkdpp::auth {

/// 128-bit authentication tag.
struct Tag {
  U128 value;
  bool operator==(const Tag&) const noexcept = default;
};

/// Key material consumed per tag (r + otp).
constexpr std::size_t kTagKeyBits = 256;

/// Polynomial hash over GF(2^128): pad message to 16-byte blocks, prepend a
/// length block, Horner-evaluate at point r.
U128 poly_hash(U128 r, std::span<const std::uint8_t> message) noexcept;

/// One-time authenticator drawing (r, otp) from the pool.
class WegmanCarter {
 public:
  explicit WegmanCarter(KeyPool& pool) : pool_(pool) {}

  /// Tag a message, consuming kTagKeyBits from the pool.
  Tag sign(std::span<const std::uint8_t> message);

  /// Verify a received tag using the *same* pool position as the sender -
  /// both sides must consume tags in lockstep; consuming is what enforces
  /// one-time use. Returns false on mismatch (pool bits are consumed either
  /// way, as in a real deployment).
  bool verify(std::span<const std::uint8_t> message, Tag tag);

 private:
  U128 next_tag_value(std::span<const std::uint8_t> message);

  KeyPool& pool_;
};

}  // namespace qkdpp::auth
