#include "auth/wegman_carter.hpp"

#include "common/ct_equal.hpp"

namespace qkdpp::auth {

namespace {

U128 u128_from_bits(const BitVec& bits, std::size_t offset) {
  U128 v{0, 0};
  for (std::size_t i = 0; i < 64; ++i) {
    if (bits.get(offset + i)) v.lo |= std::uint64_t{1} << i;
    if (bits.get(offset + 64 + i)) v.hi |= std::uint64_t{1} << i;
  }
  return v;
}

U128 load_block(std::span<const std::uint8_t> message, std::size_t pos) {
  // Little-endian 16-byte block; final partial block zero-padded.
  U128 v{0, 0};
  const std::size_t n = std::min<std::size_t>(16, message.size() - pos);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t byte = message[pos + i];
    if (i < 8) {
      v.lo |= byte << (8 * i);
    } else {
      v.hi |= byte << (8 * (i - 8));
    }
  }
  return v;
}

}  // namespace

U128 poly_hash(U128 r, std::span<const std::uint8_t> message) noexcept {
  // Horner: h = ((L*r + m_0)*r + m_1)*r + ... ; the length block L makes
  // messages of different lengths hash through polynomials of different
  // leading coefficient, preserving universality across lengths.
  U128 h{0, static_cast<std::uint64_t>(message.size())};
  h = gf128_mul(h, r);
  for (std::size_t pos = 0; pos < message.size(); pos += 16) {
    h ^= load_block(message, pos);
    h = gf128_mul(h, r);
  }
  return h;
}

U128 WegmanCarter::next_tag_value(std::span<const std::uint8_t> message) {
  const BitVec key = pool_.draw(kTagKeyBits);
  const U128 r = u128_from_bits(key, 0);
  const U128 otp = u128_from_bits(key, 128);
  return poly_hash(r, message) ^ otp;
}

Tag WegmanCarter::sign(std::span<const std::uint8_t> message) {
  return Tag{next_tag_value(message)};
}

bool WegmanCarter::verify(std::span<const std::uint8_t> message, Tag tag) {
  // ct_equal, not ==: a short-circuiting compare leaks the length of a
  // matching forged prefix through timing.
  return ct_equal(next_tag_value(message), tag.value);
}

}  // namespace qkdpp::auth
