// KeyRelay: XOR one-time-pad key forwarding through trusted nodes.
//
// The classic trusted-node construction (BB84 networks since DARPA/SECOQC):
// to give non-adjacent nodes A and D a shared key over A-B-C-D, the first
// hop's distilled key IS the end-to-end key K (so delivered material is
// genuine QKD output, not locally generated randomness), and every further
// hop forwards K under a one-time pad made of its own distilled key:
//
//   hop A-B:  seg_0 = K            (B now holds K)
//   hop B-C:  B sends K ^ seg_1;   C recovers K = (K ^ seg_1) ^ seg_1
//   hop C-D:  C sends K ^ seg_2;   D recovers K
//
// Information-theoretic along the wire (each pad bit is used once), but K
// exists in the clear inside B and C - which is why the relay refuses
// routes whose interior nodes are not marked trusted.
//
// Accounting is exact, per hop. Each edge has a HopTap: segments are cut
// from the tap's residual buffer, which is refilled by whole distilled
// blocks drawn from the edge's KeyStore under the consumer name
// "relay@<link>". Block tails stay buffered (never discarded), and a
// multi-hop relay that fails on hop i gives hops 0..i-1 their segments
// back (front of the residual, preserving stream order). The invariant
// the tests and the bench pin down, for every edge e:
//
//   store.consumed_by("relay@" + link_name(e))
//       == consumed_bits(e) + buffered_bits(e)
//
// i.e. every bit the relay ever took from a store is either inside a
// delivered end-to-end key or still sitting in that edge's tap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/mutex.hpp"
#include "network/router.hpp"
#include "network/topology.hpp"

namespace qkdpp::network {

enum class RelayError : std::uint8_t {
  kOk = 0,
  kBadRoute,          ///< empty/inconsistent route or zero-bit request
  kUntrustedNode,     ///< route interior contains an untrusted node
  kInsufficientKey,   ///< some hop cannot supply the requested bits
};

const char* to_string(RelayError error) noexcept;

/// Exact bits consumed on one hop for one relay operation.
struct HopAccount {
  std::size_t edge = 0;
  std::uint64_t consumed_bits = 0;
};

struct RelayResult {
  RelayError error = RelayError::kOk;
  /// Edge that stopped a kInsufficientKey relay (Topology::npos otherwise).
  /// The delivery layer excludes it and re-routes.
  std::size_t failed_edge = Topology::npos;
  BitVec key;  ///< the end-to-end key (empty unless ok())
  std::vector<HopAccount> hops;

  bool ok() const noexcept { return error == RelayError::kOk; }
};

class KeyRelay {
 public:
  /// Taps are sized at construction: the topology must be fully built
  /// (every add_edge done) before the relay attaches to it.
  explicit KeyRelay(Topology& topology);

  /// Carry `bits` of end-to-end key along `route`. All-or-nothing: on any
  /// failure no tap loses material (partial takes are returned to their
  /// residuals) and the result names the hop that failed.
  RelayResult relay(const Route& route, std::uint64_t bits);

  /// Bits sitting in edge `e`'s tap: drawn from the store but not yet part
  /// of a delivered key. Counted as deliverable by the router.
  std::uint64_t buffered_bits(std::size_t edge) const;
  /// Bits from edge `e` consumed into delivered end-to-end keys.
  std::uint64_t consumed_bits(std::size_t edge) const;
  /// What edge `e` could contribute to a relay right now (tap + store).
  std::uint64_t deliverable_bits(std::size_t edge) const;
  /// Total end-to-end key bits delivered by ok() relays.
  std::uint64_t delivered_bits() const;

  /// Per-edge buffered bits, shaped for RouteQuery::extra_edge_bits.
  std::vector<std::uint64_t> buffered_bits_per_edge() const;

  /// Ledger name this relay uses against edge `e`'s KeyStore.
  const std::string& consumer_name(std::size_t edge) const {
    return taps_[edge].consumer;
  }

 private:
  struct HopTap {
    // One rank for every tap: relay() cuts segments hop by hop, releasing
    // each tap before the next, so two tap locks are never held together.
    // The rank sits ABOVE the KeyStore ranks because take() deliberately
    // holds the tap across store.get_key (the conservation split).
    mutable Mutex mutex{LockRank::kTap, "relay.tap"};
    /// Stream-ordered buffered key for this edge.
    BitVec residual QKD_GUARDED_BY(mutex);
    std::uint64_t consumed QKD_GUARDED_BY(mutex) = 0;
    std::string consumer;  ///< "relay@<link_name>"; set once at attach
  };

  /// Cut `bits` from the tap (refilling from the store as needed). Returns
  /// an empty BitVec when the hop cannot supply them; whatever was drawn
  /// from the store stays buffered in the residual.
  BitVec take(std::size_t edge, std::uint64_t bits);
  /// Return an unconsumed segment to the *front* of the residual.
  void give_back(std::size_t edge, const BitVec& segment);

  Topology& topology_;
  std::deque<HopTap> taps_;  ///< pinned: HopTap owns a mutex
  std::atomic<std::uint64_t> delivered_bits_{0};
};

}  // namespace qkdpp::network
