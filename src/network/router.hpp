// Router: QBER/throughput/depth-weighted path selection over a Topology.
//
// Edge cost is live, not static: a hop's weight grows with its windowed
// QBER (error correction leaks more, PA compresses harder - expensive
// bits) and with store depletion (a nearly-dry hop is about to stall the
// relay), on top of a constant per-hop term (every extra trusted node is
// another place the key exists in the clear). Edges are *infeasible* -
// not merely expensive - when administratively down, when the windowed
// QBER sits at/above the abort region (the link cannot distill), or when
// the link shows an unbroken abort streak (the scenario engine cut the
// fiber). Untrusted nodes never appear in the interior of a route.
//
// Selection is deterministic: Dijkstra with (cost, node index) ordering,
// so equal-cost topologies route identically across runs - the property
// the same-seed failover tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "network/topology.hpp"

namespace qkdpp::network {

struct RouterPolicy {
  /// Edge infeasible when windowed QBER >= this (the link is in or near
  /// its abort region; relaying through it would stall mid-stream).
  double qber_infeasible = 0.11;
  /// Cost per unit of windowed QBER (at 3% QBER and the default weight,
  /// the QBER term roughly equals one extra hop).
  double qber_weight = 30.0;
  /// Cost scale of the depletion term depth_scale/(depth_scale + bits).
  double depth_weight = 1.0;
  std::uint64_t depth_scale_bits = std::uint64_t{1} << 16;
  /// Edge considered down after this many consecutive aborted blocks
  /// (0 = never infer down from aborts).
  std::uint64_t down_after_aborts = 3;
};

/// One selected path: nodes[0]=src .. nodes.back()=dst, edges[i] connects
/// nodes[i] and nodes[i+1].
struct Route {
  std::vector<std::size_t> nodes;
  std::vector<std::size_t> edges;
  double cost = 0.0;

  std::size_t hops() const noexcept { return edges.size(); }
  friend bool operator==(const Route& a, const Route& b) {
    return a.nodes == b.nodes && a.edges == b.edges;
  }
};

/// Per-query extras the relay layer feeds into route selection.
struct RouteQuery {
  /// Edges to treat as infeasible (sized edge_count, or empty). The relay
  /// excludes a hop that just failed mid-stream and re-asks.
  std::vector<bool> exclude_edges;
  /// Bits buffered relay-side per edge (sized edge_count, or empty):
  /// counted into the edge's deliverable depth on top of the store.
  std::vector<std::uint64_t> extra_edge_bits;
  /// Require every edge on the route to have at least this many
  /// deliverable bits (store + extra) right now. 0 = no floor.
  std::uint64_t need_bits = 0;
};

class Router {
 public:
  explicit Router(const Topology& topology, RouterPolicy policy = {})
      : topology_(topology), policy_(policy) {}

  const RouterPolicy& policy() const noexcept { return policy_; }

  /// Cost of traversing an edge in `status` with `deliverable_bits` of
  /// material behind it. Exposed so tests can pin the weighting down.
  double edge_cost(const EdgeStatus& status,
                   std::uint64_t deliverable_bits) const;

  /// May the edge carry relay traffic at all right now?
  bool edge_feasible(const EdgeStatus& status,
                     std::uint64_t deliverable_bits,
                     std::uint64_t need_bits) const;

  /// Cheapest feasible route src -> dst, or nullopt when the (remaining)
  /// graph disconnects them. Interior nodes are always trusted.
  std::optional<Route> find_route(std::size_t src, std::size_t dst,
                                  const RouteQuery& query = {}) const;

 private:
  const Topology& topology_;
  RouterPolicy policy_;
};

}  // namespace qkdpp::network
