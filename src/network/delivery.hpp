// NetworkDelivery: end-to-end ETSI key delivery between non-adjacent SAEs.
//
// The bridge between the network layer and the ETSI facade is RelaySource,
// an api::KeySource whose draw() produces relayed end-to-end key instead
// of reading one link's store. Each draw:
//
//   1. asks the Router for the cheapest feasible route src -> dst, feeding
//      in the relay's per-edge buffered bits (tap residuals count as
//      deliverable depth) and requiring >= 1 deliverable bit per hop;
//   2. sizes the chunk at min(chunk_bits, route bottleneck) so one starved
//      hop cannot fail a draw the route could partially serve;
//   3. runs the XOR relay; on kInsufficientKey (a concurrent pair drained
//      the hop between routing and taking) it excludes the failed edge and
//      re-routes, up to max_reroutes_per_draw times - this mid-stream
//      failover is exactly what the outage bench exercises.
//
// One KeyRelay is shared by every pair NetworkDelivery registers: hop taps
// are per *edge*, so concurrent pairs crossing the same span draw from one
// ordered pad stream and the per-edge conservation law stays global.
//
// Registered pairs are ordinary KeyDeliveryService pairs: get_status /
// get_key / get_key_with_ids (and the JSON Dispatcher over them) behave
// identically for adjacent and relayed SAEs - a consumer cannot tell.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "api/key_delivery.hpp"
#include "common/mutex.hpp"
#include "network/relay.hpp"
#include "network/router.hpp"
#include "network/topology.hpp"

namespace qkdpp::network {

struct RelaySourceConfig {
  /// Preferred draw size in bits; actual draws shrink to the route
  /// bottleneck. Multiples of the service's key sizes keep residuals small.
  std::uint64_t chunk_bits = 4096;
  /// Edges a single draw may exclude-and-re-route around before giving up
  /// and letting the service report 503.
  std::uint32_t max_reroutes_per_draw = 4;
};

/// Running totals for one relayed pair (exact, not sampled).
struct RelaySourceStats {
  std::uint64_t draws = 0;          ///< successful draw() calls
  std::uint64_t relayed_bits = 0;   ///< e2e bits produced by this source
  std::uint64_t reroutes = 0;       ///< mid-draw failovers taken
  std::optional<Route> last_route;  ///< route of the last successful draw
};

class RelaySource final : public api::KeySource {
 public:
  /// Router and relay must outlive the source (NetworkDelivery owns both
  /// and hands the service shared_ptrs to sources it also keeps).
  RelaySource(const Router& router, KeyRelay& relay, std::size_t src_node,
              std::size_t dst_node, RelaySourceConfig config = {});

  std::uint64_t bits_available() const override;
  /// Routes have no fixed capacity: 0 = unbounded/unknown, which the ETSI
  /// status surfaces as "no max_key_count bound" exactly like an
  /// unbounded link store.
  std::uint64_t capacity_bits() const override { return 0; }
  std::optional<BitVec> draw(std::string_view consumer) override;
  void describe_exhaustion(std::vector<std::string>& details) const override;

  RelaySourceStats stats() const;
  std::size_t src_node() const noexcept { return src_; }
  std::size_t dst_node() const noexcept { return dst_; }

 private:
  const Router& router_;
  KeyRelay& relay_;
  std::size_t src_;
  std::size_t dst_;
  RelaySourceConfig config_;
  mutable Mutex mutex_{LockRank::kSourceStats, "relay_source.stats"};
  RelaySourceStats stats_ QKD_GUARDED_BY(mutex_);
};

class NetworkDelivery {
 public:
  /// Topology and service must outlive this object; the topology must be
  /// fully built (the shared KeyRelay sizes its taps now).
  NetworkDelivery(Topology& topology, api::KeyDeliveryService& service,
                  RouterPolicy policy = {});

  /// Register an SAE pair whose ends sit on (possibly non-adjacent) nodes.
  /// Throws Error{kConfig} on unknown node names or src == dst. The pair
  /// becomes a normal service pair backed by a RelaySource.
  void register_pair(api::SaePair pair, std::string_view src_node,
                     std::string_view dst_node, RelaySourceConfig config = {});

  /// The relayed pair's source, for stats; nullptr when the pair is
  /// unknown (or was registered directly with the service).
  std::shared_ptr<const RelaySource> source(std::string_view master_sae,
                                            std::string_view slave_sae) const;

  const Router& router() const noexcept { return router_; }
  KeyRelay& relay() noexcept { return relay_; }
  const KeyRelay& relay() const noexcept { return relay_; }
  Topology& topology() noexcept { return topology_; }

 private:
  Topology& topology_;
  api::KeyDeliveryService& service_;
  Router router_;
  KeyRelay relay_;
  mutable Mutex mutex_{LockRank::kSources, "network.sources"};
  std::map<std::string, std::shared_ptr<RelaySource>, std::less<>> sources_
      QKD_GUARDED_BY(mutex_);
};

}  // namespace qkdpp::network
