#include "network/delivery.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace qkdpp::network {

RelaySource::RelaySource(const Router& router, KeyRelay& relay,
                         std::size_t src_node, std::size_t dst_node,
                         RelaySourceConfig config)
    : router_(router),
      relay_(relay),
      src_(src_node),
      dst_(dst_node),
      config_(config) {}

namespace {

/// Smallest deliverable depth along the route: what one relay() can carry.
std::uint64_t route_bottleneck(const KeyRelay& relay, const Route& route) {
  std::uint64_t bottleneck = ~std::uint64_t{0};
  for (const std::size_t edge : route.edges) {
    bottleneck = std::min(bottleneck, relay.deliverable_bits(edge));
  }
  return bottleneck;
}

}  // namespace

std::uint64_t RelaySource::bits_available() const {
  RouteQuery query;
  query.extra_edge_bits = relay_.buffered_bits_per_edge();
  query.need_bits = 1;
  const auto route = router_.find_route(src_, dst_, query);
  if (!route.has_value()) return 0;
  return route_bottleneck(relay_, *route);
}

std::optional<BitVec> RelaySource::draw(std::string_view /*consumer*/) {
  // The ETSI caller name stays at the service layer; against the link
  // stores the relay draws under its own per-edge ledger names.
  RouteQuery query;
  query.need_bits = 1;
  std::uint32_t reroutes_this_draw = 0;

  while (true) {
    query.extra_edge_bits = relay_.buffered_bits_per_edge();
    const auto route = router_.find_route(src_, dst_, query);
    if (!route.has_value()) return std::nullopt;

    const std::uint64_t bottleneck = route_bottleneck(relay_, *route);
    const std::uint64_t size = std::min<std::uint64_t>(
        config_.chunk_bits, bottleneck);
    if (size == 0) return std::nullopt;

    RelayResult result = relay_.relay(*route, size);
    if (result.ok()) {
      MutexLock lock(mutex_);
      stats_.draws += 1;
      stats_.relayed_bits += result.key.size();
      stats_.reroutes += reroutes_this_draw;
      stats_.last_route = *route;
      return std::move(result.key);
    }
    if (result.error == RelayError::kInsufficientKey &&
        result.failed_edge != Topology::npos &&
        reroutes_this_draw < config_.max_reroutes_per_draw) {
      // A concurrent pair drained that hop between routing and taking (or
      // the outage hit mid-stream): exclude it and route around.
      if (query.exclude_edges.size() <= result.failed_edge) {
        query.exclude_edges.resize(result.failed_edge + 1, false);
      }
      query.exclude_edges[result.failed_edge] = true;
      reroutes_this_draw += 1;
      continue;
    }
    return std::nullopt;
  }
}

void RelaySource::describe_exhaustion(
    std::vector<std::string>& details) const {
  RouteQuery query;
  query.extra_edge_bits = relay_.buffered_bits_per_edge();
  query.need_bits = 1;
  const auto route = router_.find_route(src_, dst_, query);
  if (!route.has_value()) {
    details.push_back("relay: no feasible route between the pair's nodes");
    return;
  }
  details.push_back("relay: route bottleneck " +
                    std::to_string(route_bottleneck(relay_, *route)) +
                    " bits over " + std::to_string(route->hops()) + " hops");
}

RelaySourceStats RelaySource::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

NetworkDelivery::NetworkDelivery(Topology& topology,
                                 api::KeyDeliveryService& service,
                                 RouterPolicy policy)
    : topology_(topology),
      service_(service),
      router_(topology, policy),
      relay_(topology) {}

void NetworkDelivery::register_pair(api::SaePair pair,
                                    std::string_view src_node,
                                    std::string_view dst_node,
                                    RelaySourceConfig config) {
  const auto src = topology_.node_index(src_node);
  const auto dst = topology_.node_index(dst_node);
  if (!src.has_value() || !dst.has_value()) {
    throw_error(ErrorCode::kConfig,
                "unknown node in pair placement: " + std::string(src_node) +
                    " -> " + std::string(dst_node));
  }
  if (*src == *dst) {
    throw_error(ErrorCode::kConfig,
                "pair endpoints on the same node '" + std::string(src_node) +
                    "' need no relay");
  }
  auto source =
      std::make_shared<RelaySource>(router_, relay_, *src, *dst, config);
  const std::string key = pair.master_sae_id + "/" + pair.slave_sae_id;
  // The service validates the pair spec (and rejects duplicates) before we
  // remember the source, so a failed registration leaves no stale entry.
  service_.register_pair(std::move(pair), source);
  MutexLock lock(mutex_);
  sources_.emplace(key, std::move(source));
}

std::shared_ptr<const RelaySource> NetworkDelivery::source(
    std::string_view master_sae, std::string_view slave_sae) const {
  std::string key(master_sae);
  key += "/";
  key += slave_sae;
  MutexLock lock(mutex_);
  const auto it = sources_.find(key);
  if (it == sources_.end()) return nullptr;
  return it->second;
}

}  // namespace qkdpp::network
