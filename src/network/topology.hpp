// Topology: the trusted-node QKD network graph over a LinkOrchestrator.
//
// Nodes are trusted-node sites (a KME terminating several QKD spans);
// edges are orchestrator links - each edge is backed by exactly one
// LinkSpec/KeyStore pair, so the graph adds no key material of its own,
// it only names how the point-to-point links connect. Per-edge live
// metrics (windowed QBER, abort streaks, store depth) are snapshots of
// what the orchestrator already measures per link since PR 4; the router
// weighs paths on them and the relay consumes hop key through them.
//
// Trust is explicit per node (Lorunser et al.: relay nodes *see* key
// material, so the assumption must be a named property, not an ambient
// one): a node constructed with trusted=false can terminate its own
// traffic but the router/relay refuse to pass end-to-end key through it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/link_orchestrator.hpp"

namespace qkdpp::network {

/// One trusted-node site. `trusted` is the relay trust bit: end-to-end
/// key may transit this node in the clear (inside the node's security
/// perimeter) only when it is set.
struct NodeSpec {
  std::string name;
  bool trusted = true;
};

/// One edge: an orchestrator link connecting two nodes.
struct EdgeSpec {
  std::size_t node_a = 0;  ///< topology node indices
  std::size_t node_b = 0;
  std::size_t link = 0;    ///< orchestrator link index backing this edge
  std::string link_name;
};

/// Live view of one edge, sampled from the orchestrator's per-link health
/// and the link's KeyStore. Safe to read while distillation runs.
struct EdgeStatus {
  double windowed_qber = 0.0;
  std::uint64_t store_bits = 0;  ///< deliverable from the link store now
  std::uint64_t consecutive_aborts = 0;
  bool admin_up = true;  ///< operator/admin state (set_admin_up)
  bool distilling = false;
  /// The link's circuit breaker is open (or half-open probing): the
  /// classical channel behind this edge keeps timing out, so the router
  /// treats it like an admin-down edge until the probe re-closes it.
  bool breaker_open = false;
};

class Topology {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The orchestrator must outlive the topology; its links back the edges.
  explicit Topology(service::LinkOrchestrator& orchestrator)
      : orchestrator_(orchestrator) {}

  /// Add a site. Throws Error{kConfig} on an empty or duplicate name.
  std::size_t add_node(std::string name, bool trusted = true);

  /// Connect two existing nodes with an orchestrator link. Throws
  /// Error{kConfig} on unknown nodes/link, a self-loop, or a link that
  /// already backs another edge (one physical span, one edge).
  std::size_t add_edge(std::string_view node_a, std::string_view node_b,
                       std::string_view link_name);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }
  const NodeSpec& node(std::size_t i) const { return nodes_[i]; }
  const EdgeSpec& edge(std::size_t i) const { return edges_[i]; }
  std::optional<std::size_t> node_index(std::string_view name) const;

  /// (peer node, edge) adjacency of `node`, in insertion order (which is
  /// what keeps route selection deterministic given equal costs).
  const std::vector<std::pair<std::size_t, std::size_t>>& neighbors(
      std::size_t node) const {
    return adjacency_[node];
  }
  std::size_t other_end(std::size_t edge, std::size_t node) const {
    const EdgeSpec& e = edges_[edge];
    return e.node_a == node ? e.node_b : e.node_a;
  }

  /// Operator switch: an edge administratively down is infeasible for the
  /// router no matter how healthy its link looks. Thread-safe.
  void set_admin_up(std::size_t edge, bool up) {
    // relaxed: an independent boolean flag; routing tolerates observing it
    // a query late, and nothing is published through it.
    admin_up_[edge].store(up, std::memory_order_relaxed);
  }

  /// Live snapshot of edge `i` (orchestrator health + store depth).
  EdgeStatus edge_status(std::size_t i) const;

  service::LinkOrchestrator& orchestrator() const noexcept {
    return orchestrator_;
  }

 private:
  service::LinkOrchestrator& orchestrator_;
  std::vector<NodeSpec> nodes_;
  std::vector<EdgeSpec> edges_;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adjacency_;
  std::deque<std::atomic<bool>> admin_up_;  // pinned (atomics)
  std::unordered_map<std::string, std::size_t> node_index_;
  std::vector<bool> link_used_;  ///< orchestrator links already edged
};

}  // namespace qkdpp::network
