#include "network/relay.hpp"

#include <utility>

#include "common/error.hpp"

namespace qkdpp::network {

const char* to_string(RelayError error) noexcept {
  switch (error) {
    case RelayError::kOk: return "ok";
    case RelayError::kBadRoute: return "bad-route";
    case RelayError::kUntrustedNode: return "untrusted-node";
    case RelayError::kInsufficientKey: return "insufficient-key";
  }
  return "unknown";
}

KeyRelay::KeyRelay(Topology& topology) : topology_(topology) {
  for (std::size_t e = 0; e < topology_.edge_count(); ++e) {
    taps_.emplace_back();
    taps_.back().consumer = "relay@" + topology_.edge(e).link_name;
  }
}

BitVec KeyRelay::take(std::size_t edge, std::uint64_t bits) {
  HopTap& tap = taps_[edge];
  pipeline::KeyStore& store =
      topology_.orchestrator().key_store(topology_.edge(edge).link);
  MutexLock lock(tap.mutex);
  // Refill the residual with whole distilled blocks. A block drawn here is
  // consumed from the store's point of view but stays relay-buffered until
  // it lands in a delivered key - that is the conservation split.
  while (tap.residual.size() < bits) {
    auto drawn = store.get_key(tap.consumer);
    if (!drawn.has_value()) return {};
    tap.residual.append(drawn->bits);
  }
  BitVec segment = tap.residual.subvec(0, bits);
  tap.residual = tap.residual.subvec(bits, tap.residual.size() - bits);
  tap.consumed += bits;
  return segment;
}

void KeyRelay::give_back(std::size_t edge, const BitVec& segment) {
  HopTap& tap = taps_[edge];
  MutexLock lock(tap.mutex);
  // Front of the residual: the next take() re-cuts the exact same bits,
  // keeping the hop's pad stream in order across a failed multi-hop relay.
  BitVec restored = segment;
  restored.append(tap.residual);
  tap.residual = std::move(restored);
  tap.consumed -= segment.size();
}

RelayResult KeyRelay::relay(const Route& route, std::uint64_t bits) {
  RelayResult result;
  if (bits == 0 || route.edges.empty() ||
      route.nodes.size() != route.edges.size() + 1) {
    result.error = RelayError::kBadRoute;
    return result;
  }
  for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i) {
    if (!topology_.node(route.nodes[i]).trusted) {
      result.error = RelayError::kUntrustedNode;
      return result;
    }
  }

  // Cut one `bits`-sized segment per hop, in route order. All-or-nothing:
  // a dry hop hands every earlier segment back before we report it.
  std::vector<BitVec> segments;
  segments.reserve(route.edges.size());
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    BitVec segment = take(route.edges[i], bits);
    if (segment.size() != bits) {
      for (std::size_t j = 0; j < segments.size(); ++j) {
        give_back(route.edges[j], segments[j]);
      }
      result.error = RelayError::kInsufficientKey;
      result.failed_edge = route.edges[i];
      return result;
    }
    segments.push_back(std::move(segment));
  }

  // Hop 0's distilled key IS the end-to-end key; every later hop carries
  // it under a one-time pad of its own segment. We run the receive side
  // too: recovering K from the ciphertext is the correctness check that
  // the OTP algebra (and our segment bookkeeping) did not slip.
  const BitVec& key = segments[0];
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const BitVec cipher = key ^ segments[i];
    const BitVec recovered = cipher ^ segments[i];
    QKDPP_REQUIRE(recovered == key, "relay OTP hop failed to recover key");
  }

  result.hops.reserve(route.edges.size());
  for (std::size_t i = 0; i < route.edges.size(); ++i) {
    result.hops.push_back(HopAccount{route.edges[i], bits});
  }
  result.key = segments[0];
  // relaxed: statistics counter read by delivered_bits() snapshots only.
  delivered_bits_.fetch_add(bits, std::memory_order_relaxed);
  return result;
}

std::uint64_t KeyRelay::buffered_bits(std::size_t edge) const {
  const HopTap& tap = taps_[edge];
  MutexLock lock(tap.mutex);
  return tap.residual.size();
}

std::uint64_t KeyRelay::consumed_bits(std::size_t edge) const {
  const HopTap& tap = taps_[edge];
  MutexLock lock(tap.mutex);
  return tap.consumed;
}

std::uint64_t KeyRelay::deliverable_bits(std::size_t edge) const {
  const HopTap& tap = taps_[edge];
  pipeline::KeyStore& store =
      topology_.orchestrator().key_store(topology_.edge(edge).link);
  MutexLock lock(tap.mutex);
  return tap.residual.size() + store.bits_available();
}

std::uint64_t KeyRelay::delivered_bits() const {
  // relaxed: statistics snapshot, pairs with the relaxed add in relay().
  return delivered_bits_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> KeyRelay::buffered_bits_per_edge() const {
  std::vector<std::uint64_t> out(taps_.size(), 0);
  for (std::size_t e = 0; e < taps_.size(); ++e) {
    out[e] = buffered_bits(e);
  }
  return out;
}

}  // namespace qkdpp::network
