#include "network/topology.hpp"

#include <utility>

#include "common/error.hpp"

namespace qkdpp::network {

std::size_t Topology::add_node(std::string name, bool trusted) {
  if (name.empty()) {
    throw_error(ErrorCode::kConfig, "node needs a name");
  }
  if (node_index_.find(name) != node_index_.end()) {
    throw_error(ErrorCode::kConfig, "duplicate node '" + name + "'");
  }
  const std::size_t index = nodes_.size();
  node_index_.emplace(name, index);
  nodes_.push_back(NodeSpec{std::move(name), trusted});
  adjacency_.emplace_back();
  return index;
}

std::size_t Topology::add_edge(std::string_view node_a,
                               std::string_view node_b,
                               std::string_view link_name) {
  const auto a = node_index(node_a);
  const auto b = node_index(node_b);
  if (!a.has_value() || !b.has_value()) {
    throw_error(ErrorCode::kConfig,
                "edge endpoint unknown: " + std::string(node_a) + " - " +
                    std::string(node_b));
  }
  if (*a == *b) {
    throw_error(ErrorCode::kConfig,
                "self-loop on node '" + std::string(node_a) + "'");
  }
  const auto link = orchestrator_.link_index(link_name);
  if (!link.has_value()) {
    throw_error(ErrorCode::kConfig,
                "unknown link '" + std::string(link_name) + "'");
  }
  if (link_used_.size() < orchestrator_.link_count()) {
    link_used_.resize(orchestrator_.link_count(), false);
  }
  // One physical span backs one edge: two edges sharing a link would
  // double-count its key material in every route computation.
  if (link_used_[*link]) {
    throw_error(ErrorCode::kConfig,
                "link '" + std::string(link_name) +
                    "' already backs another edge");
  }
  link_used_[*link] = true;

  const std::size_t index = edges_.size();
  EdgeSpec edge;
  edge.node_a = *a;
  edge.node_b = *b;
  edge.link = *link;
  edge.link_name = std::string(link_name);
  edges_.push_back(std::move(edge));
  adjacency_[*a].emplace_back(*b, index);
  adjacency_[*b].emplace_back(*a, index);
  admin_up_.emplace_back(true);
  return index;
}

std::optional<std::size_t> Topology::node_index(std::string_view name) const {
  const auto it = node_index_.find(std::string(name));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

EdgeStatus Topology::edge_status(std::size_t i) const {
  const EdgeSpec& edge = edges_[i];
  const service::LinkHealth health = orchestrator_.link_health(edge.link);
  EdgeStatus status;
  status.windowed_qber = health.windowed_qber;
  status.store_bits = orchestrator_.key_store(edge.link).bits_available();
  status.consecutive_aborts = health.consecutive_aborts;
  // relaxed: independent flag, stale-by-one-query reads are fine.
  status.admin_up = admin_up_[i].load(std::memory_order_relaxed);
  status.distilling = health.distilling;
  status.breaker_open = health.breaker_open;
  return status;
}

}  // namespace qkdpp::network
