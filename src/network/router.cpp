#include "network/router.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

namespace qkdpp::network {

double Router::edge_cost(const EdgeStatus& status,
                         std::uint64_t deliverable_bits) const {
  // Constant per-hop term: every hop is another trusted node holding the
  // key in the clear, so shorter paths win when links look alike.
  double cost = 1.0;
  cost += policy_.qber_weight * status.windowed_qber;
  const double scale = static_cast<double>(policy_.depth_scale_bits);
  cost += policy_.depth_weight *
          (scale / (scale + static_cast<double>(deliverable_bits)));
  return cost;
}

bool Router::edge_feasible(const EdgeStatus& status,
                           std::uint64_t deliverable_bits,
                           std::uint64_t need_bits) const {
  if (!status.admin_up) return false;
  // An open breaker is operationally indistinguishable from admin-down:
  // the classical channel is timing out, so no new key will land on this
  // edge until a half-open probe succeeds.
  if (status.breaker_open) return false;
  if (status.windowed_qber >= policy_.qber_infeasible) return false;
  if (policy_.down_after_aborts != 0 &&
      status.consecutive_aborts >= policy_.down_after_aborts) {
    return false;
  }
  if (need_bits != 0 && deliverable_bits < need_bits) return false;
  return true;
}

std::optional<Route> Router::find_route(std::size_t src, std::size_t dst,
                                        const RouteQuery& query) const {
  const std::size_t n = topology_.node_count();
  const std::size_t m = topology_.edge_count();
  if (src >= n || dst >= n || src == dst) return std::nullopt;

  // Snapshot every edge once: costs must not shift under Dijkstra's feet
  // while distillation threads update the live metrics.
  std::vector<double> cost(m);
  std::vector<bool> usable(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (e < query.exclude_edges.size() && query.exclude_edges[e]) {
      usable[e] = false;
      continue;
    }
    const EdgeStatus status = topology_.edge_status(e);
    std::uint64_t deliverable = status.store_bits;
    if (e < query.extra_edge_bits.size()) {
      deliverable += query.extra_edge_bits[e];
    }
    usable[e] = edge_feasible(status, deliverable, query.need_bits);
    cost[e] = edge_cost(status, deliverable);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev_node(n, Topology::npos);
  std::vector<std::size_t> prev_edge(n, Topology::npos);
  // (cost, node) ordering makes tie-breaks fall to the lower node index:
  // equal-cost graphs route identically run over run.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);

  while (!heap.empty()) {
    const auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;  // stale entry
    if (node == dst) break;
    // Interior nodes must be trusted: a route may *end* at an untrusted
    // node (it terminates its own traffic) but never pass through one.
    if (node != src && node != dst && !topology_.node(node).trusted) {
      continue;
    }
    for (const auto& [peer, edge] : topology_.neighbors(node)) {
      if (!usable[edge]) continue;
      const double next = d + cost[edge];
      if (next < dist[peer] ||
          (next == dist[peer] && node < prev_node[peer])) {
        dist[peer] = next;
        prev_node[peer] = node;
        prev_edge[peer] = edge;
        heap.emplace(next, peer);
      }
    }
  }

  if (dist[dst] == kInf) return std::nullopt;

  Route route;
  route.cost = dist[dst];
  for (std::size_t node = dst; node != Topology::npos;
       node = prev_node[node]) {
    route.nodes.push_back(node);
    if (prev_edge[node] != Topology::npos) {
      route.edges.push_back(prev_edge[node]);
    }
    if (node == src) break;
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  std::reverse(route.edges.begin(), route.edges.end());
  return route;
}

}  // namespace qkdpp::network
