// Per-block scratch arena: bump allocation plus pooled scratch objects.
//
// Post-processing a block walks five stages, each of which used to make
// its own short-lived BitVec/ByteWriter allocations — at 128 links that
// churn serializes on the global allocator. A BlockArena gives every
// block a private scratch space with two complementary shapes:
//
//   * words(n)/bytes(n): raw bump allocation out of a slab chain. O(1)
//     per allocation, no per-object free; reset() rewinds everything at
//     once and keeps the largest slab so a steady-state block allocates
//     no memory at all.
//   * scratch_bits()/scratch_writer(): pooled BitVec/ByteWriter objects
//     (vector-backed types cannot live inside the slab without allocator
//     plumbing). Borrowed objects come back cleared but with their heap
//     capacity intact; reset() returns them to the pool, so steady state
//     is equally allocation-free.
//
// A BlockArena is single-threaded by design — one arena per worker via
// thread_arena(), reset at block boundaries. No internal locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hpp"
#include "common/buffer.hpp"

namespace qkdpp {

/// Snapshot of an arena's footprint (bytes are slab bytes, not pooled
/// object capacity).
struct ArenaStats {
  std::size_t used_bytes = 0;       ///< bump-allocated since last reset()
  std::size_t capacity_bytes = 0;   ///< total slab bytes currently held
  std::size_t high_water_bytes = 0; ///< max used_bytes over the lifetime
  std::size_t slab_count = 0;       ///< slabs in the current chain
  std::uint64_t overflow_slabs = 0; ///< lifetime count of slab overflows
  std::size_t scratch_bitvecs = 0;  ///< pooled BitVec objects held
  std::size_t scratch_writers = 0;  ///< pooled ByteWriter objects held
};

class BlockArena {
 public:
  /// `initial_bytes` sizes the first slab (rounded up to whole words).
  explicit BlockArena(std::size_t initial_bytes = kDefaultSlabBytes);

  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  /// `n` 64-bit words of uninitialized scratch, valid until reset().
  std::uint64_t* words(std::size_t n);

  /// `n` bytes of uninitialized scratch (8-byte aligned), valid until
  /// reset().
  std::uint8_t* bytes(std::size_t n) {
    return reinterpret_cast<std::uint8_t*>(words((n + 7) / 8));
  }

  /// Borrow a cleared BitVec whose heap capacity persists across blocks.
  /// Valid until reset().
  BitVec& scratch_bits();

  /// Borrow a cleared ByteWriter, same lifetime rules as scratch_bits().
  ByteWriter& scratch_writer();

  /// O(1) rewind: every words()/bytes() pointer and borrowed scratch
  /// object is invalidated; the largest slab and all pooled objects are
  /// kept so the next block reuses their capacity.
  void reset();

  ArenaStats stats() const;

 private:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  struct Slab {
    std::unique_ptr<std::uint64_t[]> words;
    std::size_t capacity_words = 0;
  };

  void grow(std::size_t min_words);

  std::vector<Slab> slabs_;        // slabs_.back() is the active slab
  std::size_t offset_words_ = 0;   // bump cursor within the active slab
  std::size_t retired_words_ = 0;  // words used up in non-active slabs
  std::size_t high_water_bytes_ = 0;
  std::uint64_t overflow_slabs_ = 0;

  std::vector<std::unique_ptr<BitVec>> bit_pool_;
  std::size_t bits_borrowed_ = 0;
  std::vector<std::unique_ptr<ByteWriter>> writer_pool_;
  std::size_t writers_borrowed_ = 0;
};

/// The calling thread's arena (created on first use). Engine workers
/// reset it at each block boundary; anything that runs inside a block may
/// borrow from it freely.
BlockArena& thread_arena();

}  // namespace qkdpp
