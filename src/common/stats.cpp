#include "common/stats.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qkdpp {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double PercentileSampler::percentile(double q) const {
  QKDPP_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  QKDPP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank out of [0,1]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

}  // namespace qkdpp
