// Minimal leveled logger. Session state machines log protocol transitions at
// Debug; everything user-facing goes through Info and above. Single global
// sink guarded by a mutex - log volume in this library is low by design.
#pragma once

#include <sstream>
#include <string>

namespace qkdpp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

}  // namespace qkdpp

#define QKDPP_LOG(level, component, expr)                      \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::qkdpp::log_level())) {              \
      std::ostringstream qkdpp_log_stream;                     \
      qkdpp_log_stream << expr;                                \
      ::qkdpp::log_line(level, component, qkdpp_log_stream.str()); \
    }                                                          \
  } while (0)

#define QKDPP_DEBUG(component, expr) \
  QKDPP_LOG(::qkdpp::LogLevel::kDebug, component, expr)
#define QKDPP_INFO(component, expr) \
  QKDPP_LOG(::qkdpp::LogLevel::kInfo, component, expr)
#define QKDPP_WARN(component, expr) \
  QKDPP_LOG(::qkdpp::LogLevel::kWarn, component, expr)
#define QKDPP_ERROR(component, expr) \
  QKDPP_LOG(::qkdpp::LogLevel::kError, component, expr)
