// Carry-less multiplication and GF(2^128) arithmetic.
//
// Portable software implementation (no PCLMULQDQ dependency) with a 4-bit
// window so that Wegman-Carter polynomial hashing stays fast enough to show
// that authentication is never the pipeline bottleneck. Field: GF(2^128) with
// the GCM modulus x^128 + x^7 + x^2 + x + 1, plain (non-reflected) bit order.
#pragma once

#include <cstdint>
#include <utility>

namespace qkdpp {

/// 128-bit value as two 64-bit halves (hi = bits 127..64).
struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend U128 operator^(U128 a, U128 b) noexcept {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }
  U128& operator^=(U128 o) noexcept {
    hi ^= o.hi;
    lo ^= o.lo;
    return *this;
  }
  bool operator==(const U128&) const noexcept = default;
};

/// Carry-less (polynomial over GF(2)) product of two 64-bit operands.
U128 clmul64(std::uint64_t a, std::uint64_t b) noexcept;

/// Multiplication in GF(2^128) mod x^128 + x^7 + x^2 + x + 1.
U128 gf128_mul(U128 a, U128 b) noexcept;

/// Repeated-squaring exponentiation in GF(2^128) (used by tests and key
/// schedule derivation).
U128 gf128_pow(U128 base, std::uint64_t exponent) noexcept;

}  // namespace qkdpp
