// Constant-time equality for secret material.
//
// `a == b` on a tag or key short-circuits at the first differing word, so
// the comparison's running time leaks how long a forged prefix matched.
// ct_equal OR-folds every XOR difference before the single final compare:
// the time depends only on the length, never on the contents. All secret
// comparisons in the tree (authentication tags, verification digests) must
// go through ct_equal -- scripts/lint/qkd_lint.py enforces it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/gf2.hpp"

namespace qkdpp {

/// Branchless constant-time byte-span equality. Lengths are public (a
/// length mismatch returns false immediately; sizes are not secrets).
inline bool ct_equal(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

/// Constant-time equality of two 128-bit values (authentication tags).
inline bool ct_equal(const U128& a, const U128& b) noexcept {
  return ((a.hi ^ b.hi) | (a.lo ^ b.lo)) == 0;
}

}  // namespace qkdpp
