#include "common/error.hpp"

namespace qkdpp {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kSerialization: return "serialization error";
    case ErrorCode::kProtocol: return "protocol error";
    case ErrorCode::kAuthentication: return "authentication failure";
    case ErrorCode::kKeyExhausted: return "authentication key exhausted";
    case ErrorCode::kDecodeFailure: return "reconciliation decode failure";
    case ErrorCode::kVerifyMismatch: return "verification mismatch";
    case ErrorCode::kQberTooHigh: return "qber above abort threshold";
    case ErrorCode::kInsufficientKey: return "no extractable secret key";
    case ErrorCode::kChannelClosed: return "channel closed";
    case ErrorCode::kTimeout: return "channel timeout";
    case ErrorCode::kConfig: return "invalid configuration";
  }
  return "unknown error";
}

}  // namespace qkdpp
