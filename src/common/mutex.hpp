// Annotated, ranked mutex wrappers.
//
// All locking in the tree goes through these types instead of raw
// std::mutex for two reasons:
//
//   1. Clang Thread Safety Analysis only follows annotated lock types;
//      libstdc++'s std::lock_guard / std::unique_lock are not annotated, so
//      locking through them makes every QKD_GUARDED_BY field unverifiable.
//      Mutex / SharedMutex / MutexLock / ReaderLock / WriterLock carry the
//      capability attributes (common/annotations.hpp) that make
//      -Wthread-safety precise.
//
//   2. Every mutex declares a LockRank. Debug and sanitizer builds keep a
//      per-thread stack of held ranks and abort -- naming both locks -- the
//      moment any thread acquires a mutex whose rank is not strictly below
//      every rank it already holds. That turns a potential deadlock (which
//      TSan only reports if the fatal interleaving actually executes) into
//      a deterministic failure on ANY execution of the out-of-order pair.
//
// Rank convention: ranks grow outward. The innermost lock in the tree (the
// log sink, legal to take under anything) is rank 0; the outermost (the
// orchestrator run gate) is highest. A thread holding rank R may only
// acquire ranks strictly below R. See README "Static analysis & concurrency
// invariants" for the full table and the nesting chains that fix the order.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.hpp"

namespace qkdpp {

/// Global lock hierarchy, innermost (lowest) to outermost (highest).
/// Gaps between values leave room for new locks without renumbering.
enum class LockRank : int {
  kLog = 0,           // log sink - legal under any other lock
  kCodeCache = 10,    // LDPC code cache (leaf; PEG runs outside the lock)
  kAuthPool = 12,     // auth key pool (leaf)
  kChannel = 15,      // in-process classical channel endpoints (leaf)
  kStreamFailure = 18,// stream-pipeline failure slot (leaf)
  kPoolIdle = 20,     // thread-pool idle cv, under a queue lock's scope
  kPoolQueue = 25,    // thread-pool per-worker deques (never two at once)
  kDevice = 30,       // device accounting (taken after the kernel body)
  kTrace = 35,        // execution trace + stage cost model (leaves)
  kDeviceSet = 40,    // committed-load ledger, under the engine plan lock
  kEnginePlan = 45,   // engine placement/plan state
  kStoreLedger = 50,  // KeyStore drawn-key ledger
  kStoreSpace = 55,   // KeyStore capacity waiters
  kStoreShard = 60,   // KeyStore shards (never two shards at once)
  kTap = 65,          // relay per-edge taps, held across store.get_key
  kSourceStats = 70,  // relay-source stats, under the pair lock's scope
  kPair = 75,         // delivery pair state, held across source->draw
  kRegistry = 80,     // SAE pair registry (never held with a pair lock)
  kSources = 85,      // network delivery source map
  kOrchestrator = 90, // orchestrator run gate - outermost
};

// Rank checking is on in debug builds and whenever QKDPP_LOCK_RANK_CHECKS
// is defined (CMake sets it for the sanitizer/TSan trees, which build
// RelWithDebInfo and would otherwise compile the checker out with NDEBUG).
#if !defined(NDEBUG) || defined(QKDPP_LOCK_RANK_CHECKS)
#define QKDPP_LOCK_RANK_CHECKS_ENABLED 1
#else
#define QKDPP_LOCK_RANK_CHECKS_ENABLED 0
#endif

/// True when this build aborts on lock-order violations (tests use this to
/// skip the death tests in Release).
constexpr bool lock_rank_checks_enabled() noexcept {
  return QKDPP_LOCK_RANK_CHECKS_ENABLED != 0;
}

namespace detail {
#if QKDPP_LOCK_RANK_CHECKS_ENABLED
// Validate + record an acquisition on this thread's held stack; aborts with
// both lock names if `rank` is not strictly below every held rank.
void rank_acquire(int rank, const char* name);
void rank_release(int rank, const char* name) noexcept;
#else
inline void rank_acquire(int, const char*) {}
inline void rank_release(int, const char*) noexcept {}
#endif
}  // namespace detail

/// Exclusive mutex with a rank and a name. Satisfies BasicLockable, so
/// CondVar (condition_variable_any) can wait on it directly.
class QKD_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QKD_ACQUIRE() {
    detail::rank_acquire(rank_, name_);
    impl_.lock();
  }
  bool try_lock() QKD_TRY_ACQUIRE(true) {
    if (!impl_.try_lock()) return false;
    // Validate after the fact: a successful try_lock cannot have blocked,
    // but an out-of-order acquisition is still a hierarchy violation.
    detail::rank_acquire(rank_, name_);
    return true;
  }
  void unlock() QKD_RELEASE() {
    detail::rank_release(rank_, name_);
    impl_.unlock();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

  /// For the rare call that must bypass the wrapper (none today); also
  /// anchors negative capability expressions.
  const Mutex& operator!() const { return *this; }

 private:
  std::mutex impl_;
  const int rank_;
  const char* const name_;
};

/// Reader-writer mutex with a rank and a name.
class QKD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() QKD_ACQUIRE() {
    detail::rank_acquire(rank_, name_);
    impl_.lock();
  }
  void unlock() QKD_RELEASE() {
    detail::rank_release(rank_, name_);
    impl_.unlock();
  }
  void lock_shared() QKD_ACQUIRE_SHARED() {
    // Shared acquisitions rank-check too: reader-then-reader on the same
    // mutex from one thread can still deadlock against a queued writer.
    detail::rank_acquire(rank_, name_);
    impl_.lock_shared();
  }
  void unlock_shared() QKD_RELEASE_SHARED() {
    detail::rank_release(rank_, name_);
    impl_.unlock_shared();
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }
  const SharedMutex& operator!() const { return *this; }

 private:
  std::shared_mutex impl_;
  const int rank_;
  const char* const name_;
};

/// RAII exclusive lock. Relockable (lock()/unlock()) so CondVar can wait on
/// it, and so slow paths can drop the lock around blocking work.
class QKD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QKD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
    owned_ = true;
  }
  ~MutexLock() QKD_RELEASE() {
    if (owned_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() QKD_ACQUIRE() {
    mutex_.lock();
    owned_ = true;
  }
  void unlock() QKD_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }

 private:
  Mutex& mutex_;
  bool owned_ = false;
};

/// RAII exclusive lock over a SharedMutex.
class QKD_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) QKD_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLock() QKD_RELEASE() { mutex_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// RAII shared (reader) lock over a SharedMutex.
class QKD_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) QKD_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() QKD_RELEASE_GENERIC() { mutex_.unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable usable with qkdpp::Mutex / MutexLock. Waits must be
/// written as explicit `while (!cond) cv.wait(lock);` loops when the
/// condition reads QKD_GUARDED_BY fields: thread-safety analysis treats a
/// predicate lambda as a separate unannotated function and would flag it.
using CondVar = std::condition_variable_any;

}  // namespace qkdpp
