// Clang Thread Safety Analysis attribute macros.
//
// Every lock-protected field in the tree carries QKD_GUARDED_BY and every
// method that assumes a held lock carries QKD_REQUIRES, so the locking
// discipline is a compile-time property under clang (-Wthread-safety) rather
// than reviewer folklore. Under gcc (no capability-attribute support) every
// macro expands to nothing, so the annotations cost zero outside the clang
// CI leg.
//
// The analysis only understands annotated lock types: std::lock_guard and
// friends from libstdc++ are NOT annotated, which is why the whole tree
// locks through qkdpp::Mutex / qkdpp::MutexLock (common/mutex.hpp) instead.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QKD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef QKD_THREAD_ANNOTATION
#define QKD_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type attributes: mark a class as a lockable capability / scoped lock.
#define QKD_CAPABILITY(x) QKD_THREAD_ANNOTATION(capability(x))
#define QKD_SCOPED_CAPABILITY QKD_THREAD_ANNOTATION(scoped_lockable)

// Data attributes: which lock protects this field.
#define QKD_GUARDED_BY(x) QKD_THREAD_ANNOTATION(guarded_by(x))
#define QKD_PT_GUARDED_BY(x) QKD_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes: lock contracts on entry/exit.
#define QKD_REQUIRES(...) \
  QKD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QKD_REQUIRES_SHARED(...) \
  QKD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define QKD_ACQUIRE(...) \
  QKD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QKD_ACQUIRE_SHARED(...) \
  QKD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define QKD_RELEASE(...) \
  QKD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QKD_RELEASE_SHARED(...) \
  QKD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define QKD_RELEASE_GENERIC(...) \
  QKD_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define QKD_TRY_ACQUIRE(...) \
  QKD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QKD_EXCLUDES(...) QKD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define QKD_ASSERT_CAPABILITY(x) QKD_THREAD_ANNOTATION(assert_capability(x))
#define QKD_RETURN_CAPABILITY(x) QKD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot follow (thread trampolines,
// deliberate cross-function lock handoff). Use sparingly and say why.
#define QKD_NO_THREAD_SAFETY_ANALYSIS \
  QKD_THREAD_ANNOTATION(no_thread_safety_analysis)
