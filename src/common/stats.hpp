// Small statistics toolkit used by benches and the heterogeneous runtime's
// telemetry: streaming moments (Welford), percentile sampling, and a
// steady-clock stopwatch.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace qkdpp {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample store with exact percentiles (fine for bench-scale sample counts).
class PercentileSampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const noexcept { return samples_.size(); }
  /// q in [0,1]; nearest-rank on the sorted samples.
  double percentile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Monotonic stopwatch; returns elapsed seconds.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}
  void reset() noexcept { start_ = clock::now(); }
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qkdpp
