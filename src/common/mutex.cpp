#include "common/mutex.hpp"

#if QKDPP_LOCK_RANK_CHECKS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace qkdpp::detail {

namespace {

struct HeldLock {
  int rank;
  const char* name;
};

// Per-thread stack of held locks. A vector (not a fixed array) so deep
// helper-thread call chains can't overflow it; the handful of heap
// allocations per thread lifetime is irrelevant in the debug builds this
// compiles into.
thread_local std::vector<HeldLock> t_held;

}  // namespace

void rank_acquire(int rank, const char* name) {
  for (const HeldLock& held : t_held) {
    if (held.rank <= rank) {
      // Deliberately fprintf+abort instead of QKDPP_LOG/throw: the logger
      // itself takes a lock, and an exception would let a real deadlock
      // escape the test that provoked it.
      std::fprintf(stderr,
                   "qkdpp lock-rank violation: acquiring \"%s\" (rank %d) "
                   "while holding \"%s\" (rank %d); a lock may only be "
                   "acquired when its rank is strictly below every held "
                   "rank\n",
                   name, rank, held.name, held.rank);
      std::abort();
    }
  }
  t_held.push_back(HeldLock{rank, name});
}

void rank_release(int rank, const char* name) noexcept {
  // Unlock order need not be LIFO (std::unique_lock-style early release),
  // so remove the most recent matching entry rather than popping the top.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->rank == rank && it->name == name) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "qkdpp lock-rank violation: releasing \"%s\" (rank %d) which "
               "this thread does not hold\n",
               name, rank);
  std::abort();
}

}  // namespace qkdpp::detail

#endif  // QKDPP_LOCK_RANK_CHECKS_ENABLED
