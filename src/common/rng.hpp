// Deterministic, fast randomness for simulation and protocol seeds.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Deterministic
// given a seed, which the whole test/bench suite relies on for
// reproducibility. NOT a CSPRNG: the library treats it as a source of
// *simulated* physical randomness and of bench workloads; security-relevant
// seeds in a deployment would come from a QRNG/OS entropy.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "common/bitvec.hpp"

namespace qkdpp {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Uniform integer in [0, bound) (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Poisson sample; inversion for small mean (QKD pulse intensities are
  /// mu <= ~1), normal approximation above 30 where exactness stops mattering.
  std::uint32_t poisson(double mean) noexcept;

  /// Standard normal (Box-Muller, cached second value).
  double normal() noexcept;

  /// `nbits` i.i.d. uniform bits.
  BitVec random_bits(std::size_t nbits) noexcept;

  /// Fisher-Yates shuffle of a permutation target.
  template <typename T>
  void shuffle(std::span<T> data) noexcept {
    for (std::size_t i = data.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(data[i - 1], data[j]);
    }
  }

  /// The identity permutation on n elements, shuffled.
  std::vector<std::uint32_t> permutation(std::size_t n) noexcept;

  /// k distinct indices from [0, n), sorted ascending (partial Fisher-Yates).
  std::vector<std::uint32_t> sample_without_replacement(std::size_t n,
                                                        std::size_t k);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qkdpp
