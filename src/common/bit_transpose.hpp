// Batch bit-transpose kernels.
//
// The lockstep LDPC batch decoder keeps per-frame state lane-packed: one
// 64-bit word per bit position, bit l of that word belonging to frame l.
// Moving between that layout and ordinary BitVecs (one frame per vector)
// is a bit-matrix transpose. pack_lanes() turns up to 64 frames into
// position-major lane words with a 64x64 block transpose (Hacker's
// Delight delta-swap network, 6 rounds of masked exchanges instead of
// 4096 single-bit moves); unpack_lane() extracts one frame back out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bitvec.hpp"

namespace qkdpp {

/// In-place 64x64 bit-matrix transpose: bit j of w[i] moves to bit i of
/// w[j].
void transpose64(std::uint64_t w[64]) noexcept;

/// Pack up to 64 equal-length bit vectors into position-major lane words:
/// bit l of out[p] == lanes[l]->get(p). Lanes beyond lanes.size() read as
/// zero. `out` must hold `nbits` words.
void pack_lanes(std::span<const BitVec* const> lanes, std::size_t nbits,
                std::uint64_t* out);

/// Inverse of pack_lanes for a single lane: collect bit `lane` of
/// words[0..nbits) into `out` (resized to nbits).
void unpack_lane(const std::uint64_t* words, std::size_t nbits, unsigned lane,
                 BitVec& out);

}  // namespace qkdpp
