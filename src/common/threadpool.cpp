#include "common/threadpool.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace qkdpp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_ = std::make_unique<WorkerQueue[]>(threads);
  queue_count_ = threads;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(idle_mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  QKDPP_REQUIRE(!stopping_.load(std::memory_order_acquire),
                "submit on a stopping ThreadPool");
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();

  // Raise pending_ before the push so a claimer can never decrement below
  // zero, and before reading idle_count_ (Dekker with the parking path): a
  // worker that missed this task has already raised idle_count_, so we
  // notify; a worker that hasn't yet will see pending_ > 0 and not sleep.
  pending_.fetch_add(1, std::memory_order_seq_cst);
  // relaxed: round-robin cursor - only fair distribution matters, and the
  // queue push below is ordered by the queue mutex.
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queue_count_;
  {
    MutexLock lock(queues_[target].mutex);
    queues_[target].tasks.push_back(std::move(packaged));
  }
  // relaxed: observability counter, read only by stats() snapshots.
  submitted_.fetch_add(1, std::memory_order_relaxed);

  if (idle_count_.load(std::memory_order_seq_cst) > 0) {
    // Take the mutex so the notify can't fall between a parking worker's
    // predicate check and its actual sleep.
    MutexLock lock(idle_mutex_);
    idle_cv_.notify_one();
  }
  return future;
}

bool ThreadPool::claim_and_run(std::size_t my_index) {
  const std::size_t n = queue_count_;
  std::optional<std::packaged_task<void()>> task;
  bool was_steal = false;

  if (my_index != kNoOwner) {
    WorkerQueue& own = queues_[my_index];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      task.emplace(std::move(own.tasks.front()));
      own.tasks.pop_front();
    }
  }
  if (!task) {
    const std::size_t start = my_index == kNoOwner ? 0 : my_index + 1;
    for (std::size_t j = 0; j < n && !task; ++j) {
      WorkerQueue& victim = queues_[(start + j) % n];
      MutexLock lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task.emplace(std::move(victim.tasks.back()));
        victim.tasks.pop_back();
        was_steal = true;
      }
    }
  }
  if (!task) return false;

  pending_.fetch_sub(1, std::memory_order_seq_cst);
  // relaxed: stolen_/busy_workers_/executed_ are observability counters,
  // read only by stats() snapshots - no data is published through them.
  if (was_steal) stolen_.fetch_add(1, std::memory_order_relaxed);
  busy_workers_.fetch_add(1, std::memory_order_relaxed);
  (*task)();
  busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop(std::size_t my_index) {
  for (;;) {
    if (claim_and_run(my_index)) continue;

    MutexLock lock(idle_mutex_);
    // Raise idle_count_ before re-checking pending_ (the other half of
    // the Dekker protocol in submit()). The wait predicate reads only
    // atomics, so the lambda is safe under thread-safety analysis.
    idle_count_.fetch_add(1, std::memory_order_seq_cst);
    idle_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_seq_cst) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    idle_count_.fetch_sub(1, std::memory_order_seq_cst);
    if (stopping_.load(std::memory_order_seq_cst) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      return;  // stopping and drained
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t max_chunks = thread_count() + 1;
  const std::size_t chunk =
      std::max(grain, (total + max_chunks - 1) / max_chunks);

  std::vector<std::future<void>> futures;
  std::size_t lo = begin + std::min(total, chunk);  // first chunk runs inline
  while (lo < end) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
    lo = hi;
  }
  body(begin, begin + std::min(total, chunk));
  for (auto& f : futures) {
    // Help drain the pool while waiting so a worker blocked here (nested
    // parallel_for) still makes progress even when every thread is busy.
    using namespace std::chrono_literals;
    while (f.wait_for(0s) != std::future_status::ready) {
      if (!claim_and_run(kNoOwner)) f.wait_for(100us);
    }
    f.get();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.threads = queue_count_;
  // relaxed: stats() is an observability snapshot - fields may be mutually
  // inconsistent by a task or two, and no caller synchronizes through it.
  s.queue_depth = pending_.load(std::memory_order_relaxed);
  s.busy_workers = busy_workers_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qkdpp
