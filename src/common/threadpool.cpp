#include "common/threadpool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qkdpp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::scoped_lock lock(mutex_);
    QKDPP_REQUIRE(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t max_chunks = thread_count() + 1;
  const std::size_t chunk =
      std::max(grain, (total + max_chunks - 1) / max_chunks);

  std::vector<std::future<void>> futures;
  std::size_t lo = begin + std::min(total, chunk);  // first chunk runs inline
  while (lo < end) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
    lo = hi;
  }
  body(begin, begin + std::min(total, chunk));
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace qkdpp
