// Lock-free single-producer / single-consumer bounded ring.
//
// The contention-free handoff primitive for streaming pipelines: exactly
// one thread pushes, exactly one thread pops, and the fast path is two
// cache lines of acquire/release atomics - no mutex, no syscall, no shared
// line bounced between the endpoints while both stay inside the ring
// (each side caches the other's index and refreshes it only when its
// cached view says the ring is full/empty).
//
// Blocking semantics ride on C++20 atomic wait/notify through two
// monotonically increasing event counters (an eventcount): a blocked side
// loads the counter *before* re-checking state, so an event published
// after the check always changes the counter and wakes the waiter - the
// classic lost-wakeup race cannot happen. Close and poison bump both
// counters, which is what lets a blocked endpoint observe shutdown.
//
// Lifecycle verbs:
//   * close()  - producer-side end-of-stream: push() refuses new items,
//                pop() drains what is queued, then returns nullopt.
//   * poison() - abort from either side (or a third thread): both push()
//                and pop() return immediately; queued items are abandoned
//                and destroyed with the ring.
//
// Thread contract: push/try_push/close from the producer thread,
// pop/try_pop from the consumer thread; poison() and the observers are
// safe from any thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace qkdpp {

/// Destructive-interference padding: keep the producer's and the
/// consumer's hot fields on distinct cache lines so the SPSC fast path
/// never false-shares. 64 covers x86/ARM server parts; the value is a
/// layout constant, not a correctness requirement.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (index masking keeps the
  /// hot path branch-free); `capacity()` reports the effective value.
  explicit SpscRing(std::size_t capacity) {
    QKDPP_REQUIRE(capacity >= 1, "ring capacity must be positive");
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    mask_ = pow2 - 1;
    slots_ = std::make_unique<Slot[]>(pow2);
  }

  ~SpscRing() {
    // Destroy whatever was pushed but never popped (poisoned rings
    // abandon items by design; closed rings may be dropped mid-drain).
    // relaxed: destruction implies both endpoints have quiesced; whoever
    // joined them provided the synchronization.
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = head; i != tail; ++i) slots_[i & mask_].destroy();
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy (exact when neither endpoint is mid-call).
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool closed() const noexcept {
    return state_.load(std::memory_order_acquire) & kClosed;
  }
  bool poisoned() const noexcept {
    return state_.load(std::memory_order_acquire) & kPoisoned;
  }

  /// Non-blocking push. False when full, closed, or poisoned; the item is
  /// untouched on failure so the caller can retry or drop it.
  bool try_push(T& item) {
    if (state_.load(std::memory_order_acquire) != 0) return false;
    // relaxed: tail_ is written only by this (the producer) thread.
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_].construct(std::move(item));
    tail_.store(tail + 1, std::memory_order_release);
    push_events_.fetch_add(1, std::memory_order_release);
    push_events_.notify_one();
    return true;
  }

  /// Blocking push: waits while the ring is full (backpressure). False iff
  /// the ring was closed or poisoned, in which case the item was dropped.
  bool push(T item) {
    for (int spins = 0;;) {
      const std::uint64_t seen = pop_events_.load(std::memory_order_acquire);
      if (try_push(item)) return true;
      if (state_.load(std::memory_order_acquire) != 0) return false;
      if (spins < kSpinLimit) {
        ++spins;
        std::this_thread::yield();
        continue;
      }
      // Full: sleep until the consumer pops (or close/poison). `seen` was
      // read before try_push, so a pop landing after the failed attempt
      // has already changed the counter and wait() returns immediately.
      pop_events_.wait(seen, std::memory_order_acquire);
    }
  }

  /// Non-blocking pop. Empty, or poisoned, yields nullopt.
  std::optional<T> try_pop() {
    if (state_.load(std::memory_order_acquire) & kPoisoned) return std::nullopt;
    // relaxed: head_ is written only by this (the consumer) thread.
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;  // genuinely empty
    }
    Slot& slot = slots_[head & mask_];
    std::optional<T> out(std::move(*slot.get()));
    slot.destroy();
    head_.store(head + 1, std::memory_order_release);
    pop_events_.fetch_add(1, std::memory_order_release);
    pop_events_.notify_one();
    return out;
  }

  /// Blocking pop: waits while the ring is empty. nullopt means
  /// end-of-stream - closed and fully drained - or poisoned.
  std::optional<T> pop() {
    for (int spins = 0;;) {
      const std::uint64_t seen = push_events_.load(std::memory_order_acquire);
      if (std::optional<T> item = try_pop()) return item;
      const std::uint32_t state = state_.load(std::memory_order_acquire);
      if (state & kPoisoned) return std::nullopt;
      if ((state & kClosed) && empty_for_consumer()) return std::nullopt;
      if (spins < kSpinLimit) {
        ++spins;
        std::this_thread::yield();
        continue;
      }
      push_events_.wait(seen, std::memory_order_acquire);
    }
  }

  /// End-of-stream: no further push() succeeds; pop() drains then stops.
  void close() {
    state_.fetch_or(kClosed, std::memory_order_release);
    wake_both();
  }

  /// Abort: both endpoints return immediately; queued items are abandoned.
  void poison() {
    state_.fetch_or(kPoisoned, std::memory_order_release);
    wake_both();
  }

 private:
  static constexpr std::uint32_t kClosed = 1u;
  static constexpr std::uint32_t kPoisoned = 2u;
  /// Brief pre-sleep spin: a streaming neighbour usually produces or
  /// consumes within a few yields, and the futex round-trip costs more.
  static constexpr int kSpinLimit = 64;

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];

    T* get() noexcept { return std::launder(reinterpret_cast<T*>(storage)); }
    void construct(T&& value) { ::new (static_cast<void*>(storage)) T(std::move(value)); }
    void destroy() noexcept { get()->~T(); }
  };

  bool empty_for_consumer() const noexcept {
    // relaxed: head_ is the consumer's own write; tail_ needs the acquire.
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  void wake_both() noexcept {
    push_events_.fetch_add(1, std::memory_order_release);
    pop_events_.fetch_add(1, std::memory_order_release);
    push_events_.notify_all();
    pop_events_.notify_all();
  }

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;

  /// Consumer-owned line: next index to pop, plus the consumer's cached
  /// view of tail (refreshed only when the cache says empty).
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;

  /// Producer-owned line: next index to push, plus the producer's cached
  /// view of head (refreshed only when the cache says full).
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;

  /// Eventcounts for the blocking paths; bumped on every push/pop and on
  /// close/poison so a sleeping endpoint always observes the event.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> push_events_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> pop_events_{0};

  alignas(kCacheLineBytes) std::atomic<std::uint32_t> state_{0};
};

}  // namespace qkdpp
