// Bounds-checked little-endian byte buffer reader/writer used for all
// classical-channel message framing. Truncation or overrun on the read side
// is a *protocol-level* failure (possibly adversarial), so it throws
// Error{kSerialization}, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvec.hpp"
#include "common/error.hpp"

namespace qkdpp {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> data);
  /// varint length + raw bytes.
  void put_blob(std::span<const std::uint8_t> data);
  void put_string(std::string_view s);
  /// varint bit-length + packed bytes.
  void put_bitvec(const BitVec& v);
  void put_u32_vec(std::span<const std::uint32_t> v);

  std::span<const std::uint8_t> data() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }
  /// Drop the contents but keep the capacity (scratch-buffer reuse).
  void clear() noexcept { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  double get_f64();
  std::uint64_t get_varint();
  std::vector<std::uint8_t> get_bytes(std::size_t n);
  std::vector<std::uint8_t> get_blob();
  std::string get_string();
  BitVec get_bitvec();
  std::vector<std::uint32_t> get_u32_vec();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == data_.size(); }
  /// Throws kSerialization unless every byte was consumed.
  void expect_exhausted() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace qkdpp
