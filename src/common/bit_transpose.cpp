#include "common/bit_transpose.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace qkdpp {

void transpose64(std::uint64_t w[64]) noexcept {
  // Delta-swap network: round j exchanges the j-offset off-diagonal
  // sub-blocks, halving the block size each round (Hacker's Delight
  // fig. 7-6 generalized to 64 bits).
  // Bit 0 is column 0 (LSB-first, matching BitVec), so each round swaps
  // the HIGH j columns of the upper row group with the LOW j columns of
  // the lower one - the mirror of the textbook MSB-first formulation.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((w[k] >> j) ^ w[k | j]) & m;
      w[k] ^= t << j;
      w[k | j] ^= t;
    }
  }
}

void pack_lanes(std::span<const BitVec* const> lanes, std::size_t nbits,
                std::uint64_t* out) {
  QKDPP_REQUIRE(lanes.size() <= 64, "at most 64 lanes per word");
  for (const BitVec* lane : lanes) {
    QKDPP_REQUIRE(lane != nullptr && lane->size() == nbits,
                  "lane length mismatch");
  }
  std::uint64_t block[64];
  for (std::size_t base = 0; base < nbits; base += 64) {
    const std::size_t lim = std::min<std::size_t>(64, nbits - base);
    // Row l = lane l's next 64 bits (tail bits beyond size() are zero by
    // the BitVec invariant); absent lanes contribute zero rows.
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      block[l] = lanes[l]->words()[base >> 6];
    }
    std::memset(block + lanes.size(), 0,
                (64 - lanes.size()) * sizeof(std::uint64_t));
    transpose64(block);
    // Transposed row p holds bit l = lane l's bit (base + p).
    std::memcpy(out + base, block, lim * sizeof(std::uint64_t));
  }
}

void unpack_lane(const std::uint64_t* words, std::size_t nbits, unsigned lane,
                 BitVec& out) {
  QKDPP_REQUIRE(lane < 64, "lane index out of range");
  out.resize(nbits);
  auto dst = out.mutable_words();
  for (std::size_t base = 0; base < nbits; base += 64) {
    const std::size_t lim = std::min<std::size_t>(64, nbits - base);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < lim; ++k) {
      acc |= ((words[base + k] >> lane) & 1u) << k;
    }
    dst[base >> 6] = acc;
  }
}

}  // namespace qkdpp
