// Fixed-size thread pool with a blocking parallel_for, used by the
// CpuParallel backend. Task-based (CP.4): callers submit work items, never
// manage threads. Destruction joins all workers after draining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qkdpp {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Split [begin, end) into chunks of at least `grain`, run `body(lo, hi)`
  /// on the pool, and block until every chunk finished. The calling thread
  /// also works, so a pool of N threads yields N+1-way parallelism.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Process-wide pool for kernels that do not carry their own (sized from
/// hardware_concurrency on first use).
ThreadPool& global_pool();

}  // namespace qkdpp
