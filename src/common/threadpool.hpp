// Work-stealing thread pool with a blocking parallel_for, used by the
// CpuParallel backend and the link orchestrator. Task-based (CP.4): callers
// submit work items, never manage threads. Destruction joins all workers
// after draining.
//
// Internally each worker owns a cache-line-padded deque: external submits
// round-robin across the deques, a worker pops its own queue from the
// front and steals from the back of its neighbours' when empty, so N
// submitters never serialize on one global lock. Idle workers park on a
// shared condition variable guarded by a seq_cst pending-task counter
// (submit publishes the task before reading the idle count; a parking
// worker publishes its idle count before re-checking pending — at least
// one side always observes the other, so no wakeup is lost).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace qkdpp {

class ThreadPool {
 public:
  /// Counter snapshot for observability; totals are monotonic over the
  /// pool's lifetime, gauges (queue_depth, busy_workers) are instantaneous.
  struct Stats {
    std::size_t threads = 0;       ///< worker thread count
    std::size_t queue_depth = 0;   ///< tasks submitted but not yet claimed
    std::size_t busy_workers = 0;  ///< workers currently running a task
    std::uint64_t submitted = 0;   ///< total tasks accepted by submit()
    std::uint64_t executed = 0;    ///< total tasks that finished running
    std::uint64_t stolen = 0;      ///< tasks claimed off another queue
  };

  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return queue_count_; }

  /// Enqueue a task; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Split [begin, end) into chunks of at least `grain`, run `body(lo, hi)`
  /// on the pool, and block until every chunk finished. The calling thread
  /// also works, so a pool of N threads yields N+1-way parallelism; while
  /// waiting it keeps draining pool tasks, so nested parallel_for from a
  /// worker cannot deadlock.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  Stats stats() const;

 private:
  /// One per worker; padded so a submit landing on queue i never bounces
  /// the line that worker j is popping from.
  struct alignas(64) WorkerQueue {
    // All queues share one rank: a claimer locks its own queue, finds it
    // empty, RELEASES it, and only then probes victims - two queue locks
    // are never held together, so same-rank acquisition never happens.
    mutable Mutex mutex{LockRank::kPoolQueue, "pool.queue"};
    std::deque<std::packaged_task<void()>> tasks QKD_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t my_index);
  /// Claim one task: `my_index`'s queue from the front, then steal from
  /// the back of the others. kNoOwner (external caller) steals from all.
  bool claim_and_run(std::size_t my_index);

  static constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);

  std::unique_ptr<WorkerQueue[]> queues_;
  /// Fixed before any worker starts; the steal loops read this, never
  /// workers_.size() (the vector is still growing while early workers run).
  std::size_t queue_count_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};

  /// Idle-parking state; pending_ counts submitted-but-unclaimed tasks.
  Mutex idle_mutex_{LockRank::kPoolIdle, "pool.idle"};
  CondVar idle_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> idle_count_{0};
  std::atomic<bool> stopping_{false};

  /// Observability counters (Stats snapshot).
  std::atomic<std::size_t> busy_workers_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

/// Process-wide pool for kernels that do not carry their own (sized from
/// hardware_concurrency on first use).
ThreadPool& global_pool();

}  // namespace qkdpp
