#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/mutex.hpp"

namespace qkdpp {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_sink_mutex{LockRank::kLog, "log.sink"};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  // relaxed: the level is an independent filter knob; no other data is
  // published through it, so ordering against other memory is irrelevant.
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  // relaxed: see set_log_level - a stale level drops or emits one line.
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  const auto now = std::chrono::duration<double>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[%12.6f] %s [%s] %s\n", now, level_tag(level),
               component.c_str(), message.c_str());
}

}  // namespace qkdpp
