// Number-theoretic transform over Z_p, p = 998244353 = 119 * 2^23 + 1.
//
// Backs the fast Toeplitz privacy-amplification kernel: a binary Toeplitz
// matrix-vector product is a polynomial multiplication over GF(2), computed
// here as an exact integer convolution (coefficient counts < p always, since
// supported lengths stay below 2^23) followed by a parity take. Exactness is
// the reason this is an NTT and not a floating-point FFT - there is no
// rounding-error bound limiting block length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qkdpp {

/// Largest supported convolution output length (transform limit of p).
constexpr std::size_t kNttMaxLength = std::size_t{1} << 23;

/// In-place forward/inverse NTT; `data.size()` must be a power of two
/// <= kNttMaxLength. Values must already be reduced mod p.
void ntt(std::vector<std::uint32_t>& data, bool inverse);

/// Exact convolution of two integer sequences mod p. Result length is
/// a.size() + b.size() - 1 (empty input -> empty output).
std::vector<std::uint32_t> ntt_convolve(const std::vector<std::uint32_t>& a,
                                        const std::vector<std::uint32_t>& b);

}  // namespace qkdpp
