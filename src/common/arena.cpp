#include "common/arena.hpp"

#include <algorithm>
#include <utility>

namespace qkdpp {

BlockArena::BlockArena(std::size_t initial_bytes) {
  const std::size_t words = std::max<std::size_t>(1, (initial_bytes + 7) / 8);
  slabs_.push_back(
      {std::make_unique<std::uint64_t[]>(words), words});
}

std::uint64_t* BlockArena::words(std::size_t n) {
  if (n == 0) n = 1;  // keep returned pointers distinct and dereferenceable
  Slab* active = &slabs_.back();
  if (offset_words_ + n > active->capacity_words) {
    grow(n);
    active = &slabs_.back();
  }
  std::uint64_t* p = active->words.get() + offset_words_;
  offset_words_ += n;
  high_water_bytes_ =
      std::max(high_water_bytes_, (retired_words_ + offset_words_) * 8);
  return p;
}

void BlockArena::grow(std::size_t min_words) {
  // Geometric growth so a block that outgrows the slab converges in a few
  // overflows; the remainder of the old slab is abandoned until reset().
  retired_words_ += offset_words_;
  const std::size_t next =
      std::max(min_words, slabs_.back().capacity_words * 2);
  slabs_.push_back({std::make_unique<std::uint64_t[]>(next), next});
  offset_words_ = 0;
  ++overflow_slabs_;
}

BitVec& BlockArena::scratch_bits() {
  if (bits_borrowed_ == bit_pool_.size()) {
    bit_pool_.push_back(std::make_unique<BitVec>());
  }
  BitVec& v = *bit_pool_[bits_borrowed_++];
  v.clear();
  return v;
}

ByteWriter& BlockArena::scratch_writer() {
  if (writers_borrowed_ == writer_pool_.size()) {
    writer_pool_.push_back(std::make_unique<ByteWriter>());
  }
  ByteWriter& w = *writer_pool_[writers_borrowed_++];
  w.clear();
  return w;
}

void BlockArena::reset() {
  if (slabs_.size() > 1) {
    // Keep only the largest slab (always the most recently grown one, by
    // construction) so the next block fits without overflowing again.
    Slab biggest = std::move(slabs_.back());
    slabs_.clear();
    slabs_.push_back(std::move(biggest));
  }
  offset_words_ = 0;
  retired_words_ = 0;
  bits_borrowed_ = 0;
  writers_borrowed_ = 0;
}

ArenaStats BlockArena::stats() const {
  ArenaStats s;
  s.used_bytes = (retired_words_ + offset_words_) * 8;
  for (const Slab& slab : slabs_) s.capacity_bytes += slab.capacity_words * 8;
  s.high_water_bytes = high_water_bytes_;
  s.slab_count = slabs_.size();
  s.overflow_slabs = overflow_slabs_;
  s.scratch_bitvecs = bit_pool_.size();
  s.scratch_writers = writer_pool_.size();
  return s;
}

BlockArena& thread_arena() {
  thread_local BlockArena arena;
  return arena;
}

}  // namespace qkdpp
