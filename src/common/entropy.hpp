// Information-theoretic helpers shared by parameter estimation,
// reconciliation efficiency accounting and the finite-key planner.
#pragma once

#include <cmath>

namespace qkdpp {

/// Binary Shannon entropy h2(p) in bits; 0 at the endpoints by continuity.
inline double binary_entropy(double p) noexcept {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// Inverse of binary_entropy on [0, 1/2] by bisection (monotone there).
double binary_entropy_inverse(double h) noexcept;

/// Hoeffding deviation term: with probability >= 1 - eps the empirical rate
/// over n samples is within this of the true rate.
inline double hoeffding_delta(std::size_t n, double eps) noexcept {
  if (n == 0) return 1.0;
  return std::sqrt(std::log(1.0 / eps) / (2.0 * static_cast<double>(n)));
}

/// Finite-sampling correction for the phase error rate when m of n+m bits
/// were tested (Fung/Ma/Chau-style random-sampling bound, Gaussian-tail form).
double sampling_correction(std::size_t n_key, std::size_t n_test,
                           double eps) noexcept;

}  // namespace qkdpp
