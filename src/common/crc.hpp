// CRC32C (Castagnoli) and CRC64 (ECMA-182), table-driven.
//
// CRC32C is used for cheap frame integrity on the classical channel (NOT for
// security; that is Wegman-Carter's job) and as the fast path of
// post-reconciliation error verification during development. CRC64 backs the
// verification stage's larger-tag variant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace qkdpp {

/// CRC32C with slice-by-8; `seed` enables incremental use.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0) noexcept;

/// CRC64/ECMA-182, bit-reflected, single-table.
std::uint64_t crc64(std::span<const std::uint8_t> data,
                    std::uint64_t seed = 0) noexcept;

}  // namespace qkdpp
