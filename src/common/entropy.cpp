#include "common/entropy.hpp"

#include <cstddef>

namespace qkdpp {

double binary_entropy_inverse(double h) noexcept {
  if (h <= 0.0) return 0.0;
  if (h >= 1.0) return 0.5;
  double lo = 0.0;
  double hi = 0.5;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (binary_entropy(mid) < h) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double sampling_correction(std::size_t n_key, std::size_t n_test,
                           double eps) noexcept {
  if (n_key == 0 || n_test == 0) return 0.5;
  const auto n = static_cast<double>(n_key);
  const auto m = static_cast<double>(n_test);
  // Serfling-style bound for sampling without replacement: the unobserved
  // error rate exceeds the observed one by at most this with prob >= 1 - eps.
  return std::sqrt((n + m) * (m + 1.0) * std::log(1.0 / eps) /
                   (2.0 * m * m * n));
}

}  // namespace qkdpp
