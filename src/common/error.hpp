// Error taxonomy for qkdpp.
//
// Post-processing has two distinct failure regimes and the type system keeps
// them apart:
//   * programming-contract violations  -> std::logic_error family (bugs)
//   * run-time protocol/data failures  -> qkdpp::Error family (expected,
//     recoverable: the session aborts the current block and continues)
#pragma once

#include <stdexcept>
#include <string>

namespace qkdpp {

/// Machine-readable category for a run-time failure.
enum class ErrorCode {
  kSerialization,     ///< malformed or truncated frame
  kProtocol,          ///< message out of protocol order / wrong type
  kAuthentication,    ///< Wegman-Carter tag mismatch
  kKeyExhausted,      ///< authentication key pool ran dry
  kDecodeFailure,     ///< reconciliation could not converge
  kVerifyMismatch,    ///< post-reconciliation hash mismatch
  kQberTooHigh,       ///< parameter estimation above abort threshold
  kInsufficientKey,   ///< finite-key planner says no extractable secret
  kChannelClosed,     ///< peer hung up
  kTimeout,           ///< retransmission budget or exchange deadline exhausted
  kConfig,            ///< invalid run-time configuration
};

/// Human-readable name of an ErrorCode (stable, for logs and tests).
const char* to_string(ErrorCode code) noexcept;

/// Base class of all expected run-time failures in qkdpp.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(to_string(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throw helper so call sites read as one line.
[[noreturn]] inline void throw_error(ErrorCode code, const std::string& what) {
  throw Error(code, what);
}

}  // namespace qkdpp

/// Precondition check: logic errors (bugs at the call site), not run-time
/// protocol failures. Kept enabled in release builds: the cost is negligible
/// next to the work the library does per call.
#define QKDPP_REQUIRE(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) {                                                  \
      throw std::invalid_argument(std::string("requirement failed: ") + (msg)); \
    }                                                               \
  } while (0)
