// Packed bit vector: the key-material workhorse of qkdpp.
//
// Invariant: bits are stored little-endian within 64-bit words (bit i lives in
// word i/64 at position i%64) and all unused high bits of the last word are
// zero. Every mutating operation preserves this so that word-sliced bulk
// operations (XOR, popcount, parity) never need per-call masking.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qkdpp {

class BitVec {
 public:
  BitVec() = default;

  /// A vector of `nbits` bits, all set to `value`.
  explicit BitVec(std::size_t nbits, bool value = false);

  /// Build from a 0/1 byte sequence (test-friendly constructor).
  static BitVec from_bools(std::span<const std::uint8_t> bools);

  /// Reinterpret `nbits` bits out of a little-endian byte buffer.
  static BitVec from_bytes(std::span<const std::uint8_t> bytes,
                           std::size_t nbits);

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) noexcept { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  void push_back(bool v);
  void resize(std::size_t nbits);
  void clear() noexcept;
  /// Pre-allocate backing words for `nbits` bits (size() is unchanged).
  void reserve(std::size_t nbits) { words_.reserve(words_for(nbits)); }

  /// Word-level read access for bulk kernels.
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::span<std::uint64_t> mutable_words() noexcept { return words_; }
  static constexpr std::size_t words_for(std::size_t nbits) noexcept {
    return (nbits + 63) / 64;
  }

  BitVec& operator^=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& other) const noexcept = default;

  /// Number of set bits.
  std::size_t popcount() const noexcept;
  /// XOR of all bits.
  bool parity() const noexcept;
  /// XOR of bits in the half-open range [begin, end).
  bool parity_range(std::size_t begin, std::size_t end) const noexcept;

  /// Hamming distance between equal-length vectors.
  static std::size_t hamming_distance(const BitVec& a, const BitVec& b);

  /// Copy of bits [pos, pos+len).
  BitVec subvec(std::size_t pos, std::size_t len) const;
  /// subvec() into an existing vector, reusing its capacity — the
  /// allocation-free form for per-frame scratch. `out` must not alias
  /// *this.
  void subvec_into(std::size_t pos, std::size_t len, BitVec& out) const;
  /// Append all of `other` after the current bits.
  void append(const BitVec& other);

  /// Gather bits at the given positions (in order) into a new vector.
  BitVec gather(std::span<const std::uint32_t> positions) const;

  /// Word-level compress: the bits at positions where `mask` is set, in
  /// order. Result length is mask.popcount(). Requires equal sizes.
  /// (BMI2 PEXT per word when the CPU has it, portable bit loop otherwise.)
  BitVec select(const BitVec& mask) const;

  /// Word-level expand, the inverse of select(): bit k of *this lands at
  /// the position of the k-th set bit of `mask`; other positions are zero.
  /// Requires size() == mask.popcount(); result length is mask.size().
  BitVec scatter(const BitVec& mask) const;

  /// Little-endian byte serialization (size() bits, last byte zero-padded).
  std::vector<std::uint8_t> to_bytes() const;

  /// "0101..." debugging aid; capped output for large vectors.
  std::string to_string(std::size_t max_bits = 128) const;

 private:
  void mask_tail() noexcept;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qkdpp
