#include "common/gf2.hpp"

namespace qkdpp {

U128 clmul64(std::uint64_t a, std::uint64_t b) noexcept {
  // 4-bit window: precompute a * w for all 16 degree-<4 polynomials w, then
  // combine 16 windowed partial products of b. Each table entry fits in
  // 64 + 3 bits, so keep a 3-bit overflow half per entry.
  std::uint64_t tab_lo[16];
  std::uint64_t tab_hi[16];
  tab_lo[0] = 0;
  tab_hi[0] = 0;
  tab_lo[1] = a;
  tab_hi[1] = 0;
  for (int w = 2; w < 16; w += 2) {
    // even: shift of half
    tab_lo[w] = tab_lo[w / 2] << 1;
    tab_hi[w] = (tab_hi[w / 2] << 1) | (tab_lo[w / 2] >> 63);
    // odd: even ^ a
    tab_lo[w + 1] = tab_lo[w] ^ a;
    tab_hi[w + 1] = tab_hi[w];
  }
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  for (int k = 15; k >= 0; --k) {
    // result <<= 4
    hi = (hi << 4) | (lo >> 60);
    lo <<= 4;
    const unsigned w = (b >> (4 * k)) & 0xf;
    lo ^= tab_lo[w];
    hi ^= tab_hi[w];
  }
  return {hi, lo};
}

namespace {

// Reduce a 256-bit polynomial (p3 p2 p1 p0, p3 most significant) modulo
// x^128 + x^7 + x^2 + x + 1. Uses x^128 === r(x) with r = 0x87.
U128 reduce256(std::uint64_t p3, std::uint64_t p2, std::uint64_t p1,
               std::uint64_t p0) noexcept {
  constexpr std::uint64_t kR = 0x87;
  // Fold [p3 p2] * r into the low 192 bits.
  const U128 f2 = clmul64(p2, kR);  // contributes at bit offset 0 of the fold
  const U128 f3 = clmul64(p3, kR);  // contributes at bit offset 64
  std::uint64_t q0 = p0 ^ f2.lo;
  std::uint64_t q1 = p1 ^ f2.hi ^ f3.lo;
  const std::uint64_t q2 = f3.hi;  // at most deg 70-128 = < 2^7 bits
  // Fold the residual q2 (at offset 128) once more; q2 * r fits in 64 bits.
  const U128 g = clmul64(q2, kR);
  q0 ^= g.lo;
  q1 ^= g.hi;  // g.hi is zero in practice but harmless
  return {q1, q0};
}

}  // namespace

U128 gf128_mul(U128 a, U128 b) noexcept {
  const U128 ll = clmul64(a.lo, b.lo);
  const U128 hh = clmul64(a.hi, b.hi);
  const U128 lh = clmul64(a.lo, b.hi);
  const U128 hl = clmul64(a.hi, b.lo);
  const U128 mid = lh ^ hl;
  // 256-bit product = hh << 128 ^ mid << 64 ^ ll
  const std::uint64_t p0 = ll.lo;
  const std::uint64_t p1 = ll.hi ^ mid.lo;
  const std::uint64_t p2 = hh.lo ^ mid.hi;
  const std::uint64_t p3 = hh.hi;
  return reduce256(p3, p2, p1, p0);
}

U128 gf128_pow(U128 base, std::uint64_t exponent) noexcept {
  U128 result{0, 1};
  U128 acc = base;
  while (exponent != 0) {
    if (exponent & 1) result = gf128_mul(result, acc);
    acc = gf128_mul(acc, acc);
    exponent >>= 1;
  }
  return result;
}

}  // namespace qkdpp
