#include "common/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/error.hpp"

namespace qkdpp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is the one invalid state; splitmix makes it (practically)
  // unreachable, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  if (bound == 0) return 0;
  using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint32_t Xoshiro256::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint32_t n = 0;
    while (prod > limit) {
      prod *= next_double();
      ++n;
    }
    return n;
  }
  const double v = mean + std::sqrt(mean) * normal();
  return v <= 0.0 ? 0u : static_cast<std::uint32_t>(std::lround(v));
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

BitVec Xoshiro256::random_bits(std::size_t nbits) noexcept {
  BitVec v(nbits);
  auto words = v.mutable_words();
  for (auto& w : words) w = next_u64();
  // Restore the tail invariant the raw word fill just violated.
  v.resize(nbits);
  return v;
}

std::vector<std::uint32_t> Xoshiro256::permutation(std::size_t n) noexcept {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  shuffle(std::span<std::uint32_t>(p));
  return p;
}

std::vector<std::uint32_t> Xoshiro256::sample_without_replacement(
    std::size_t n, std::size_t k) {
  QKDPP_REQUIRE(k <= n, "cannot sample more than population");
  if (k == 0) return {};
  // For small k relative to n use rejection against a hash set; otherwise a
  // partial Fisher-Yates over the full index range.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k * 20 < n) {
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      const auto candidate = static_cast<std::uint32_t>(uniform(n));
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  } else {
    std::vector<std::uint32_t> pool(n);
    std::iota(pool.begin(), pool.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qkdpp
