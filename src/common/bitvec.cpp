#include "common/bitvec.hpp"

#include <bit>
#include <algorithm>

#include "common/error.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QKDPP_X86_BMI2 1
#include <immintrin.h>
#endif

namespace qkdpp {

namespace {

// Per-word compress/expand primitives. The BMI2 variants are compiled with
// function-level target attributes and chosen once at startup, so the
// default build stays portable while PEXT/PDEP-capable CPUs get the
// single-instruction path.

std::uint64_t extract_bits_portable(std::uint64_t w, std::uint64_t m) noexcept {
  std::uint64_t out = 0;
  unsigned k = 0;
  while (m != 0) {
    const std::uint64_t lsb = m & (~m + 1);
    out |= std::uint64_t{(w & lsb) != 0} << k;
    ++k;
    m &= m - 1;
  }
  return out;
}

std::uint64_t deposit_bits_portable(std::uint64_t w, std::uint64_t m) noexcept {
  std::uint64_t out = 0;
  unsigned k = 0;
  while (m != 0) {
    const std::uint64_t lsb = m & (~m + 1);
    out |= ((w >> k) & 1u) ? lsb : 0;
    ++k;
    m &= m - 1;
  }
  return out;
}

#ifdef QKDPP_X86_BMI2

__attribute__((target("bmi2"))) std::uint64_t extract_bits_bmi2(
    std::uint64_t w, std::uint64_t m) noexcept {
  return _pext_u64(w, m);
}

__attribute__((target("bmi2"))) std::uint64_t deposit_bits_bmi2(
    std::uint64_t w, std::uint64_t m) noexcept {
  return _pdep_u64(w, m);
}

const bool g_has_bmi2 = __builtin_cpu_supports("bmi2") != 0;

inline std::uint64_t extract_bits(std::uint64_t w, std::uint64_t m) noexcept {
  return g_has_bmi2 ? extract_bits_bmi2(w, m) : extract_bits_portable(w, m);
}

inline std::uint64_t deposit_bits(std::uint64_t w, std::uint64_t m) noexcept {
  return g_has_bmi2 ? deposit_bits_bmi2(w, m) : deposit_bits_portable(w, m);
}

#else

inline std::uint64_t extract_bits(std::uint64_t w, std::uint64_t m) noexcept {
  return extract_bits_portable(w, m);
}

inline std::uint64_t deposit_bits(std::uint64_t w, std::uint64_t m) noexcept {
  return deposit_bits_portable(w, m);
}

#endif  // QKDPP_X86_BMI2

}  // namespace

BitVec::BitVec(std::size_t nbits, bool value)
    : nbits_(nbits),
      words_(words_for(nbits), value ? ~std::uint64_t{0} : std::uint64_t{0}) {
  mask_tail();
}

BitVec BitVec::from_bools(std::span<const std::uint8_t> bools) {
  BitVec v(bools.size());
  // Build each word in a register instead of 64 read-modify-writes.
  for (std::size_t base = 0; base < bools.size(); base += 64) {
    const std::size_t lim = std::min<std::size_t>(64, bools.size() - base);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < lim; ++k) {
      acc |= std::uint64_t{bools[base + k] != 0} << k;
    }
    v.words_[base >> 6] = acc;
  }
  return v;
}

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes,
                          std::size_t nbits) {
  QKDPP_REQUIRE(bytes.size() * 8 >= nbits, "byte buffer too short for nbits");
  BitVec v(nbits);
  const std::size_t nbytes = (nbits + 7) / 8;
  for (std::size_t i = 0; i < nbytes; ++i) {
    v.words_[i >> 3] |= std::uint64_t{bytes[i]} << ((i & 7) * 8);
  }
  v.mask_tail();
  return v;
}

void BitVec::push_back(bool v) {
  if (nbits_ % 64 == 0) words_.push_back(0);
  ++nbits_;
  if (v) set(nbits_ - 1, true);
}

void BitVec::resize(std::size_t nbits) {
  words_.resize(words_for(nbits), 0);
  nbits_ = nbits;
  mask_tail();
}

void BitVec::clear() noexcept {
  nbits_ = 0;
  words_.clear();
}

BitVec& BitVec::operator^=(const BitVec& other) {
  QKDPP_REQUIRE(nbits_ == other.nbits_, "BitVec size mismatch in ^=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  QKDPP_REQUIRE(nbits_ == other.nbits_, "BitVec size mismatch in &=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  QKDPP_REQUIRE(nbits_ == other.nbits_, "BitVec size mismatch in |=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::parity() const noexcept {
  std::uint64_t acc = 0;
  for (std::uint64_t w : words_) acc ^= w;
  return std::popcount(acc) & 1;
}

bool BitVec::parity_range(std::size_t begin, std::size_t end) const noexcept {
  if (begin >= end) return false;
  const std::size_t wb = begin >> 6;
  const std::size_t we = (end - 1) >> 6;
  if (wb == we) {
    std::uint64_t w = words_[wb];
    w >>= (begin & 63);
    const std::size_t len = end - begin;
    if (len < 64) w &= (std::uint64_t{1} << len) - 1;
    return std::popcount(w) & 1;
  }
  std::uint64_t acc = words_[wb] >> (begin & 63);
  for (std::size_t i = wb + 1; i < we; ++i) acc ^= words_[i];
  std::uint64_t last = words_[we];
  const std::size_t tail = end - (we << 6);  // 1..64 bits used in last word
  if (tail < 64) last &= (std::uint64_t{1} << tail) - 1;
  acc ^= last;
  return std::popcount(acc) & 1;
}

std::size_t BitVec::hamming_distance(const BitVec& a, const BitVec& b) {
  QKDPP_REQUIRE(a.nbits_ == b.nbits_, "BitVec size mismatch in hamming");
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(a.words_[i] ^ b.words_[i]));
  }
  return n;
}

BitVec BitVec::subvec(std::size_t pos, std::size_t len) const {
  BitVec out;
  subvec_into(pos, len, out);
  return out;
}

void BitVec::subvec_into(std::size_t pos, std::size_t len, BitVec& out) const {
  QKDPP_REQUIRE(pos + len <= nbits_, "subvec out of range");
  out.nbits_ = len;
  out.words_.resize(words_for(len));
  const std::size_t shift = pos & 63;
  const std::size_t first = pos >> 6;
  if (shift == 0) {
    std::copy_n(words_.begin() + static_cast<std::ptrdiff_t>(first),
                out.words_.size(), out.words_.begin());
  } else {
    for (std::size_t i = 0; i < out.words_.size(); ++i) {
      std::uint64_t w = words_[first + i] >> shift;
      if (first + i + 1 < words_.size()) {
        w |= words_[first + i + 1] << (64 - shift);
      }
      out.words_[i] = w;
    }
  }
  out.mask_tail();
}

void BitVec::append(const BitVec& other) {
  const std::size_t shift = nbits_ & 63;
  if (shift == 0) {
    words_.insert(words_.end(), other.words_.begin(), other.words_.end());
    nbits_ += other.nbits_;
    return;
  }
  nbits_ += other.nbits_;
  words_.resize(words_for(nbits_), 0);
  const std::size_t base = (nbits_ - other.nbits_) >> 6;
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[base + i] |= other.words_[i] << shift;
    if (base + i + 1 < words_.size()) {
      words_[base + i + 1] |= other.words_[i] >> (64 - shift);
    }
  }
  mask_tail();
}

BitVec BitVec::gather(std::span<const std::uint32_t> positions) const {
  BitVec out(positions.size());
  // Accumulate each output word in a register; the source reads stay
  // irregular but the writes become one store per 64 bits.
  for (std::size_t base = 0; base < positions.size(); base += 64) {
    const std::size_t lim = std::min<std::size_t>(64, positions.size() - base);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < lim; ++k) {
      acc |= std::uint64_t{get(positions[base + k])} << k;
    }
    out.words_[base >> 6] = acc;
  }
  return out;
}

BitVec BitVec::select(const BitVec& mask) const {
  QKDPP_REQUIRE(nbits_ == mask.nbits_, "BitVec size mismatch in select");
  BitVec out(mask.popcount());
  std::uint64_t acc = 0;
  unsigned fill = 0;
  std::size_t ow = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t m = mask.words_[i];
    if (m == 0) continue;
    const std::uint64_t bits = extract_bits(words_[i], m);
    const auto cnt = static_cast<unsigned>(std::popcount(m));
    acc |= bits << fill;
    if (fill + cnt >= 64) {
      out.words_[ow++] = acc;
      acc = fill != 0 ? bits >> (64 - fill) : 0;
      fill = fill + cnt - 64;
    } else {
      fill += cnt;
    }
  }
  if (fill != 0) out.words_[ow] = acc;
  return out;
}

BitVec BitVec::scatter(const BitVec& mask) const {
  QKDPP_REQUIRE(nbits_ == mask.popcount(), "BitVec size mismatch in scatter");
  BitVec out(mask.nbits_);
  std::size_t cursor = 0;  // next unread source bit
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const std::uint64_t m = mask.words_[i];
    if (m == 0) continue;
    // Read the next popcount(m) source bits (they span at most two words);
    // deposit_bits ignores anything above that count.
    const std::size_t word = cursor >> 6;
    const std::size_t shift = cursor & 63;
    std::uint64_t bits = words_[word] >> shift;
    if (shift != 0 && word + 1 < words_.size()) {
      bits |= words_[word + 1] << (64 - shift);
    }
    out.words_[i] = deposit_bits(bits, m);
    cursor += static_cast<std::size_t>(std::popcount(m));
  }
  return out;
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((nbits_ + 7) / 8, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(words_[i >> 3] >> ((i & 7) * 8));
  }
  return out;
}

std::string BitVec::to_string(std::size_t max_bits) const {
  std::string s;
  const std::size_t n = std::min(nbits_, max_bits);
  s.reserve(n + 3);
  for (std::size_t i = 0; i < n; ++i) s.push_back(get(i) ? '1' : '0');
  if (n < nbits_) s += "...";
  return s;
}

void BitVec::mask_tail() noexcept {
  const std::size_t tail = nbits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace qkdpp
