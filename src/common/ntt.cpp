#include "common/ntt.hpp"

#include <bit>

#include "common/error.hpp"

namespace qkdpp {

namespace {

constexpr std::uint64_t kP = 998244353;  // 119 * 2^23 + 1
constexpr std::uint64_t kG = 3;          // primitive root of p

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  base %= kP;
  while (exp != 0) {
    if (exp & 1) result = result * base % kP;
    base = base * base % kP;
    exp >>= 1;
  }
  return result;
}

}  // namespace

void ntt(std::vector<std::uint32_t>& data, bool inverse) {
  const std::size_t n = data.size();
  QKDPP_REQUIRE(std::has_single_bit(n), "NTT length must be a power of two");
  QKDPP_REQUIRE(n <= kNttMaxLength, "NTT length exceeds transform limit");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    std::uint64_t wlen = pow_mod(kG, (kP - 1) / len);
    if (inverse) wlen = pow_mod(wlen, kP - 2);
    for (std::size_t i = 0; i < n; i += len) {
      std::uint64_t w = 1;
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::uint64_t u = data[i + j];
        const std::uint64_t v = data[i + j + len / 2] * w % kP;
        data[i + j] = static_cast<std::uint32_t>(u + v < kP ? u + v : u + v - kP);
        data[i + j + len / 2] =
            static_cast<std::uint32_t>(u >= v ? u - v : u + kP - v);
        w = w * wlen % kP;
      }
    }
  }

  if (inverse) {
    const std::uint64_t n_inv = pow_mod(n % kP, kP - 2);
    for (auto& x : data) {
      x = static_cast<std::uint32_t>(x * n_inv % kP);
    }
  }
}

std::vector<std::uint32_t> ntt_convolve(const std::vector<std::uint32_t>& a,
                                        const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  QKDPP_REQUIRE(out_len <= kNttMaxLength, "convolution too long for NTT");
  std::size_t n = 1;
  while (n < out_len) n <<= 1;

  std::vector<std::uint32_t> fa(n, 0);
  std::vector<std::uint32_t> fb(n, 0);
  std::copy(a.begin(), a.end(), fa.begin());
  std::copy(b.begin(), b.end(), fb.begin());

  ntt(fa, /*inverse=*/false);
  ntt(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = static_cast<std::uint32_t>(std::uint64_t{fa[i]} * fb[i] % kP);
  }
  ntt(fa, /*inverse=*/true);
  fa.resize(out_len);
  return fa;
}

}  // namespace qkdpp
