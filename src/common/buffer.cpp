#include "common/buffer.hpp"

#include <bit>
#include <cstring>

namespace qkdpp {

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void ByteWriter::put_blob(std::span<const std::uint8_t> data) {
  put_varint(data.size());
  put_bytes(data);
}

void ByteWriter::put_string(std::string_view s) {
  put_varint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::put_bitvec(const BitVec& v) {
  put_varint(v.size());
  const auto bytes = v.to_bytes();
  put_bytes(bytes);
}

void ByteWriter::put_u32_vec(std::span<const std::uint32_t> v) {
  put_varint(v.size());
  for (const std::uint32_t x : v) put_u32(x);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw_error(ErrorCode::kSerialization, "truncated frame");
  }
}

std::uint8_t ByteReader::get_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t byte = get_u8();
    if (shift >= 63 && byte > 1) {
      throw_error(ErrorCode::kSerialization, "varint overflow");
    }
    v |= std::uint64_t{byte & 0x7f} << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::vector<std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<std::uint8_t> ByteReader::get_blob() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) {
    throw_error(ErrorCode::kSerialization, "blob length exceeds frame");
  }
  return get_bytes(static_cast<std::size_t>(n));
}

std::string ByteReader::get_string() {
  const auto bytes = get_blob();
  return {bytes.begin(), bytes.end()};
}

BitVec ByteReader::get_bitvec() {
  const std::uint64_t nbits = get_varint();
  const std::size_t nbytes = static_cast<std::size_t>((nbits + 7) / 8);
  if (nbytes > remaining()) {
    throw_error(ErrorCode::kSerialization, "bitvec length exceeds frame");
  }
  const auto bytes = get_bytes(nbytes);
  return BitVec::from_bytes(bytes, static_cast<std::size_t>(nbits));
}

std::vector<std::uint32_t> ByteReader::get_u32_vec() {
  const std::uint64_t n = get_varint();
  if (n * 4 > remaining()) {
    throw_error(ErrorCode::kSerialization, "u32 vector exceeds frame");
  }
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_u32());
  return out;
}

void ByteReader::expect_exhausted() const {
  if (!exhausted()) {
    throw_error(ErrorCode::kSerialization, "trailing bytes in frame");
  }
}

}  // namespace qkdpp
