// Word-level carry-less (GF(2)[x]) polynomial multiplication.
//
// The binary-polynomial product is the workhorse behind word-parallel
// Toeplitz hashing: a Toeplitz matrix-vector product over GF(2) is a slice
// of the carry-less convolution of the input with the seed, so one
// multi-word clmul replaces the per-bit NTT expansion entirely.
//
// Layout matches BitVec: bit i of the polynomial (coefficient of x^i) lives
// in word i/64 at position i%64, unused high bits zero. Three layers:
//
//   * clmul64_fast  - 64x64 -> 128 bit product. PCLMULQDQ when the CPU
//     reports it at runtime (function-level target attributes, no special
//     build flags needed), else a 4-bit-window table.
//   * schoolbook    - word-level shift-XOR with the window table hoisted
//     per multiplicand word; O(na * nb) word products.
//   * Karatsuba     - balanced split above kKaratsubaThresholdWords;
//     unbalanced operands are chunked into balanced multiplies. Takes the
//     quadratic bit-level cost down to O(n^1.585) for PA-sized blocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bitvec.hpp"
#include "common/gf2.hpp"

namespace qkdpp {

/// Karatsuba recursion floor, in 64-bit words per operand. Below this the
/// windowed schoolbook wins (recursion + scratch overhead dominates).
constexpr std::size_t kKaratsubaThresholdWords = 24;

/// True when the running CPU reports PCLMULQDQ and the kernels dispatch to
/// the hardware instruction (decided once at startup).
bool clmul_has_hardware() noexcept;

/// Carry-less 64x64 -> 128 product (hardware instruction when the CPU has
/// it, otherwise the same 4-bit-window algorithm as clmul64).
U128 clmul64_fast(std::uint64_t a, std::uint64_t b) noexcept;

/// XOR the GF(2)[x] product a*b into `out`. `out` must hold at least
/// a.size() + b.size() words; the caller provides the (typically zeroed)
/// accumulation target. Empty operands contribute nothing.
void gf2_poly_mul_acc(std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b,
                      std::span<std::uint64_t> out);

/// Carry-less product of two bit strings: result bit k is
/// XOR_{i+j=k} a_i b_j, with a.size() + b.size() - 1 bits total
/// (empty if either operand is empty).
BitVec gf2_poly_mul(const BitVec& a, const BitVec& b);

}  // namespace qkdpp
