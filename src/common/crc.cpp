#include "common/crc.hpp"

#include <array>

namespace qkdpp {

namespace {

// Reflected polynomial for CRC32C.
constexpr std::uint32_t kCrc32cPoly = 0x82f63b78u;
// Reflected polynomial for CRC64/ECMA-182.
constexpr std::uint64_t kCrc64Poly = 0xc96c5795d7870f42ULL;

struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

constexpr Crc32Tables make_crc32_tables() {
  Crc32Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      crc = tables.t[0][crc & 0xff] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

struct Crc64Table {
  std::array<std::uint64_t, 256> t{};
};

constexpr Crc64Table make_crc64_table() {
  Crc64Table table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kCrc64Poly : 0);
    }
    table.t[i] = crc;
  }
  return table;
}

constexpr Crc32Tables kCrc32 = make_crc32_tables();
constexpr Crc64Table kCrc64 = make_crc64_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  const std::size_t n = data.size();
  for (; i + 8 <= n; i += 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(data[i]) |
                                    static_cast<std::uint32_t>(data[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(data[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = kCrc32.t[7][lo & 0xff] ^ kCrc32.t[6][(lo >> 8) & 0xff] ^
          kCrc32.t[5][(lo >> 16) & 0xff] ^ kCrc32.t[4][lo >> 24] ^
          kCrc32.t[3][data[i + 4]] ^ kCrc32.t[2][data[i + 5]] ^
          kCrc32.t[1][data[i + 6]] ^ kCrc32.t[0][data[i + 7]];
  }
  for (; i < n; ++i) {
    crc = kCrc32.t[0][(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t crc64(std::span<const std::uint8_t> data,
                    std::uint64_t seed) noexcept {
  std::uint64_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = kCrc64.t[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace qkdpp
