#include "common/clmul.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QKDPP_X86_CLMUL 1
#include <immintrin.h>
#endif

namespace qkdpp {

namespace {

// ---------------------------------------------------------------------------
// Leaf kernels: word-level schoolbook, XOR-accumulating into out[0 .. na+nb).
// Pure accumulation (only ^=), so they are safe on any target region.

/// Portable leaf: 4-bit-window clmul with the window table hoisted out of
/// the inner loop (one table build per multiplicand word, not per product).
void schoolbook_portable(const std::uint64_t* a, std::size_t na,
                         const std::uint64_t* b, std::size_t nb,
                         std::uint64_t* out) noexcept {
  std::uint64_t tab_lo[16];
  std::uint64_t tab_hi[16];
  for (std::size_t i = 0; i < na; ++i) {
    const std::uint64_t ai = a[i];
    tab_lo[0] = 0;
    tab_hi[0] = 0;
    tab_lo[1] = ai;
    tab_hi[1] = 0;
    for (int w = 2; w < 16; w += 2) {
      tab_lo[w] = tab_lo[w / 2] << 1;
      tab_hi[w] = (tab_hi[w / 2] << 1) | (tab_lo[w / 2] >> 63);
      tab_lo[w + 1] = tab_lo[w] ^ ai;
      tab_hi[w + 1] = tab_hi[w];
    }
    for (std::size_t j = 0; j < nb; ++j) {
      const std::uint64_t bj = b[j];
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      for (int k = 15; k >= 0; --k) {
        hi = (hi << 4) | (lo >> 60);
        lo <<= 4;
        const unsigned w = static_cast<unsigned>(bj >> (4 * k)) & 0xfu;
        lo ^= tab_lo[w];
        hi ^= tab_hi[w];
      }
      out[i + j] ^= lo;
      out[i + j + 1] ^= hi;
    }
  }
}

#ifdef QKDPP_X86_CLMUL

/// Hardware leaf: one PCLMULQDQ per 64x64 product. Compiled with a
/// function-level target attribute so the rest of the build stays portable;
/// selected at runtime only when the CPU reports the feature.
__attribute__((target("pclmul,sse2"))) void schoolbook_pclmul(
    const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
    std::size_t nb, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < na; ++i) {
    const __m128i va = _mm_cvtsi64_si128(static_cast<long long>(a[i]));
    for (std::size_t j = 0; j < nb; ++j) {
      const __m128i vb = _mm_cvtsi64_si128(static_cast<long long>(b[j]));
      const __m128i p = _mm_clmulepi64_si128(va, vb, 0x00);
      out[i + j] ^=
          static_cast<std::uint64_t>(_mm_cvtsi128_si64(p));
      out[i + j + 1] ^= static_cast<std::uint64_t>(
          _mm_cvtsi128_si64(_mm_unpackhi_epi64(p, p)));
    }
  }
}

__attribute__((target("pclmul,sse2"))) U128
clmul64_pclmul(std::uint64_t a, std::uint64_t b) noexcept {
  const __m128i p =
      _mm_clmulepi64_si128(_mm_cvtsi64_si128(static_cast<long long>(a)),
                           _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
  return {static_cast<std::uint64_t>(
              _mm_cvtsi128_si64(_mm_unpackhi_epi64(p, p))),
          static_cast<std::uint64_t>(_mm_cvtsi128_si64(p))};
}

bool detect_pclmul() noexcept {
  return __builtin_cpu_supports("pclmul") != 0;
}

#else

bool detect_pclmul() noexcept { return false; }

#endif  // QKDPP_X86_CLMUL

const bool g_has_pclmul = detect_pclmul();

inline void schoolbook(const std::uint64_t* a, std::size_t na,
                       const std::uint64_t* b, std::size_t nb,
                       std::uint64_t* out) noexcept {
#ifdef QKDPP_X86_CLMUL
  if (g_has_pclmul) {
    schoolbook_pclmul(a, na, b, nb, out);
    return;
  }
#endif
  schoolbook_portable(a, na, b, nb, out);
}

// ---------------------------------------------------------------------------
// Balanced Karatsuba over n-word operands.
//
// XORs a*b into out[0 .. 2n), which must be *pristine* (contain no prior
// data this call must preserve): the middle-term correction reads the z0/z2
// partial products back out of `out`, so foreign bits there would leak into
// the result. The chunking driver below guarantees this by multiplying into
// a zeroed product buffer.

std::size_t kara_scratch_words(std::size_t n) noexcept {
  std::size_t total = 0;
  while (n > kKaratsubaThresholdWords) {
    const std::size_t m = n - n / 2;
    total += 4 * m;
    n = m;
  }
  return total;
}

void kara(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
          std::uint64_t* out, std::uint64_t* scratch) noexcept {
  if (n <= kKaratsubaThresholdWords) {
    schoolbook(a, n, b, n, out);
    return;
  }
  const std::size_t h = n / 2;
  const std::size_t m = n - h;  // m >= h
  std::uint64_t* asum = scratch;
  std::uint64_t* bsum = scratch + m;
  std::uint64_t* z1 = scratch + 2 * m;
  std::uint64_t* sub = scratch + 4 * m;
  // (a0 ^ a1), (b0 ^ b1): low halves zero-extended to m words.
  for (std::size_t k = 0; k < m; ++k) {
    asum[k] = a[h + k];
    bsum[k] = b[h + k];
  }
  for (std::size_t k = 0; k < h; ++k) {
    asum[k] ^= a[k];
    bsum[k] ^= b[k];
  }
  std::fill(z1, z1 + 2 * m, 0);
  kara(asum, bsum, m, z1, sub);   // (a0^a1)(b0^b1)
  kara(a, b, h, out, sub);        // z0 -> out[0, 2h)
  kara(a + h, b + h, m, out + 2 * h, sub);  // z2 -> out[2h, 2n)
  // Middle term z1 ^ z0 ^ z2 at word offset h. Fold z0/z2 into z1 *before*
  // touching out's middle so no read observes a partially updated word.
  for (std::size_t k = 0; k < 2 * h; ++k) z1[k] ^= out[k];
  for (std::size_t k = 0; k < 2 * m; ++k) z1[k] ^= out[2 * h + k];
  for (std::size_t k = 0; k < 2 * m; ++k) out[h + k] ^= z1[k];
}

}  // namespace

bool clmul_has_hardware() noexcept { return g_has_pclmul; }

U128 clmul64_fast(std::uint64_t a, std::uint64_t b) noexcept {
#ifdef QKDPP_X86_CLMUL
  if (g_has_pclmul) return clmul64_pclmul(a, b);
#endif
  return clmul64(a, b);
}

void gf2_poly_mul_acc(std::span<const std::uint64_t> a,
                      std::span<const std::uint64_t> b,
                      std::span<std::uint64_t> out) {
  if (a.empty() || b.empty()) return;
  QKDPP_REQUIRE(out.size() >= a.size() + b.size(),
                "gf2_poly_mul_acc output too short");
  // Orient so `a` is the shorter operand; chunk `b` into |a|-word pieces and
  // run a balanced Karatsuba per chunk.
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t na = a.size();
  if (na <= kKaratsubaThresholdWords) {
    schoolbook(a.data(), na, b.data(), b.size(), out.data());
    return;
  }
  std::vector<std::uint64_t> prod(2 * na);
  std::vector<std::uint64_t> scratch(kara_scratch_words(na));
  std::size_t off = 0;
  for (; off + na <= b.size(); off += na) {
    std::fill(prod.begin(), prod.end(), 0);
    kara(a.data(), b.data() + off, na, prod.data(), scratch.data());
    for (std::size_t k = 0; k < 2 * na; ++k) out[off + k] ^= prod[k];
  }
  if (off < b.size()) {
    // Ragged tail chunk (shorter than |a|): recurse with roles flipped.
    gf2_poly_mul_acc(b.subspan(off), a, out.subspan(off));
  }
}

BitVec gf2_poly_mul(const BitVec& a, const BitVec& b) {
  if (a.empty() || b.empty()) return BitVec();
  const std::size_t out_bits = a.size() + b.size() - 1;
  // The leaf kernels write one word past each partial product, so multiply
  // into a full na+nb-word buffer and trim to the logical bit length (the
  // mathematical product never sets bits beyond out_bits).
  std::vector<std::uint64_t> prod(a.words().size() + b.words().size(), 0);
  gf2_poly_mul_acc(a.words(), b.words(), prod);
  BitVec out(out_bits);
  std::copy_n(prod.begin(), out.words().size(), out.mutable_words().begin());
  return out;
}

}  // namespace qkdpp
