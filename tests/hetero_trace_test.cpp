// ExecutionTrace tests: recording, CSV export, occupancy math,
// thread-safety under a streaming pipeline.
#include "hetero/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "hetero/stream_pipeline.hpp"

namespace qkdpp::hetero {
namespace {

TEST(Trace, RecordsEventsInOrder) {
  ExecutionTrace trace;
  const double t0 = trace.stamp();
  trace.record("decode", "gpu-sim", 0, t0, 0.001);
  trace.record("amplify", "cpu", 0, trace.stamp(), 0.002);
  ASSERT_EQ(trace.size(), 2u);
  const auto events = trace.events();
  EXPECT_EQ(events[0].stage, "decode");
  EXPECT_EQ(events[0].device, "gpu-sim");
  EXPECT_DOUBLE_EQ(events[0].charged_s, 0.001);
  EXPECT_GE(events[0].end_s, events[0].start_s);
  EXPECT_EQ(events[1].item, 0u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  ExecutionTrace trace;
  trace.record("decode", "gpu-sim", 7, 0.0, 0.5);
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("stage,device,item,start_s,end_s,charged_s"),
            std::string::npos);
  EXPECT_NE(csv.find("decode,gpu-sim,7,"), std::string::npos);
}

TEST(Trace, OccupancyEmptyAndUnknownDevice) {
  ExecutionTrace trace;
  EXPECT_DOUBLE_EQ(trace.device_occupancy("gpu"), 0.0);
  trace.record("s", "cpu", 0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(trace.device_occupancy("gpu"), 0.0);
}

TEST(Trace, OccupancyBoundedByOne) {
  ExecutionTrace trace;
  // Two overlapping events on the same device cannot exceed 100%.
  trace.record("a", "cpu", 0, 0.0, 0.0);
  trace.record("b", "cpu", 1, 0.0, 0.0);
  EXPECT_LE(trace.device_occupancy("cpu"), 1.0);
}

TEST(Trace, ThreadSafeUnderStreamingPipeline) {
  ExecutionTrace trace;
  struct Item {
    int id;
  };
  StreamPipeline<Item> pipeline(
      {{"work", nullptr,
        [&trace](Item& item) {
          const double start = trace.stamp();
          trace.record("work", "cpu", static_cast<std::uint64_t>(item.id),
                       start, 0.0);
          return 0.0;
        }},
       {"post", nullptr,
        [&trace](Item& item) {
          const double start = trace.stamp();
          trace.record("post", "cpu2", static_cast<std::uint64_t>(item.id),
                       start, 0.0);
          return 0.0;
        }}},
      4);
  for (int i = 0; i < 64; ++i) pipeline.push({i});
  pipeline.finish();
  EXPECT_EQ(trace.size(), 128u);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_GT(out.str().size(), 128u * 10);
}

TEST(StageCostModel, EwmaTracksDriftingObservations) {
  StageCostModel model(2, 0.25);
  // Stage 0 starts at the modeled cost, then drifts to 4x: the EWMA must
  // move toward the new ratio monotonically without overshooting it.
  model.observe(0, 1.0, 1.0);
  double previous = model.correction(0);
  for (int i = 0; i < 24; ++i) {
    model.observe(0, 1.0, 4.0);
    const double current = model.correction(0);
    EXPECT_GE(current, previous - 1e-12);
    EXPECT_LE(current, 4.0 + 1e-12);
    previous = current;
  }
  EXPECT_NEAR(model.correction(0), 4.0, 0.01);
}

TEST(StageCostModel, ThreadSafeUnderConcurrentObservers) {
  StageCostModel model(4, 0.5);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&model, t] {
      for (int i = 0; i < 1000; ++i) {
        model.observe(static_cast<std::size_t>(t), 1.0, 2.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(model.samples(s), 1000u);
    EXPECT_NEAR(model.correction(s), 2.0, 1e-9);
  }
}

}  // namespace
}  // namespace qkdpp::hetero
