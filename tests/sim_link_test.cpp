// Link-simulator tests: analytic channel math, Monte-Carlo agreement with
// the WCP model, config validation, eavesdropper signature.
#include "sim/bb84.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qkdpp::sim {
namespace {

LinkConfig default_link(double km = 25.0) {
  LinkConfig link;
  link.channel.length_km = km;
  return link;
}

TEST(Channel, TransmittanceMath) {
  ChannelConfig ch;
  ch.length_km = 50.0;
  ch.attenuation_db_per_km = 0.2;
  ch.insertion_loss_db = 0.0;
  EXPECT_NEAR(ch.transmittance(), 0.1, 1e-12);  // 10 dB loss
  ch.insertion_loss_db = 3.0;
  EXPECT_NEAR(ch.transmittance(), 0.1 * std::pow(10.0, -0.3), 1e-12);
  ch.length_km = 0.0;
  ch.insertion_loss_db = 0.0;
  EXPECT_DOUBLE_EQ(ch.transmittance(), 1.0);
}

TEST(Channel, OverallTransmittanceIncludesDetector) {
  LinkConfig link = default_link(50.0);
  link.channel.insertion_loss_db = 0.0;
  link.detector.efficiency = 0.2;
  EXPECT_NEAR(link.overall_transmittance(), 0.02, 1e-12);
}

TEST(LinkValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(default_link().validate());
}

TEST(LinkValidate, RejectsBadParameters) {
  auto expect_config_error = [](LinkConfig link) {
    try {
      link.validate();
      FAIL() << "expected config error";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kConfig);
    }
  };
  LinkConfig bad = default_link();
  bad.channel.length_km = -1;
  expect_config_error(bad);

  bad = default_link();
  bad.detector.efficiency = 0.0;
  expect_config_error(bad);

  bad = default_link();
  bad.source.p_signal = 0.5;  // probabilities no longer sum to 1
  expect_config_error(bad);

  bad = default_link();
  bad.source.mu_decoy = 1.0;  // decoy >= signal
  expect_config_error(bad);

  bad = default_link();
  bad.eve.intercept_fraction = 1.5;
  expect_config_error(bad);

  bad = default_link();
  bad.channel.misalignment = 0.7;
  expect_config_error(bad);
}

TEST(AnalyticLink, GainAndYieldFormulas) {
  LinkConfig link = default_link(25.0);
  const AnalyticLink model(link);
  const double eta = link.overall_transmittance();
  EXPECT_NEAR(model.gain(0.48), model.y0() + 1 - std::exp(-eta * 0.48), 1e-15);
  EXPECT_NEAR(model.yield(0), model.y0(), 1e-15);
  EXPECT_NEAR(model.yield(1), model.y0() + eta, 1e-9);
  EXPECT_GT(model.yield(2), model.yield(1));
}

TEST(AnalyticLink, QberApproachesHalfAtExtremeLoss) {
  // At absurd distance the gain is dark-count dominated -> QBER -> 0.5.
  LinkConfig link = default_link(600.0);
  const AnalyticLink model(link);
  EXPECT_GT(model.qber(0.48), 0.40);
  EXPECT_LE(model.qber(0.48), 0.5 + 1e-12);
}

TEST(Bb84, DetectionRecordShapeConsistent) {
  Xoshiro256 rng(1);
  const Bb84Simulator simulator(default_link());
  const auto record = simulator.run(20000, rng);
  EXPECT_EQ(record.n_pulses, 20000u);
  EXPECT_EQ(record.alice_bits.size(), 20000u);
  EXPECT_EQ(record.alice_bases.size(), 20000u);
  EXPECT_EQ(record.alice_class.size(), 20000u);
  EXPECT_EQ(record.bob_bits.size(), record.detections());
  EXPECT_EQ(record.bob_bases.size(), record.detections());
  for (const auto idx : record.detected_idx) EXPECT_LT(idx, 20000u);
}

TEST(Bb84, GainMatchesAnalyticModel) {
  Xoshiro256 rng(2);
  LinkConfig link = default_link(25.0);
  const Bb84Simulator simulator(link);
  const AnalyticLink model(link);
  const std::size_t n = 400000;
  const auto stats = Bb84Simulator::stats(simulator.run(n, rng));

  const double q_signal_expected = model.gain(link.source.mu_signal);
  const double q_signal = stats.per_class[0].gain();
  EXPECT_NEAR(q_signal, q_signal_expected, 5 * std::sqrt(q_signal_expected / (0.9 * n)) + 1e-4);

  const double q_decoy_expected = model.gain(link.source.mu_decoy);
  EXPECT_NEAR(stats.per_class[1].gain(), q_decoy_expected,
              0.3 * q_decoy_expected + 2e-4);
}

TEST(Bb84, QberMatchesAnalyticModel) {
  Xoshiro256 rng(3);
  LinkConfig link = default_link(25.0);
  link.channel.misalignment = 0.02;
  const Bb84Simulator simulator(link);
  const AnalyticLink model(link);
  const auto stats = Bb84Simulator::stats(simulator.run(600000, rng));
  EXPECT_NEAR(stats.per_class[0].qber(), model.qber(link.source.mu_signal),
              0.004);
}

TEST(Bb84, SiftedFractionIsHalfOfDetections) {
  Xoshiro256 rng(4);
  const Bb84Simulator simulator(default_link());
  const auto stats = Bb84Simulator::stats(simulator.run(300000, rng));
  const double sift_rate = static_cast<double>(stats.total.sifted) /
                           static_cast<double>(stats.total.detected);
  EXPECT_NEAR(sift_rate, 0.5, 0.01);
}

TEST(Bb84, VacuumPulsesClickOnlyFromDarkCounts) {
  Xoshiro256 rng(5);
  LinkConfig link = default_link(25.0);
  link.detector.dark_count_prob = 0.0;
  const Bb84Simulator simulator(link);
  const auto stats = Bb84Simulator::stats(simulator.run(200000, rng));
  EXPECT_EQ(stats.per_class[2].detected, 0u);
  EXPECT_GT(stats.per_class[0].detected, 0u);
}

TEST(Bb84, SinglePhotonIdealModeRaisesGain) {
  Xoshiro256 rng(6);
  LinkConfig link = default_link(25.0);
  link.source.single_photon_ideal = true;
  link.detector.dark_count_prob = 0.0;
  const Bb84Simulator simulator(link);
  const auto stats = Bb84Simulator::stats(simulator.run(200000, rng));
  // With exactly one photon per pulse, the gain equals eta.
  EXPECT_NEAR(stats.total.gain(), link.overall_transmittance(), 0.002);
}

TEST(Bb84, InterceptResendRaisesQberTowardQuarter) {
  Xoshiro256 rng(7);
  LinkConfig link = default_link(10.0);
  link.channel.misalignment = 0.0;
  link.eve.intercept_fraction = 1.0;
  const Bb84Simulator simulator(link);
  const auto stats = Bb84Simulator::stats(simulator.run(300000, rng));
  EXPECT_NEAR(stats.per_class[0].qber(), 0.25, 0.01);
}

TEST(Bb84, PartialInterceptScalesLinearly) {
  Xoshiro256 rng(8);
  LinkConfig link = default_link(10.0);
  link.channel.misalignment = 0.0;
  link.eve.intercept_fraction = 0.4;
  const Bb84Simulator simulator(link);
  const auto stats = Bb84Simulator::stats(simulator.run(300000, rng));
  EXPECT_NEAR(stats.per_class[0].qber(), 0.10, 0.01);
}

TEST(Bb84, DeadTimeReducesDetections) {
  Xoshiro256 rng(9);
  LinkConfig base = default_link(5.0);
  LinkConfig dead = base;
  dead.detector.dead_time_gates = 10.0;
  Xoshiro256 rng2(9);
  const auto n_base =
      Bb84Simulator(base).run(100000, rng).detections();
  const auto n_dead = Bb84Simulator(dead).run(100000, rng2).detections();
  EXPECT_LT(n_dead, n_base);
}

TEST(Bb84, DeterministicGivenSeed) {
  const Bb84Simulator simulator(default_link());
  Xoshiro256 rng_a(11), rng_b(11);
  const auto a = simulator.run(5000, rng_a);
  const auto b = simulator.run(5000, rng_b);
  EXPECT_EQ(a.detected_idx, b.detected_idx);
  EXPECT_EQ(a.bob_bits, b.bob_bits);
  EXPECT_EQ(a.alice_bits, b.alice_bits);
}

// Distance sweep: gain decays exponentially with distance.
class DistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweep, GainTracksTransmittance) {
  const double km = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(km * 100));
  LinkConfig link = default_link(km);
  const Bb84Simulator simulator(link);
  const AnalyticLink model(link);
  const auto stats = Bb84Simulator::stats(simulator.run(300000, rng));
  const double expected = model.gain(link.source.mu_signal);
  EXPECT_NEAR(stats.per_class[0].gain(), expected,
              0.15 * expected + 2e-4)
      << km << " km";
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceSweep,
                         ::testing::Values(5.0, 10.0, 25.0, 50.0, 75.0, 100.0));

}  // namespace
}  // namespace qkdpp::sim
