// Cross-module integration and boundary tests that do not belong to any
// single module's suite: QC codes driven through the hetero kernels and
// stream scheduler, transform-limit boundaries, planner edge cases, and
// failure injection across module seams.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/ntt.hpp"
#include "common/rng.hpp"
#include "hetero/kernels.hpp"
#include "hetero/stream_pipeline.hpp"
#include "privacy/toeplitz.hpp"
#include "reconcile/rate_adapt.hpp"
#include "reconcile/reconciler.hpp"

namespace qkdpp {
namespace {

TEST(QuasiCyclic, StructureAndDegreesRegular) {
  const auto code = reconcile::LdpcCode::quasi_cyclic(512, 8, 7);
  EXPECT_EQ(code.n(), 4096u);
  EXPECT_EQ(code.m(), 1536u);
  EXPECT_NO_THROW(code.validate());
  for (std::size_t v = 0; v < code.n(); ++v) {
    ASSERT_EQ(code.var_checks(v).size(), 3u);
  }
  for (std::size_t c = 0; c < code.m(); ++c) {
    ASSERT_EQ(code.check_vars(c).size(), 8u);
  }
  EXPECT_GE(code.girth_estimate(), 6u);
}

TEST(QuasiCyclic, DeterministicInSeedDistinctAcrossSeeds) {
  Xoshiro256 rng(1);
  const BitVec x = rng.random_bits(4096);
  const auto a = reconcile::LdpcCode::quasi_cyclic(512, 8, 7);
  const auto b = reconcile::LdpcCode::quasi_cyclic(512, 8, 7);
  const auto c = reconcile::LdpcCode::quasi_cyclic(512, 8, 8);
  EXPECT_EQ(a.syndrome(x), b.syndrome(x));
  EXPECT_NE(a.syndrome(x), c.syndrome(x));
}

TEST(QuasiCyclic, ValidatesParameters) {
  EXPECT_THROW(reconcile::LdpcCode::quasi_cyclic(4, 8, 1),
               std::invalid_argument);
  EXPECT_THROW(reconcile::LdpcCode::quasi_cyclic(512, 3, 1),
               std::invalid_argument);
}

TEST(QuasiCyclic, DecodesThroughHeteroKernelBatch) {
  // The large-block path the accelerators take: QC code + batched decode.
  const auto& code = reconcile::code_by_id(11);  // QC, n~16380 rate 0.7
  const double q = 0.03;
  Xoshiro256 rng(5);
  const BitVec alice = rng.random_bits(code.n());
  BitVec bob = alice;
  for (std::size_t i = 0; i < bob.size(); ++i) {
    if (rng.bernoulli(q)) bob.flip(i);
  }
  const BitVec syndrome = code.syndrome(alice);
  const float channel = reconcile::bsc_llr(q);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = bob.get(v) ? -channel : channel;
  }
  ThreadPool pool(2);
  hetero::Device gpu(hetero::gpu_sim_props(), &pool);
  const hetero::DecodeJob job{&syndrome, &llr};
  std::vector<hetero::DecodeJob> jobs(4, job);
  std::vector<reconcile::DecodeResult> results;
  hetero::timed_ldpc_decode(gpu, code, jobs, reconcile::DecoderConfig{},
                            results);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(result.word, alice);
  }
}

TEST(StreamPipeline, RealDecodeStageStreamsBlocks) {
  // End-to-end: a two-stage pipeline (decode -> PA) over real kernels.
  const auto& code = reconcile::code_by_id(3);
  const double q = 0.03;
  Xoshiro256 rng(6);

  struct Block {
    BitVec alice;
    BitVec syndrome;
    std::vector<float> llr;
    BitVec decoded;
    BitVec final_key;
  };
  auto make_block = [&]() {
    Block block;
    block.alice = rng.random_bits(code.n());
    BitVec bob = block.alice;
    for (std::size_t i = 0; i < bob.size(); ++i) {
      if (rng.bernoulli(q)) bob.flip(i);
    }
    block.syndrome = code.syndrome(block.alice);
    const float channel = reconcile::bsc_llr(q);
    block.llr.resize(code.n());
    for (std::size_t v = 0; v < code.n(); ++v) {
      block.llr[v] = bob.get(v) ? -channel : channel;
    }
    return block;
  };

  ThreadPool pool(2);
  hetero::Device gpu(hetero::gpu_sim_props(), &pool);
  hetero::Device cpu(hetero::cpu_scalar_props());
  const BitVec pa_seed = Xoshiro256(9).random_bits(code.n() + 2048 - 1);

  hetero::StreamPipeline<Block> pipeline(
      {{"decode", &gpu,
        [&](Block& block) {
          std::vector<reconcile::DecodeResult> results;
          const hetero::DecodeJob job{&block.syndrome, &block.llr};
          const double seconds = hetero::timed_ldpc_decode(
              gpu, code, std::span(&job, 1), reconcile::DecoderConfig{},
              results);
          if (!results[0].converged) {
            throw_error(ErrorCode::kDecodeFailure, "stream decode failed");
          }
          block.decoded = results[0].word;
          return seconds;
        }},
       {"amplify", &cpu,
        [&](Block& block) {
          return hetero::timed_toeplitz(cpu, block.decoded, pa_seed, 2048,
                                        block.final_key);
        }}},
      2);
  for (int i = 0; i < 6; ++i) pipeline.push(make_block());
  pipeline.finish();

  ASSERT_EQ(pipeline.results().size(), 6u);
  for (const auto& block : pipeline.results()) {
    EXPECT_EQ(block.decoded, block.alice);
    EXPECT_EQ(block.final_key,
              privacy::toeplitz_hash_direct(block.alice, pa_seed, 2048));
  }
  const auto stats = pipeline.stats();
  EXPECT_GT(stats[0].charged_seconds, 0.0);
  EXPECT_GT(stats[1].charged_seconds, 0.0);
}

TEST(NttBoundary, TransformLimitEnforcedExactly) {
  // A convolution landing exactly on the limit passes; one beyond throws.
  std::vector<std::uint32_t> a(kNttMaxLength / 2, 1);
  std::vector<std::uint32_t> b(kNttMaxLength / 2 + 1, 1);
  EXPECT_NO_THROW(ntt_convolve(a, a));  // length 2^23 - 1 < limit
  EXPECT_THROW(ntt_convolve(b, b), std::invalid_argument);
}

TEST(PlanFitting, SelectsLargestFittingFrame) {
  // 20k key at 3% -> the 16k-class codes fit, 64k does not.
  const auto plan = reconcile::plan_frame_fitting(20000, 0.03, 1.45);
  const auto& code = reconcile::code_by_id(plan.code_id);
  EXPECT_GT(code.n(), 8192u);
  EXPECT_LT(code.n(), 20000u);
  EXPECT_LE(plan.payload_bits, 20000u);
}

TEST(PlanFitting, TinyKeyFallsBackToSmallestCode) {
  const auto plan = reconcile::plan_frame_fitting(950, 0.03, 1.45);
  EXPECT_LE(plan.payload_bits, 950u);
}

TEST(PlanFitting, ImpossiblyShortKeyThrows) {
  EXPECT_THROW(reconcile::plan_frame_fitting(100, 0.03, 1.45), Error);
}

TEST(FiniteLengthPenalty, DecreasesWithBlockLength) {
  EXPECT_GT(reconcile::finite_length_penalty(1024),
            reconcile::finite_length_penalty(16384));
  EXPECT_GT(reconcile::finite_length_penalty(16384), 1.0);
}

TEST(FailureInjection, UndecodableFrameReportsFailureNotCorruption) {
  // QBER far above what the plan assumed and no blind budget: the frame
  // must fail cleanly (success=false), never return wrong bits as success.
  Xoshiro256 rng(8);
  Xoshiro256 private_rng(9);
  const auto plan = reconcile::plan_frame(4096, 0.01, 1.1);
  const BitVec alice = rng.random_bits(plan.payload_bits);
  BitVec bob = alice;
  for (std::size_t i = 0; i < bob.size(); ++i) {
    if (rng.bernoulli(0.09)) bob.flip(i);
  }
  reconcile::LdpcReconcilerConfig config;
  config.max_blind_rounds = 0;
  const auto outcome = reconcile::ldpc_reconcile_local(
      alice, bob, 0.09, plan, 77, config, private_rng);
  if (outcome.success) {
    // If BP somehow converged it must be to a syndrome-consistent word;
    // verification (not reconciliation) decides equality with Alice.
    SUCCEED();
  } else {
    EXPECT_EQ(outcome.blind_rounds, 0u);
    EXPECT_GT(outcome.leaked_bits, 0u);  // leak charged even on failure
  }
}

}  // namespace
}  // namespace qkdpp
