// RunningStats / PercentileSampler / Stopwatch tests.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qkdpp {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, NumericallyStableLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
  EXPECT_NEAR(s.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-3);
}

TEST(Percentile, NearestRank) {
  PercentileSampler p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(p.percentile(0.99), 99.0, 1.0);
}

TEST(Percentile, AddAfterQueryResorts) {
  PercentileSampler p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 20.0);
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 5.0);
}

TEST(Percentile, EmptyThrows) {
  PercentileSampler p;
  EXPECT_THROW(p.percentile(0.5), std::invalid_argument);
}

TEST(Percentile, OutOfRangeRankThrows) {
  PercentileSampler p;
  p.add(1.0);
  EXPECT_THROW(p.percentile(1.5), std::invalid_argument);
  EXPECT_THROW(p.percentile(-0.1), std::invalid_argument);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  const double t1 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  sw.reset();
  EXPECT_LE(sw.seconds(), t1 + 1.0);
}

}  // namespace
}  // namespace qkdpp
