// JSON + DTO tests: strict parser behaviour (malformed input throws
// kSerialization), deterministic dumps, and the round-trip property
// DTO -> to_json -> dump -> parse -> from_json == DTO for *every* DTO the
// key-delivery API speaks, over seeded randomized instances.
#include "api/dtos.hpp"
#include "api/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "service/link_orchestrator.hpp"

namespace qkdpp::api {
namespace {

TEST(Json, ParsesScalarsAndContainers) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Json::parse("[1,2,3]").size(), 3u);
  EXPECT_EQ(Json::parse("{\"a\":{\"b\":[false]}}")
                .at("a")
                .at("b")
                .as_array()[0]
                .as_bool(),
            false);
}

TEST(Json, IntegersSurviveBeyondDoubleMantissa) {
  // 2^63 - 1 is not representable in a double; the parser must keep the
  // int64 path for key/bit counters.
  const std::int64_t big = 9223372036854775807LL;
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(), big);
  EXPECT_EQ(Json(big).dump(), "9223372036854775807");
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string raw = "line\nbreak \"quote\" back\\slash \t tab \x01";
  const Json json(raw);
  EXPECT_EQ(Json::parse(json.dump()).as_string(), raw);
  // UTF-16 escapes, including a surrogate pair, decode to UTF-8.
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, DumpIsDeterministicRegardlessOfInsertionOrder) {
  Json a = Json::object();
  a.set("zeta", 1);
  a.set("alpha", 2);
  Json b = Json::object();
  b.set("alpha", 2);
  b.set("zeta", 1);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(Json, MalformedInputThrowsSerialization) {
  const char* broken[] = {
      "",           "{",        "[1,",     "{\"a\":}",   "{'a':1}",
      "[1 2]",      "01",       "1.",      "1e",         "tru",
      "\"unterminated", "\"bad \\q escape\"", "{\"a\":1}extra",
      "\"\\ud800\"",  // unpaired surrogate
      "nan",
  };
  for (const char* text : broken) {
    EXPECT_THROW((void)Json::parse(text), Error) << text;
    try {
      (void)Json::parse(text);
    } catch (const Error& error) {
      EXPECT_EQ(error.code(), ErrorCode::kSerialization) << text;
    }
  }
}

TEST(Json, DepthLimitRejectsAdversarialNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)Json::parse(deep), Error);
}

TEST(Json, TypeMismatchesThrowOnUntrustedInput) {
  const Json json = Json::parse("{\"n\":-1}");
  EXPECT_THROW((void)json.at("n").as_string(), Error);
  EXPECT_THROW((void)json.at("n").as_uint(), Error);  // negative
  EXPECT_THROW((void)json.at("missing"), Error);
  EXPECT_THROW((void)json.as_array(), Error);
}

// --- randomized DTO round-trip property ----------------------------------

std::string random_name(Xoshiro256& rng) {
  static const char* const kNames[] = {"sae-vpn-a", "sae-voip-b", "kme-1",
                                       "", "with \"quotes\"", "utf8 \xc3\xa9",
                                       "a/b?c=d"};
  return kNames[rng.uniform(std::size(kNames))];
}

std::string random_hex(Xoshiro256& rng, std::size_t bytes) {
  std::string out;
  for (std::size_t i = 0; i < bytes * 2; ++i) {
    out.push_back("0123456789abcdef"[rng.uniform(16)]);
  }
  return out;
}

std::string random_uuid(Xoshiro256& rng) {
  std::string out = random_hex(rng, 16);
  out.insert(8, "-");
  out.insert(13, "-");
  out.insert(18, "-");
  out.insert(23, "-");
  return out;
}

StatusResponse random_status(Xoshiro256& rng) {
  StatusResponse status;
  status.source_kme_id = random_name(rng);
  status.target_kme_id = random_name(rng);
  status.master_sae_id = random_name(rng);
  status.slave_sae_id = random_name(rng);
  status.key_size = rng.uniform(1 << 16);
  status.stored_key_count = rng.next_u64() >> 1;  // any non-negative int64
  status.max_key_count = rng.uniform(1 << 20);
  status.max_key_per_request = rng.uniform(1 << 10);
  status.max_key_size = rng.uniform(1 << 16);
  status.min_key_size = rng.uniform(1 << 10);
  status.pending_key_count = rng.uniform(1 << 10);
  return status;
}

KeyContainer random_container(Xoshiro256& rng) {
  KeyContainer container;
  const std::size_t n = rng.uniform(5);
  for (std::size_t i = 0; i < n; ++i) {
    container.keys.push_back(
        DeliveredKey{random_uuid(rng), random_hex(rng, 32)});
  }
  return container;
}

ApiError random_error(Xoshiro256& rng) {
  static const int kStatuses[] = {kStatusBadRequest, kStatusUnauthorized,
                                  kStatusNotFound, kStatusUnavailable};
  ApiError error;
  error.status = kStatuses[rng.uniform(std::size(kStatuses))];
  error.message = random_name(rng);
  const std::size_t n = rng.uniform(4);
  for (std::size_t i = 0; i < n; ++i) {
    error.details.push_back(random_name(rng));
  }
  return error;
}

/// One generic round trip: serialize to text, reparse, decode, compare.
template <typename T>
void expect_round_trip(const T& dto) {
  const std::string wire = dto.to_json().dump();
  const T decoded = T::from_json(Json::parse(wire));
  EXPECT_EQ(decoded, dto) << wire;
  // Serialization is deterministic: a second pass is byte-identical.
  EXPECT_EQ(decoded.to_json().dump(), wire);
}

TEST(DtoRoundTrip, EveryDtoSurvivesSerializeParseDecode) {
  Xoshiro256 rng(20260726);
  for (int iteration = 0; iteration < 200; ++iteration) {
    expect_round_trip(random_status(rng));

    KeyRequest key_request;
    key_request.number = rng.uniform(1 << 10);
    key_request.size = rng.uniform(1 << 16);
    expect_round_trip(key_request);

    KeyIdsRequest ids;
    const std::size_t n = rng.uniform(5);
    for (std::size_t i = 0; i < n; ++i) {
      ids.key_ids.push_back(random_uuid(rng));
    }
    expect_round_trip(ids);

    expect_round_trip(DeliveredKey{random_uuid(rng), random_hex(rng, 32)});
    expect_round_trip(random_container(rng));
    expect_round_trip(random_error(rng));

    Request request;
    request.method = rng.bernoulli(0.5) ? "GET" : "POST";
    request.target = "/api/v1/keys/" + random_name(rng) + "/enc_keys";
    request.caller = random_name(rng);
    request.body = rng.bernoulli(0.5) ? Json() : random_container(rng).to_json();
    expect_round_trip(request);

    Response response;
    response.status = rng.bernoulli(0.5) ? kStatusOk : kStatusUnavailable;
    response.body = rng.bernoulli(0.5) ? random_error(rng).to_json()
                                       : random_status(rng).to_json();
    expect_round_trip(response);
  }
}

TEST(DtoRoundTrip, OptionalFieldsTakeDefaults) {
  // ETSI clients may omit fields at their defaults; decoding must fill
  // them in instead of rejecting the document.
  const KeyRequest request = KeyRequest::from_json(Json::parse("{}"));
  EXPECT_EQ(request.number, 1u);
  EXPECT_EQ(request.size, 0u);
  const ApiError error =
      ApiError::from_json(Json::parse("{\"status\":503,\"message\":\"m\"}"));
  EXPECT_TRUE(error.details.empty());
}

TEST(DispatcherMethods, WrongVerbOnKnownRouteIs405WithExpectedMethod) {
  // Wire-level contract: a known path with an unsupported verb must come
  // back 405 with the expected method(s) named in the details - distinct
  // from 404 (no such path), so a client can fix its verb instead of
  // chasing a typo. Driven through the fully serialized dispatch path so
  // the ApiError round-trips as a real transport would see it.
  service::OrchestratorConfig config;
  config.links.emplace_back();
  config.links.back().name = "metro";
  service::LinkOrchestrator orchestrator(std::move(config));
  KeyDeliveryService service(orchestrator);
  Dispatcher dispatcher(service);

  const struct {
    const char* method;
    const char* endpoint;
    const char* expected;
  } cases[] = {{"POST", "status", "expected: GET"},
               {"DELETE", "enc_keys", "expected: GET or POST"},
               {"GET", "dec_keys", "expected: POST"}};
  for (const auto& c : cases) {
    const Request request{c.method,
                          std::string("/api/v1/keys/sae-b/") + c.endpoint,
                          "sae-a",
                          {}};
    const auto response = Response::from_json(
        Json::parse(dispatcher.dispatch(request.to_json().dump())));
    EXPECT_EQ(response.status, kStatusMethodNotAllowed) << c.endpoint;
    const auto error = ApiError::from_json(response.body);
    EXPECT_EQ(error.status, kStatusMethodNotAllowed) << c.endpoint;
    ASSERT_EQ(error.details.size(), 1u) << c.endpoint;
    EXPECT_EQ(error.details[0], c.expected) << c.endpoint;
  }
  // The 404 boundary is unchanged: an unknown endpoint is still not found.
  const Request unknown{"GET", "/api/v1/keys/sae-b/teapot", "sae-a", {}};
  EXPECT_EQ(dispatcher.dispatch(unknown).status, kStatusNotFound);
}

}  // namespace
}  // namespace qkdpp::api
