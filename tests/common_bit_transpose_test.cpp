// Bit-matrix transpose kernels behind the lockstep batch decoder's
// lane-packed layout: transpose64 against a naive bit-by-bit reference,
// and the pack_lanes / unpack_lane round trip at awkward shapes.
#include "common/bit_transpose.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp {
namespace {

TEST(Transpose64, MatchesNaiveReference) {
  Xoshiro256 rng(1);
  std::uint64_t w[64];
  for (auto& word : w) word = rng.next_u64();
  std::uint64_t expected[64] = {};
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      if ((w[i] >> j) & 1u) expected[j] |= std::uint64_t{1} << i;
    }
  }
  transpose64(w);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(w[i], expected[i]) << "row " << i;
}

TEST(Transpose64, IsAnInvolution) {
  Xoshiro256 rng(2);
  std::uint64_t w[64];
  std::uint64_t original[64];
  for (int i = 0; i < 64; ++i) original[i] = w[i] = rng.next_u64();
  transpose64(w);
  transpose64(w);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(w[i], original[i]);
}

// Pack an awkward shape - 11 lanes (partial lane word), 1000 bits (not a
// multiple of 64) - and read every lane back out.
TEST(PackLanes, RoundTripsEveryLane) {
  constexpr std::size_t kLanes = 11;
  constexpr std::size_t kBits = 1000;
  Xoshiro256 rng(3);
  std::vector<BitVec> frames;
  for (std::size_t l = 0; l < kLanes; ++l) {
    frames.push_back(rng.random_bits(kBits));
  }
  std::vector<const BitVec*> ptrs;
  for (const auto& frame : frames) ptrs.push_back(&frame);

  std::vector<std::uint64_t> words(kBits);
  pack_lanes(ptrs, kBits, words.data());

  // Position-major invariant: bit l of words[p] is frame l's bit p, and
  // absent lanes read as zero.
  for (std::size_t p = 0; p < kBits; ++p) {
    for (std::size_t l = 0; l < 64; ++l) {
      const bool expected = l < kLanes && frames[l].get(p);
      ASSERT_EQ((words[p] >> l) & 1u, expected ? 1u : 0u)
          << "p=" << p << " lane=" << l;
    }
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    BitVec out;
    unpack_lane(words.data(), kBits, static_cast<unsigned>(l), out);
    EXPECT_EQ(out, frames[l]) << "lane " << l;
  }
}

}  // namespace
}  // namespace qkdpp
