// BlockArena unit tests: bump allocation, overflow slab growth, the O(1)
// reset that keeps the largest slab, pooled scratch object reuse, and the
// BitVec::subvec_into allocation-free copy the reconcile hot loop uses.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace qkdpp {
namespace {

TEST(BlockArena, BumpAllocationsAreDisjointAndWritable) {
  BlockArena arena(1024);
  std::uint64_t* a = arena.words(4);
  std::uint64_t* b = arena.words(4);
  ASSERT_NE(a, b);
  EXPECT_GE(b, a + 4) << "second allocation must not overlap the first";
  for (int i = 0; i < 4; ++i) a[i] = 0x1111111111111111ULL;
  for (int i = 0; i < 4; ++i) b[i] = 0x2222222222222222ULL;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[i], 0x1111111111111111ULL);
  }
  std::uint8_t* c = arena.bytes(13);
  std::memset(c, 0xab, 13);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 8, 0u)
      << "bytes() must stay word-aligned";
}

TEST(BlockArena, OverflowGrowsGeometricallyAndResetKeepsLargestSlab) {
  BlockArena arena(64);  // 8 words
  (void)arena.words(8);  // fills the first slab exactly
  EXPECT_EQ(arena.stats().slab_count, 1u);
  (void)arena.words(8);  // overflow -> second slab
  const ArenaStats grown = arena.stats();
  EXPECT_EQ(grown.slab_count, 2u);
  EXPECT_EQ(grown.overflow_slabs, 1u);
  EXPECT_EQ(grown.used_bytes, 2 * 8 * 8u);

  arena.reset();
  const ArenaStats after = arena.stats();
  EXPECT_EQ(after.used_bytes, 0u);
  EXPECT_EQ(after.slab_count, 1u) << "reset keeps only the largest slab";
  EXPECT_GE(after.capacity_bytes, 2 * 8 * 8u)
      << "the kept slab must fit what previously overflowed";
  EXPECT_EQ(after.high_water_bytes, grown.used_bytes);

  // Steady state: the same demand now fits without another overflow.
  (void)arena.words(16);
  EXPECT_EQ(arena.stats().overflow_slabs, 1u);
}

TEST(BlockArena, OversizedRequestGetsItsOwnSlab) {
  BlockArena arena(64);
  std::uint64_t* big = arena.words(1000);
  big[999] = 7;  // must be fully usable
  EXPECT_EQ(big[999], 7u);
  EXPECT_GE(arena.stats().capacity_bytes, 1000 * 8u);
}

TEST(BlockArena, ScratchObjectsReuseCapacityAcrossResets) {
  BlockArena arena;
  BitVec& bits = arena.scratch_bits();
  bits.resize(4096);
  ByteWriter& writer = arena.scratch_writer();
  writer.put_u64(42);
  const ArenaStats first = arena.stats();
  EXPECT_EQ(first.scratch_bitvecs, 1u);
  EXPECT_EQ(first.scratch_writers, 1u);

  arena.reset();
  BitVec& again = arena.scratch_bits();
  EXPECT_EQ(&again, &bits) << "pool must hand back the same object";
  EXPECT_EQ(again.size(), 0u) << "borrowed scratch comes back cleared";
  ByteWriter& writer_again = arena.scratch_writer();
  EXPECT_EQ(&writer_again, &writer);
  EXPECT_EQ(writer_again.size(), 0u);
  EXPECT_EQ(arena.stats().scratch_bitvecs, 1u) << "no new object minted";

  // Distinct borrows within one block are distinct objects.
  BitVec& second = arena.scratch_bits();
  EXPECT_NE(&second, &again);
}

TEST(BlockArena, ThreadArenaIsPerThread) {
  BlockArena* mine = &thread_arena();
  BlockArena* theirs = nullptr;
  std::thread t([&] { theirs = &thread_arena(); });
  t.join();
  EXPECT_NE(mine, theirs);
  EXPECT_EQ(mine, &thread_arena()) << "stable within a thread";
}

TEST(BlockArena, SubvecIntoMatchesSubvecAndReusesCapacity) {
  Xoshiro256 rng(99);
  const BitVec source = rng.random_bits(1000);
  BitVec scratch;
  const std::pair<std::size_t, std::size_t> cases[] = {
      {0, 64}, {1, 64}, {63, 130}, {128, 0}, {500, 500}, {937, 63}};
  for (const auto& [pos, len] : cases) {
    source.subvec_into(pos, len, scratch);
    EXPECT_EQ(scratch, source.subvec(pos, len))
        << "pos=" << pos << " len=" << len;
  }
  EXPECT_THROW(source.subvec_into(900, 200, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace qkdpp
