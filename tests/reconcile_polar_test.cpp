// Polar-code reconciliation tests: transform algebra, frozen-set
// construction, SC decoding across the QBER grid, leakage accounting.
#include "reconcile/polar.hpp"

#include <gtest/gtest.h>

#include "common/entropy.hpp"
#include "common/rng.hpp"
#include "reconcile/ldpc_decoder.hpp"

namespace qkdpp::reconcile {
namespace {

BitVec corrupt(const BitVec& key, double q, Xoshiro256& rng) {
  BitVec noisy = key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (rng.bernoulli(q)) noisy.flip(i);
  }
  return noisy;
}

TEST(PolarTransform, IsInvolution) {
  Xoshiro256 rng(1);
  for (const std::size_t n : {4u, 64u, 1024u, 8192u}) {
    const BitVec x = rng.random_bits(n);
    EXPECT_EQ(PolarCode::transform(PolarCode::transform(x)), x) << n;
  }
}

TEST(PolarTransform, IsLinear) {
  Xoshiro256 rng(2);
  const BitVec a = rng.random_bits(256);
  const BitVec b = rng.random_bits(256);
  BitVec ab = a;
  ab ^= b;
  BitVec expected = PolarCode::transform(a);
  expected ^= PolarCode::transform(b);
  EXPECT_EQ(PolarCode::transform(ab), expected);
}

TEST(PolarTransform, MatchesNaiveKernelSmall) {
  // N=4: G = F tensor F; x = u G with F = [[1,0],[1,1]] means
  // x0 = u0^u1^u2^u3, x1 = u1^u3, x2 = u2^u3, x3 = u3.
  BitVec u(4);
  u.set(1, true);
  u.set(3, true);
  const BitVec x = PolarCode::transform(u);
  EXPECT_FALSE(x.get(0));  // u0^u1^u2^u3 = 0^1^0^1
  EXPECT_FALSE(x.get(1));  // u1^u3 = 0
  EXPECT_TRUE(x.get(2));   // u2^u3 = 1
  EXPECT_TRUE(x.get(3));   // u3 = 1
}

TEST(PolarTransform, RejectsNonPowerOfTwo) {
  EXPECT_THROW(PolarCode::transform(BitVec(100)), std::invalid_argument);
}

TEST(PolarCode, FrozenSetSizingIncludesScGap) {
  const PolarCode code(12, 0.02, 1.45);
  EXPECT_EQ(code.n(), 4096u);
  // Frozen fraction = margin*h2(q) + N^(-1/3.6) > margin*h2(q).
  const double multiplicative_only = 1.45 * binary_entropy(0.02) * 4096;
  EXPECT_GT(code.frozen_count(),
            static_cast<std::size_t>(multiplicative_only));
  EXPECT_LT(code.frozen_count(), code.n());
  EXPECT_EQ(code.frozen_mask().popcount(), code.frozen_count());
}

TEST(PolarCode, FrozenCountMonotoneInQber) {
  const PolarCode low(12, 0.01, 1.45);
  const PolarCode high(12, 0.05, 1.45);
  EXPECT_LT(low.frozen_count(), high.frozen_count());
}

TEST(PolarCode, ValidatesParameters) {
  EXPECT_THROW(PolarCode(1, 0.02, 1.45), std::invalid_argument);
  EXPECT_THROW(PolarCode(12, 0.0, 1.45), std::invalid_argument);
  EXPECT_THROW(PolarCode(12, 0.02, 0.9), std::invalid_argument);
}

TEST(PolarCode, NoiselessDecodeIsExact) {
  Xoshiro256 rng(3);
  const PolarCode code(10, 0.02, 1.45);
  const BitVec alice = rng.random_bits(code.n());
  const BitVec frozen = code.freeze_values(alice);
  std::vector<float> llr(code.n());
  for (std::size_t i = 0; i < code.n(); ++i) {
    llr[i] = alice.get(i) ? -kKnownLlr : kKnownLlr;
  }
  EXPECT_EQ(code.decode(llr, frozen), alice);
}

TEST(PolarCode, DecodeValidatesShapes) {
  const PolarCode code(8, 0.02, 1.45);
  std::vector<float> llr(code.n());
  EXPECT_THROW(code.decode(llr, BitVec(3)), std::invalid_argument);
  std::vector<float> short_llr(100);
  EXPECT_THROW(code.decode(short_llr, BitVec(code.frozen_count())),
               std::invalid_argument);
}

struct PolarCase {
  unsigned log2_n;
  double qber;
};

class PolarSweep : public ::testing::TestWithParam<PolarCase> {};

TEST_P(PolarSweep, ReconcilesThroughBsc) {
  const auto [log2_n, q] = GetParam();
  Xoshiro256 rng(log2_n * 1000 + static_cast<std::uint64_t>(q * 1e5));
  int successes = 0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    const BitVec alice = rng.random_bits(std::size_t{1} << log2_n);
    const BitVec bob = corrupt(alice, q, rng);
    const auto outcome = polar_reconcile_local(alice, bob, q, 1.5);
    if (outcome.success) {
      EXPECT_EQ(outcome.corrected, alice);
      ++successes;
    }
    EXPECT_GT(outcome.leaked_bits, 0u);
    EXPECT_GT(outcome.efficiency, 1.0);
  }
  // SC without list decoding keeps a small residual FER; allow one miss.
  EXPECT_GE(successes, kTrials - 1)
      << "log2_n=" << log2_n << " q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Grid, PolarSweep,
                         ::testing::Values(PolarCase{10, 0.02},
                                           PolarCase{12, 0.01},
                                           PolarCase{12, 0.03},
                                           PolarCase{12, 0.05},
                                           PolarCase{14, 0.02},
                                           PolarCase{14, 0.05}));

TEST(Polar, EfficiencyWorseAtLowQber) {
  // The additive SC gap dominates at low QBER: efficiency (leak ratio)
  // must degrade as the channel gets cleaner - the documented polar
  // short-block weakness.
  Xoshiro256 rng(9);
  const BitVec alice = rng.random_bits(1 << 12);
  const auto clean =
      polar_reconcile_local(alice, corrupt(alice, 0.01, rng), 0.01, 1.45);
  const auto noisy =
      polar_reconcile_local(alice, corrupt(alice, 0.05, rng), 0.05, 1.45);
  EXPECT_GT(clean.efficiency, noisy.efficiency);
}

TEST(Polar, RejectsMismatchedInputs) {
  Xoshiro256 rng(10);
  const BitVec a = rng.random_bits(1024);
  EXPECT_THROW(polar_reconcile_local(a, rng.random_bits(512), 0.02, 1.45),
               std::invalid_argument);
  const BitVec odd = rng.random_bits(1000);
  EXPECT_THROW(polar_reconcile_local(odd, odd, 0.02, 1.45),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkdpp::reconcile
