// S4: route failover determinism. A five-node network distills under a
// link-outage scenario on the preferred path's middle hop; the delivery
// layer serves an end-to-end SAE pair until the network runs dry, failing
// over from the 2-hop path to the 3-hop backup when the outage-starved
// link exhausts. Running the whole scenario twice from the same seeds must
// produce byte-identical delivered keys, the same routes, and the same
// failover point - the bit-determinism the scenario engine, the relay's
// ordered pad streams, and the seeded UUID mint jointly guarantee.
//
//        [bd: link-outage blocks 2..4)]
//   a ---- b ---- d        preferred: 2 hops
//    \          /
//     c ------ e           backup: 3 hops (a-c, c-e, e-d)
#include "network/delivery.hpp"
#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "api/key_delivery.hpp"
#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace qkdpp::network {
namespace {

struct Outcome {
  /// (key_id, key material hex) in delivery order, master side.
  std::vector<std::pair<std::string, std::string>> keys;
  Route first_route;
  Route final_route;
  std::uint64_t relayed_bits = 0;
};

Outcome run_scenario() {
  service::OrchestratorConfig config;
  struct Span {
    const char* name;
    double km;
  };
  const Span spans[] = {
      {"ab", 5.0}, {"bd", 6.0}, {"ac", 8.0}, {"ce", 9.0}, {"ed", 7.0}};
  std::uint64_t seed = 1;
  for (const Span& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = std::size_t{1} << 19;
    spec.blocks = 6;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }
  // Mid-run hard outage on the preferred path's second hop: blocks 2 and 3
  // abort deterministically, so "bd" banks only 4 blocks of key and is the
  // first edge to run dry during delivery.
  sim::Perturbation outage;
  outage.kind = sim::PerturbationKind::kLinkOutage;
  outage.begin_block = 2;
  outage.end_block = 4;
  config.links[1].schedule.perturbations.push_back(outage);
  // Short health window: two clean closing blocks clear the outage from
  // the windowed QBER, so post-run routing sees "bd" as up (just shallow),
  // not as still-burning.
  config.replan.window = 2;

  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  // The outage window costs "bd" at least its two scheduled blocks (links
  // may shed the odd extra block to estimation noise - deterministic per
  // seed, but not worth pinning). Starvation shows up against the
  // same-length-class link "ab": shorter spans yield more secret key per
  // block, so comparing across the 5-9 km spread would mix the outage
  // penalty with ordinary distance-dependent yield.
  EXPECT_GE(report.links[1].blocks_aborted, 2u);
  EXPECT_LE(report.links[1].blocks_ok, 4u);
  EXPECT_LT(report.links[1].secret_bits, report.links[0].secret_bits)
      << report.links[0].name;

  Topology topology(orchestrator);
  for (const char* node : {"a", "b", "c", "d", "e"}) topology.add_node(node);
  topology.add_edge("a", "b", "ab");
  topology.add_edge("b", "d", "bd");
  topology.add_edge("a", "c", "ac");
  topology.add_edge("c", "e", "ce");
  topology.add_edge("e", "d", "ed");

  api::KeyDeliveryService service(orchestrator);
  NetworkDelivery delivery(topology, service);
  api::SaePair pair;
  pair.master_sae_id = "sae-a";
  pair.slave_sae_id = "sae-d";
  pair.default_key_size = 256;
  pair.max_key_per_request = 16;
  RelaySourceConfig source_config;
  source_config.chunk_bits = 2048;
  delivery.register_pair(pair, "a", "d", source_config);
  const auto source = delivery.source("sae-a", "sae-d");

  Outcome outcome;
  while (true) {
    api::KeyRequest request;
    request.number = 8;
    const auto container = service.get_key("sae-a", "sae-d", request);
    if (!container.ok()) {
      EXPECT_EQ(container.error.status, api::kStatusUnavailable);
      break;
    }
    // The slave collects the same batch by UUID: end-to-end delivery, both
    // ETSI endpoints, must agree bit-for-bit.
    api::KeyIdsRequest ids;
    for (const auto& key : container->keys) ids.key_ids.push_back(key.key_id);
    const auto collected = service.get_key_with_ids("sae-d", "sae-a", ids);
    EXPECT_TRUE(collected.ok());
    if (collected.ok()) {
      EXPECT_EQ(collected->keys, container->keys);
    }
    for (const auto& key : container->keys) {
      outcome.keys.emplace_back(key.key_id, key.key);
    }
    const auto stats = source->stats();
    EXPECT_TRUE(stats.last_route.has_value());
    if (stats.last_route.has_value()) {
      if (outcome.first_route.nodes.empty()) {
        outcome.first_route = *stats.last_route;
      }
      outcome.final_route = *stats.last_route;
    }
  }
  outcome.relayed_bits = source->stats().relayed_bits;

  // Conservation survives the failover: per edge, store draws == consumed
  // into delivered keys + still buffered in the tap.
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    const auto& store = orchestrator.key_store(topology.edge(e).link);
    EXPECT_EQ(store.consumed_by(delivery.relay().consumer_name(e)),
              delivery.relay().consumed_bits(e) +
                  delivery.relay().buffered_bits(e))
        << "edge " << e;
  }
  return outcome;
}

TEST(NetworkFailover, SameSeedOutageRunsDeliverIdenticalKeys) {
  const Outcome first = run_scenario();
  const Outcome second = run_scenario();

  // Delivery happened, the outage-starved 2-hop path came first, and the
  // stream failed over to the 3-hop backup when "bd" ran dry.
  ASSERT_FALSE(first.keys.empty());
  EXPECT_GT(first.relayed_bits, 0u);
  EXPECT_EQ(first.first_route.nodes, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(first.final_route.nodes, (std::vector<std::size_t>{0, 2, 4, 3}));
  EXPECT_NE(first.first_route, first.final_route);

  // Same seeds, same everything: ids, material, routes, totals.
  EXPECT_EQ(first.keys, second.keys);
  EXPECT_EQ(first.first_route, second.first_route);
  EXPECT_EQ(first.final_route, second.final_route);
  EXPECT_EQ(first.relayed_bits, second.relayed_bits);
}

}  // namespace
}  // namespace qkdpp::network
