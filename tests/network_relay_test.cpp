// Network-layer tests: Topology validation, Router cost/feasibility and
// admin-outage re-routing, the XOR relay's exact per-hop conservation, the
// randomized multi-hop conservation property (random topologies, delivered
// bits vs per-hop consumption, zero duplicate UUIDs), and the O(1)
// LinkOrchestrator::link_index regression.
//
// None of these run distillation: known material is deposited straight
// into the per-link stores, so every conservation claim is checkable bit
// for bit.
#include "network/delivery.hpp"
#include "network/relay.hpp"
#include "network/router.hpp"
#include "network/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/key_delivery.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "service/link_orchestrator.hpp"

namespace qkdpp::network {
namespace {

/// Orchestrator with `n` named links ("link-0"...), never run.
service::OrchestratorConfig links_config(std::size_t n,
                                         std::uint64_t capacity_bits = 0) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = capacity_bits;
  for (std::size_t i = 0; i < n; ++i) {
    service::LinkSpec spec;
    spec.name = "link-" + std::to_string(i);
    spec.link.channel.length_km = 5.0 + 2.0 * static_cast<double>(i);
    spec.rng_seed = i + 1;
    config.links.push_back(std::move(spec));
  }
  return config;
}

TEST(NetworkTopology, ValidatesNodesAndEdges) {
  service::LinkOrchestrator orchestrator(links_config(2));
  Topology topology(orchestrator);
  topology.add_node("a");
  topology.add_node("b");
  EXPECT_THROW(topology.add_node(""), Error);
  EXPECT_THROW(topology.add_node("a"), Error);  // duplicate

  const std::size_t e = topology.add_edge("a", "b", "link-0");
  EXPECT_EQ(topology.edge(e).link_name, "link-0");
  EXPECT_THROW(topology.add_edge("a", "nope", "link-1"), Error);
  EXPECT_THROW(topology.add_edge("a", "a", "link-1"), Error);  // self-loop
  EXPECT_THROW(topology.add_edge("a", "b", "no-such-link"), Error);
  // One physical span backs one edge.
  EXPECT_THROW(topology.add_edge("a", "b", "link-0"), Error);

  EXPECT_EQ(topology.node_count(), 2u);
  EXPECT_EQ(topology.edge_count(), 1u);
  EXPECT_EQ(topology.other_end(e, 0), 1u);
  ASSERT_EQ(topology.neighbors(0).size(), 1u);
  EXPECT_EQ(topology.neighbors(0)[0], (std::pair<std::size_t, std::size_t>{1, e}));
}

TEST(NetworkRouter, CostGrowsWithQberAndDepletion) {
  service::LinkOrchestrator orchestrator(links_config(1));
  Topology topology(orchestrator);
  Router router(topology);

  EdgeStatus clean;
  clean.windowed_qber = 0.01;
  EdgeStatus noisy = clean;
  noisy.windowed_qber = 0.05;
  EXPECT_LT(router.edge_cost(clean, 1 << 20), router.edge_cost(noisy, 1 << 20));
  // A deep store is cheaper than a nearly-dry one.
  EXPECT_LT(router.edge_cost(clean, 1 << 20), router.edge_cost(clean, 128));

  EXPECT_TRUE(router.edge_feasible(clean, 1024, 0));
  EdgeStatus down = clean;
  down.admin_up = false;
  EXPECT_FALSE(router.edge_feasible(down, 1024, 0));
  EdgeStatus aborted = clean;
  aborted.consecutive_aborts = router.policy().down_after_aborts;
  EXPECT_FALSE(router.edge_feasible(aborted, 1024, 0));
  EdgeStatus hot = clean;
  hot.windowed_qber = router.policy().qber_infeasible;
  EXPECT_FALSE(router.edge_feasible(hot, 1024, 0));
  EXPECT_FALSE(router.edge_feasible(clean, 1024, 2048));  // need_bits floor
}

/// Diamond a-b-d / a-c-d: route choice reacts to QBER, admin state, and
/// untrusted nodes.
class NetworkRouterDiamond : public ::testing::Test {
 protected:
  NetworkRouterDiamond()
      : orchestrator_(links_config(4)), topology_(orchestrator_) {
    for (const char* name : {"a", "b", "c", "d"}) topology_.add_node(name);
    ab_ = topology_.add_edge("a", "b", "link-0");
    bd_ = topology_.add_edge("b", "d", "link-1");
    ac_ = topology_.add_edge("a", "c", "link-2");
    cd_ = topology_.add_edge("c", "d", "link-3");
    Xoshiro256 rng(7);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(
          orchestrator_.key_store(i).deposit(rng.random_bits(4096)).accepted());
    }
  }

  service::LinkOrchestrator orchestrator_;
  Topology topology_;
  std::size_t ab_ = 0, bd_ = 0, ac_ = 0, cd_ = 0;
};

TEST_F(NetworkRouterDiamond, ReroutesAroundAdminOutage) {
  Router router(topology_);
  const auto via_b = router.find_route(0, 3);
  ASSERT_TRUE(via_b.has_value());
  // Equal costs: deterministic tie-break picks the first-inserted arm.
  EXPECT_EQ(via_b->edges, (std::vector<std::size_t>{ab_, bd_}));
  EXPECT_EQ(via_b->nodes, (std::vector<std::size_t>{0, 1, 3}));

  topology_.set_admin_up(bd_, false);
  const auto via_c = router.find_route(0, 3);
  ASSERT_TRUE(via_c.has_value());
  EXPECT_EQ(via_c->edges, (std::vector<std::size_t>{ac_, cd_}));

  topology_.set_admin_up(ac_, false);
  EXPECT_FALSE(router.find_route(0, 3).has_value());  // disconnected

  topology_.set_admin_up(bd_, true);
  topology_.set_admin_up(ac_, true);
  RouteQuery exclude;
  exclude.exclude_edges.assign(topology_.edge_count(), false);
  exclude.exclude_edges[ab_] = true;
  const auto around = router.find_route(0, 3, exclude);
  ASSERT_TRUE(around.has_value());
  EXPECT_EQ(around->edges, (std::vector<std::size_t>{ac_, cd_}));
}

TEST_F(NetworkRouterDiamond, RefusesUntrustedInterior) {
  service::LinkOrchestrator orchestrator(links_config(4));
  Topology topology(orchestrator);
  topology.add_node("a");
  topology.add_node("b", /*trusted=*/false);
  topology.add_node("c");
  topology.add_node("d");
  topology.add_edge("a", "b", "link-0");
  topology.add_edge("b", "d", "link-1");
  topology.add_edge("a", "c", "link-2");
  topology.add_edge("c", "d", "link-3");
  Router router(topology);
  const auto route = router.find_route(0, 3);
  ASSERT_TRUE(route.has_value());
  // The only feasible path avoids the untrusted b.
  EXPECT_EQ(route->nodes, (std::vector<std::size_t>{0, 2, 3}));
  // ...but b may terminate its own traffic.
  EXPECT_TRUE(router.find_route(0, 1).has_value());
}

TEST(NetworkRelay, OtpChainConservesEveryBitOnALine) {
  service::LinkOrchestrator orchestrator(links_config(3));
  Topology topology(orchestrator);
  for (const char* name : {"a", "b", "c", "d"}) topology.add_node(name);
  topology.add_edge("a", "b", "link-0");
  topology.add_edge("b", "c", "link-1");
  topology.add_edge("c", "d", "link-2");

  Xoshiro256 rng(11);
  const BitVec hop0 = rng.random_bits(1000);
  ASSERT_TRUE(orchestrator.key_store(0).deposit(hop0).accepted());
  ASSERT_TRUE(orchestrator.key_store(1).deposit(rng.random_bits(900)).accepted());
  ASSERT_TRUE(orchestrator.key_store(2).deposit(rng.random_bits(800)).accepted());

  KeyRelay relay(topology);
  Router router(topology);
  const auto route = router.find_route(0, 3);
  ASSERT_TRUE(route.has_value());
  ASSERT_EQ(route->hops(), 3u);

  const RelayResult first = relay.relay(*route, 256);
  ASSERT_TRUE(first.ok());
  // Hop 0's distilled key IS the end-to-end key.
  EXPECT_EQ(first.key, hop0.subvec(0, 256));
  ASSERT_EQ(first.hops.size(), 3u);
  for (const HopAccount& hop : first.hops) EXPECT_EQ(hop.consumed_bits, 256u);

  // Second relay continues each hop's pad stream where the first stopped.
  const RelayResult second = relay.relay(*route, 512);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.key, hop0.subvec(256, 512));
  EXPECT_EQ(relay.delivered_bits(), 768u);

  // Exact conservation per edge: everything the relay drew from a store is
  // either in a delivered key or still buffered in that edge's tap.
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    const auto& store = orchestrator.key_store(topology.edge(e).link);
    EXPECT_EQ(store.consumed_by(relay.consumer_name(e)),
              relay.consumed_bits(e) + relay.buffered_bits(e))
        << "edge " << e;
    EXPECT_EQ(relay.consumed_bits(e), 768u);
  }
  // Whole blocks were drawn: tails stay buffered, never discarded.
  EXPECT_EQ(relay.buffered_bits(0), 1000u - 768u);
  EXPECT_EQ(relay.buffered_bits(2), 800u - 768u);

  // A request beyond the middle hop's remaining depth (132 bits buffered)
  // fails all-or-nothing: hop 0 gets its segment back, nothing is consumed.
  const auto before0 = relay.consumed_bits(0);
  const RelayResult failed = relay.relay(*route, 200);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error, RelayError::kInsufficientKey);
  EXPECT_EQ(failed.failed_edge, 1u);
  EXPECT_EQ(relay.consumed_bits(0), before0);
  // The give-back preserves stream order: a smaller retry still continues
  // hop 0's pad stream exactly where the last success stopped.
  const RelayResult retry = relay.relay(*route, 32);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.key, hop0.subvec(768, 32));
}

TEST(NetworkRelay, RejectsBadRoutesAndUntrustedInteriors) {
  service::LinkOrchestrator orchestrator(links_config(2));
  Topology topology(orchestrator);
  topology.add_node("a");
  topology.add_node("b", /*trusted=*/false);
  topology.add_node("c");
  topology.add_edge("a", "b", "link-0");
  topology.add_edge("b", "c", "link-1");
  Xoshiro256 rng(13);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        orchestrator.key_store(i).deposit(rng.random_bits(512)).accepted());
  }
  KeyRelay relay(topology);

  EXPECT_EQ(relay.relay(Route{}, 128).error, RelayError::kBadRoute);
  Route direct;
  direct.nodes = {0, 1};
  direct.edges = {0};
  EXPECT_EQ(relay.relay(direct, 0).error, RelayError::kBadRoute);

  Route through_b;
  through_b.nodes = {0, 1, 2};
  through_b.edges = {0, 1};
  const RelayResult refused = relay.relay(through_b, 128);
  EXPECT_EQ(refused.error, RelayError::kUntrustedNode);
  // Refusal consumed nothing anywhere.
  for (std::size_t e = 0; e < 2; ++e) {
    EXPECT_EQ(relay.consumed_bits(e), 0u);
    EXPECT_EQ(relay.buffered_bits(e), 0u);
  }
  // Terminating at the untrusted node is fine.
  EXPECT_TRUE(relay.relay(direct, 128).ok());
}

/// S3: randomized multi-hop conservation. Random connected topologies of
/// 3..8 nodes, a non-adjacent SAE pair served through the full ETSI
/// service, then exact accounting: relayed bits == delivered + residual,
/// per-edge store draws == consumed + buffered, per-route-hop consumption
/// == delivered bits, and no UUID is ever minted twice.
TEST(NetworkConservation, RandomTopologiesConserveBitsAndUuids) {
  std::set<std::string> all_uuids;
  std::uint64_t total_keys = 0;

  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    Xoshiro256 rng(100 + trial);
    const std::size_t n = 3 + rng.uniform(6);  // 3..8 nodes
    // Random spanning tree; odd trials add chords. A tree has exactly one
    // route per pair (the strong per-hop equality below is exact there);
    // chords open multi-path graphs where the router may legitimately
    // shift routes as stores drain.
    std::vector<std::pair<std::size_t, std::size_t>> edge_ends;
    for (std::size_t v = 1; v < n; ++v) {
      edge_ends.emplace_back(rng.uniform(v), v);
    }
    const bool is_tree = (trial % 2 == 0);
    const std::size_t chords = is_tree ? 0 : rng.uniform(n / 2 + 1);
    for (std::size_t c = 0; c < chords; ++c) {
      const std::size_t a = rng.uniform(n);
      const std::size_t b = rng.uniform(n);
      if (a == b) continue;
      bool dup = false;
      for (const auto& [x, y] : edge_ends) {
        if ((x == a && y == b) || (x == b && y == a)) dup = true;
      }
      if (!dup) edge_ends.emplace_back(a, b);
    }

    service::LinkOrchestrator orchestrator(links_config(edge_ends.size()));
    Topology topology(orchestrator);
    for (std::size_t v = 0; v < n; ++v) {
      topology.add_node("n" + std::to_string(v));
    }
    for (std::size_t e = 0; e < edge_ends.size(); ++e) {
      topology.add_edge("n" + std::to_string(edge_ends[e].first),
                        "n" + std::to_string(edge_ends[e].second),
                        "link-" + std::to_string(e));
      const std::uint64_t bits = 2048 + rng.uniform(4096);
      ASSERT_TRUE(
          orchestrator.key_store(e).deposit(rng.random_bits(bits)).accepted());
    }

    // Distinct uuid_seed per trial: each trial is a fresh KME; two KMEs
    // sharing a seed would replay the same UUID stream (a deployment
    // seeds from entropy - see KeyDeliveryConfig).
    api::KeyDeliveryConfig service_config;
    service_config.uuid_seed = 0x014 + trial;
    api::KeyDeliveryService service(orchestrator, service_config);
    NetworkDelivery delivery(topology, service);
    api::SaePair pair;
    pair.master_sae_id = "master-" + std::to_string(trial);
    pair.slave_sae_id = "slave-" + std::to_string(trial);
    pair.default_key_size = 128;
    pair.max_key_per_request = 64;
    RelaySourceConfig source_config;
    source_config.chunk_bits = 1024;
    // Endpoints: node 0 and the farthest-indexed node (distinct by n >= 3).
    delivery.register_pair(pair, "n0", "n" + std::to_string(n - 1),
                           source_config);

    // Draw until the service reports exhaustion (503).
    std::uint64_t delivered_bits = 0;
    while (true) {
      api::KeyRequest request;
      request.number = 4;
      request.size = 128;
      const auto container =
          service.get_key(pair.master_sae_id, pair.slave_sae_id, request);
      if (!container.ok()) {
        EXPECT_EQ(container.error.status, api::kStatusUnavailable);
        break;
      }
      for (const auto& key : container->keys) {
        EXPECT_TRUE(all_uuids.insert(key.key_id).second)
            << "duplicate UUID " << key.key_id;
        total_keys += 1;
        delivered_bits += 128;
      }
    }

    const auto source =
        delivery.source(pair.master_sae_id, pair.slave_sae_id);
    ASSERT_NE(source, nullptr);
    const RelaySourceStats stats = source->stats();
    const auto pair_stats =
        service.pair_stats(pair.master_sae_id, pair.slave_sae_id);
    ASSERT_TRUE(pair_stats.has_value());

    // Service-level conservation: every relayed bit is delivered or
    // buffered in the pair residual.
    EXPECT_EQ(stats.relayed_bits,
              pair_stats->delivered_bits + pair_stats->buffered_bits)
        << "trial " << trial;
    EXPECT_EQ(pair_stats->delivered_bits, delivered_bits);
    EXPECT_EQ(delivery.relay().delivered_bits(), stats.relayed_bits);

    // Edge-level conservation, all edges (used or not).
    for (std::size_t e = 0; e < topology.edge_count(); ++e) {
      const auto& store = orchestrator.key_store(topology.edge(e).link);
      EXPECT_EQ(store.consumed_by(delivery.relay().consumer_name(e)),
                delivery.relay().consumed_bits(e) +
                    delivery.relay().buffered_bits(e))
          << "trial " << trial << " edge " << e;
    }

    // Route-level: every hop of an ok relay consumes exactly the delivered
    // size, so on a tree (unique route) delivered e2e bits == min over the
    // path's hops of consumed bits, exactly. On a chorded graph draws may
    // have crossed different routes, so a hop of the last route bounds the
    // total from below instead.
    ASSERT_TRUE(stats.last_route.has_value());
    std::uint64_t min_consumed = ~std::uint64_t{0};
    for (const std::size_t e : stats.last_route->edges) {
      min_consumed =
          std::min(min_consumed, delivery.relay().consumed_bits(e));
    }
    if (is_tree) {
      EXPECT_EQ(min_consumed, stats.relayed_bits) << "trial " << trial;
    } else {
      EXPECT_LE(min_consumed, stats.relayed_bits) << "trial " << trial;
    }
    EXPECT_GT(stats.relayed_bits, 0u) << "trial " << trial;
  }

  EXPECT_EQ(all_uuids.size(), total_keys);
}

/// S2: the O(1) name -> index map must agree with link order at registry
/// scale, and duplicate names must be rejected at construction (two links
/// with one name would make link_index ambiguous).
TEST(OrchestratorLinkIndex, ResolvesAtRegistryScaleAndRejectsDuplicates) {
  constexpr std::size_t kLinks = 96;
  service::LinkOrchestrator orchestrator(links_config(kLinks));
  for (std::size_t i = 0; i < kLinks; ++i) {
    const auto index = orchestrator.link_index("link-" + std::to_string(i));
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(*index, i);
    EXPECT_EQ(orchestrator.link_spec(*index).name,
              "link-" + std::to_string(i));
  }
  EXPECT_FALSE(orchestrator.link_index("link-96").has_value());
  EXPECT_FALSE(orchestrator.link_index("").has_value());

  auto config = links_config(3);
  config.links[2].name = config.links[0].name;
  EXPECT_THROW(service::LinkOrchestrator{config}, Error);
}

}  // namespace
}  // namespace qkdpp::network
