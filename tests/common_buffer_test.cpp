// ByteWriter/ByteReader framing round-trip and adversarial-input tests.
#include "common/buffer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp {
namespace {

TEST(Buffer, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_f64(3.141592653589793);

  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.141592653589793);
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Buffer, VarintRoundTrip) {
  const std::uint64_t values[] = {0,       1,       127,        128,
                                  300,     16383,   16384,      1u << 20,
                                  1u << 31, std::uint64_t{1} << 40,
                                  ~std::uint64_t{0}};
  ByteWriter w;
  for (const auto v : values) w.put_varint(v);
  ByteReader r(w.data());
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  r.expect_exhausted();
}

TEST(Buffer, VarintCompact) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(128);
  EXPECT_EQ(w.size(), 3u);  // +2 bytes
}

TEST(Buffer, BlobAndStringRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 254, 255};
  w.put_blob(blob);
  w.put_string("hello qkd");
  w.put_string("");

  ByteReader r(w.data());
  EXPECT_EQ(r.get_blob(), blob);
  EXPECT_EQ(r.get_string(), "hello qkd");
  EXPECT_EQ(r.get_string(), "");
  r.expect_exhausted();
}

TEST(Buffer, BitVecRoundTrip) {
  Xoshiro256 rng(3);
  for (const std::size_t n : {0u, 1u, 8u, 63u, 64u, 65u, 1000u}) {
    const BitVec v = rng.random_bits(n);
    ByteWriter w;
    w.put_bitvec(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.get_bitvec(), v) << n;
    r.expect_exhausted();
  }
}

TEST(Buffer, U32VecRoundTrip) {
  const std::vector<std::uint32_t> v = {0, 1, 0xffffffffu, 42};
  ByteWriter w;
  w.put_u32_vec(v);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u32_vec(), v);
}

TEST(Buffer, TruncatedReadThrows) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.data());
  r.get_u16();
  r.get_u8();
  EXPECT_THROW(r.get_u16(), Error);
  try {
    ByteReader r2(w.data());
    r2.get_u64();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSerialization);
  }
}

TEST(Buffer, MaliciousBlobLengthRejected) {
  // A frame claiming a huge blob length must not allocate/overread.
  ByteWriter w;
  w.put_varint(std::uint64_t{1} << 40);
  w.put_u8(0);
  ByteReader r(w.data());
  EXPECT_THROW(r.get_blob(), Error);
}

TEST(Buffer, MaliciousBitvecLengthRejected) {
  ByteWriter w;
  w.put_varint(std::uint64_t{1} << 50);
  ByteReader r(w.data());
  EXPECT_THROW(r.get_bitvec(), Error);
}

TEST(Buffer, MaliciousU32VecLengthRejected) {
  ByteWriter w;
  w.put_varint(1000);  // claims 1000 entries, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.get_u32_vec(), Error);
}

TEST(Buffer, VarintOverflowRejected) {
  // 11 bytes of 0xff can encode > 64 bits; must throw, not wrap.
  std::vector<std::uint8_t> bytes(11, 0xff);
  ByteReader r(bytes);
  EXPECT_THROW(r.get_varint(), Error);
}

TEST(Buffer, TrailingBytesDetected) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  ByteReader r(w.data());
  r.get_u8();
  EXPECT_THROW(r.expect_exhausted(), Error);
}

TEST(Buffer, TakeMovesOutStorage) {
  ByteWriter w;
  w.put_u32(5);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
}

}  // namespace
}  // namespace qkdpp
