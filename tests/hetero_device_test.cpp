// Device model + timed kernel tests: charging rules, bit-exactness across
// backends, batching amortization, accounting.
#include "hetero/kernels.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "privacy/toeplitz.hpp"
#include "privacy/verification.hpp"

namespace qkdpp::hetero {
namespace {

TEST(Device, KindNamesStable) {
  EXPECT_STREQ(to_string(DeviceKind::kCpuScalar), "cpu-scalar");
  EXPECT_STREQ(to_string(DeviceKind::kGpuSim), "gpu-sim");
}

TEST(Device, CpuChargesWallClock) {
  Device cpu(cpu_scalar_props());
  const double charged = cpu.execute([]() -> WorkEstimate {
    volatile double sink = 0;
    for (int i = 0; i < 200000; ++i) sink = sink + i * 0.5;
    return {1e9, 0, 0};  // deliberately absurd estimate: must be ignored
  });
  EXPECT_GT(charged, 0.0);
  EXPECT_LT(charged, 1.0);  // definitely not 1e9/3e9 = 0.33s of model time
  EXPECT_NEAR(cpu.busy_seconds(), charged, 1e-12);
  EXPECT_EQ(cpu.kernels_launched(), 1u);
}

TEST(Device, GpuSimChargesModelTime) {
  Device gpu(gpu_sim_props());
  const WorkEstimate estimate{4e9, 0, 0};  // 4e9 ops at 4000 Gops = 1 ms
  const double modeled = gpu.model_seconds(estimate);
  EXPECT_NEAR(modeled, 1e-3 + gpu.props().launch_latency_s, 1e-6);
  const double charged = gpu.execute([&]() -> WorkEstimate {
    return estimate;  // no real work: charged must still be model time
  });
  EXPECT_NEAR(charged, modeled, 1e-12);
}

TEST(Device, ModelRooflineTakesMax) {
  Device gpu(gpu_sim_props());
  // Memory-bound: 450 GB/s, 4.5e9 bytes = 10 ms >> compute term.
  const double t = gpu.model_seconds({1e6, 4.5e9, 0});
  EXPECT_NEAR(t, 0.01, 1e-4);
}

TEST(Device, ModelChargesTransfers) {
  Device gpu(gpu_sim_props());
  const double base = gpu.model_seconds({0, 0, 0});
  const double with_transfer = gpu.model_seconds({0, 0, 12e9});  // 1 s PCIe
  EXPECT_NEAR(with_transfer - base, 1.0 + 2 * gpu.props().transfer_latency_s,
              1e-6);
}

TEST(Device, BusyAccumulatesAcrossKernels) {
  Device gpu(gpu_sim_props());
  gpu.execute([] { return WorkEstimate{4e9, 0, 0}; });
  gpu.execute([] { return WorkEstimate{4e9, 0, 0}; });
  EXPECT_NEAR(gpu.busy_seconds(), 2 * (1e-3 + gpu.props().launch_latency_s),
              1e-9);
  EXPECT_EQ(gpu.kernels_launched(), 2u);
}

struct KernelFixture : public ::testing::Test {
  void SetUp() override {
    code = &reconcile::code_by_id(0);  // n=1024 rate 0.5
    Xoshiro256 rng(42);
    alice = rng.random_bits(code->n());
    bob = alice;
    for (std::size_t i = 0; i < bob.size(); ++i) {
      if (rng.bernoulli(0.03)) bob.flip(i);
    }
    syndrome = code->syndrome(alice);
    const float channel = reconcile::bsc_llr(0.03);
    llr.resize(code->n());
    for (std::size_t v = 0; v < code->n(); ++v) {
      llr[v] = bob.get(v) ? -channel : channel;
    }
  }

  const reconcile::LdpcCode* code = nullptr;
  BitVec alice, bob, syndrome;
  std::vector<float> llr;
};

TEST_F(KernelFixture, DecodeBitExactAcrossDevices) {
  ThreadPool pool(2);
  Device cpu(cpu_scalar_props());
  Device par(cpu_parallel_props(2), &pool);
  Device gpu(gpu_sim_props(), &pool);
  Device fpga(fpga_sim_props(), &pool);

  reconcile::DecoderConfig config;
  config.schedule = reconcile::BpSchedule::kFlooding;  // common schedule
  const DecodeJob job{&syndrome, &llr};

  std::vector<reconcile::DecodeResult> r_cpu, r_par, r_gpu, r_fpga;
  timed_ldpc_decode(cpu, *code, std::span(&job, 1), config, r_cpu);
  timed_ldpc_decode(par, *code, std::span(&job, 1), config, r_par);
  timed_ldpc_decode(gpu, *code, std::span(&job, 1), config, r_gpu);
  timed_ldpc_decode(fpga, *code, std::span(&job, 1), config, r_fpga);

  ASSERT_TRUE(r_cpu[0].converged);
  EXPECT_EQ(r_cpu[0].word, alice);
  EXPECT_EQ(r_par[0].word, alice);
  EXPECT_EQ(r_gpu[0].word, alice);
  EXPECT_EQ(r_fpga[0].word, alice);
}

TEST_F(KernelFixture, FpgaChargesWorstCaseIterations) {
  ThreadPool pool(2);
  Device gpu(gpu_sim_props(), &pool);
  Device fpga(fpga_sim_props(), &pool);
  reconcile::DecoderConfig config;
  config.max_iterations = 60;
  const DecodeJob job{&syndrome, &llr};
  std::vector<reconcile::DecodeResult> results;

  timed_ldpc_decode(gpu, *code, std::span(&job, 1), config, results);
  const double gpu_ops_charged = gpu.busy_seconds();
  timed_ldpc_decode(fpga, *code, std::span(&job, 1), config, results);
  // The GPU charges actual iterations (<< 60); the FPGA always charges 60
  // iterations worth of ops at its lower rate -> strictly more model ops.
  EXPECT_LT(results[0].iterations, 60u);
  EXPECT_GT(fpga.busy_seconds() / (150.0 / 4000.0), gpu_ops_charged);
}

TEST_F(KernelFixture, BatchingAmortizesLaunchOverhead) {
  ThreadPool pool(2);
  Device one(gpu_sim_props(), &pool);
  Device batched(gpu_sim_props(), &pool);

  reconcile::DecoderConfig config;
  const DecodeJob job{&syndrome, &llr};
  std::vector<reconcile::DecodeResult> results;

  const int kBatch = 16;
  for (int i = 0; i < kBatch; ++i) {
    timed_ldpc_decode(one, *code, std::span(&job, 1), config, results);
  }
  std::vector<DecodeJob> jobs(kBatch, job);
  timed_ldpc_decode(batched, *code, jobs, config, results);

  // Same arithmetic, but 16 launches + 16 transfers vs 1 launch + 1 bulk
  // transfer: batched must be cheaper.
  EXPECT_LT(batched.busy_seconds(), one.busy_seconds());
}

TEST_F(KernelFixture, SyndromeKernelMatchesDirect) {
  Device cpu(cpu_scalar_props());
  std::vector<BitVec> words = {alice, bob};
  std::vector<BitVec> syndromes;
  timed_syndrome(cpu, *code, words, syndromes);
  ASSERT_EQ(syndromes.size(), 2u);
  EXPECT_EQ(syndromes[0], code->syndrome(alice));
  EXPECT_EQ(syndromes[1], code->syndrome(bob));
}

TEST(Kernels, ToeplitzBitExactAcrossDevices) {
  Xoshiro256 rng(7);
  ThreadPool pool(2);
  Device cpu(cpu_scalar_props());
  Device gpu(gpu_sim_props(), &pool);
  const BitVec input = rng.random_bits(4096);
  const BitVec seed = rng.random_bits(4096 + 2048 - 1);
  BitVec out_cpu, out_gpu;
  timed_toeplitz(cpu, input, seed, 2048, out_cpu);
  timed_toeplitz(gpu, input, seed, 2048, out_gpu);
  EXPECT_EQ(out_cpu, out_gpu);
  EXPECT_EQ(out_cpu, privacy::toeplitz_hash_direct(input, seed, 2048));
}

TEST(Kernels, PolyTagMatchesVerification) {
  Xoshiro256 rng(8);
  Device cpu(cpu_scalar_props());
  std::vector<std::uint8_t> message(1000);
  for (auto& b : message) b = static_cast<std::uint8_t>(rng.next_u64());
  U128 tag;
  timed_poly_tag(cpu, message, 99, tag);
  const BitVec bits = BitVec::from_bytes(message, message.size() * 8);
  EXPECT_EQ(tag, privacy::verification_tag(bits, 99));
}

TEST(Kernels, EmptyBatchThrows) {
  Device cpu(cpu_scalar_props());
  std::vector<reconcile::DecodeResult> results;
  EXPECT_THROW(timed_ldpc_decode(cpu, reconcile::code_by_id(0), {},
                                 reconcile::DecoderConfig{}, results),
               std::invalid_argument);
  std::vector<BitVec> syndromes;
  EXPECT_THROW(timed_syndrome(cpu, reconcile::code_by_id(0), {}, syndromes),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkdpp::hetero
