// Lock-rank checker tests: in-order nesting is silent, out-of-order and
// same-rank re-acquisition abort with both lock names. The death tests are
// the executable spec of the hierarchy in common/mutex.hpp; they skip in
// builds where the checker is compiled out (NDEBUG without
// QKDPP_LOCK_RANK_CHECKS).
#include "common/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace qkdpp {
namespace {

TEST(LockRank, InOrderNestingIsAllowed) {
  Mutex outer(LockRank::kPair, "test.outer");
  Mutex inner(LockRank::kTap, "test.inner");
  Mutex leaf(LockRank::kLog, "test.leaf");
  {
    MutexLock a(outer);
    MutexLock b(inner);
    MutexLock c(leaf);
  }
  // Non-nested re-acquisition of the same rank is fine (sequential taps,
  // sequential shards) - only holding two at once is a violation.
  {
    MutexLock a(inner);
  }
  {
    MutexLock b(inner);
  }
}

TEST(LockRank, ReleaseOrderNeedNotBeLifo) {
  // The engine drops its plan lock around kernel launches via
  // MutexLock::unlock(); the checker must tolerate non-LIFO release.
  Mutex outer(LockRank::kEnginePlan, "test.plan");
  Mutex inner(LockRank::kDeviceSet, "test.ledger");
  MutexLock a(outer);
  MutexLock b(inner);
  a.unlock();  // outer released while inner is still held
  // b and the already-released a unwind at scope exit.
}

TEST(LockRank, OtherThreadsHoldTheirOwnStacks) {
  // Rank stacks are per-thread: thread B taking a high rank while thread A
  // holds a low one is not a violation.
  Mutex low(LockRank::kLog, "test.low");
  Mutex high(LockRank::kOrchestrator, "test.high");
  MutexLock a(low);
  std::thread other([&] { MutexLock b(high); });
  other.join();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
  }
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex low(LockRank::kTap, "test.tap");
  Mutex high(LockRank::kPair, "test.pair");
  EXPECT_DEATH(
      {
        MutexLock a(low);
        MutexLock b(high);  // rank 75 while holding rank 65: inversion
      },
      "lock-rank violation.*test\\.pair.*test\\.tap");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
  }
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  // Two taps at once would deadlock against a relay traversing them in the
  // opposite order; same-rank is out-of-order by the strictly-below rule.
  Mutex tap_a(LockRank::kTap, "test.tap_a");
  Mutex tap_b(LockRank::kTap, "test.tap_b");
  EXPECT_DEATH(
      {
        MutexLock a(tap_a);
        MutexLock b(tap_b);
      },
      "lock-rank violation.*test\\.tap_b.*test\\.tap_a");
}

TEST(LockRankDeathTest, TryLockViolationAborts) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "rank checker compiled out (NDEBUG build)";
  }
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Mutex low(LockRank::kLog, "test.low");
  Mutex high(LockRank::kPair, "test.high");
  EXPECT_DEATH(
      {
        MutexLock a(low);
        // try_lock cannot block, but an out-of-order success is still a
        // hierarchy violation and must be reported, not tolerated.
        if (high.try_lock()) high.unlock();
      },
      "lock-rank violation.*test\\.high.*test\\.low");
}

}  // namespace
}  // namespace qkdpp
