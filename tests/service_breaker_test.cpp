// Circuit-breaker + degradation-upward tests: a session-transport link
// under a classical-channel outage opens its breaker after the abort
// streak, sheds the cooldown window instead of burning retransmission
// budgets, half-open probes back off geometrically while the outage holds,
// and the open state propagates upward — the router treats the edge like
// admin-down, the delivery facade answers 503 with breaker detail. Plus
// the windowed-QBER regression: aborted blocks stay out of the health
// window.
#include "service/link_orchestrator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "api/key_delivery.hpp"
#include "network/router.hpp"
#include "network/topology.hpp"
#include "sim/scenario.hpp"

namespace qkdpp::service {
namespace {

/// Fast-abort ARQ posture: an outage block should cost tens of
/// milliseconds, not the deployment-tuned retry budget. The base timeout
/// stays at 2 ms so a CI scheduling hiccup cannot burn the whole budget
/// on a healthy channel.
protocol::RetryPolicy fast_retry() {
  protocol::RetryPolicy retry;
  retry.max_retries = 5;
  retry.base_timeout = std::chrono::milliseconds{2};
  retry.exchange_deadline = std::chrono::milliseconds{5000};
  retry.close_linger = std::chrono::milliseconds{50};
  return retry;
}

/// Breaker arithmetic needs every clean block to succeed, so these links
/// reconcile with Cascade: interactive parity converges deterministically,
/// where LDPC at this block size sporadically sheds a clean block when the
/// PE estimate low-balls the frame's true error rate.
LinkSpec session_link(std::string name, std::uint64_t blocks,
                      std::uint64_t seed) {
  LinkSpec spec;
  spec.name = std::move(name);
  spec.link.channel.length_km = 10.0;
  spec.pulses_per_block = std::size_t{1} << 18;
  spec.blocks = blocks;
  spec.rng_seed = seed;
  spec.params.method = protocol::ReconcileMethod::kCascade;
  spec.session_transport = true;
  spec.channel_retry = fast_retry();
  return spec;
}

bool has_detail(const std::vector<std::string>& details,
                std::string_view needle) {
  return std::any_of(details.begin(), details.end(),
                     [&](const std::string& d) { return d == needle; });
}

TEST(ServiceBreaker, OpensOnChannelOutageAndReclosesAfterProbe) {
  // channel_outage over blocks [6, 12): the quantum layer keeps producing,
  // the service channel drops every frame. Streak of 3 opens the breaker
  // at block 8; blocks 9-12 are shed; the half-open probe at 13 lands
  // after the outage and re-closes the circuit.
  OrchestratorConfig config;
  LinkSpec spec = session_link("chaotic", 18, 7);
  spec.schedule = sim::channel_outage_scenario(18).schedule;
  config.links.push_back(std::move(spec));
  config.breaker = CircuitBreakerPolicy::standard();

  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  const LinkReport& link = report.links[0];

  EXPECT_EQ(link.blocks_aborted, 3u) << "blocks 6,7,8 time out";
  EXPECT_EQ(link.breaker_opens, 1u);
  EXPECT_EQ(link.breaker_skipped_blocks, 4u) << "blocks 9-12 shed";
  EXPECT_EQ(link.blocks_ok, 11u) << "6 before + probe 13 + 14-17";
  EXPECT_EQ(link.breaker_state, BreakerState::kClosed);
  EXPECT_FALSE(orchestrator.link_health(0).breaker_open);

  // Degradation observability: the aborts are channel aborts, the injector
  // counted its outage drops, the ARQ layer retried before giving up — and
  // not one delivered key failed verification.
  EXPECT_EQ(link.channel_aborts, link.blocks_aborted * 2)
      << "both endpoints of each dead block report a typed channel fault";
  EXPECT_EQ(link.mismatched_keys, 0u);
  EXPECT_GT(link.faults.dropped, 0u);
  EXPECT_GT(link.channel.retransmits, 0u);
  EXPECT_GT(link.secret_bits, 0u);
  EXPECT_EQ(orchestrator.key_store(0).bits_available(), link.secret_bits);
}

TEST(ServiceBreaker, FailedProbeBacksOffAndStatePropagatesUpward) {
  // Permanent outage from block 3 onward: the breaker opens at block 5,
  // probes at 10, fails, doubles the cooldown and stays open to the end of
  // the run. The open state must surface everywhere a consumer looks:
  // LinkHealth, the topology edge, the router, and the 503 detail.
  OrchestratorConfig config;
  config.links.push_back(session_link("ab", 2, 11));
  config.links.push_back(session_link("bc", 2, 12));
  LinkSpec dark = session_link("ac", 14, 13);
  sim::ChannelFaultPhase outage;
  outage.begin_block = 3;
  outage.end_block = 1000;  // never lifts within this run
  outage.profile.drop = 1.0;
  dark.schedule.channel_faults.push_back(outage);
  config.links.push_back(std::move(dark));
  config.breaker = CircuitBreakerPolicy::standard();

  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  const LinkReport& ac = report.links[2];

  EXPECT_EQ(ac.blocks_ok, 3u);
  EXPECT_EQ(ac.blocks_aborted, 4u) << "3,4,5 then the failed probe at 10";
  EXPECT_EQ(ac.breaker_opens, 2u);
  EXPECT_EQ(ac.breaker_skipped_blocks, 7u) << "6-9 then 11-13";
  EXPECT_EQ(ac.breaker_state, BreakerState::kOpen);
  EXPECT_TRUE(orchestrator.link_health(2).breaker_open);

  network::Topology topology(orchestrator);
  for (const char* node : {"a", "b", "c"}) topology.add_node(node);
  topology.add_edge("a", "b", "ab");
  topology.add_edge("b", "c", "bc");
  const std::size_t ac_edge = topology.add_edge("a", "c", "ac");
  EXPECT_TRUE(topology.edge_status(ac_edge).breaker_open);

  // down_after_aborts off: the direct edge must fall out of routing on the
  // breaker bit alone, not on the abort-streak heuristic.
  network::RouterPolicy policy;
  policy.down_after_aborts = 0;
  network::Router router(topology, policy);
  const auto route = router.find_route(0, 2, {});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hops(), 2u) << "a-b-c around the open direct edge";

  // The delivery facade turns the same state into an actionable 503: the
  // dark link banked 3 blocks; drain them, then the next request must name
  // the open breaker and a Retry-After-style hint.
  api::KeyDeliveryService service(orchestrator);
  api::SaePair pair;
  pair.master_sae_id = "sae-a";
  pair.slave_sae_id = "sae-c";
  pair.link_name = "ac";
  pair.max_key_per_request = 4096;
  service.register_pair(pair);
  api::KeyRequest drain;
  drain.number = 4096;
  drain.size = 64;
  while (service.get_key("sae-a", "sae-c", drain).ok()) {
  }
  const auto starved = service.get_key("sae-a", "sae-c", drain);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.error.status, api::kStatusUnavailable);
  EXPECT_TRUE(has_detail(starved.error.details, "link_breaker=open"))
      << starved.error.to_json().dump();
  EXPECT_TRUE(has_detail(starved.error.details, "retry_after_ms=2000"))
      << starved.error.to_json().dump();
}

TEST(ServiceBreaker, WindowedQberExcludesAbortedBlocks) {
  // Regression (engine fast path): a link-outage window drives per-block
  // QBER estimates to ~50% — far above the abort ceiling; those blocks
  // abort and must NOT contaminate the sliding health window, or the
  // post-outage windowed QBER reads as half-broken long after the channel
  // recovered. (Aborts estimated *below* the ceiling still feed the
  // window: they are the adaptation signal.)
  OrchestratorConfig config;
  LinkSpec spec;
  spec.name = "bursty";
  spec.link.channel.length_km = 10.0;
  spec.pulses_per_block = std::size_t{1} << 18;
  spec.blocks = 12;
  spec.rng_seed = 21;
  spec.params.method = protocol::ReconcileMethod::kCascade;
  spec.schedule = sim::link_outage_scenario(12).schedule;  // outage [4, 8)
  config.links.push_back(std::move(spec));

  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  const LinkReport& link = report.links[0];
  EXPECT_EQ(link.blocks_aborted, 4u);
  // Default window = 6 > the 4 clean closing blocks: an aborted ~0.5
  // estimate leaking in would push the mean above ~0.1.
  EXPECT_LT(link.windowed_qber, 0.05);
  EXPECT_LT(orchestrator.link_health(0).windowed_qber, 0.05);
}

}  // namespace
}  // namespace qkdpp::service
