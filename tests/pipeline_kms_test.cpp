// KeyStore tests: ETSI-style two-endpoint consumption, the empty-deposit
// regression, capacity bounds under both overflow policies, and the
// per-consumer draw ledger.
#include "pipeline/kms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp::pipeline {
namespace {

TEST(KeyStore, DepositAndFifoDraw) {
  Xoshiro256 rng(1);
  KeyStore store;
  const BitVec first = rng.random_bits(100);
  const BitVec second = rng.random_bits(200);
  const auto id_first = store.deposit(first);
  const auto id_second = store.deposit(second);
  EXPECT_TRUE(id_first.accepted());
  EXPECT_TRUE(id_second.accepted());
  EXPECT_NE(id_first.key_id, id_second.key_id);
  EXPECT_EQ(store.keys_available(), 2u);
  EXPECT_EQ(store.bits_available(), 300u);

  const auto drawn = store.get_key();
  ASSERT_TRUE(drawn.has_value());
  EXPECT_EQ(drawn->key_id, id_first.key_id);  // FIFO
  EXPECT_EQ(drawn->bits, first);
  EXPECT_EQ(store.bits_available(), 200u);
}

TEST(KeyStore, RejectReasonNamesAreStable) {
  // Logs and JSON error details embed these names; renaming one is a
  // wire-visible change, so pin them.
  EXPECT_STREQ(to_string(RejectReason::kNone), "none");
  EXPECT_STREQ(to_string(RejectReason::kEmpty), "empty");
  EXPECT_STREQ(to_string(RejectReason::kOversized), "oversized");
  EXPECT_STREQ(to_string(RejectReason::kCapacity), "capacity");
  EXPECT_STREQ(to_string(RejectReason::kClosed), "closed");
  EXPECT_STREQ(to_string(RejectReason::kCount_), "unknown");
}

TEST(KeyStore, EmptyDepositRejectedRegression) {
  // Regression: an empty BitVec used to mint a key id and count toward
  // keys_available(), letting consumers draw zero-bit "keys".
  KeyStore store;
  const auto result = store.deposit(BitVec());
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.reason, RejectReason::kEmpty);
  EXPECT_EQ(store.keys_available(), 0u);
  EXPECT_EQ(store.bits_available(), 0u);
  EXPECT_EQ(store.total_deposited_bits(), 0u);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_keys(RejectReason::kEmpty), 1u);
  EXPECT_EQ(store.rejected_keys(RejectReason::kCount_), 0u);  // guarded
  EXPECT_FALSE(store.get_key().has_value());
}

TEST(KeyStore, BitsAvailableConsistentAcrossMixedConsumption) {
  Xoshiro256 rng(2);
  KeyStore store;
  std::vector<std::uint64_t> ids;
  std::uint64_t total = 0;
  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    ids.push_back(store.deposit(rng.random_bits(n)).key_id);
    total += n;
  }
  EXPECT_EQ(store.bits_available(), total);

  // Mixed draws: designated ids interleaved with FIFO next-key draws.
  const auto by_id = store.get_key_with_id(ids[2]);  // 256
  ASSERT_TRUE(by_id.has_value());
  total -= 256;
  EXPECT_EQ(store.bits_available(), total);

  const auto fifo = store.get_key();  // 64 (oldest)
  ASSERT_TRUE(fifo.has_value());
  EXPECT_EQ(fifo->bits.size(), 64u);
  total -= 64;
  EXPECT_EQ(store.bits_available(), total);

  // Already-consumed id: no double consumption, accounting unchanged.
  EXPECT_FALSE(store.get_key_with_id(ids[2]).has_value());
  EXPECT_FALSE(store.get_key_with_id(ids[0]).has_value());
  EXPECT_EQ(store.bits_available(), total);

  const auto rest_a = store.get_key();
  const auto rest_b = store.get_key();
  const auto rest_c = store.get_key();
  ASSERT_TRUE(rest_a && rest_b && rest_c);
  EXPECT_EQ(store.bits_available(), 0u);
  EXPECT_FALSE(store.get_key().has_value());
  EXPECT_EQ(store.total_consumed_bits(), store.total_deposited_bits());
}

TEST(KeyStore, CapacityRejectsWithStatistic) {
  Xoshiro256 rng(3);
  KeyStoreConfig config;
  config.capacity_bits = 256;
  config.on_overflow = OverflowPolicy::kReject;
  KeyStore store(config);

  EXPECT_TRUE(store.deposit(rng.random_bits(200)).accepted());
  // 100 more bits would exceed 256: rejected, counted, store unchanged.
  EXPECT_EQ(store.deposit(rng.random_bits(100)).reason,
            RejectReason::kCapacity);
  EXPECT_EQ(store.keys_available(), 1u);
  EXPECT_EQ(store.bits_available(), 200u);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_keys(RejectReason::kCapacity), 1u);
  EXPECT_EQ(store.rejected_bits(), 100u);
  // A 56-bit key still fits.
  EXPECT_TRUE(store.deposit(rng.random_bits(56)).accepted());
  EXPECT_EQ(store.bits_available(), 256u);

  // Draining frees capacity again.
  ASSERT_TRUE(store.get_key().has_value());
  EXPECT_TRUE(store.deposit(rng.random_bits(100)).accepted());
}

TEST(KeyStore, OversizedKeyRejectedEvenWhenEmpty) {
  Xoshiro256 rng(4);
  KeyStoreConfig config;
  config.capacity_bits = 128;
  config.on_overflow = OverflowPolicy::kBlock;  // must not block forever
  KeyStore store(config);
  EXPECT_EQ(store.deposit(rng.random_bits(129)).reason,
            RejectReason::kOversized);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_keys(RejectReason::kOversized), 1u);
}

TEST(KeyStore, BlockingDepositWaitsForConsumer) {
  Xoshiro256 rng(5);
  KeyStoreConfig config;
  config.capacity_bits = 100;
  config.on_overflow = OverflowPolicy::kBlock;
  KeyStore store(config);
  ASSERT_TRUE(store.deposit(rng.random_bits(80)).accepted());

  // Second deposit must block until the consumer thread drains the first.
  DepositResult second;
  std::thread depositor(
      [&] { second = store.deposit(rng.random_bits(60)); });
  std::thread consumer([&] {
    while (!store.get_key("drain").has_value()) {
      std::this_thread::yield();
    }
  });
  depositor.join();
  consumer.join();
  EXPECT_TRUE(second.accepted());
  EXPECT_EQ(store.bits_available(), 60u);
  EXPECT_EQ(store.consumed_by("drain"), 80u);
}

TEST(KeyStore, CloseReleasesBlockedDepositors) {
  Xoshiro256 rng(6);
  KeyStoreConfig config;
  config.capacity_bits = 100;
  config.on_overflow = OverflowPolicy::kBlock;
  KeyStore store(config);
  ASSERT_TRUE(store.deposit(rng.random_bits(100)).accepted());

  DepositResult blocked;
  std::thread depositor(
      [&] { blocked = store.deposit(rng.random_bits(50)); });
  store.close();
  depositor.join();
  EXPECT_EQ(blocked.reason, RejectReason::kClosed);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_keys(RejectReason::kClosed), 1u);
  EXPECT_EQ(store.rejected_bits(), 50u);
  // The key that was already stored is still drawable.
  EXPECT_TRUE(store.get_key().has_value());
}

TEST(KeyStore, PerConsumerDrawAccounting) {
  Xoshiro256 rng(7);
  KeyStore store;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(store.deposit(rng.random_bits(100)).key_id);
  }
  ASSERT_TRUE(store.get_key("vpn").has_value());
  ASSERT_TRUE(store.get_key("vpn").has_value());
  ASSERT_TRUE(store.get_key_with_id(ids[3], "voip").has_value());
  ASSERT_TRUE(store.get_key().has_value());  // unlabeled draw

  EXPECT_EQ(store.consumed_by("vpn"), 200u);
  EXPECT_EQ(store.consumed_by("voip"), 100u);
  EXPECT_EQ(store.consumed_by("absent"), 0u);
  // An empty consumer name lands in the reserved "anonymous" ledger entry
  // instead of a silent "" key; reading with either name agrees.
  EXPECT_EQ(store.consumed_by(kAnonymousConsumer), 100u);
  EXPECT_EQ(store.consumed_by(""), 100u);
  const auto ledger = store.draw_accounting();
  ASSERT_EQ(ledger.size(), 3u);  // vpn, voip, anonymous
  EXPECT_EQ(ledger.at("vpn"), 200u);
  EXPECT_EQ(ledger.at("voip"), 100u);
  EXPECT_EQ(ledger.at(std::string(kAnonymousConsumer)), 100u);
  EXPECT_EQ(ledger.count(""), 0u);
  EXPECT_EQ(store.total_consumed_bits(), 400u);
}

TEST(KeyStore, ConcurrentProducersAndConsumersStayConsistent) {
  KeyStoreConfig config;
  config.capacity_bits = 4096;
  config.on_overflow = OverflowPolicy::kReject;
  KeyStore store(config);

  constexpr int kProducers = 4;
  constexpr int kKeysEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&store, p] {
      Xoshiro256 rng(100 + p);
      for (int k = 0; k < kKeysEach; ++k) {
        (void)store.deposit(rng.random_bits(64));
      }
    });
  }
  std::atomic<std::uint64_t> drawn_bits{0};
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&store, &drawn_bits, c] {
      const std::string name = c == 0 ? "left" : "right";
      for (int k = 0; k < kProducers * kKeysEach / 2; ++k) {
        if (const auto key = store.get_key(name)) {
          drawn_bits += key->bits.size();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Conservation: everything deposited was either drawn, rejected, or is
  // still available.
  EXPECT_EQ(store.total_deposited_bits(),
            store.total_consumed_bits() + store.bits_available());
  EXPECT_EQ(store.total_deposited_bits() + store.rejected_bits(),
            static_cast<std::uint64_t>(kProducers) * kKeysEach * 64);
  EXPECT_EQ(store.consumed_by("left") + store.consumed_by("right"),
            drawn_bits.load());
  EXPECT_LE(store.bits_available(), config.capacity_bits);
}

}  // namespace
}  // namespace qkdpp::pipeline
