// KeyStore tests: ETSI-style two-endpoint consumption, the empty-deposit
// regression, capacity bounds under both overflow policies, and the
// per-consumer draw ledger.
#include "pipeline/kms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp::pipeline {
namespace {

TEST(KeyStore, DepositAndFifoDraw) {
  Xoshiro256 rng(1);
  KeyStore store;
  const BitVec first = rng.random_bits(100);
  const BitVec second = rng.random_bits(200);
  const auto id_first = store.deposit(first);
  const auto id_second = store.deposit(second);
  EXPECT_NE(id_first, 0u);
  EXPECT_NE(id_second, 0u);
  EXPECT_NE(id_first, id_second);
  EXPECT_EQ(store.keys_available(), 2u);
  EXPECT_EQ(store.bits_available(), 300u);

  const auto drawn = store.get_key();
  ASSERT_TRUE(drawn.has_value());
  EXPECT_EQ(drawn->key_id, id_first);  // FIFO
  EXPECT_EQ(drawn->bits, first);
  EXPECT_EQ(store.bits_available(), 200u);
}

TEST(KeyStore, EmptyDepositRejectedRegression) {
  // Regression: an empty BitVec used to mint a key id and count toward
  // keys_available(), letting consumers draw zero-bit "keys".
  KeyStore store;
  EXPECT_EQ(store.deposit(BitVec()), 0u);
  EXPECT_EQ(store.keys_available(), 0u);
  EXPECT_EQ(store.bits_available(), 0u);
  EXPECT_EQ(store.total_deposited_bits(), 0u);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_FALSE(store.get_key().has_value());
}

TEST(KeyStore, BitsAvailableConsistentAcrossMixedConsumption) {
  Xoshiro256 rng(2);
  KeyStore store;
  std::vector<std::uint64_t> ids;
  std::uint64_t total = 0;
  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    ids.push_back(store.deposit(rng.random_bits(n)));
    total += n;
  }
  EXPECT_EQ(store.bits_available(), total);

  // Mixed draws: designated ids interleaved with FIFO next-key draws.
  const auto by_id = store.get_key_with_id(ids[2]);  // 256
  ASSERT_TRUE(by_id.has_value());
  total -= 256;
  EXPECT_EQ(store.bits_available(), total);

  const auto fifo = store.get_key();  // 64 (oldest)
  ASSERT_TRUE(fifo.has_value());
  EXPECT_EQ(fifo->bits.size(), 64u);
  total -= 64;
  EXPECT_EQ(store.bits_available(), total);

  // Already-consumed id: no double consumption, accounting unchanged.
  EXPECT_FALSE(store.get_key_with_id(ids[2]).has_value());
  EXPECT_FALSE(store.get_key_with_id(ids[0]).has_value());
  EXPECT_EQ(store.bits_available(), total);

  const auto rest_a = store.get_key();
  const auto rest_b = store.get_key();
  const auto rest_c = store.get_key();
  ASSERT_TRUE(rest_a && rest_b && rest_c);
  EXPECT_EQ(store.bits_available(), 0u);
  EXPECT_FALSE(store.get_key().has_value());
  EXPECT_EQ(store.total_consumed_bits(), store.total_deposited_bits());
}

TEST(KeyStore, CapacityRejectsWithStatistic) {
  Xoshiro256 rng(3);
  KeyStoreConfig config;
  config.capacity_bits = 256;
  config.on_overflow = OverflowPolicy::kReject;
  KeyStore store(config);

  EXPECT_NE(store.deposit(rng.random_bits(200)), 0u);
  // 100 more bits would exceed 256: rejected, counted, store unchanged.
  EXPECT_EQ(store.deposit(rng.random_bits(100)), 0u);
  EXPECT_EQ(store.keys_available(), 1u);
  EXPECT_EQ(store.bits_available(), 200u);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_bits(), 100u);
  // A 56-bit key still fits.
  EXPECT_NE(store.deposit(rng.random_bits(56)), 0u);
  EXPECT_EQ(store.bits_available(), 256u);

  // Draining frees capacity again.
  ASSERT_TRUE(store.get_key().has_value());
  EXPECT_NE(store.deposit(rng.random_bits(100)), 0u);
}

TEST(KeyStore, OversizedKeyRejectedEvenWhenEmpty) {
  Xoshiro256 rng(4);
  KeyStoreConfig config;
  config.capacity_bits = 128;
  config.on_overflow = OverflowPolicy::kBlock;  // must not block forever
  KeyStore store(config);
  EXPECT_EQ(store.deposit(rng.random_bits(129)), 0u);
  EXPECT_EQ(store.rejected_keys(), 1u);
}

TEST(KeyStore, BlockingDepositWaitsForConsumer) {
  Xoshiro256 rng(5);
  KeyStoreConfig config;
  config.capacity_bits = 100;
  config.on_overflow = OverflowPolicy::kBlock;
  KeyStore store(config);
  ASSERT_NE(store.deposit(rng.random_bits(80)), 0u);

  // Second deposit must block until the consumer thread drains the first.
  std::uint64_t second_id = 0;
  std::thread depositor(
      [&] { second_id = store.deposit(rng.random_bits(60)); });
  std::thread consumer([&] {
    while (!store.get_key("drain").has_value()) {
      std::this_thread::yield();
    }
  });
  depositor.join();
  consumer.join();
  EXPECT_NE(second_id, 0u);
  EXPECT_EQ(store.bits_available(), 60u);
  EXPECT_EQ(store.consumed_by("drain"), 80u);
}

TEST(KeyStore, CloseReleasesBlockedDepositors) {
  Xoshiro256 rng(6);
  KeyStoreConfig config;
  config.capacity_bits = 100;
  config.on_overflow = OverflowPolicy::kBlock;
  KeyStore store(config);
  ASSERT_NE(store.deposit(rng.random_bits(100)), 0u);

  std::uint64_t blocked_id = 1;  // sentinel: must become 0 (rejected)
  std::thread depositor(
      [&] { blocked_id = store.deposit(rng.random_bits(50)); });
  store.close();
  depositor.join();
  EXPECT_EQ(blocked_id, 0u);
  EXPECT_EQ(store.rejected_keys(), 1u);
  EXPECT_EQ(store.rejected_bits(), 50u);
  // The key that was already stored is still drawable.
  EXPECT_TRUE(store.get_key().has_value());
}

TEST(KeyStore, PerConsumerDrawAccounting) {
  Xoshiro256 rng(7);
  KeyStore store;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(store.deposit(rng.random_bits(100)));
  }
  ASSERT_TRUE(store.get_key("vpn").has_value());
  ASSERT_TRUE(store.get_key("vpn").has_value());
  ASSERT_TRUE(store.get_key_with_id(ids[3], "voip").has_value());
  ASSERT_TRUE(store.get_key().has_value());  // anonymous draw

  EXPECT_EQ(store.consumed_by("vpn"), 200u);
  EXPECT_EQ(store.consumed_by("voip"), 100u);
  EXPECT_EQ(store.consumed_by("absent"), 0u);
  const auto ledger = store.draw_accounting();
  ASSERT_EQ(ledger.size(), 3u);  // vpn, voip, anonymous ""
  EXPECT_EQ(ledger.at("vpn"), 200u);
  EXPECT_EQ(ledger.at("voip"), 100u);
  EXPECT_EQ(ledger.at(""), 100u);
  EXPECT_EQ(store.total_consumed_bits(), 400u);
}

TEST(KeyStore, ConcurrentProducersAndConsumersStayConsistent) {
  KeyStoreConfig config;
  config.capacity_bits = 4096;
  config.on_overflow = OverflowPolicy::kReject;
  KeyStore store(config);

  constexpr int kProducers = 4;
  constexpr int kKeysEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&store, p] {
      Xoshiro256 rng(100 + p);
      for (int k = 0; k < kKeysEach; ++k) {
        (void)store.deposit(rng.random_bits(64));
      }
    });
  }
  std::atomic<std::uint64_t> drawn_bits{0};
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&store, &drawn_bits, c] {
      const std::string name = c == 0 ? "left" : "right";
      for (int k = 0; k < kProducers * kKeysEach / 2; ++k) {
        if (const auto key = store.get_key(name)) {
          drawn_bits += key->bits.size();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Conservation: everything deposited was either drawn, rejected, or is
  // still available.
  EXPECT_EQ(store.total_deposited_bits(),
            store.total_consumed_bits() + store.bits_available());
  EXPECT_EQ(store.total_deposited_bits() + store.rejected_bits(),
            static_cast<std::uint64_t>(kProducers) * kKeysEach * 64);
  EXPECT_EQ(store.consumed_by("left") + store.consumed_by("right"),
            drawn_bits.load());
  EXPECT_LE(store.bits_available(), config.capacity_bits);
}

}  // namespace
}  // namespace qkdpp::pipeline
