// KeyPool ledger tests + Wegman-Carter MAC correctness/forgery tests.
#include "auth/wegman_carter.hpp"

#include <gtest/gtest.h>

#include "auth/key_pool.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::auth {
namespace {

TEST(KeyPool, DrawReturnsFifoOrder) {
  Xoshiro256 rng(1);
  const BitVec material = rng.random_bits(1000);
  KeyPool pool(material);
  const BitVec first = pool.draw(300);
  const BitVec second = pool.draw(300);
  EXPECT_EQ(first, material.subvec(0, 300));
  EXPECT_EQ(second, material.subvec(300, 300));
  EXPECT_EQ(pool.available(), 400u);
}

TEST(KeyPool, ExhaustionThrows) {
  Xoshiro256 rng(2);
  KeyPool pool(rng.random_bits(100));
  pool.draw(80);
  try {
    pool.draw(21);
    FAIL() << "expected exhaustion";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kKeyExhausted);
  }
  // A failed draw consumes nothing.
  EXPECT_EQ(pool.available(), 20u);
  EXPECT_NO_THROW(pool.draw(20));
}

TEST(KeyPool, ReplenishExtendsFifo) {
  Xoshiro256 rng(3);
  const BitVec a = rng.random_bits(64);
  const BitVec b = rng.random_bits(64);
  KeyPool pool(a);
  pool.draw(50);
  pool.replenish(b);
  EXPECT_EQ(pool.available(), 78u);
  BitVec expected = a.subvec(50, 14);
  expected.append(b);
  EXPECT_EQ(pool.draw(78), expected);
}

TEST(KeyPool, LedgerCounts) {
  Xoshiro256 rng(4);
  KeyPool pool(rng.random_bits(500));
  pool.draw(100);
  pool.draw(50);
  pool.replenish(rng.random_bits(200));
  EXPECT_EQ(pool.total_consumed(), 150u);
  EXPECT_EQ(pool.total_replenished(), 200u);
  EXPECT_EQ(pool.available(), 550u);
}

TEST(KeyPool, CompactionPreservesContent) {
  Xoshiro256 rng(5);
  const BitVec a = rng.random_bits(1000);
  KeyPool pool(a);
  pool.draw(900);  // head deep into the store
  pool.replenish(rng.random_bits(10));  // triggers compaction
  const BitVec tail = pool.draw(100);
  EXPECT_EQ(tail, a.subvec(900, 100));
}

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(PolyHash, DependsOnEveryBlockAndLength) {
  const U128 r{0x1234, 0x5678};
  const auto m1 = bytes_of("block one block two!");
  auto m2 = m1;
  m2[17] ^= 0x40;
  EXPECT_NE(poly_hash(r, m1), poly_hash(r, m2));
  // Length matters even with identical prefix content.
  const auto short_m = bytes_of("abc");
  auto padded = short_m;
  padded.resize(16, 0);  // same 16-byte block after zero padding
  EXPECT_NE(poly_hash(r, short_m), poly_hash(r, padded));
}

TEST(PolyHash, EmptyMessageWellDefined) {
  const U128 r{1, 2};
  EXPECT_EQ(poly_hash(r, {}), (U128{0, 0}));  // L=0 -> 0*r = 0
  const U128 r2{99, 3};
  EXPECT_EQ(poly_hash(r2, {}), (U128{0, 0}));
}

TEST(WegmanCarter, SignVerifyRoundTrip) {
  Xoshiro256 rng(10);
  const BitVec shared = rng.random_bits(kTagKeyBits * 10);
  KeyPool alice_pool(shared);
  KeyPool bob_pool(shared);
  WegmanCarter alice(alice_pool);
  WegmanCarter bob(bob_pool);

  for (int i = 0; i < 10; ++i) {
    const auto msg = bytes_of("message number " + std::to_string(i));
    const Tag tag = alice.sign(msg);
    EXPECT_TRUE(bob.verify(msg, tag)) << i;
  }
  EXPECT_EQ(alice_pool.available(), 0u);
}

TEST(WegmanCarter, TamperedMessageRejected) {
  Xoshiro256 rng(11);
  const BitVec shared = rng.random_bits(kTagKeyBits * 4);
  KeyPool alice_pool(shared);
  KeyPool bob_pool(shared);
  WegmanCarter alice(alice_pool);
  WegmanCarter bob(bob_pool);

  auto msg = bytes_of("authentic payload");
  const Tag tag = alice.sign(msg);
  msg[3] ^= 0x01;
  EXPECT_FALSE(bob.verify(msg, tag));
}

TEST(WegmanCarter, TamperedTagRejected) {
  Xoshiro256 rng(12);
  const BitVec shared = rng.random_bits(kTagKeyBits * 4);
  KeyPool alice_pool(shared);
  KeyPool bob_pool(shared);
  WegmanCarter alice(alice_pool);
  WegmanCarter bob(bob_pool);

  const auto msg = bytes_of("authentic payload");
  Tag tag = alice.sign(msg);
  tag.value.lo ^= 1;
  EXPECT_FALSE(bob.verify(msg, tag));
}

TEST(WegmanCarter, DesynchronizedPoolsReject) {
  Xoshiro256 rng(13);
  const BitVec shared = rng.random_bits(kTagKeyBits * 4);
  KeyPool alice_pool(shared);
  KeyPool bob_pool(shared);
  bob_pool.draw(kTagKeyBits);  // Bob is one tag ahead
  WegmanCarter alice(alice_pool);
  WegmanCarter bob(bob_pool);

  const auto msg = bytes_of("payload");
  EXPECT_FALSE(bob.verify(msg, alice.sign(msg)));
}

TEST(WegmanCarter, TagsAreOneTime) {
  // Two identical messages get different tags (fresh otp), so a replayed
  // tag never verifies at the next pool position.
  Xoshiro256 rng(14);
  const BitVec shared = rng.random_bits(kTagKeyBits * 4);
  KeyPool alice_pool(shared);
  KeyPool bob_pool(shared);
  WegmanCarter alice(alice_pool);
  WegmanCarter bob(bob_pool);

  const auto msg = bytes_of("repeat me");
  const Tag t1 = alice.sign(msg);
  const Tag t2 = alice.sign(msg);
  EXPECT_NE(t1.value, t2.value);
  EXPECT_TRUE(bob.verify(msg, t1));
  EXPECT_FALSE(bob.verify(msg, t1));  // replay at position 2 fails
}

TEST(WegmanCarter, SignConsumesExactBudget) {
  Xoshiro256 rng(15);
  KeyPool pool(rng.random_bits(kTagKeyBits * 3));
  WegmanCarter wc(pool);
  wc.sign(bytes_of("a"));
  EXPECT_EQ(pool.total_consumed(), kTagKeyBits);
  wc.sign(bytes_of("a much longer message that still costs the same"));
  EXPECT_EQ(pool.total_consumed(), 2 * kTagKeyBits);
}

TEST(WegmanCarter, ExhaustedPoolThrowsOnSign) {
  Xoshiro256 rng(16);
  KeyPool pool(rng.random_bits(kTagKeyBits - 1));
  WegmanCarter wc(pool);
  EXPECT_THROW(wc.sign(bytes_of("x")), Error);
}

TEST(WegmanCarter, ForgeryProbabilityEmpiricallyTiny) {
  // 64-bit truncated collision experiment: random tag guesses never verify
  // across a few thousand trials (probability ~ 2^-128 each).
  Xoshiro256 rng(17);
  const BitVec shared = rng.random_bits(kTagKeyBits * 2);
  const auto msg = bytes_of("target message");
  int forgeries = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    KeyPool pool(shared);
    WegmanCarter verifier(pool);
    const Tag guess{U128{rng.next_u64(), rng.next_u64()}};
    forgeries += verifier.verify(msg, guess);
  }
  EXPECT_EQ(forgeries, 0);
}

}  // namespace
}  // namespace qkdpp::auth
