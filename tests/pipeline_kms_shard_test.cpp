// Sharded KeyStore behaviour: FIFO across stripes, shard-count
// configuration edges, and a concurrent conservation stress where many
// producers and consumers hammer different shards at once - every bit
// deposited must be drawn exactly once, with no duplicate ids, and the
// atomic aggregate ledger must balance exactly after the joins.
#include "pipeline/kms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp::pipeline {
namespace {

TEST(KeyStoreShards, FifoOrderSpansShards) {
  // Sequential ids land in different stripes (id % shards); get_key must
  // still return strictly increasing ids - the global FIFO the delivery
  // layer depends on.
  KeyStoreConfig config;
  config.shards = 4;
  KeyStore store(config);
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> minted;
  for (int i = 0; i < 20; ++i) {
    const auto result = store.deposit(rng.random_bits(32));
    ASSERT_TRUE(result.accepted());
    minted.push_back(result.key_id);
  }
  for (const std::uint64_t expected : minted) {
    const auto key = store.get_key("fifo");
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->key_id, expected);
  }
  EXPECT_FALSE(store.get_key("fifo").has_value());
}

TEST(KeyStoreShards, GetKeyWithIdFindsItsShard) {
  KeyStoreConfig config;
  config.shards = 8;
  KeyStore store(config);
  Xoshiro256 rng(5);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 17; ++i) {
    ids.push_back(store.deposit(rng.random_bits(64)).key_id);
  }
  // Draw from the middle, the ends, and a missing id.
  EXPECT_TRUE(store.get_key_with_id(ids[8], "mid").has_value());
  EXPECT_TRUE(store.get_key_with_id(ids[0], "first").has_value());
  EXPECT_TRUE(store.get_key_with_id(ids[16], "last").has_value());
  EXPECT_FALSE(store.get_key_with_id(ids[8], "again").has_value())
      << "consumption is destructive exactly once";
  EXPECT_FALSE(store.get_key_with_id(99999, "ghost").has_value());
  EXPECT_EQ(store.keys_available(), 14u);
}

TEST(KeyStoreShards, ZeroShardConfigClampsToOne) {
  KeyStoreConfig config;
  config.shards = 0;
  KeyStore store(config);
  Xoshiro256 rng(8);
  ASSERT_TRUE(store.deposit(rng.random_bits(16)).accepted());
  EXPECT_TRUE(store.get_key().has_value());
}

TEST(KeyStoreShards, ConcurrentConservationStress) {
  // 4 producers x 4 consumers over 8 shards under a capacity bound with
  // kBlock backpressure, closed mid-flight from a racing producer's last
  // key. Exact invariants after the joins:
  //   deposited == consumed + (left in store == 0 after final drain)
  //   produced == deposited + rejected
  //   ids unique across every draw.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kKeysEach = 250;
  constexpr std::uint64_t kKeyBits = 128;

  KeyStoreConfig config;
  config.capacity_bits = 8 * kKeyBits;  // tight: backpressure is exercised
  config.on_overflow = OverflowPolicy::kBlock;
  config.shards = 8;
  KeyStore store(config);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<int> producers_done{0};
  std::mutex ids_mutex;
  std::set<std::uint64_t> drawn_ids;
  std::atomic<std::uint64_t> drawn_bits{0};
  std::atomic<bool> duplicate_seen{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      Xoshiro256 rng(40 + p);
      for (int k = 0; k < kKeysEach; ++k) {
        if (store.deposit(rng.random_bits(kKeyBits))) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
      if (producers_done.fetch_add(1) + 1 == kProducers) {
        // Last producer out closes the store: any depositor still blocked
        // (there is none by now, but the path must be safe) is released
        // and the consumers' drain loop below can terminate.
        store.close();
      }
    });
  }
  const auto record = [&](const StoredKey& key) {
    drawn_bits.fetch_add(key.bits.size());
    std::scoped_lock lock(ids_mutex);
    if (!drawn_ids.insert(key.key_id).second) duplicate_seen.store(true);
  };
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(80 + c);
      for (;;) {
        const auto key = store.get_key("consumer-" + std::to_string(c));
        if (key.has_value()) {
          record(*key);
        } else if (producers_done.load() == kProducers) {
          // One more sweep after the producers finished: a deposit may
          // have landed between our miss and the done-check.
          const auto last = store.get_key("consumer-" + std::to_string(c));
          if (!last.has_value()) break;
          record(*last);
        } else if (rng.bernoulli(0.3)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(duplicate_seen.load()) << "a key id was drawn twice";
  const std::uint64_t produced =
      std::uint64_t{kProducers} * kKeysEach;
  EXPECT_EQ(accepted.load() + rejected.load(), produced);
  EXPECT_EQ(store.total_deposited_bits(), accepted.load() * kKeyBits);
  EXPECT_EQ(store.total_consumed_bits(), accepted.load() * kKeyBits)
      << "every accepted bit must be drawn by the final sweeps";
  EXPECT_EQ(store.bits_available(), 0u);
  EXPECT_EQ(store.keys_available(), 0u);
  EXPECT_EQ(drawn_bits.load(), store.total_consumed_bits());
  EXPECT_EQ(drawn_ids.size(), accepted.load());

  // The per-consumer ledger sums to the aggregate.
  std::uint64_t ledger_total = 0;
  for (const auto& [name, bits] : store.draw_accounting()) {
    ledger_total += bits;
  }
  EXPECT_EQ(ledger_total, store.total_consumed_bits());
}

}  // namespace
}  // namespace qkdpp::pipeline
