// Re-planning tests: replan() re-arbitrates against current roster state
// and committed loads (offline devices never chosen, loads swapped not
// duplicated), the EWMA cost model steers placement when observed costs
// drift from the model, and adapt_to_qber retunes the reconciler
// deterministically.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "engine/engine.hpp"
#include "engine/params.hpp"
#include "hetero/device_set.hpp"
#include "hetero/trace.hpp"
#include "protocol/messages.hpp"

namespace qkdpp::engine {
namespace {

bool uses_device(const Placement& placement, const std::string& name) {
  for (std::size_t s = 0; s < placement.device_of_stage.size(); ++s) {
    if (placement.device_of(s) == name) return true;
  }
  return false;
}

TEST(Replan, OfflineDeviceIsNeverChosenAndReturnsAfterReadd) {
  auto set = std::make_shared<hetero::DeviceSet>(
      std::vector<hetero::DeviceProps>{}, 2);
  EngineOptions options;
  options.shared_devices = set;
  PostprocessEngine engine(PostprocessParams{}, options);

  // The standard workload puts reconcile/amplify on the gpu-sim.
  ASSERT_TRUE(uses_device(engine.placement(), "gpu-sim"));

  set->set_online(2, false);  // gpu-sim
  const Placement after_remove = engine.replan();
  EXPECT_FALSE(uses_device(after_remove, "gpu-sim"));
  EXPECT_EQ(engine.replans(), 1u);

  set->set_online(2, true);
  const Placement after_readd = engine.replan();
  EXPECT_TRUE(uses_device(after_readd, "gpu-sim"));
  EXPECT_EQ(engine.replans(), 2u);
}

TEST(Replan, SwapsCommittedLoadInsteadOfAccumulating) {
  auto set = std::make_shared<hetero::DeviceSet>();
  EngineOptions options;
  options.shared_devices = set;
  PostprocessEngine engine(PostprocessParams{}, options);

  const auto before = set->committed_loads();
  double before_total = 0.0;
  for (const double load : before) before_total += load;
  ASSERT_GT(before_total, 0.0);

  // Same workload, same roster: the replan must be a no-op on the ledger
  // (retract old commitment, commit the identical new one).
  engine.replan();
  const auto after = set->committed_loads();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t d = 0; d < after.size(); ++d) {
    EXPECT_NEAR(after[d], before[d], 1e-12) << "device " << d;
  }
}

TEST(Replan, DestructionRetractsCommittedLoad) {
  // The ledger holds the load of live placements: once an engine is torn
  // down, surviving links must see its devices as free again.
  auto set = std::make_shared<hetero::DeviceSet>();
  {
    EngineOptions options;
    options.shared_devices = set;
    PostprocessEngine engine(PostprocessParams{}, options);
    double total = 0.0;
    for (const double load : set->committed_loads()) total += load;
    ASSERT_GT(total, 0.0);
  }
  for (const double load : set->committed_loads()) {
    EXPECT_NEAR(load, 0.0, 1e-12);
  }
}

TEST(Replan, RosterChangeShiftsLoadToSurvivingDevices) {
  auto set = std::make_shared<hetero::DeviceSet>();
  EngineOptions options;
  options.shared_devices = set;
  PostprocessEngine engine(PostprocessParams{}, options);

  set->set_online(2, false);
  engine.replan();
  const auto loads = set->committed_loads();
  EXPECT_NEAR(loads[2], 0.0, 1e-12) << "offline device keeps no load";
  double total = 0.0;
  for (const double load : loads) total += load;
  EXPECT_GT(total, 0.0);
  set->set_online(2, true);
}

TEST(Replan, WorkloadChangeMovesPlacement) {
  // A tiny workload keeps everything CPU-side (accelerator launch and
  // transfer overheads dominate); scaling the block up makes the gpu-sim
  // worthwhile - replanning with the new workload must pick it up.
  EngineOptions options = EngineOptions::standard(2);
  options.workload.pulses = 1 << 10;
  options.workload.sifted_bits = 64;
  options.workload.key_bits = 48;
  PostprocessEngine engine(PostprocessParams{}, options);
  const Placement small = engine.placement();

  StageWorkload big;
  big.pulses = 1 << 22;
  big.sifted_bits = 160000;
  big.key_bits = 120000;
  big.qber = 0.02;
  const Placement after = engine.replan(big);
  EXPECT_TRUE(uses_device(after, "gpu-sim"));
  // The modeled bottleneck grew with the block (sanity that the new
  // workload was actually priced).
  EXPECT_GT(after.bottleneck_load_s, small.bottleneck_load_s);
}

TEST(Replan, AllFeasibleDevicesOfflineThrows) {
  auto set = std::make_shared<hetero::DeviceSet>(
      std::vector<hetero::DeviceProps>{hetero::cpu_scalar_props(),
                                       hetero::gpu_sim_props()},
      2);
  EngineOptions options;
  options.shared_devices = set;
  PostprocessEngine engine(PostprocessParams{}, options);
  // Sifting is host-only; with the only CPU gone there is no feasible
  // placement left and the replan must refuse rather than fabricate one.
  set->set_online(0, false);
  EXPECT_THROW(engine.replan(), Error);
  set->set_online(0, true);
  EXPECT_NO_THROW(engine.replan());
}

TEST(StageCostModel, CorrectionConvergesToObservedRatio) {
  hetero::StageCostModel model(3, 0.5);
  EXPECT_DOUBLE_EQ(model.correction(0), 1.0);  // no samples yet
  model.observe(0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(model.correction(0), 3.0);  // first sample seeds
  for (int i = 0; i < 20; ++i) model.observe(0, 1.0, 3.0);
  EXPECT_NEAR(model.correction(0), 3.0, 1e-9);
  EXPECT_NEAR(model.observed_seconds(0), 3.0, 1e-9);
  EXPECT_EQ(model.samples(0), 21u);
  // Other stages untouched; out-of-range and degenerate samples ignored.
  EXPECT_DOUBLE_EQ(model.correction(1), 1.0);
  model.observe(7, 1.0, 2.0);
  model.observe(1, 0.0, 2.0);
  EXPECT_EQ(model.samples(1), 0u);
}

TEST(Replan, NoObservationsMakesReplanAFixedPoint) {
  EngineOptions options = EngineOptions::standard(2);
  PostprocessEngine engine(PostprocessParams{}, options);
  const auto before = engine.placement();
  const auto problem_before = engine.mapping_problem();

  engine.replan();
  const auto problem_after = engine.mapping_problem();
  ASSERT_EQ(problem_after.seconds_per_item.size(),
            problem_before.seconds_per_item.size());
  // With no observations the correction is 1.0: matrices identical, same
  // placement.
  for (std::size_t s = 0; s < problem_before.seconds_per_item.size(); ++s) {
    for (std::size_t d = 0; d < problem_before.seconds_per_item[s].size();
         ++d) {
      EXPECT_NEAR(problem_after.seconds_per_item[s][d],
                  problem_before.seconds_per_item[s][d], 1e-12);
    }
  }
  EXPECT_EQ(before.device_of_stage, engine.placement().device_of_stage);
}

TEST(Replan, ObservedCostInversionFlipsPlacement) {
  // Two CPU devices, all five stages host-feasible: when the cost model
  // learns that verify is three orders of magnitude more expensive than
  // modeled, the optimizer must give it a device of its own and pack the
  // rest on the other - costs inverted, placement follows.
  EngineOptions options;
  options.devices = {hetero::cpu_scalar_props(),
                     hetero::cpu_parallel_props(4)};
  options.threads = 2;
  PostprocessEngine engine(PostprocessParams{}, options);
  const auto problem_before = engine.mapping_problem();

  constexpr std::size_t kVerify = 3;  // sift, estimate, reconcile, verify, ..
  engine.cost_model().observe(kVerify, 1.0, 1e6);
  const Placement after = engine.replan();

  // Corrected matrix scaled by the learned ratio.
  const auto problem_after = engine.mapping_problem();
  for (std::size_t d = 0; d < problem_after.seconds_per_item[kVerify].size();
       ++d) {
    EXPECT_NEAR(problem_after.seconds_per_item[kVerify][d],
                problem_before.seconds_per_item[kVerify][d] * 1e6,
                problem_before.seconds_per_item[kVerify][d] * 1e3);
  }
  // Verify is now the dominant load: nothing else shares its device.
  const std::uint32_t verify_device = after.device_of_stage[kVerify];
  for (std::size_t s = 0; s < after.device_of_stage.size(); ++s) {
    if (s == kVerify) continue;
    EXPECT_NE(after.device_of_stage[s], verify_device) << "stage " << s;
  }
}

TEST(AdaptToQber, MethodCrossoverAndPassBandsAreDeterministic) {
  PostprocessParams params;
  params.method = protocol::ReconcileMethod::kLdpc;
  EngineOptions options = EngineOptions::standard(2);
  PostprocessEngine engine(params, options);

  // Quiet channel: stays LDPC.
  EXPECT_FALSE(engine.adapt_to_qber(0.017));
  EXPECT_EQ(engine.params().method, protocol::ReconcileMethod::kLdpc);

  // Mid-band: switches to Cascade (reports the flip), 6 passes.
  EXPECT_TRUE(engine.adapt_to_qber(0.045));
  EXPECT_EQ(engine.params().method, protocol::ReconcileMethod::kCascade);
  EXPECT_EQ(engine.params().cascade.passes, 6u);
  EXPECT_FALSE(engine.adapt_to_qber(0.045));  // idempotent

  // Hot band: Cascade with extra passes.
  EXPECT_FALSE(engine.adapt_to_qber(0.09));
  EXPECT_EQ(engine.params().cascade.passes, 8u);

  // Calm again: back to LDPC.
  EXPECT_TRUE(engine.adapt_to_qber(0.02));
  EXPECT_EQ(engine.params().method, protocol::ReconcileMethod::kLdpc);
}

}  // namespace
}  // namespace qkdpp::engine
