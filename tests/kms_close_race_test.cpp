// KeyStore close() vs blocked depositors under the kBlock backpressure
// policy: a sanitizer-targeted stress loop (this test is what the ASan
// tree in scripts/check.sh is for - lock-order and lifetime bugs around
// the condition variable show up here deterministically or not at all).
//
// Each round: a tiny store, several depositor threads that will block on
// the bound, a consumer draining at random, and a close() fired from the
// middle of the scrum. After the join, every key must be accounted for
// exactly once - accepted (id minted), rejected-with-kClosed, or rejected
// at the bound - and the ledger must balance to the bit.
#include "pipeline/kms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp::pipeline {
namespace {

// Parameterized over the shard count: the single-stripe degenerate layout
// and the default striped layout must behave identically at the API.
class KeyStoreCloseRace : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Shards, KeyStoreCloseRace,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

TEST_P(KeyStoreCloseRace, BlockedDepositorsAlwaysReleasedAndAccounted) {
  constexpr int kRounds = 150;
  constexpr int kDepositors = 4;
  constexpr int kKeysEach = 8;
  constexpr std::uint64_t kKeyBits = 64;

  for (int round = 0; round < kRounds; ++round) {
    KeyStoreConfig config;
    config.capacity_bits = 2 * kKeyBits;  // at most two keys fit: most
    config.on_overflow = OverflowPolicy::kBlock;  // deposits must block
    config.shards = GetParam();
    KeyStore store(config);

    std::atomic<std::uint64_t> accepted_bits{0};
    std::atomic<std::uint64_t> closed_rejects{0};
    std::vector<std::thread> threads;
    threads.reserve(kDepositors + 1);
    for (int d = 0; d < kDepositors; ++d) {
      threads.emplace_back([&, d] {
        Xoshiro256 rng(1000 * round + d);
        for (int k = 0; k < kKeysEach; ++k) {
          const DepositResult result = store.deposit(rng.random_bits(kKeyBits));
          if (result.accepted()) {
            accepted_bits += kKeyBits;
          } else {
            // Under kBlock the only rejection path for a fitting key is
            // the close() release: a typed reason, not a guessed-at 0.
            ASSERT_EQ(result.reason, RejectReason::kClosed);
            closed_rejects += 1;
          }
        }
      });
    }
    std::atomic<bool> stop{false};
    std::thread consumer([&] {
      Xoshiro256 rng(round);
      std::uint64_t draws = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (store.get_key("drain").has_value()) ++draws;
        // Vary the interleaving: sometimes yield, sometimes spin on.
        if (rng.bernoulli(0.5)) std::this_thread::yield();
        // Close somewhere in the middle of the scrum, round-dependent.
        if (draws == static_cast<std::uint64_t>(round % 5) + 1) {
          store.close();
        }
      }
      // Depositors are done; nothing can block anymore. Drain the rest.
      while (store.get_key("drain").has_value()) {
      }
    });
    for (std::size_t d = 0; d < threads.size(); ++d) threads[d].join();
    stop = true;
    consumer.join();

    // Conservation: every produced key is accepted xor rejected, and every
    // accepted bit was either drawn or is still in the store (here: none,
    // the consumer drained to empty).
    const std::uint64_t produced =
        std::uint64_t{kDepositors} * kKeysEach * kKeyBits;
    EXPECT_EQ(store.total_deposited_bits(), accepted_bits.load());
    EXPECT_EQ(store.rejected_bits(), produced - accepted_bits.load());
    EXPECT_EQ(store.rejected_keys(RejectReason::kClosed),
              closed_rejects.load());
    EXPECT_EQ(store.rejected_keys(), closed_rejects.load());
    EXPECT_EQ(store.bits_available(), 0u);
    EXPECT_EQ(store.total_consumed_bits(), accepted_bits.load());
    EXPECT_EQ(store.consumed_by("drain"), accepted_bits.load());
  }
}

TEST(KeyStoreCloseWakeAll, CloseWakesEveryBlockedDepositorAcrossShards) {
  // Many depositors, all blocked at once on a one-key bound, keys landing
  // in different shards: one close() must release every one of them (no
  // depositor left sleeping on a shard that never got the signal).
  constexpr int kBlocked = 16;
  KeyStoreConfig config;
  config.capacity_bits = 64;
  config.on_overflow = OverflowPolicy::kBlock;
  config.shards = 8;
  KeyStore store(config);
  Xoshiro256 seed_rng(7);
  ASSERT_TRUE(store.deposit(seed_rng.random_bits(64)).accepted());  // full

  std::atomic<int> closed_rejects{0};
  std::vector<std::thread> threads;
  threads.reserve(kBlocked);
  for (int d = 0; d < kBlocked; ++d) {
    threads.emplace_back([&, d] {
      Xoshiro256 rng(100 + d);
      const DepositResult result = store.deposit(rng.random_bits(64));
      ASSERT_FALSE(result.accepted());
      ASSERT_EQ(result.reason, RejectReason::kClosed);
      closed_rejects += 1;
    });
  }
  // Give every depositor time to actually park on the full store.
  while (store.rejected_keys() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    store.close();  // idempotent; first call is the one under test
  }
  for (auto& t : threads) t.join();  // would hang if any wake were lost
  EXPECT_EQ(closed_rejects.load(), kBlocked);
  EXPECT_EQ(store.rejected_keys(RejectReason::kClosed),
            static_cast<std::uint64_t>(kBlocked));
  EXPECT_EQ(store.bits_available(), 64u);  // the seed key is untouched
}

TEST(KeyStoreClose, CloseBeforeAnyDepositRejectsBlockedOnly) {
  // close() is not a poison pill: deposits that fit keep succeeding, only
  // the blocked ones are released with kClosed.
  KeyStoreConfig config;
  config.capacity_bits = 128;
  config.on_overflow = OverflowPolicy::kBlock;
  KeyStore store(config);
  store.close();
  Xoshiro256 rng(1);
  EXPECT_TRUE(store.deposit(rng.random_bits(128)).accepted());
  EXPECT_EQ(store.deposit(rng.random_bits(64)).reason, RejectReason::kClosed);
  ASSERT_TRUE(store.get_key("app").has_value());
  EXPECT_TRUE(store.deposit(rng.random_bits(64)).accepted());
}

}  // namespace
}  // namespace qkdpp::pipeline
