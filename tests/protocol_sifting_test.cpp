// Sifting + parameter estimation tests, including end-to-end agreement with
// the link simulator and decoy-bound sanity against the analytic model.
#include "protocol/param_estimation.hpp"
#include "protocol/sifting.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::protocol {
namespace {

AliceTransmitLog log_from(const sim::DetectionRecord& record) {
  return AliceTransmitLog{record.alice_bits, record.alice_bases,
                          record.alice_class};
}

DetectionReport report_from(const sim::DetectionRecord& record) {
  DetectionReport report;
  report.n_pulses = record.n_pulses;
  report.detected_idx = record.detected_idx;
  report.bob_bases = record.bob_bases;
  return report;
}

TEST(Sifting, HandBuiltExample) {
  // 6 pulses; detections at 0,2,3,5. Bases match at 0 and 5 only.
  AliceTransmitLog log;
  log.bits = BitVec::from_bools(std::vector<std::uint8_t>{1, 0, 1, 1, 0, 0});
  log.bases = BitVec::from_bools(std::vector<std::uint8_t>{0, 1, 0, 1, 0, 1});
  log.pulse_class = {0, 0, 1, 0, 0, 0};

  DetectionReport report;
  report.n_pulses = 6;
  report.detected_idx = {0, 2, 3, 5};
  report.bob_bases =
      BitVec::from_bools(std::vector<std::uint8_t>{0, 1, 0, 1});

  const auto outcome = sift_alice(log, report);
  // Matches: det 0 (basis 0==0), det 1 -> pulse 2 (0 vs 1 no),
  // det 2 -> pulse 3 (1 vs 0 no), det 3 -> pulse 5 (1==1 yes).
  EXPECT_EQ(outcome.result.keep_mask.size(), 4u);
  EXPECT_TRUE(outcome.result.keep_mask.get(0));
  EXPECT_FALSE(outcome.result.keep_mask.get(1));
  EXPECT_FALSE(outcome.result.keep_mask.get(2));
  EXPECT_TRUE(outcome.result.keep_mask.get(3));
  ASSERT_EQ(outcome.sifted_key.size(), 2u);
  EXPECT_EQ(outcome.sifted_key.get(0), true);   // alice bit at pulse 0
  EXPECT_EQ(outcome.sifted_key.get(1), false);  // alice bit at pulse 5
  // Signal mask: pulse 0 is signal, pulse 5 is signal.
  ASSERT_EQ(outcome.result.signal_mask.size(), 2u);
  EXPECT_TRUE(outcome.result.signal_mask.get(0));
  EXPECT_TRUE(outcome.result.signal_mask.get(1));

  // Bob side.
  const BitVec bob_bits =
      BitVec::from_bools(std::vector<std::uint8_t>{1, 1, 0, 0});
  const BitVec bob_sifted = sift_bob(bob_bits, outcome.result);
  ASSERT_EQ(bob_sifted.size(), 2u);
  EXPECT_EQ(bob_sifted.get(0), true);
  EXPECT_EQ(bob_sifted.get(1), false);
}

TEST(Sifting, EndToEndAgainstSimulator) {
  Xoshiro256 rng(21);
  sim::LinkConfig link;
  link.channel.length_km = 10.0;
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(200000, rng);

  const auto outcome = sift_alice(log_from(record), report_from(record));
  const BitVec bob_sifted = sift_bob(record.bob_bits, outcome.result);

  ASSERT_EQ(outcome.sifted_key.size(), bob_sifted.size());
  // Mismatch fraction must equal the simulator's ground-truth QBER.
  const auto stats = sim::Bb84Simulator::stats(record);
  const std::size_t mismatches =
      BitVec::hamming_distance(outcome.sifted_key, bob_sifted);
  EXPECT_EQ(mismatches, stats.total.errors);
  EXPECT_EQ(outcome.sifted_key.size(), stats.total.sifted);
}

TEST(Sifting, RejectsOutOfRangeIndex) {
  AliceTransmitLog log;
  log.bits = BitVec(4);
  log.bases = BitVec(4);
  log.pulse_class = {0, 0, 0, 0};
  DetectionReport report;
  report.n_pulses = 4;
  report.detected_idx = {5};
  report.bob_bases = BitVec(1);
  EXPECT_THROW(sift_alice(log, report), Error);
}

TEST(Sifting, RejectsNonMonotoneIndices) {
  AliceTransmitLog log;
  log.bits = BitVec(10);
  log.bases = BitVec(10);
  log.pulse_class.assign(10, 0);
  DetectionReport report;
  report.n_pulses = 10;
  report.detected_idx = {3, 2};
  report.bob_bases = BitVec(2);
  EXPECT_THROW(sift_alice(log, report), Error);
}

TEST(Sifting, RejectsShapeMismatch) {
  AliceTransmitLog log;
  log.bits = BitVec(10);
  log.bases = BitVec(10);
  log.pulse_class.assign(10, 0);
  DetectionReport report;
  report.n_pulses = 10;
  report.detected_idx = {1, 2};
  report.bob_bases = BitVec(3);  // wrong length
  EXPECT_THROW(sift_alice(log, report), Error);

  SiftResult result;
  result.keep_mask = BitVec(5);
  EXPECT_THROW(sift_bob(BitVec(4), result), Error);
}

TEST(ParamEstimation, ZeroSampleIsUninformative) {
  const auto est = estimate_qber(0, 0, 1e-10);
  EXPECT_DOUBLE_EQ(est.qber, 0.0);
  EXPECT_DOUBLE_EQ(est.qber_upper, 1.0);
}

TEST(ParamEstimation, PointEstimateAndBound) {
  const auto est = estimate_qber(10000, 250, 1e-10);
  EXPECT_DOUBLE_EQ(est.qber, 0.025);
  EXPECT_GT(est.qber_upper, 0.025);
  EXPECT_LT(est.qber_upper, 0.07);
}

TEST(ParamEstimation, BoundTightensWithSample) {
  const auto small = estimate_qber(1000, 25, 1e-10);
  const auto large = estimate_qber(100000, 2500, 1e-10);
  EXPECT_LT(large.qber_upper - large.qber, small.qber_upper - small.qber);
}

TEST(ParamEstimation, InvalidArgumentsThrow) {
  EXPECT_THROW(estimate_qber(10, 11, 1e-10), std::invalid_argument);
  EXPECT_THROW(estimate_qber(10, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(estimate_qber(10, 1, 1.0), std::invalid_argument);
}

TEST(ParamEstimation, BoundCoversTruthAcrossTrials) {
  // Repeated sampling: the upper bound must cover the true rate in (almost)
  // every trial at eps = 1e-6.
  Xoshiro256 rng(33);
  const double truth = 0.03;
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::size_t errors = 0;
    const std::size_t n = 2000;
    for (std::size_t i = 0; i < n; ++i) errors += rng.bernoulli(truth);
    covered += estimate_qber(n, errors, 1e-6).qber_upper >= truth;
  }
  EXPECT_EQ(covered, trials);
}

sim::LinkConfig decoy_link(double km) {
  sim::LinkConfig link;
  link.channel.length_km = km;
  link.source.p_signal = 0.7;
  link.source.p_decoy = 0.15;
  link.source.p_vacuum = 0.15;
  return link;
}

TEST(Decoy, BoundsValidAndCoverSinglePhotonTruth) {
  Xoshiro256 rng(34);
  const sim::LinkConfig link = decoy_link(25.0);
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(2000000, rng);
  const auto stats = sim::Bb84Simulator::stats(record);

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto bounds = decoy_bounds(obs);
  ASSERT_TRUE(bounds.valid);

  // Ground truth from the analytic model.
  const sim::AnalyticLink model(link);
  const double y1_true = model.yield(1);
  EXPECT_LE(bounds.y1_lower, y1_true * 1.05);  // lower bound (within MC noise)
  EXPECT_GT(bounds.y1_lower, 0.5 * y1_true);   // and not uselessly loose
  // True single-photon error rate ~ misalignment + dark contribution.
  EXPECT_GE(bounds.e1_upper, link.channel.misalignment * 0.9);
  EXPECT_LT(bounds.e1_upper, 0.1);
}

TEST(Decoy, InvalidWhenIntensitiesDegenerate) {
  DecoyObservations obs;
  obs.mu = 0.1;
  obs.nu = 0.1;  // nu must be < mu
  EXPECT_FALSE(decoy_bounds(obs).valid);
  obs.nu = 0.0;
  EXPECT_FALSE(decoy_bounds(obs).valid);
}

TEST(Decoy, FiniteSizeBoundsAreMoreConservative) {
  Xoshiro256 rng(35);
  const sim::LinkConfig link = decoy_link(25.0);
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(2000000, rng);
  const auto stats = sim::Bb84Simulator::stats(record);

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto asym = decoy_bounds(obs);
  const auto finite =
      decoy_bounds_finite(obs, stats.per_class[0].sent,
                          stats.per_class[1].sent, stats.per_class[2].sent,
                          1e-10);
  ASSERT_TRUE(asym.valid);
  ASSERT_TRUE(finite.valid);
  EXPECT_LE(finite.y1_lower, asym.y1_lower);
  EXPECT_GE(finite.e1_upper, asym.e1_upper);
}

TEST(Decoy, InterceptResendDestroysSinglePhotonBound) {
  // Under full intercept-resend the e1 upper bound must blow past the 11%
  // BB84 threshold - that is the detection mechanism working.
  Xoshiro256 rng(36);
  sim::LinkConfig link = decoy_link(10.0);
  link.eve.intercept_fraction = 1.0;
  const sim::Bb84Simulator simulator(link);
  const auto stats =
      sim::Bb84Simulator::stats(simulator.run(1500000, rng));

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto bounds = decoy_bounds(obs);
  if (bounds.valid) {
    EXPECT_GT(bounds.e1_upper, 0.11);
  }
  // (An invalid bound also aborts the protocol - either way Eve is caught.)
}

}  // namespace
}  // namespace qkdpp::protocol
