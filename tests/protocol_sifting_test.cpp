// Sifting + parameter estimation tests, including end-to-end agreement with
// the link simulator and decoy-bound sanity against the analytic model.
#include "protocol/param_estimation.hpp"
#include "protocol/sifting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::protocol {
namespace {

AliceTransmitLog log_from(const sim::DetectionRecord& record) {
  return AliceTransmitLog{record.alice_bits, record.alice_bases,
                          record.alice_class};
}

DetectionReport report_from(const sim::DetectionRecord& record) {
  DetectionReport report;
  report.n_pulses = record.n_pulses;
  report.detected_idx = record.detected_idx;
  report.bob_bases = record.bob_bases;
  return report;
}

TEST(Sifting, HandBuiltExample) {
  // 6 pulses; detections at 0,2,3,5. Bases match at 0 and 5 only.
  AliceTransmitLog log;
  log.bits = BitVec::from_bools(std::vector<std::uint8_t>{1, 0, 1, 1, 0, 0});
  log.bases = BitVec::from_bools(std::vector<std::uint8_t>{0, 1, 0, 1, 0, 1});
  log.pulse_class = {0, 0, 1, 0, 0, 0};

  DetectionReport report;
  report.n_pulses = 6;
  report.detected_idx = {0, 2, 3, 5};
  report.bob_bases =
      BitVec::from_bools(std::vector<std::uint8_t>{0, 1, 0, 1});

  const auto outcome = sift_alice(log, report);
  // Matches: det 0 (basis 0==0), det 1 -> pulse 2 (0 vs 1 no),
  // det 2 -> pulse 3 (1 vs 0 no), det 3 -> pulse 5 (1==1 yes).
  EXPECT_EQ(outcome.result.keep_mask.size(), 4u);
  EXPECT_TRUE(outcome.result.keep_mask.get(0));
  EXPECT_FALSE(outcome.result.keep_mask.get(1));
  EXPECT_FALSE(outcome.result.keep_mask.get(2));
  EXPECT_TRUE(outcome.result.keep_mask.get(3));
  ASSERT_EQ(outcome.sifted_key.size(), 2u);
  EXPECT_EQ(outcome.sifted_key.get(0), true);   // alice bit at pulse 0
  EXPECT_EQ(outcome.sifted_key.get(1), false);  // alice bit at pulse 5
  // Signal mask: pulse 0 is signal, pulse 5 is signal.
  ASSERT_EQ(outcome.result.signal_mask.size(), 2u);
  EXPECT_TRUE(outcome.result.signal_mask.get(0));
  EXPECT_TRUE(outcome.result.signal_mask.get(1));

  // Bob side.
  const BitVec bob_bits =
      BitVec::from_bools(std::vector<std::uint8_t>{1, 1, 0, 0});
  const BitVec bob_sifted = sift_bob(bob_bits, outcome.result);
  ASSERT_EQ(bob_sifted.size(), 2u);
  EXPECT_EQ(bob_sifted.get(0), true);
  EXPECT_EQ(bob_sifted.get(1), false);
}

TEST(Sifting, EndToEndAgainstSimulator) {
  Xoshiro256 rng(21);
  sim::LinkConfig link;
  link.channel.length_km = 10.0;
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(200000, rng);

  const auto outcome = sift_alice(log_from(record), report_from(record));
  const BitVec bob_sifted = sift_bob(record.bob_bits, outcome.result);

  ASSERT_EQ(outcome.sifted_key.size(), bob_sifted.size());
  // Mismatch fraction must equal the simulator's ground-truth QBER.
  const auto stats = sim::Bb84Simulator::stats(record);
  const std::size_t mismatches =
      BitVec::hamming_distance(outcome.sifted_key, bob_sifted);
  EXPECT_EQ(mismatches, stats.total.errors);
  EXPECT_EQ(outcome.sifted_key.size(), stats.total.sifted);
}

TEST(Sifting, RejectsOutOfRangeIndex) {
  AliceTransmitLog log;
  log.bits = BitVec(4);
  log.bases = BitVec(4);
  log.pulse_class = {0, 0, 0, 0};
  DetectionReport report;
  report.n_pulses = 4;
  report.detected_idx = {5};
  report.bob_bases = BitVec(1);
  EXPECT_THROW(sift_alice(log, report), Error);
}

TEST(Sifting, RejectsNonMonotoneIndices) {
  AliceTransmitLog log;
  log.bits = BitVec(10);
  log.bases = BitVec(10);
  log.pulse_class.assign(10, 0);
  DetectionReport report;
  report.n_pulses = 10;
  report.detected_idx = {3, 2};
  report.bob_bases = BitVec(2);
  EXPECT_THROW(sift_alice(log, report), Error);
}

TEST(Sifting, RejectsShapeMismatch) {
  AliceTransmitLog log;
  log.bits = BitVec(10);
  log.bases = BitVec(10);
  log.pulse_class.assign(10, 0);
  DetectionReport report;
  report.n_pulses = 10;
  report.detected_idx = {1, 2};
  report.bob_bases = BitVec(3);  // wrong length
  EXPECT_THROW(sift_alice(log, report), Error);

  SiftResult result;
  result.keep_mask = BitVec(5);
  EXPECT_THROW(sift_bob(BitVec(4), result), Error);
}

TEST(ParamEstimation, ZeroSampleIsUninformative) {
  const auto est = estimate_qber(0, 0, 1e-10);
  EXPECT_DOUBLE_EQ(est.qber, 0.0);
  EXPECT_DOUBLE_EQ(est.qber_upper, 1.0);
}

TEST(ParamEstimation, PointEstimateAndBound) {
  const auto est = estimate_qber(10000, 250, 1e-10);
  EXPECT_DOUBLE_EQ(est.qber, 0.025);
  EXPECT_GT(est.qber_upper, 0.025);
  EXPECT_LT(est.qber_upper, 0.07);
}

TEST(ParamEstimation, BoundTightensWithSample) {
  const auto small = estimate_qber(1000, 25, 1e-10);
  const auto large = estimate_qber(100000, 2500, 1e-10);
  EXPECT_LT(large.qber_upper - large.qber, small.qber_upper - small.qber);
}

TEST(ParamEstimation, InvalidArgumentsThrow) {
  EXPECT_THROW(estimate_qber(10, 11, 1e-10), std::invalid_argument);
  EXPECT_THROW(estimate_qber(10, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(estimate_qber(10, 1, 1.0), std::invalid_argument);
}

TEST(ParamEstimation, BoundCoversTruthAcrossTrials) {
  // Repeated sampling: the upper bound must cover the true rate in (almost)
  // every trial at eps = 1e-6.
  Xoshiro256 rng(33);
  const double truth = 0.03;
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::size_t errors = 0;
    const std::size_t n = 2000;
    for (std::size_t i = 0; i < n; ++i) errors += rng.bernoulli(truth);
    covered += estimate_qber(n, errors, 1e-6).qber_upper >= truth;
  }
  EXPECT_EQ(covered, trials);
}

sim::LinkConfig decoy_link(double km) {
  sim::LinkConfig link;
  link.channel.length_km = km;
  link.source.p_signal = 0.7;
  link.source.p_decoy = 0.15;
  link.source.p_vacuum = 0.15;
  return link;
}

TEST(Decoy, BoundsValidAndCoverSinglePhotonTruth) {
  Xoshiro256 rng(34);
  const sim::LinkConfig link = decoy_link(25.0);
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(2000000, rng);
  const auto stats = sim::Bb84Simulator::stats(record);

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto bounds = decoy_bounds(obs);
  ASSERT_TRUE(bounds.valid);

  // Ground truth from the analytic model.
  const sim::AnalyticLink model(link);
  const double y1_true = model.yield(1);
  EXPECT_LE(bounds.y1_lower, y1_true * 1.05);  // lower bound (within MC noise)
  EXPECT_GT(bounds.y1_lower, 0.5 * y1_true);   // and not uselessly loose
  // True single-photon error rate ~ misalignment + dark contribution.
  EXPECT_GE(bounds.e1_upper, link.channel.misalignment * 0.9);
  EXPECT_LT(bounds.e1_upper, 0.1);
}

TEST(Decoy, InvalidWhenIntensitiesDegenerate) {
  DecoyObservations obs;
  obs.mu = 0.1;
  obs.nu = 0.1;  // nu must be < mu
  EXPECT_FALSE(decoy_bounds(obs).valid);
  obs.nu = 0.0;
  EXPECT_FALSE(decoy_bounds(obs).valid);
}

TEST(Decoy, FiniteSizeBoundsAreMoreConservative) {
  Xoshiro256 rng(35);
  const sim::LinkConfig link = decoy_link(25.0);
  const sim::Bb84Simulator simulator(link);
  const auto record = simulator.run(2000000, rng);
  const auto stats = sim::Bb84Simulator::stats(record);

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto asym = decoy_bounds(obs);
  const auto finite =
      decoy_bounds_finite(obs, stats.per_class[0].sent,
                          stats.per_class[1].sent, stats.per_class[2].sent,
                          1e-10);
  ASSERT_TRUE(asym.valid);
  ASSERT_TRUE(finite.valid);
  EXPECT_LE(finite.y1_lower, asym.y1_lower);
  EXPECT_GE(finite.e1_upper, asym.e1_upper);
}

TEST(Decoy, FiniteBoundsConvergeToAsymptoticAndStayPessimistic) {
  // Regression for the E_nu*Q_nu margin: the finite-size e1 bound used to
  // reuse d_nu - the deviation derived for the *gain* Q_nu - as the margin
  // for the product observable E_nu*Q_nu. Each observable must carry its
  // own deviation; then the finite bounds (a) stay strictly more
  // pessimistic than the asymptotic ones at finite n in *every* bound, and
  // (b) converge to them as n -> infinity.
  const sim::LinkConfig link = decoy_link(25.0);
  const sim::AnalyticLink model(link);
  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = model.gain(obs.mu);
  obs.q_nu = model.gain(obs.nu);
  obs.e_mu = model.qber(obs.mu);
  obs.e_nu = model.qber(obs.nu);
  obs.y0 = model.y0();

  const auto asym = decoy_bounds(obs);
  ASSERT_TRUE(asym.valid);

  // Strictly more pessimistic at finite n, in both Y1 and e1.
  const auto finite = decoy_bounds_finite(obs, 10000000, 1000000, 1000000,
                                          1e-10);
  ASSERT_TRUE(finite.valid);
  EXPECT_LT(finite.y1_lower, asym.y1_lower);
  EXPECT_LT(finite.q1_lower, asym.q1_lower);
  EXPECT_GT(finite.e1_upper, asym.e1_upper);

  // Monotone approach: more pulses -> tighter (never looser) bounds.
  double previous_y1 = finite.y1_lower;
  double previous_e1 = finite.e1_upper;
  for (const double scale : {1e8, 1e10, 1e12}) {
    const auto n = static_cast<std::size_t>(scale);
    const auto better = decoy_bounds_finite(obs, 10 * n, n, n, 1e-10);
    ASSERT_TRUE(better.valid) << scale;
    EXPECT_GE(better.y1_lower, previous_y1) << scale;
    EXPECT_LE(better.e1_upper, previous_e1) << scale;
    previous_y1 = better.y1_lower;
    previous_e1 = better.e1_upper;
  }

  // Convergence: at n = 1e14 decoy pulses the deviations are negligible.
  const auto huge =
      decoy_bounds_finite(obs, std::size_t{1} << 50, std::size_t{100000000000000},
                          std::size_t{100000000000000}, 1e-10);
  ASSERT_TRUE(huge.valid);
  EXPECT_NEAR(huge.y1_lower, asym.y1_lower, asym.y1_lower * 1e-3);
  EXPECT_NEAR(huge.e1_upper, asym.e1_upper, asym.e1_upper * 1e-2);
}

TEST(Decoy, ProductObservableCarriesItsOwnMargin) {
  // Direct regression pin: with the decoy QBER at zero the product
  // observable E_nu*Q_nu is zero, so its floored deviation is
  // sqrt(3 ln(1/eps) / n^2) ~ 1e-4 at n = 1e6 - while d_nu (the gain's
  // margin, the value the bug reused) is ~50x larger at Q_nu ~ 2.6e-3.
  // Pre-fix, e1_upper therefore carried the gain-sized margin and landed
  // ~6x above the correct value.
  sim::LinkConfig link = decoy_link(25.0);
  link.channel.misalignment = 0.0;  // error-free channel: E_nu ~ dark only
  link.detector.dark_count_prob = 0.0;
  const sim::AnalyticLink model(link);
  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = model.gain(obs.mu);
  obs.q_nu = model.gain(obs.nu);
  obs.e_mu = 0.0;
  obs.e_nu = 0.0;
  obs.y0 = 0.0;

  const std::size_t n = 1000000;
  const auto finite = decoy_bounds_finite(obs, 10 * n, n, n, 1e-10);
  ASSERT_TRUE(finite.valid);
  // Margin for E_nu*Q_nu = 0 is rate_delta(0, n, eps) = sqrt(3 ln(1/eps))/n;
  // e1 <= margin * e^nu / (Y1 * nu). With the reused gain margin this bound
  // sits ~6x higher, so 2x the correct value cleanly separates the two.
  const double margin = std::sqrt(3.0 * std::log(1e10)) / static_cast<double>(n);
  const double correct_e1 =
      margin * std::exp(obs.nu) / (finite.y1_lower * obs.nu);
  EXPECT_LT(finite.e1_upper, 2.0 * correct_e1);
}

TEST(Decoy, InterceptResendDestroysSinglePhotonBound) {
  // Under full intercept-resend the e1 upper bound must blow past the 11%
  // BB84 threshold - that is the detection mechanism working.
  Xoshiro256 rng(36);
  sim::LinkConfig link = decoy_link(10.0);
  link.eve.intercept_fraction = 1.0;
  const sim::Bb84Simulator simulator(link);
  const auto stats =
      sim::Bb84Simulator::stats(simulator.run(1500000, rng));

  DecoyObservations obs;
  obs.mu = link.source.mu_signal;
  obs.nu = link.source.mu_decoy;
  obs.q_mu = stats.per_class[0].gain();
  obs.q_nu = stats.per_class[1].gain();
  obs.e_mu = stats.per_class[0].qber();
  obs.e_nu = stats.per_class[1].qber();
  obs.y0 = stats.per_class[2].gain();

  const auto bounds = decoy_bounds(obs);
  if (bounds.valid) {
    EXPECT_GT(bounds.e1_upper, 0.11);
  }
  // (An invalid bound also aborts the protocol - either way Eve is caught.)
}

}  // namespace
}  // namespace qkdpp::protocol
