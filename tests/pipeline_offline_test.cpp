// KMS + offline pipeline tests: end-to-end distillation on healthy links,
// abort paths on hostile ones, ledger consistency, determinism.
#include "pipeline/kms.hpp"
#include "pipeline/offline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qkdpp::pipeline {
namespace {

TEST(KeyStore, DepositAndFifoConsume) {
  Xoshiro256 rng(1);
  KeyStore store;
  const BitVec k1 = rng.random_bits(256);
  const BitVec k2 = rng.random_bits(128);
  const auto id1 = store.deposit(k1);
  const auto id2 = store.deposit(k2);
  EXPECT_NE(id1.key_id, id2.key_id);
  EXPECT_EQ(store.keys_available(), 2u);
  EXPECT_EQ(store.bits_available(), 384u);

  const auto got = store.get_key();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->key_id, id1.key_id);
  EXPECT_EQ(got->bits, k1);
  EXPECT_EQ(store.keys_available(), 1u);
}

TEST(KeyStore, GetByIdIsDestructiveOnce) {
  Xoshiro256 rng(2);
  KeyStore store;
  const BitVec k = rng.random_bits(64);
  const auto id = store.deposit(k).key_id;
  ASSERT_TRUE(store.get_key_with_id(id).has_value());
  EXPECT_FALSE(store.get_key_with_id(id).has_value());
  EXPECT_FALSE(store.get_key_with_id(999).has_value());
}

TEST(KeyStore, EmptyStoreReturnsNothing) {
  KeyStore store;
  EXPECT_FALSE(store.get_key().has_value());
  EXPECT_EQ(store.bits_available(), 0u);
}

TEST(KeyStore, LedgerTracksConsumption) {
  Xoshiro256 rng(3);
  KeyStore store;
  store.deposit(rng.random_bits(100));
  store.deposit(rng.random_bits(50));
  (void)store.get_key();
  EXPECT_EQ(store.total_deposited_bits(), 150u);
  EXPECT_EQ(store.total_consumed_bits(), 100u);
  EXPECT_EQ(store.bits_available(), 50u);
}

OfflineConfig metro_config() {
  OfflineConfig config;
  config.link.channel.length_km = 25.0;
  config.pulses_per_block = 1 << 20;
  config.ldpc.min_frame = 4096;
  return config;
}

TEST(OfflinePipeline, LdpcBlockProducesKey) {
  Xoshiro256 rng(10);
  OfflinePipeline pipeline(metro_config());
  const auto outcome = pipeline.process_block(1, rng);
  ASSERT_TRUE(outcome.success) << outcome.abort_reason;
  EXPECT_GT(outcome.final_key_bits, 0u);
  EXPECT_EQ(outcome.final_key.size(), outcome.final_key_bits);
  EXPECT_GT(outcome.skr_per_pulse(), 0.0);
  // Plausibility chain: pulses > detections > sifted > candidates > final.
  EXPECT_GT(outcome.detections, outcome.sifted_bits);
  EXPECT_GE(outcome.sifted_bits, outcome.key_candidate_bits);
  EXPECT_GT(outcome.key_candidate_bits, outcome.final_key_bits);
  // QBER estimate should be near the configured misalignment (1.5%).
  EXPECT_NEAR(outcome.qber_estimate, 0.017, 0.012);
  EXPECT_GT(outcome.leak_ec_bits, 0u);
  EXPECT_GT(outcome.efficiency, 1.0);
}

TEST(OfflinePipeline, CascadeBlockProducesKey) {
  Xoshiro256 rng(11);
  OfflineConfig config = metro_config();
  config.method = protocol::ReconcileMethod::kCascade;
  config.cascade.passes = 6;
  OfflinePipeline pipeline(config);
  const auto outcome = pipeline.process_block(2, rng);
  ASSERT_TRUE(outcome.success) << outcome.abort_reason;
  EXPECT_GT(outcome.final_key_bits, 0u);
  EXPECT_GT(outcome.reconcile_rounds, 10u);  // cascade chats a lot
}

TEST(OfflinePipeline, CascadeBeatsLdpcOnEfficiency) {
  Xoshiro256 rng_a(12), rng_b(12);
  OfflineConfig ldpc_config = metro_config();
  OfflineConfig cascade_config = metro_config();
  cascade_config.method = protocol::ReconcileMethod::kCascade;
  cascade_config.cascade.passes = 6;
  const auto ldpc = OfflinePipeline(ldpc_config).process_block(3, rng_a);
  const auto cascade =
      OfflinePipeline(cascade_config).process_block(3, rng_b);
  ASSERT_TRUE(ldpc.success);
  ASSERT_TRUE(cascade.success);
  EXPECT_LT(cascade.efficiency, ldpc.efficiency);
}

TEST(OfflinePipeline, EveTriggersQberAbort) {
  Xoshiro256 rng(13);
  OfflineConfig config = metro_config();
  config.link.eve.intercept_fraction = 1.0;
  config.pulses_per_block = 1 << 18;
  OfflinePipeline pipeline(config);
  const auto outcome = pipeline.process_block(4, rng);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.abort_reason, "qber above abort threshold");
  EXPECT_EQ(outcome.final_key_bits, 0u);
}

TEST(OfflinePipeline, PartialEveStillCaught) {
  // 40% interception pushes QBER to ~10% + misalignment: above threshold.
  Xoshiro256 rng(14);
  OfflineConfig config = metro_config();
  config.link.eve.intercept_fraction = 0.45;
  config.pulses_per_block = 1 << 18;
  OfflinePipeline pipeline(config);
  const auto outcome = pipeline.process_block(5, rng);
  EXPECT_FALSE(outcome.success);
}

TEST(OfflinePipeline, TinyBlockAborts) {
  Xoshiro256 rng(15);
  OfflineConfig config = metro_config();
  config.pulses_per_block = 1000;  // ~20 detections: nothing to work with
  OfflinePipeline pipeline(config);
  const auto outcome = pipeline.process_block(6, rng);
  EXPECT_FALSE(outcome.success);
  EXPECT_FALSE(outcome.abort_reason.empty());
}

TEST(OfflinePipeline, LongHaulHasLowerSkr) {
  Xoshiro256 rng_a(16), rng_b(16);
  OfflineConfig near_config = metro_config();
  near_config.link.channel.length_km = 10.0;
  OfflineConfig far_config = metro_config();
  far_config.link.channel.length_km = 60.0;
  // Long haul needs bigger blocks or the finite-key penalty on the small
  // reconciled key eats the whole secret (realistic behaviour).
  far_config.pulses_per_block = 1 << 22;
  const auto near_outcome =
      OfflinePipeline(near_config).process_block(7, rng_a);
  const auto far_outcome =
      OfflinePipeline(far_config).process_block(7, rng_b);
  ASSERT_TRUE(near_outcome.success);
  ASSERT_TRUE(far_outcome.success);
  EXPECT_GT(near_outcome.skr_per_pulse(), 2 * far_outcome.skr_per_pulse());
}

TEST(OfflinePipeline, DeterministicGivenSeed) {
  OfflineConfig config = metro_config();
  config.pulses_per_block = 1 << 19;
  Xoshiro256 rng_a(17), rng_b(17);
  const auto a = OfflinePipeline(config).process_block(8, rng_a);
  const auto b = OfflinePipeline(config).process_block(8, rng_b);
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.final_key, b.final_key);
  EXPECT_EQ(a.leak_ec_bits, b.leak_ec_bits);
}

TEST(OfflinePipeline, StageTimingsPopulated) {
  Xoshiro256 rng(18);
  OfflinePipeline pipeline(metro_config());
  const auto outcome = pipeline.process_block(9, rng);
  ASSERT_TRUE(outcome.success);
  EXPECT_GT(outcome.timings.simulate, 0.0);
  EXPECT_GT(outcome.timings.sift, 0.0);
  EXPECT_GT(outcome.timings.reconcile, 0.0);
  EXPECT_GT(outcome.timings.amplify, 0.0);
  EXPECT_GT(outcome.timings.post_processing_total(),
            outcome.timings.sift);
}

TEST(OfflinePipeline, InvalidConfigRejected) {
  OfflineConfig config = metro_config();
  config.pe_fraction = 0.0;
  EXPECT_THROW(OfflinePipeline{config}, std::invalid_argument);
  config = metro_config();
  config.pulses_per_block = 0;
  EXPECT_THROW(OfflinePipeline{config}, std::invalid_argument);
  config = metro_config();
  config.link.detector.efficiency = 2.0;
  EXPECT_THROW(OfflinePipeline{config}, Error);
}

}  // namespace
}  // namespace qkdpp::pipeline
