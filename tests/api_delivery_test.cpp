// KeyDeliveryService + Dispatcher tests: SAE registration, the ETSI
// two-endpoint delivery flow (enc_keys segments + mints UUIDs, dec_keys
// hands the same material to the slave exactly once), the 400/401/503
// error model, bit-conservation accounting, and the serialized dispatch
// path a transport would drive.
#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::api {
namespace {

/// A two-link orchestrator that is never run(): tests deposit known
/// material straight into the per-link stores, so every byte the facade
/// delivers is checkable.
class KeyDeliveryTest : public ::testing::Test {
 protected:
  KeyDeliveryTest() : orchestrator_(make_config()), service_(orchestrator_) {
    service_.register_pair(vpn_pair());
  }

  static service::OrchestratorConfig make_config() {
    service::OrchestratorConfig config;
    config.store.capacity_bits = 1 << 16;
    const char* names[] = {"metro", "wan"};
    double km = 5.0;
    std::uint64_t seed = 1;
    for (const char* name : names) {
      service::LinkSpec spec;
      spec.name = name;
      spec.link.channel.length_km = km;
      spec.rng_seed = seed++;
      km += 20.0;
      config.links.push_back(std::move(spec));
    }
    return config;
  }

  static SaePair vpn_pair() {
    SaePair pair;
    pair.master_sae_id = "sae-a";
    pair.slave_sae_id = "sae-b";
    pair.link_name = "metro";
    pair.default_key_size = 256;
    pair.max_key_per_request = 8;
    pair.max_key_size = 1024;
    pair.min_key_size = 64;
    return pair;
  }

  pipeline::KeyStore& metro_store() { return orchestrator_.key_store(0); }

  service::LinkOrchestrator orchestrator_;
  KeyDeliveryService service_;
};

TEST_F(KeyDeliveryTest, RegistrationRejectsBadConfigs) {
  SaePair pair = vpn_pair();
  EXPECT_THROW(service_.register_pair(pair), Error);  // duplicate
  pair.master_sae_id = "sae-c";
  pair.link_name = "no-such-link";
  EXPECT_THROW(service_.register_pair(pair), Error);
  pair.link_name = "metro";
  pair.default_key_size = 100;  // not a multiple of 8
  EXPECT_THROW(service_.register_pair(pair), Error);
  pair.default_key_size = 32;  // below min_key_size
  EXPECT_THROW(service_.register_pair(pair), Error);
  pair = vpn_pair();
  pair.master_sae_id = pair.slave_sae_id;
  EXPECT_THROW(service_.register_pair(pair), Error);
  pair = vpn_pair();
  // The store ledger reserves this name for unlabeled draws.
  pair.master_sae_id = std::string(pipeline::kAnonymousConsumer);
  EXPECT_THROW(service_.register_pair(pair), Error);
  pair = vpn_pair();
  // A '/' would make the pair unreachable through the path router.
  pair.slave_sae_id = "dept/sae-x";
  EXPECT_THROW(service_.register_pair(pair), Error);
  EXPECT_EQ(service_.pair_count(), 1u);
}

TEST_F(KeyDeliveryTest, StatusReportsDeliverableKeysFromEitherSide) {
  Xoshiro256 rng(2);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(1000)).accepted());

  const auto from_master = service_.get_status("sae-a", "sae-b");
  ASSERT_TRUE(from_master.ok());
  EXPECT_EQ(from_master->master_sae_id, "sae-a");
  EXPECT_EQ(from_master->slave_sae_id, "sae-b");
  EXPECT_EQ(from_master->key_size, 256u);
  EXPECT_EQ(from_master->stored_key_count, 3u);  // floor(1000 / 256)
  EXPECT_EQ(from_master->max_key_count, (1u << 16) / 256);
  EXPECT_EQ(from_master->pending_key_count, 0u);

  const auto from_slave = service_.get_status("sae-b", "sae-a");
  ASSERT_TRUE(from_slave.ok());
  EXPECT_EQ(*from_slave, *from_master);

  const auto unknown = service_.get_status("sae-a", "sae-nobody");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error.status, kStatusUnauthorized);
}

TEST_F(KeyDeliveryTest, GetKeySegmentsBlocksAndConservesEveryBit) {
  Xoshiro256 rng(3);
  // Two odd-size blocks: segmentation must stitch across block boundaries.
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(600)).accepted());
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(500)).accepted());

  KeyRequest request;
  request.number = 4;
  request.size = 256;
  const auto container = service_.get_key("sae-a", "sae-b", request);
  ASSERT_TRUE(container.ok());
  ASSERT_EQ(container->keys.size(), 4u);  // floor(1100 / 256)
  std::set<std::string> ids;
  for (const auto& key : container->keys) {
    EXPECT_TRUE(KeyDeliveryService::is_uuid(key.key_id)) << key.key_id;
    EXPECT_EQ(key.key.size(), 256u / 4);  // hex chars
    ids.insert(key.key_id);
  }
  EXPECT_EQ(ids.size(), 4u);  // unique

  // Conservation: 1100 deposited = 1024 delivered + 76 buffered residual.
  const auto stats = service_.pair_stats("sae-a", "sae-b");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->delivered_keys, 4u);
  EXPECT_EQ(stats->delivered_bits, 1024u);
  EXPECT_EQ(stats->buffered_bits, 76u);
  EXPECT_EQ(stats->pending_keys, 4u);
  EXPECT_EQ(stats->pending_bits, 1024u);
  EXPECT_EQ(metro_store().bits_available(), 0u);
  EXPECT_EQ(metro_store().consumed_by("sae-a"),
            stats->delivered_bits + stats->buffered_bits);

  // The residual joins the next deposit: 76 + 200 = 276 -> one more key.
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(200)).accepted());
  request.number = 8;
  const auto more = service_.get_key("sae-a", "sae-b", request);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more->keys.size(), 1u);
  const auto after = service_.pair_stats("sae-a", "sae-b");
  EXPECT_EQ(after->delivered_bits, 1280u);
  EXPECT_EQ(after->buffered_bits, 20u);
}

TEST_F(KeyDeliveryTest, SlaveFetchesIdenticalMaterialExactlyOnce) {
  Xoshiro256 rng(4);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(512)).accepted());

  KeyRequest request;
  request.number = 2;
  const auto master = service_.get_key("sae-a", "sae-b", request);
  ASSERT_TRUE(master.ok());
  ASSERT_EQ(master->keys.size(), 2u);

  KeyIdsRequest ids;
  for (const auto& key : master->keys) ids.key_ids.push_back(key.key_id);
  const auto slave = service_.get_key_with_ids("sae-b", "sae-a", ids);
  ASSERT_TRUE(slave.ok());
  ASSERT_EQ(slave->keys.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(slave->keys[i], master->keys[i]);
  }

  // Exactly once: the handover copies are gone now.
  const auto again = service_.get_key_with_ids("sae-b", "sae-a", ids);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error.status, kStatusBadRequest);
  EXPECT_EQ(again.error.details.size(), 2u);

  const auto stats = service_.pair_stats("sae-a", "sae-b");
  EXPECT_EQ(stats->collected_keys, 2u);
  EXPECT_EQ(stats->collected_bits, 512u);
  EXPECT_EQ(stats->pending_keys, 0u);
  EXPECT_EQ(stats->pending_bits, 0u);
}

TEST_F(KeyDeliveryTest, AllOrNothingBatchLeavesStateUntouched) {
  Xoshiro256 rng(5);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(256)).accepted());
  const auto master = service_.get_key("sae-a", "sae-b", {});
  ASSERT_TRUE(master.ok());

  KeyIdsRequest mixed;
  mixed.key_ids.push_back(master->keys[0].key_id);
  mixed.key_ids.push_back("00000000-0000-4000-8000-00000000dead");
  const auto result = service_.get_key_with_ids("sae-b", "sae-a", mixed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.status, kStatusBadRequest);
  ASSERT_EQ(result.error.details.size(), 1u);  // only the unknown id

  // The known key is still retained and collectable.
  KeyIdsRequest good;
  good.key_ids.push_back(master->keys[0].key_id);
  EXPECT_TRUE(service_.get_key_with_ids("sae-b", "sae-a", good).ok());
}

TEST_F(KeyDeliveryTest, ErrorModelCoversMalformedUnknownAndExhausted) {
  // 401: right SAEs, wrong roles.
  EXPECT_EQ(service_.get_key("sae-b", "sae-a", {}).error.status,
            kStatusUnauthorized);
  EXPECT_EQ(service_.get_key_with_ids("sae-a", "sae-b", {{"x"}}).error.status,
            kStatusUnauthorized);
  // 400: malformed requests.
  KeyRequest zero;
  zero.number = 0;
  EXPECT_EQ(service_.get_key("sae-a", "sae-b", zero).error.status,
            kStatusBadRequest);
  KeyRequest greedy;
  greedy.number = 9;  // max_key_per_request = 8
  EXPECT_EQ(service_.get_key("sae-a", "sae-b", greedy).error.status,
            kStatusBadRequest);
  KeyRequest odd;
  odd.size = 100;  // not a multiple of 8
  EXPECT_EQ(service_.get_key("sae-a", "sae-b", odd).error.status,
            kStatusBadRequest);
  KeyRequest huge;
  huge.size = 2048;  // beyond max_key_size
  EXPECT_EQ(service_.get_key("sae-a", "sae-b", huge).error.status,
            kStatusBadRequest);
  KeyIdsRequest empty;
  EXPECT_EQ(service_.get_key_with_ids("sae-b", "sae-a", empty).error.status,
            kStatusBadRequest);
  KeyIdsRequest malformed;
  malformed.key_ids.push_back("not-a-uuid");
  EXPECT_EQ(
      service_.get_key_with_ids("sae-b", "sae-a", malformed).error.status,
      kStatusBadRequest);
  Xoshiro256 rng(6);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(512)).accepted());
  const auto ok = service_.get_key("sae-a", "sae-b", {});
  ASSERT_TRUE(ok.ok());
  KeyIdsRequest twice;
  twice.key_ids.push_back(ok->keys[0].key_id);
  twice.key_ids.push_back(ok->keys[0].key_id);
  EXPECT_EQ(service_.get_key_with_ids("sae-b", "sae-a", twice).error.status,
            kStatusBadRequest);
  // 503: nothing left to segment.
  KeyRequest drain;
  drain.number = 8;
  drain.size = 1024;
  EXPECT_EQ(service_.get_key("sae-a", "sae-b", drain).error.status,
            kStatusUnavailable);
}

TEST_F(KeyDeliveryTest, DispatcherRoutesSerializedRequests) {
  Xoshiro256 rng(7);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(512)).accepted());
  Dispatcher dispatcher(service_);

  // Full wire path: JSON text in, JSON text out.
  const std::string status_wire = dispatcher.dispatch(
      R"({"method":"GET","target":"/api/v1/keys/sae-b/status","caller":"sae-a"})");
  const auto status = Response::from_json(Json::parse(status_wire));
  EXPECT_EQ(status.status, kStatusOk);
  EXPECT_EQ(StatusResponse::from_json(status.body).stored_key_count, 2u);

  Request enc;
  enc.method = "POST";
  enc.target = "/api/v1/keys/sae-b/enc_keys";
  enc.caller = "sae-a";
  KeyRequest key_request;
  key_request.number = 2;
  enc.body = key_request.to_json();
  const auto enc_response = Response::from_json(
      Json::parse(dispatcher.dispatch(enc.to_json().dump())));
  ASSERT_EQ(enc_response.status, kStatusOk);
  const auto container = KeyContainer::from_json(enc_response.body);
  ASSERT_EQ(container.keys.size(), 2u);

  Request dec;
  dec.method = "POST";
  dec.target = "/api/v1/keys/sae-a/dec_keys";
  dec.caller = "sae-b";
  KeyIdsRequest ids;
  for (const auto& key : container.keys) ids.key_ids.push_back(key.key_id);
  dec.body = ids.to_json();
  const auto dec_response = Response::from_json(
      Json::parse(dispatcher.dispatch(dec.to_json().dump())));
  ASSERT_EQ(dec_response.status, kStatusOk);
  EXPECT_EQ(KeyContainer::from_json(dec_response.body).keys,
            container.keys);

  // GET enc_keys = default single-key request (ETSI convenience form).
  const auto get_enc = dispatcher.dispatch(
      Request{"GET", "/api/v1/keys/sae-b/enc_keys", "sae-a", {}});
  EXPECT_EQ(get_enc.status, kStatusUnavailable);  // store is drained
}

TEST_F(KeyDeliveryTest, DispatcherErrorMapping) {
  Dispatcher dispatcher(service_);
  EXPECT_EQ(dispatcher.dispatch(
                          Request{"GET", "/nope", "sae-a", {}}).status,
            kStatusNotFound);
  EXPECT_EQ(dispatcher
                .dispatch(Request{"GET", "/api/v1/keys/sae-b/teapot",
                                  "sae-a", {}})
                .status,
            kStatusNotFound);
  // Wrong verb on a known path is 405 (not 404, not 400): the route
  // exists, only the method is wrong, and the details say which to use.
  const auto post_status = dispatcher.dispatch(
      Request{"POST", "/api/v1/keys/sae-b/status", "sae-a", {}});
  EXPECT_EQ(post_status.status, kStatusMethodNotAllowed);
  EXPECT_EQ(ApiError::from_json(post_status.body).details,
            std::vector<std::string>{"expected: GET"});
  const auto get_dec = dispatcher.dispatch(
      Request{"GET", "/api/v1/keys/sae-b/dec_keys", "sae-b", {}});
  EXPECT_EQ(get_dec.status, kStatusMethodNotAllowed);
  EXPECT_EQ(ApiError::from_json(get_dec.body).details,
            std::vector<std::string>{"expected: POST"});
  // Malformed envelope and malformed body both map to 400 responses.
  const auto garbage = Response::from_json(
      Json::parse(dispatcher.dispatch("this is not json")));
  EXPECT_EQ(garbage.status, kStatusBadRequest);
  const auto bad_body = Response::from_json(Json::parse(dispatcher.dispatch(
      R"({"method":"POST","target":"/api/v1/keys/sae-b/enc_keys",)"
      R"("caller":"sae-a","body":{"number":"three"}})")));
  EXPECT_EQ(bad_body.status, kStatusBadRequest);
}

TEST_F(KeyDeliveryTest, HopelessRequestDoesNotDrainSharedStore) {
  // A request no one can serve must not move the link's shared material
  // into the requesting pair's private residual: the other pair on the
  // link could still have used it.
  service_.register_pair({"sae-c", "sae-d", "metro", 64, 8, 1024, 64});
  Xoshiro256 rng(9);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(200)).accepted());

  KeyRequest big;
  big.size = 1024;  // more than the whole store holds
  const auto starved = service_.get_key("sae-a", "sae-b", big);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.error.status, kStatusUnavailable);
  EXPECT_EQ(metro_store().bits_available(), 200u);  // untouched

  // The second pair can still draw small keys from the same material.
  KeyRequest small;
  small.number = 8;
  const auto served = service_.get_key("sae-c", "sae-d", small);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->keys.size(), 3u);  // floor(200 / 64)
}

TEST_F(KeyDeliveryTest, PendingBacklogAppliesBackpressure) {
  SaePair pair;
  pair.master_sae_id = "sae-e";
  pair.slave_sae_id = "sae-f";
  pair.link_name = "metro";
  pair.default_key_size = 64;
  pair.max_key_per_request = 8;
  pair.max_key_size = 1024;
  pair.min_key_size = 64;
  pair.max_pending_keys = 2;
  service_.register_pair(pair);
  Xoshiro256 rng(10);
  ASSERT_TRUE(metro_store().deposit(rng.random_bits(512)).accepted());

  // Minting stops at the handover cap even though material remains.
  KeyRequest request;
  request.number = 8;
  const auto first = service_.get_key("sae-e", "sae-f", request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->keys.size(), 2u);
  const auto refused = service_.get_key("sae-e", "sae-f", request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error.status, kStatusUnavailable);

  // Collection drains the backlog and re-opens delivery.
  KeyIdsRequest ids;
  for (const auto& key : first->keys) ids.key_ids.push_back(key.key_id);
  ASSERT_TRUE(service_.get_key_with_ids("sae-f", "sae-e", ids).ok());
  const auto resumed = service_.get_key("sae-e", "sae-f", request);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->keys.size(), 2u);
}

TEST_F(KeyDeliveryTest, ConcurrentPairsNeverDuplicateOrLoseBits) {
  service_.register_pair({"sae-c", "sae-d", "metro", 128, 8, 1024, 64});
  Xoshiro256 rng(8);
  constexpr std::uint64_t kDeposited = 1 << 14;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        metro_store().deposit(rng.random_bits(kDeposited / 16)).accepted());
  }

  // Two master SAEs race the same link store through the service.
  std::set<std::string> ids_ab, ids_cd;
  auto drain = [this](const char* master, const char* slave,
                      std::set<std::string>& ids) {
    KeyRequest request;
    request.number = 4;
    while (true) {
      const auto container = service_.get_key(master, slave, request);
      if (!container.ok()) break;
      for (const auto& key : container->keys) ids.insert(key.key_id);
    }
  };
  std::thread ab([&] { drain("sae-a", "sae-b", ids_ab); });
  std::thread cd([&] { drain("sae-c", "sae-d", ids_cd); });
  ab.join();
  cd.join();

  // No UUID appears twice across the two pairs.
  for (const auto& id : ids_ab) EXPECT_EQ(ids_cd.count(id), 0u);

  // Conservation: everything deposited is delivered or buffered.
  const auto ab_stats = *service_.pair_stats("sae-a", "sae-b");
  const auto cd_stats = *service_.pair_stats("sae-c", "sae-d");
  EXPECT_EQ(metro_store().bits_available(), 0u);
  EXPECT_EQ(ab_stats.delivered_bits + ab_stats.buffered_bits +
                cd_stats.delivered_bits + cd_stats.buffered_bits,
            kDeposited);
  EXPECT_EQ(ab_stats.delivered_keys, ids_ab.size());
  EXPECT_EQ(cd_stats.delivered_keys, ids_cd.size());
}

}  // namespace
}  // namespace qkdpp::api
