// NTT transform/convolution tests against schoolbook convolution.
#include "common/ntt.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace qkdpp {
namespace {

constexpr std::uint64_t kP = 998244353;

std::vector<std::uint32_t> convolve_slow(const std::vector<std::uint32_t>& a,
                                         const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint64_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = (out[i + j] + std::uint64_t{a[i]} * b[j]) % kP;
    }
  }
  return {out.begin(), out.end()};
}

TEST(Ntt, ForwardInverseRoundTrip) {
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> data(256);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng.uniform(kP));
  auto copy = data;
  ntt(copy, false);
  ntt(copy, true);
  EXPECT_EQ(copy, data);
}

TEST(Ntt, RejectsNonPowerOfTwo) {
  std::vector<std::uint32_t> data(100);
  EXPECT_THROW(ntt(data, false), std::invalid_argument);
}

TEST(Ntt, ConvolveEmpty) {
  EXPECT_TRUE(ntt_convolve({}, {1, 2}).empty());
  EXPECT_TRUE(ntt_convolve({1}, {}).empty());
}

TEST(Ntt, ConvolveKnownSmall) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
  const auto r = ntt_convolve({1, 2}, {3, 4});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 3u);
  EXPECT_EQ(r[1], 10u);
  EXPECT_EQ(r[2], 8u);
}

TEST(Ntt, ConvolveSingleton) {
  const auto r = ntt_convolve({5}, {7});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 35u);
}

class NttConvolveSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(NttConvolveSweep, MatchesSchoolbook) {
  const auto [na, nb] = GetParam();
  Xoshiro256 rng(na * 31 + nb);
  std::vector<std::uint32_t> a(na), b(nb);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.uniform(kP));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.uniform(kP));
  EXPECT_EQ(ntt_convolve(a, b), convolve_slow(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NttConvolveSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{100, 1},
                      std::pair<std::size_t, std::size_t>{127, 129},
                      std::pair<std::size_t, std::size_t>{256, 256},
                      std::pair<std::size_t, std::size_t>{1000, 333}));

TEST(Ntt, BinaryConvolutionCountsExactly) {
  // The privacy-amplification use case: 0/1 inputs, coefficients are counts.
  Xoshiro256 rng(77);
  const std::size_t n = 4096;
  std::vector<std::uint32_t> a(n), b(n);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.uniform(2));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.uniform(2));
  const auto fast = ntt_convolve(a, b);
  // Check a scattering of coefficients against direct counting.
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2, n - 1,
                              2 * n - 2}) {
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = k - i;
      if (k >= i && j < n) expected += a[i] & b[j];
    }
    EXPECT_EQ(fast[k], expected) << k;
  }
}

TEST(Ntt, LargeLengthWithinLimit) {
  // 2^20-point convolution stays exact (counts << p).
  Xoshiro256 rng(78);
  const std::size_t n = 1 << 19;
  std::vector<std::uint32_t> a(n), b(n);
  for (auto& x : a) x = static_cast<std::uint32_t>(rng.uniform(2));
  for (auto& x : b) x = static_cast<std::uint32_t>(rng.uniform(2));
  const auto r = ntt_convolve(a, b);
  ASSERT_EQ(r.size(), 2 * n - 1);
  // Middle coefficient is a sum of ~n/4 ones; must be < p and plausible.
  EXPECT_LT(r[n - 1], kP);
  EXPECT_GT(r[n - 1], n / 8);
}

}  // namespace
}  // namespace qkdpp
