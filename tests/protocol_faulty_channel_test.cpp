// Fault-injection + ARQ unit tests: the FaultyChannel injects exactly the
// seeded pattern it promises, and ReliableChannel delivers exactly-once
// in-order over it — or fails with a typed kTimeout, never silently.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "protocol/channel.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/reliable_channel.hpp"

namespace qkdpp::protocol {
namespace {

std::vector<std::uint8_t> frame_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::vector<std::uint8_t> numbered_frame(std::uint32_t i, std::size_t pad) {
  std::vector<std::uint8_t> f(pad + 4);
  for (int b = 0; b < 4; ++b) {
    f[static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(i >> (8 * b));
  }
  for (std::size_t k = 4; k < f.size(); ++k) {
    f[k] = static_cast<std::uint8_t>(k * 31 + i);
  }
  return f;
}

TEST(FaultProfile, ValidateRejectsBadConfig) {
  FaultProfile p;
  p.drop = 1.5;
  EXPECT_THROW(p.validate(), Error);
  p.drop = 0.0;
  p.outages.push_back({10, 5});
  EXPECT_THROW(p.validate(), Error);
}

TEST(FaultyChannel, SameSeedSameFaultPattern) {
  auto run_once = [](std::uint64_t seed) {
    auto [a, b] = make_channel_pair();
    FaultProfile profile;
    profile.drop = 0.2;
    profile.corrupt = 0.2;
    profile.duplicate = 0.1;
    profile.reorder = 0.1;
    profile.delay = 0.1;
    auto faulty = make_faulty_channel(std::move(a), profile, seed);
    for (std::uint32_t i = 0; i < 200; ++i) {
      faulty->send(numbered_frame(i, 16));
    }
    faulty->close();
    std::vector<std::vector<std::uint8_t>> delivered;
    try {
      for (;;) delivered.push_back(b->receive());
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kChannelClosed);
    }
    return std::pair(delivered, faulty->fault_counters());
  };
  auto [frames1, faults1] = run_once(42);
  auto [frames2, faults2] = run_once(42);
  auto [frames3, faults3] = run_once(43);
  EXPECT_EQ(frames1, frames2);
  EXPECT_EQ(faults1.total(), faults2.total());
  EXPECT_GT(faults1.dropped, 0u);
  EXPECT_GT(faults1.corrupted, 0u);
  // A different seed produces a different pattern (overwhelmingly likely
  // over 200 frames with these rates).
  EXPECT_NE(frames1, frames3);
}

TEST(FaultyChannel, OutageWindowDropsExactlyItsFrames) {
  auto [a, b] = make_channel_pair();
  FaultProfile profile;
  profile.outages.push_back({3, 7});
  auto faulty = make_faulty_channel(std::move(a), profile, 1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    faulty->send(numbered_frame(i, 0));
  }
  faulty->close();
  std::vector<std::uint32_t> got;
  try {
    for (;;) {
      auto f = b->receive();
      std::uint32_t id = 0;
      for (int k = 0; k < 4; ++k) {
        id |= std::uint32_t{f[static_cast<std::size_t>(k)]} << (8 * k);
      }
      got.push_back(id);
    }
  } catch (const Error&) {
  }
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 7, 8, 9}));
  EXPECT_EQ(faulty->fault_counters().outage_dropped, 4u);
  EXPECT_EQ(faulty->counters().faults_injected, 4u);
}

TEST(ReliableChannel, CleanPingPongInOrder) {
  auto [a, b] = make_channel_pair();
  ReliableChannel alice(std::move(a), {}, 7);
  ReliableChannel bob(std::move(b), {}, 8);
  auto bob_side = std::async(std::launch::async, [&bob] {
    for (int i = 0; i < 50; ++i) {
      auto f = bob.receive();
      bob.send(f);  // echo
    }
  });
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto sent = numbered_frame(i, 8);
    alice.send(sent);
    EXPECT_EQ(alice.receive(), sent);
  }
  bob_side.get();
  const auto c = alice.counters();
  EXPECT_EQ(c.retransmits, 0u);
  EXPECT_EQ(c.corrupt_dropped, 0u);
}

TEST(ReliableChannel, ExactlyOnceInOrderUnderHeavyFaults) {
  RetryPolicy policy;
  // Generous budget: this test pins exactly-once delivery, not abort
  // latency, and under a sanitizer's slowdown a tight base timeout burns
  // real retries on waits that merely expired early.
  policy.max_retries = 20;
  policy.base_timeout = std::chrono::milliseconds(1);
  policy.exchange_deadline = std::chrono::milliseconds(10000);

  FaultProfile profile;
  profile.drop = 0.15;
  profile.corrupt = 0.10;
  profile.duplicate = 0.10;
  profile.reorder = 0.10;
  profile.delay = 0.10;

  auto [a, b] = make_channel_pair();
  ReliableChannel alice(make_faulty_channel(std::move(a), profile, 11), policy,
                        21);
  ReliableChannel bob(make_faulty_channel(std::move(b), profile, 12), policy,
                      22);

  constexpr std::uint32_t kRounds = 150;
  auto bob_side = std::async(std::launch::async, [&bob] {
    std::vector<std::vector<std::uint8_t>> got;
    for (std::uint32_t i = 0; i < kRounds; ++i) {
      got.push_back(bob.receive());
      bob.send(numbered_frame(i, 4));
    }
    // Close inside the task: if the injector ate Bob's final reply (or
    // Alice's ack of it), the linger keeps retransmitting while Alice is
    // still listening — without it the tail of the conversation cannot
    // heal and the run flakes on whichever seed hits the last exchange.
    bob.close();
    return got;
  });
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint32_t i = 0; i < kRounds; ++i) {
    sent.push_back(numbered_frame(i, 64));
    alice.send(sent.back());
    EXPECT_EQ(alice.receive(), numbered_frame(i, 4)) << "round " << i;
  }
  EXPECT_EQ(bob_side.get(), sent);
  alice.close();

  ChannelCounters total = alice.counters();
  total += bob.counters();
  EXPECT_GT(total.faults_injected, 0u);
  EXPECT_GT(total.retransmits, 0u);
  EXPECT_GT(total.corrupt_dropped, 0u);
}

TEST(ReliableChannel, RetransmissionBudgetExhaustionIsTypedTimeout) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.base_timeout = std::chrono::microseconds(200);
  policy.max_timeout = std::chrono::microseconds(1000);
  policy.exchange_deadline = std::chrono::milliseconds(5000);

  FaultProfile blackhole;
  blackhole.drop = 1.0;

  auto [a, b] = make_channel_pair();
  ReliableChannel alice(make_faulty_channel(std::move(a), blackhole, 3),
                        policy, 5);
  alice.send(frame_of("into the void"));
  try {
    alice.receive();
    FAIL() << "expected kTimeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
  EXPECT_GE(alice.counters().retransmits, 3u);
  b->close();
}

TEST(ReliableChannel, ExchangeDeadlineIsTypedTimeout) {
  RetryPolicy policy;
  policy.exchange_deadline = std::chrono::milliseconds(30);
  auto [a, b] = make_channel_pair();
  ReliableChannel alice(std::move(a), policy, 5);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    alice.receive();  // nothing to retransmit, peer silent
    FAIL() << "expected kTimeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  b->close();
}

TEST(ReliableChannel, CloseLingerHealsFinalFrame) {
  // The very first transmission of the only DATA frame is swallowed by an
  // outage; only close()'s linger retransmission can heal it.
  FaultProfile first_frame_lost;
  first_frame_lost.outages.push_back({0, 1});

  auto [a, b] = make_channel_pair();
  ReliableChannel bob(std::move(b), {}, 31);
  auto receiver = std::async(std::launch::async, [&bob] {
    return bob.receive();
  });
  {
    RetryPolicy policy;
    policy.base_timeout = std::chrono::microseconds(500);
    ReliableChannel alice(
        make_faulty_channel(std::move(a), first_frame_lost, 9), policy, 30);
    alice.send(frame_of("last words"));
    alice.close();  // linger pumps the retransmission
  }
  EXPECT_EQ(receiver.get(), frame_of("last words"));
}

}  // namespace
}  // namespace qkdpp::protocol
