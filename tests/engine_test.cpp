// PostprocessEngine tests: bit-exact final keys across all four DeviceKind
// placements (device selection changes the clock, never the key), mapper
// edge cases surfaced through the engine, batch submission determinism, and
// the merged parameter plumbing.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/error.hpp"
#include "engine/sim_adapter.hpp"
#include "pipeline/offline.hpp"
#include "pipeline/session.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::engine {
namespace {

BlockInput metro_input(std::uint64_t block_id, std::uint64_t seed,
                       std::size_t pulses = std::size_t{1} << 19) {
  sim::LinkConfig link;
  link.channel.length_km = 10.0;
  Xoshiro256 rng(seed);
  const auto record = sim::Bb84Simulator(link).run(pulses, rng);
  return make_block_input(record, block_id);
}

PostprocessParams metro_params() {
  PostprocessParams params;
  params.ldpc.min_frame = 4096;
  return params;
}

TEST(PostprocessEngine, GoldenKeyBitExactAcrossAllDevicePlacements) {
  const BlockInput input = metro_input(1, 42);
  const hetero::DeviceKind kinds[] = {
      hetero::DeviceKind::kCpuScalar, hetero::DeviceKind::kCpuParallel,
      hetero::DeviceKind::kGpuSim, hetero::DeviceKind::kFpgaSim};

  PostprocessEngine reference(metro_params(),
                              EngineOptions::pinned(kinds[0]));
  Xoshiro256 reference_rng(7);
  const BlockOutcome golden = reference.process_block(input, 1, reference_rng);
  ASSERT_TRUE(golden.success) << golden.abort_reason;
  ASSERT_GT(golden.final_key_bits, 0u);

  for (std::size_t k = 1; k < 4; ++k) {
    PostprocessEngine engine(metro_params(), EngineOptions::pinned(kinds[k]));
    EXPECT_EQ(engine.placement().device_of_stage,
              std::vector<std::uint32_t>(5, static_cast<std::uint32_t>(k)));
    Xoshiro256 rng(7);
    const BlockOutcome outcome = engine.process_block(input, 1, rng);
    ASSERT_TRUE(outcome.success) << outcome.abort_reason;
    EXPECT_EQ(outcome.final_key, golden.final_key)
        << "placement " << hetero::to_string(kinds[k]);
    EXPECT_EQ(outcome.leak_ec_bits, golden.leak_ec_bits);
    EXPECT_EQ(outcome.reconciled_bits, golden.reconciled_bits);
  }
}

TEST(PostprocessEngine, OptimizedPlacementSameKeyAsPinned) {
  const BlockInput input = metro_input(2, 43);
  PostprocessEngine pinned(metro_params(),
                           EngineOptions::pinned(hetero::DeviceKind::kCpuScalar));
  PostprocessEngine optimized(metro_params(), EngineOptions::standard());
  Xoshiro256 rng_a(9), rng_b(9);
  const auto a = pinned.process_block(input, 2, rng_a);
  const auto b = optimized.process_block(input, 2, rng_b);
  ASSERT_TRUE(a.success) << a.abort_reason;
  ASSERT_TRUE(b.success) << b.abort_reason;
  EXPECT_EQ(a.final_key, b.final_key);
}

TEST(PostprocessEngine, OptimizedPlacementKeepsHostStagesOnCpu) {
  PostprocessEngine engine(metro_params(), EngineOptions::standard());
  const Placement& placement = engine.placement();
  ASSERT_EQ(placement.stage_names.size(), 5u);
  ASSERT_EQ(placement.device_of_stage.size(), 5u);
  EXPECT_GT(placement.predicted_items_per_s, 0.0);
  // sift and estimate are host-only; the mapper must respect the mask.
  for (std::size_t s = 0; s < 2; ++s) {
    const auto d = placement.device_of_stage[s];
    EXPECT_LE(d, 1u) << placement.stage_names[s] << " placed on "
                     << placement.device_of(s);
  }
}

TEST(PostprocessEngine, AcceleratorOnlyRosterThrowsAllInfeasible) {
  // Sifting cannot run on accelerators; with no CPU in the roster the
  // optimizer has an all-infeasible stage row and must reject the config.
  EngineOptions options;
  options.devices = {hetero::gpu_sim_props(), hetero::fpga_sim_props()};
  EXPECT_THROW(PostprocessEngine(metro_params(), options), Error);
}

TEST(PostprocessEngine, SingleDeviceTieIsDeterministic) {
  // Two identical devices: every assignment ties; the exhaustive search
  // must still return a valid placement and the same one every time.
  EngineOptions options;
  options.devices = {hetero::cpu_scalar_props(), hetero::cpu_scalar_props()};
  PostprocessEngine a(metro_params(), options);
  PostprocessEngine b(metro_params(), options);
  for (const auto d : a.placement().device_of_stage) EXPECT_LT(d, 2u);
  EXPECT_EQ(a.placement().device_of_stage, b.placement().device_of_stage);
}

TEST(PostprocessEngine, FixedDeviceOutOfRangeRejected) {
  EngineOptions options = EngineOptions::cpu_only();
  options.fixed_device = 7;
  EXPECT_THROW(PostprocessEngine(metro_params(), options), Error);
}

TEST(PostprocessEngine, InvalidParamsRejected) {
  PostprocessParams params = metro_params();
  params.pe_fraction = 0.0;
  EXPECT_THROW(PostprocessEngine{params}, std::invalid_argument);
  params = metro_params();
  params.qber_abort = 0.0;
  EXPECT_THROW(PostprocessEngine{params}, std::invalid_argument);
}

TEST(PostprocessEngine, SubmitBlockMatchesSynchronousResult) {
  PostprocessEngine engine(metro_params(), EngineOptions::standard());
  std::vector<std::future<BlockOutcome>> futures;
  for (std::uint64_t b = 0; b < 3; ++b) {
    futures.push_back(engine.submit_block(metro_input(b, 100 + b), b, 500 + b));
  }
  for (std::uint64_t b = 0; b < 3; ++b) {
    const BlockOutcome async_outcome = futures[b].get();
    Xoshiro256 rng(500 + b);
    const BlockOutcome sync_outcome =
        engine.process_block(metro_input(b, 100 + b), b, rng);
    ASSERT_EQ(async_outcome.success, sync_outcome.success);
    EXPECT_EQ(async_outcome.final_key, sync_outcome.final_key);
    EXPECT_EQ(async_outcome.leak_ec_bits, sync_outcome.leak_ec_bits);
  }
}

TEST(PostprocessEngine, DestructionWithOutstandingFuturesIsSafe) {
  // Destroying the engine while submitted blocks are still queued must
  // drain them against live devices/executors (regression: the batch pool
  // must be joined before the rest of the engine is torn down).
  std::future<BlockOutcome> orphan;
  {
    PostprocessEngine engine(metro_params(), EngineOptions::standard());
    orphan = engine.submit_block(metro_input(9, 46), 9, 900);
  }
  const BlockOutcome outcome = orphan.get();  // completed before teardown
  EXPECT_FALSE(outcome.abort_reason.empty() && !outcome.success);
}

TEST(PostprocessEngine, DeviceReportAccountsLaunches) {
  PostprocessEngine engine(metro_params(),
                           EngineOptions::pinned(hetero::DeviceKind::kGpuSim));
  const BlockInput input = metro_input(3, 44);
  Xoshiro256 rng(11);
  const auto outcome = engine.process_block(input, 3, rng);
  ASSERT_TRUE(outcome.success) << outcome.abort_reason;
  const auto reports = engine.device_report();
  ASSERT_EQ(reports.size(), 4u);
  const auto& gpu = reports[2];
  EXPECT_EQ(gpu.kind, hetero::DeviceKind::kGpuSim);
  EXPECT_EQ(gpu.kernels_launched, 5u);  // one per stage
  EXPECT_GT(gpu.busy_seconds, 0.0);
  EXPECT_EQ(reports[0].kernels_launched, 0u);
}

TEST(PostprocessEngine, AbortedBlockReportsStageReason) {
  PostprocessEngine engine(metro_params(), EngineOptions::cpu_only());
  const BlockInput input = metro_input(4, 45, /*pulses=*/2000);
  Xoshiro256 rng(12);
  const auto outcome = engine.process_block(input, 4, rng);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.abort_reason, "insufficient sifted key");
  EXPECT_EQ(outcome.final_key_bits, 0u);
}

TEST(PostprocessEngine, CascadeRoundExhaustionAbortsBlock) {
  // Regression: with the Cascade round budget exhausted the keys provably
  // still differ; the reconcile stage must fail the block (and say why)
  // instead of passing a corrupt key to verification.
  PostprocessParams params = metro_params();
  params.method = protocol::ReconcileMethod::kCascade;
  params.cascade.max_rounds = 4;  // a metro block needs thousands
  PostprocessEngine engine(params, EngineOptions::cpu_only());
  const BlockInput input = metro_input(5, 47);
  Xoshiro256 rng(13);
  const auto outcome = engine.process_block(input, 5, rng);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.abort_reason, "cascade did not converge");

  // The identical block with the default budget distills a key.
  params.cascade.max_rounds = 100000;
  PostprocessEngine healthy(params, EngineOptions::cpu_only());
  Xoshiro256 rng_ok(13);
  const auto ok = healthy.process_block(input, 5, rng_ok);
  ASSERT_TRUE(ok.success) << ok.abort_reason;
  EXPECT_GT(ok.final_key_bits, 0u);
}

TEST(PostprocessParams, SharedByOfflineAndSessionConfigs) {
  static_assert(
      std::is_base_of_v<PostprocessParams, pipeline::OfflineConfig>,
      "OfflineConfig must extend the shared parameter set");
  static_assert(std::is_same_v<pipeline::SessionConfig, PostprocessParams>,
                "SessionConfig must alias the shared parameter set");
  pipeline::OfflineConfig config;
  config.pe_fraction = 0.2;
  const PostprocessParams& params = config;
  EXPECT_DOUBLE_EQ(params.pe_fraction, 0.2);
}

}  // namespace
}  // namespace qkdpp::engine
