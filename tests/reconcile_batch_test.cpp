// Batched quantized reconciliation: the decode-equivalence property (a
// frame decodes bit-identically alone or inside any batch), batch key
// reconciliation vs the sequential single-frame reference (corrected
// payloads AND leak accounting), the blind-vs-fixed-rate disclosure
// ordering on a quiet channel, and the batched planner's shape.
#include "reconcile/batch_decoder.hpp"
#include "reconcile/reconciler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {
namespace {

BitVec corrupt(const BitVec& key, double q, Xoshiro256& rng) {
  BitVec noisy = key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (rng.bernoulli(q)) noisy.flip(i);
  }
  return noisy;
}

// --- kernel-level equivalence -------------------------------------------

// Decoding a frame inside a batch must be bit-identical to decoding it as
// a one-job batch: every lane's arithmetic is independent, so batching is
// purely a layout transform. 11 jobs force a partial lane word.
TEST(BatchDecoder, BatchEqualsSingleFrameBitExact) {
  const LdpcCode code = LdpcCode::peg(1024, 512, DegreeProfile::regular(3), 1);
  constexpr std::size_t kJobs = 11;
  Xoshiro256 rng(42);

  std::vector<BitVec> syndromes;
  std::vector<std::vector<float>> llrs;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const BitVec x = rng.random_bits(code.n());
    syndromes.push_back(code.syndrome(x));
    // Vary the noise per job so the batch mixes instant converges with
    // stragglers and (at 9%) likely failures.
    const double q = 0.01 + 0.01 * static_cast<double>(j % 9);
    const BitVec noisy = corrupt(x, q, rng);
    std::vector<float> llr(code.n());
    const float mag = bsc_llr(q);
    for (std::size_t v = 0; v < code.n(); ++v) {
      llr[v] = noisy.get(v) ? -mag : mag;
    }
    // Sprinkle punctured (erasure) and pinned (known) positions, the two
    // rate-adaptation LLR classes.
    for (std::size_t v = j; v < code.n(); v += 37) llr[v] = 0.0f;
    for (std::size_t v = j + 5; v < code.n(); v += 53) {
      llr[v] = x.get(v) ? -kKnownLlr : kKnownLlr;
    }
    llrs.push_back(std::move(llr));
  }

  DecoderConfig config;
  config.max_iterations = 30;
  std::vector<QuantDecodeJob> jobs(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    jobs[j].syndrome = &syndromes[j];
    jobs[j].llr = &llrs[j];
  }
  std::vector<DecodeResult> batch;
  decode_syndrome_batch(code, jobs, config, batch);
  ASSERT_EQ(batch.size(), kJobs);

  std::size_t converged = 0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const DecodeResult single =
        decode_syndrome_quant(code, syndromes[j], llrs[j], config);
    EXPECT_EQ(batch[j].converged, single.converged) << "job " << j;
    EXPECT_EQ(batch[j].iterations, single.iterations) << "job " << j;
    if (batch[j].converged && single.converged) {
      EXPECT_EQ(batch[j].word, single.word) << "job " << j;
      EXPECT_TRUE(code.syndrome_matches(batch[j].word, syndromes[j]));
      ++converged;
    }
  }
  EXPECT_GE(converged, 5u);  // the quiet jobs must actually decode
}

// --- key-level equivalence over a (seed, QBER) grid ---------------------

// ldpc_reconcile_key_batch must reproduce the sequential single-frame
// protocol exactly: same corrected payloads, same leak, same rounds, for
// every frame - including the shared private-RNG stream that fills the
// punctured positions in frame order.
class BatchKeyEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BatchKeyEquivalence, MatchesSequentialSingleFrameProtocol) {
  const auto [seed, qber] = GetParam();
  Xoshiro256 rng(seed);

  LdpcReconcilerConfig config;
  const FramePlan plan =
      plan_frame_batched(4 * 4096, qber, config.f_target,
                         config.adapt_fraction, /*target_frames=*/4);
  ASSERT_GT(plan.payload_bits, 0u);
  const std::size_t frames = 4;
  const BitVec alice = rng.random_bits(frames * plan.payload_bits);
  const BitVec bob = corrupt(alice, qber, rng);
  std::vector<std::uint64_t> frame_seeds;
  for (std::size_t f = 0; f < frames; ++f) {
    frame_seeds.push_back((seed << 20) ^ (f * 0x9e3779b97f4a7c15ULL));
  }

  // Batched arm.
  Xoshiro256 batch_private(seed * 7 + 1);
  BitVec alice_out;
  BitVec bob_out;
  std::vector<ReconcileOutcome> per_frame;
  const BatchReconcileStats stats = ldpc_reconcile_key_batch(
      alice, bob, qber, plan, frame_seeds, config, batch_private,
      /*arena=*/nullptr, alice_out, bob_out, &per_frame);
  ASSERT_EQ(per_frame.size(), frames);

  // Sequential reference: same plan, same seeds, same private RNG stream.
  Xoshiro256 seq_private(seed * 7 + 1);
  BitVec expected_out;
  std::uint64_t expected_leak = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    BitVec alice_slice(plan.payload_bits);
    BitVec bob_slice(plan.payload_bits);
    for (std::size_t i = 0; i < plan.payload_bits; ++i) {
      alice_slice.set(i, alice.get(f * plan.payload_bits + i));
      bob_slice.set(i, bob.get(f * plan.payload_bits + i));
    }
    const ReconcileOutcome single = ldpc_reconcile_local(
        alice_slice, bob_slice, qber, plan, frame_seeds[f], config,
        seq_private);

    EXPECT_EQ(per_frame[f].success, single.success) << "frame " << f;
    EXPECT_EQ(per_frame[f].leaked_bits, single.leaked_bits) << "frame " << f;
    EXPECT_EQ(per_frame[f].rounds, single.rounds) << "frame " << f;
    EXPECT_EQ(per_frame[f].decoder_iterations, single.decoder_iterations)
        << "frame " << f;
    EXPECT_EQ(per_frame[f].blind_rounds, single.blind_rounds) << "frame " << f;
    if (per_frame[f].success && single.success) {
      EXPECT_EQ(per_frame[f].corrected, single.corrected) << "frame " << f;
      EXPECT_EQ(single.corrected, alice_slice) << "frame " << f;
      expected_out.append(single.corrected);
    }
    expected_leak += single.leaked_bits;
  }
  EXPECT_EQ(alice_out, expected_out);
  EXPECT_EQ(bob_out, expected_out);
  EXPECT_EQ(stats.leaked_bits, expected_leak);
  EXPECT_EQ(stats.frames, frames);
}

INSTANTIATE_TEST_SUITE_P(
    SeedQberGrid, BatchKeyEquivalence,
    ::testing::Combine(::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3}),
                       ::testing::Values(0.005, 0.02, 0.04)));

// --- blind reconciliation beats fixed-rate on a quiet channel -----------

// On a quiet channel (QBER <= 1%) the blind plan punctures aggressively
// and reveals nothing: total disclosure must be strictly below the
// fixed-rate baseline of the same mother code, which discloses the full
// syndrome (m bits) per frame.
TEST(BatchReconcile, QuietChannelBlindLeaksLessThanFixedRate) {
  const double qber = 0.008;
  Xoshiro256 rng(77);
  LdpcReconcilerConfig config;
  const FramePlan plan = plan_frame_batched(4 * 4096, qber, config.f_target,
                                            config.adapt_fraction, 4);
  ASSERT_GT(plan.n_punctured, 0u) << "quiet channel should puncture";
  const LdpcCode& code = code_by_id(plan.code_id);

  const std::size_t frames = 4;
  const BitVec alice = rng.random_bits(frames * plan.payload_bits);
  const BitVec bob = corrupt(alice, qber, rng);
  std::vector<std::uint64_t> frame_seeds{11, 22, 33, 44};

  Xoshiro256 alice_private(78);
  BitVec alice_out;
  BitVec bob_out;
  const BatchReconcileStats blind = ldpc_reconcile_key_batch(
      alice, bob, qber, plan, frame_seeds, config, alice_private,
      /*arena=*/nullptr, alice_out, bob_out);
  ASSERT_EQ(blind.frames_ok, frames) << "quiet channel must converge";

  // Fixed-rate on the same mother code: no puncturing, no shortening, the
  // whole n-bit frame is payload and the whole m-bit syndrome is leaked.
  FramePlan fixed = plan;
  fixed.n_punctured = 0;
  fixed.n_shortened = 0;
  fixed.payload_bits = code.n();
  Xoshiro256 rng2(79);
  const BitVec alice_fixed = rng2.random_bits(frames * fixed.payload_bits);
  const BitVec bob_fixed = corrupt(alice_fixed, qber, rng2);
  Xoshiro256 alice_private2(80);
  BitVec afo;
  BitVec bfo;
  const BatchReconcileStats fixed_stats = ldpc_reconcile_key_batch(
      alice_fixed, bob_fixed, qber, fixed, frame_seeds, config,
      alice_private2, /*arena=*/nullptr, afo, bfo);
  ASSERT_EQ(fixed_stats.frames_ok, frames);
  EXPECT_EQ(fixed_stats.leaked_bits, frames * code.m());

  // Per-frame disclosure ordering, and strictly so.
  EXPECT_LT(blind.leaked_bits / frames, code.m());
  EXPECT_LT(blind.leaked_bits, fixed_stats.leaked_bits);
}

// --- batched planner shape ----------------------------------------------

TEST(RateAdaptBatched, CutsLargeKeysIntoTargetLanes) {
  const FramePlan plan = plan_frame_batched(16 * 4096, 0.02, 1.45);
  const LdpcCode& code = code_by_id(plan.code_id);
  EXPECT_GE(code.n(), 4096u);
  ASSERT_GT(plan.payload_bits, 0u);
  // Default target is 8 lanes: the chosen payload must cut the key into
  // at least that many frames.
  EXPECT_GE((16 * 4096) / plan.payload_bits, 8u);
  EXPECT_GE(plan.predicted_efficiency, 1.0);
}

TEST(RateAdaptBatched, SmallKeysFallBackToFittingPlans) {
  const FramePlan plan = plan_frame_batched(1500, 0.02, 1.45);
  EXPECT_LE(plan.payload_bits, 1500u);
  EXPECT_GT(plan.payload_bits, 0u);
}

TEST(RateAdaptBatched, TinyKeysThrow) {
  EXPECT_THROW(plan_frame_batched(100, 0.02, 1.45), Error);
}

}  // namespace
}  // namespace qkdpp::reconcile
