// ThreadPool correctness: completion, exception propagation, parallel_for
// coverage, and stress under contention.
#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qkdpp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(2);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 64, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&ran](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 3, 100, [&total](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForSum) {
  ThreadPool pool(2);
  const std::size_t n = 1 << 16;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, n, 1024, [&sum](std::size_t lo, std::size_t hi) {
    std::uint64_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), std::uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPool, ManyWavesNoDeadlock) {
  ThreadPool pool(2);
  for (int wave = 0; wave < 50; ++wave) {
    std::atomic<int> counter{0};
    pool.parallel_for(0, 97, 3, [&counter](std::size_t lo, std::size_t hi) {
      counter += static_cast<int>(hi - lo);
    });
    ASSERT_EQ(counter.load(), 97);
  }
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(ThreadPool, StatsCountSubmittedAndExecuted) {
  ThreadPool pool(2);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.threads, 2u);
  EXPECT_EQ(before.submitted, 0u);
  EXPECT_EQ(before.executed, 0u);

  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();

  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.submitted, 64u);
  EXPECT_EQ(after.executed, 64u);
  EXPECT_EQ(after.queue_depth, 0u) << "everything claimed after the joins";
  EXPECT_LE(after.stolen, after.executed);
}

TEST(ThreadPool, StatsSeeQueueDepthAndBusyWorkersMidRun) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<bool> running{false};
  auto gate = pool.submit([&] {
    running.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  // A task parked behind the gate on a 1-thread pool must show up as
  // queued; the gate itself as a busy worker.
  auto parked = pool.submit([] {});
  while (!running.load()) std::this_thread::yield();
  const ThreadPool::Stats mid = pool.stats();
  EXPECT_EQ(mid.busy_workers, 1u);
  EXPECT_GE(mid.queue_depth, 1u);
  release.store(true);
  gate.get();
  parked.get();
  // executed_ is bumped after the task fulfils its future, so the counter
  // can trail the get() by an instant: poll instead of asserting a snapshot.
  for (int spin = 0; pool.stats().executed < 2 && spin < 10000; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.stats().executed, 2u);
}

TEST(ThreadPool, WorkStealingDrainsAnUnbalancedLoad) {
  // Round-robin placement plus a blocked worker forces the other workers
  // to steal: every task still runs exactly once and the steal counter
  // moves. (With 4 workers and one of them gated, tasks round-robined
  // onto the gated worker's deque can only finish via steals.)
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  auto gate = pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (int spin = 0; counter.load() < 200 && spin < 10000; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), 200)
      << "tasks behind the gated worker must be stolen, not stuck";
  release.store(true);
  gate.get();
  for (auto& f : futures) f.get();
  EXPECT_GE(pool.stats().stolen, 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A worker that blocks in parallel_for must help drain the pool; on a
  // 1-thread pool every chunk of the inner loop runs through that help
  // path or inline.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 8, 1, [&](std::size_t ilo, std::size_t ihi) {
        total += static_cast<int>(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::atomic<bool> release{false};
    pool.submit([&] {
      while (!release.load()) std::this_thread::yield();
    });
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran] { ++ran; });
    }
    release.store(true);
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace qkdpp
