// ThreadPool correctness: completion, exception propagation, parallel_for
// coverage, and stress under contention.
#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qkdpp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(2);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 64, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&ran](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 3, 100, [&total](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForSum) {
  ThreadPool pool(2);
  const std::size_t n = 1 << 16;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, n, 1024, [&sum](std::size_t lo, std::size_t hi) {
    std::uint64_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += i;
    sum += local;
  });
  EXPECT_EQ(sum.load(), std::uint64_t{n} * (n - 1) / 2);
}

TEST(ThreadPool, ManyWavesNoDeadlock) {
  ThreadPool pool(2);
  for (int wave = 0; wave < 50; ++wave) {
    std::atomic<int> counter{0};
    pool.parallel_for(0, 97, 3, [&counter](std::size_t lo, std::size_t hi) {
      counter += static_cast<int>(hi - lo);
    });
    ASSERT_EQ(counter.load(), 97);
  }
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

}  // namespace
}  // namespace qkdpp
