// BitVec unit + property tests against a std::vector<bool> oracle.
#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp {
namespace {

TEST(BitVec, EmptyDefaults) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_FALSE(v.parity());
}

TEST(BitVec, ConstructFilled) {
  BitVec zeros(130, false);
  EXPECT_EQ(zeros.size(), 130u);
  EXPECT_EQ(zeros.popcount(), 0u);

  BitVec ones(130, true);
  EXPECT_EQ(ones.popcount(), 130u);
  EXPECT_FALSE(ones.parity());  // 130 is even
  // Tail invariant: unused bits of the last word are zero.
  EXPECT_EQ(ones.words().back() >> (130 - 128), 0u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(200);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(199, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(199));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(199);
  EXPECT_FALSE(v.get(199));
  v.flip(100);
  EXPECT_TRUE(v.get(100));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, PushBackGrows) {
  BitVec v;
  for (int i = 0; i < 300; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVec, XorMatchesOracle) {
  Xoshiro256 rng(42);
  BitVec a = rng.random_bits(777);
  BitVec b = rng.random_bits(777);
  BitVec c = a;
  c ^= b;
  for (std::size_t i = 0; i < 777; ++i) {
    EXPECT_EQ(c.get(i), a.get(i) != b.get(i)) << i;
  }
}

TEST(BitVec, XorSizeMismatchThrows) {
  BitVec a(10), b(11);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVec, AndOrMatchOracle) {
  Xoshiro256 rng(43);
  const BitVec a = rng.random_bits(300);
  const BitVec b = rng.random_bits(300);
  BitVec land = a;
  land &= b;
  BitVec lor = a;
  lor |= b;
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(land.get(i), a.get(i) && b.get(i));
    EXPECT_EQ(lor.get(i), a.get(i) || b.get(i));
  }
}

TEST(BitVec, ParityRangeMatchesNaive) {
  Xoshiro256 rng(7);
  const BitVec v = rng.random_bits(513);
  std::mt19937 gen(1);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t b = gen() % 513;
    std::size_t e = gen() % 514;
    if (b > e) std::swap(b, e);
    bool expected = false;
    for (std::size_t i = b; i < e; ++i) expected ^= v.get(i);
    EXPECT_EQ(v.parity_range(b, e), expected) << b << " " << e;
  }
}

TEST(BitVec, ParityRangeExact) {
  BitVec v(256);
  v.set(64, true);
  v.set(127, true);
  v.set(128, true);
  EXPECT_EQ(v.parity_range(64, 128), false);  // bits 64 and 127
  EXPECT_EQ(v.parity_range(64, 129), true);   // bits 64, 127, 128
  EXPECT_EQ(v.parity_range(128, 256), true);
  EXPECT_EQ(v.parity_range(5, 5), false);
}

TEST(BitVec, SubvecMatchesOracle) {
  Xoshiro256 rng(11);
  const BitVec v = rng.random_bits(1000);
  std::mt19937 gen(2);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t pos = gen() % 900;
    const std::size_t len = gen() % (1000 - pos);
    const BitVec s = v.subvec(pos, len);
    ASSERT_EQ(s.size(), len);
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(s.get(i), v.get(pos + i)) << pos << "+" << i;
    }
  }
}

TEST(BitVec, AppendMatchesOracle) {
  Xoshiro256 rng(12);
  for (const std::size_t la : {0u, 1u, 63u, 64u, 65u, 130u}) {
    for (const std::size_t lb : {0u, 1u, 63u, 64u, 65u, 200u}) {
      const BitVec a = rng.random_bits(la);
      const BitVec b = rng.random_bits(lb);
      BitVec joined = a;
      joined.append(b);
      ASSERT_EQ(joined.size(), la + lb);
      for (std::size_t i = 0; i < la; ++i) ASSERT_EQ(joined.get(i), a.get(i));
      for (std::size_t i = 0; i < lb; ++i)
        ASSERT_EQ(joined.get(la + i), b.get(i));
    }
  }
}

TEST(BitVec, GatherSelectsPositions) {
  Xoshiro256 rng(13);
  const BitVec v = rng.random_bits(500);
  const std::vector<std::uint32_t> idx = {0, 5, 63, 64, 65, 499, 250};
  const BitVec g = v.gather(idx);
  ASSERT_EQ(g.size(), idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(g.get(i), v.get(idx[i]));
  }
}

TEST(BitVec, SelectMatchesBitLoop) {
  Xoshiro256 rng(20);
  // Word-boundary sizes where the compress accumulator wraps or ends flush.
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
    const BitVec v = rng.random_bits(n);
    const BitVec mask = rng.random_bits(n);
    const BitVec got = v.select(mask);
    BitVec expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask.get(i)) expected.push_back(v.get(i));
    }
    EXPECT_EQ(got, expected) << n;
  }
}

TEST(BitVec, SelectDegenerateMasks) {
  Xoshiro256 rng(21);
  const BitVec v = rng.random_bits(200);
  EXPECT_EQ(v.select(BitVec(200, true)), v);    // identity
  EXPECT_TRUE(v.select(BitVec(200)).empty());   // nothing kept
  BitVec dense_run(200);
  for (std::size_t i = 30; i < 130; ++i) dense_run.set(i, true);
  EXPECT_EQ(v.select(dense_run), v.subvec(30, 100));  // contiguous = subvec
  EXPECT_THROW(v.select(BitVec(100)), std::invalid_argument);
}

TEST(BitVec, ScatterMatchesBitLoop) {
  Xoshiro256 rng(22);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
    const BitVec mask = rng.random_bits(n);
    const BitVec v = rng.random_bits(mask.popcount());
    const BitVec got = v.scatter(mask);
    BitVec expected(n);
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask.get(i)) expected.set(i, v.get(k++));
    }
    EXPECT_EQ(got, expected) << n;
  }
  EXPECT_THROW(BitVec(3).scatter(BitVec(100)), std::invalid_argument);
}

TEST(BitVec, SelectScatterRoundTrip) {
  // scatter then select with the same mask is the identity on the packed
  // bits; select then scatter re-zeroes the unselected positions.
  Xoshiro256 rng(23);
  for (const std::size_t n : {64u, 129u, 500u}) {
    const BitVec mask = rng.random_bits(n);
    const BitVec packed = rng.random_bits(mask.popcount());
    EXPECT_EQ(packed.scatter(mask).select(mask), packed) << n;
    BitVec masked = rng.random_bits(n);
    masked &= mask;
    EXPECT_EQ(masked.select(mask).scatter(mask), masked) << n;
  }
}

TEST(BitVec, ReserveKeepsContents) {
  BitVec v;
  v.reserve(1000);
  for (int i = 0; i < 300; ++i) v.push_back(i % 7 == 0);
  EXPECT_EQ(v.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(v.get(i), i % 7 == 0) << i;
}

TEST(BitVec, BytesRoundTrip) {
  Xoshiro256 rng(14);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 65u, 1000u}) {
    const BitVec v = rng.random_bits(n);
    const auto bytes = v.to_bytes();
    EXPECT_EQ(bytes.size(), (n + 7) / 8);
    const BitVec back = BitVec::from_bytes(bytes, n);
    EXPECT_EQ(back, v) << n;
  }
}

TEST(BitVec, HammingDistance) {
  BitVec a(100), b(100);
  a.set(3, true);
  b.set(3, true);
  a.set(99, true);
  b.set(50, true);
  EXPECT_EQ(BitVec::hamming_distance(a, b), 2u);
  EXPECT_EQ(BitVec::hamming_distance(a, a), 0u);
}

TEST(BitVec, ResizePreservesPrefixAndMasksTail) {
  BitVec v(100, true);
  v.resize(40);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_EQ(v.popcount(), 40u);
  v.resize(100);
  EXPECT_EQ(v.popcount(), 40u);  // grown bits are zero
}

TEST(BitVec, FromBools) {
  const std::vector<std::uint8_t> bools = {1, 0, 1, 1, 0};
  const BitVec v = BitVec::from_bools(bools);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_FALSE(v.get(4));
}

TEST(BitVec, ToStringTruncates) {
  BitVec v(10);
  v.set(0, true);
  EXPECT_EQ(v.to_string(), "1000000000");
  EXPECT_EQ(v.to_string(4), "1000...");
}

// Property sweep: xor linearity of popcount parity across sizes.
class BitVecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecSizeSweep, ParityEqualsPopcountMod2) {
  Xoshiro256 rng(GetParam() + 99);
  const BitVec v = rng.random_bits(GetParam());
  EXPECT_EQ(v.parity(), v.popcount() % 2 == 1);
  EXPECT_EQ(v.parity(), v.parity_range(0, v.size()));
}

TEST_P(BitVecSizeSweep, SubvecConcatIdentity) {
  Xoshiro256 rng(GetParam() + 1000);
  const std::size_t n = GetParam();
  const BitVec v = rng.random_bits(n);
  const std::size_t cut = n / 3;
  BitVec joined = v.subvec(0, cut);
  joined.append(v.subvec(cut, n - cut));
  EXPECT_EQ(joined, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecSizeSweep,
                         ::testing::Values(1, 3, 63, 64, 65, 127, 128, 129,
                                           1000, 4096, 100000));

}  // namespace
}  // namespace qkdpp
