// Privacy amplification tests: Toeplitz correctness (direct == NTT ==
// naive), linearity, universality smoke test, PA planner formulas,
// verification tags.
#include "privacy/pa_planner.hpp"
#include "privacy/toeplitz.hpp"
#include "privacy/verification.hpp"

#include <gtest/gtest.h>

#include "auth/wegman_carter.hpp"
#include "common/rng.hpp"

namespace qkdpp::privacy {
namespace {

/// Bit-at-a-time oracle, straight from the definition.
BitVec toeplitz_naive(const BitVec& x, const BitVec& t, std::size_t r) {
  const std::size_t n = x.size();
  BitVec y(r);
  for (std::size_t j = 0; j < r; ++j) {
    bool acc = false;
    for (std::size_t i = 0; i < n; ++i) {
      acc ^= x.get(i) && t.get(n - 1 + j - i);
    }
    if (acc) y.set(j, true);
  }
  return y;
}

TEST(Toeplitz, SeedExpansionDeterministic) {
  const BitVec a = toeplitz_seed(42, 1000);
  const BitVec b = toeplitz_seed(42, 1000);
  const BitVec c = toeplitz_seed(43, 1000);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1000u);
}

TEST(Toeplitz, DirectMatchesNaiveSmall) {
  Xoshiro256 rng(1);
  for (const auto [n, r] : {std::pair<std::size_t, std::size_t>{8, 4},
                            {64, 64},
                            {65, 33},
                            {130, 100},
                            {257, 31}}) {
    const BitVec x = rng.random_bits(n);
    const BitVec t = rng.random_bits(n + r - 1);
    EXPECT_EQ(toeplitz_hash_direct(x, t, r), toeplitz_naive(x, t, r))
        << n << "x" << r;
  }
}

TEST(Toeplitz, NttMatchesDirect) {
  Xoshiro256 rng(2);
  for (const auto [n, r] : {std::pair<std::size_t, std::size_t>{64, 32},
                            {1000, 800},
                            {4096, 2048},
                            {10000, 9999},
                            {1 << 15, 1 << 14}}) {
    const BitVec x = rng.random_bits(n);
    const BitVec t = rng.random_bits(n + r - 1);
    EXPECT_EQ(toeplitz_hash_ntt(x, t, r), toeplitz_hash_direct(x, t, r))
        << n << "x" << r;
  }
}

TEST(Toeplitz, ClmulMatchesDirectAtWordBoundaries) {
  Xoshiro256 rng(20);
  // Every (n, r) pairing of the word-boundary sizes: the clmul kernel's
  // chunking, Karatsuba splits, and the output window slice all hit their
  // edge cases here.
  const std::size_t sizes[] = {63, 64, 65, 127, 128, 129};
  for (const std::size_t n : sizes) {
    for (const std::size_t r : sizes) {
      const BitVec x = rng.random_bits(n);
      const BitVec t = rng.random_bits(n + r - 1);
      EXPECT_EQ(toeplitz_hash_clmul(x, t, r), toeplitz_hash_direct(x, t, r))
          << n << "x" << r;
    }
  }
}

TEST(Toeplitz, ClmulMatchesDirectRandomized) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(6000));
    const std::size_t r = 1 + static_cast<std::size_t>(rng.uniform(n));
    const BitVec x = rng.random_bits(n);
    const BitVec t = rng.random_bits(n + r - 1);
    EXPECT_EQ(toeplitz_hash_clmul(x, t, r), toeplitz_hash_direct(x, t, r))
        << n << "x" << r;
  }
}

TEST(Toeplitz, ClmulMatchesNtt) {
  Xoshiro256 rng(22);
  for (const auto [n, r] : {std::pair<std::size_t, std::size_t>{1000, 800},
                            {4096, 2048},
                            {100000, 50000},
                            {1 << 17, 1 << 16}}) {
    const BitVec x = rng.random_bits(n);
    const BitVec t = rng.random_bits(n + r - 1);
    EXPECT_EQ(toeplitz_hash_clmul(x, t, r), toeplitz_hash_ntt(x, t, r))
        << n << "x" << r;
  }
}

TEST(Toeplitz, ClmulShapeValidation) {
  Xoshiro256 rng(23);
  const BitVec x = rng.random_bits(100);
  EXPECT_THROW(toeplitz_hash_clmul(x, rng.random_bits(100), 50),
               std::invalid_argument);
  EXPECT_THROW(toeplitz_hash_clmul(BitVec(), rng.random_bits(149), 50),
               std::invalid_argument);
}

TEST(Toeplitz, DispatcherConsistent) {
  Xoshiro256 rng(3);
  // Above the crossover: clmul path, must match the direct oracle.
  const std::size_t n = kClmulCrossover;
  const BitVec x = rng.random_bits(n);
  const BitVec t = rng.random_bits(n + 100 - 1);
  EXPECT_EQ(toeplitz_hash(x, t, 100), toeplitz_hash_direct(x, t, 100));
  const BitVec x_mid = rng.random_bits(512);
  const BitVec t_mid = rng.random_bits(512 + 100 - 1);
  EXPECT_EQ(toeplitz_hash(x_mid, t_mid, 100),
            toeplitz_hash_ntt(x_mid, t_mid, 100));
  // Below the crossover: direct path, must match the clmul kernel.
  const std::size_t n_small = kClmulCrossover - 1;
  const BitVec x_small = rng.random_bits(n_small);
  const BitVec t_small = rng.random_bits(n_small + 10 - 1);
  EXPECT_EQ(toeplitz_hash(x_small, t_small, 10),
            toeplitz_hash_clmul(x_small, t_small, 10));
}

TEST(Toeplitz, LinearityProperty) {
  // T(x ^ y) == T(x) ^ T(y) for any fixed seed: the defining property of a
  // linear hash, and what makes Toeplitz PA composable with XOR secrets.
  Xoshiro256 rng(4);
  const std::size_t n = 2048, r = 1024;
  const BitVec t = rng.random_bits(n + r - 1);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec x = rng.random_bits(n);
    const BitVec y = rng.random_bits(n);
    BitVec xy = x;
    xy ^= y;
    BitVec expected = toeplitz_hash_direct(x, t, r);
    expected ^= toeplitz_hash_direct(y, t, r);
    EXPECT_EQ(toeplitz_hash_direct(xy, t, r), expected);
  }
}

TEST(Toeplitz, ZeroInputHashesToZero) {
  Xoshiro256 rng(5);
  const BitVec x(1000);
  const BitVec t = rng.random_bits(1000 + 500 - 1);
  EXPECT_EQ(toeplitz_hash_direct(x, t, 500).popcount(), 0u);
  EXPECT_EQ(toeplitz_hash_ntt(x, t, 500).popcount(), 0u);
}

TEST(Toeplitz, UniversalitySmokeTest) {
  // Over random seeds, two distinct inputs collide with probability ~2^-r.
  // With r = 16 and 3000 trials we expect ~0.05 collisions; allow a few.
  Xoshiro256 rng(6);
  const std::size_t n = 256, r = 16;
  const BitVec x = rng.random_bits(n);
  BitVec y = x;
  y.flip(100);
  int collisions = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const BitVec t = rng.random_bits(n + r - 1);
    collisions +=
        toeplitz_hash_direct(x, t, r) == toeplitz_hash_direct(y, t, r);
  }
  EXPECT_LE(collisions, 3);
}

TEST(Toeplitz, OutputBitsAreBalanced) {
  Xoshiro256 rng(7);
  const std::size_t n = 4096, r = 2048;
  const BitVec x = rng.random_bits(n);
  const BitVec t = rng.random_bits(n + r - 1);
  const BitVec y = toeplitz_hash(x, t, r);
  const double frac = static_cast<double>(y.popcount()) / r;
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(Toeplitz, ShapeValidation) {
  Xoshiro256 rng(8);
  const BitVec x = rng.random_bits(100);
  const BitVec t = rng.random_bits(100);  // wrong length
  EXPECT_THROW(toeplitz_hash_direct(x, t, 50), std::invalid_argument);
  EXPECT_THROW(toeplitz_hash_ntt(x, t, 50), std::invalid_argument);
  EXPECT_THROW(toeplitz_hash_direct(BitVec(), t, 50), std::invalid_argument);
  EXPECT_THROW(toeplitz_hash_direct(x, rng.random_bits(99), 0),
               std::invalid_argument);
}

TEST(PaPlanner, ShrinksWithLeakage) {
  const auto a = plan_privacy_amplification(100000, 5000, 0.02, 20000);
  const auto b = plan_privacy_amplification(100000, 5000, 0.02, 40000);
  ASSERT_TRUE(a.viable);
  ASSERT_TRUE(b.viable);
  EXPECT_GT(a.output_bits, b.output_bits);
  EXPECT_EQ(a.output_bits - b.output_bits, 20000u);
}

TEST(PaPlanner, ShrinksWithPhaseError) {
  const auto a = plan_privacy_amplification(100000, 5000, 0.01, 20000);
  const auto b = plan_privacy_amplification(100000, 5000, 0.05, 20000);
  EXPECT_GT(a.output_bits, b.output_bits);
}

TEST(PaPlanner, SamplePenaltyShrinksWithSampleSize) {
  const auto tiny = plan_privacy_amplification(100000, 200, 0.02, 20000);
  const auto big = plan_privacy_amplification(100000, 20000, 0.02, 20000);
  EXPECT_GT(big.phase_error_bound, 0.02);
  EXPECT_LT(big.phase_error_bound, tiny.phase_error_bound);
}

TEST(PaPlanner, NotViableWhenLeakDominates) {
  const auto plan = plan_privacy_amplification(10000, 1000, 0.08, 9000);
  EXPECT_FALSE(plan.viable);
  EXPECT_EQ(plan.output_bits, 0u);
}

TEST(PaPlanner, NotViableAtHalfErrorRate) {
  const auto plan = plan_privacy_amplification(100000, 10000, 0.5, 0);
  EXPECT_FALSE(plan.viable);
}

TEST(PaPlanner, EmptyInput) {
  const auto plan = plan_privacy_amplification(0, 0, 0.01, 0);
  EXPECT_FALSE(plan.viable);
}

TEST(PaPlanner, SecurityCostsAreCharged) {
  // Zero-error, zero-leak plan still pays the composable epsilon costs and
  // the (small, well-sampled) phase-error penalty.
  const auto plan = plan_privacy_amplification(100000, 1000000, 0.0, 0);
  ASSERT_TRUE(plan.viable);
  EXPECT_LT(plan.output_bits, 100000u);
  EXPECT_GT(plan.output_bits, 85000u);
}

TEST(PaPlanner, LaxEpsilonsNeverInflateTheKey) {
  // Regression: pa_cost = 2 log2(1/(2 eps_pa)) goes negative for
  // eps_pa > 0.5 (and correctness_cost for eps_corr > 2), which used to
  // *credit* ~2.3 bits back and let output_bits exceed input_bits whenever
  // the sampling penalty was small enough (tiny key, huge sample, lax
  // eps_pe): this exact plan produced 101 output bits from 100 input bits.
  SecurityParams lax;
  lax.eps_pe = 0.9999;
  lax.eps_pa = 0.9;
  lax.eps_corr = 3.0;
  const auto plan = plan_privacy_amplification(100, 1000000000, 0.0, 0, lax);
  ASSERT_TRUE(plan.viable);
  EXPECT_LE(plan.output_bits, plan.input_bits);
}

TEST(PaPlanner, OutputNeverExceedsInputAcrossEpsilonSweep) {
  for (const double eps : {1e-10, 0.4, 0.5, 0.6, 0.99}) {
    SecurityParams params;
    params.eps_pe = 0.999;
    params.eps_pa = eps;
    params.eps_corr = eps * 4;  // crosses the eps_corr = 2 threshold too
    for (const std::size_t n_key : {16u, 100u, 5000u}) {
      const auto plan =
          plan_privacy_amplification(n_key, 100000000, 0.0, 0, params);
      EXPECT_LE(plan.output_bits, plan.input_bits)
          << "eps_pa=" << eps << " n=" << n_key;
    }
  }
}

TEST(PaPlanner, InvalidParamsThrow) {
  EXPECT_THROW(plan_privacy_amplification(100, 10, -0.1, 0),
               std::invalid_argument);
  SecurityParams params;
  params.eps_pa = 0.0;
  EXPECT_THROW(plan_privacy_amplification(100, 10, 0.01, 0, params),
               std::invalid_argument);
}

TEST(DecoyRate, PositiveBelowThresholdZeroAbove) {
  // Healthy link: plenty of single-photon secrecy.
  EXPECT_GT(decoy_key_rate_asymptotic(0.5, 0.02, 0.02, 0.025, 0.02, 1.16),
            0.0);
  // e1 at 50%: nothing extractable.
  EXPECT_DOUBLE_EQ(
      decoy_key_rate_asymptotic(0.5, 0.02, 0.5, 0.025, 0.02, 1.16), 0.0);
}

TEST(DecoyRate, MonotoneInErrorRates) {
  const double base =
      decoy_key_rate_asymptotic(0.5, 0.02, 0.02, 0.025, 0.02, 1.16);
  EXPECT_LT(decoy_key_rate_asymptotic(0.5, 0.02, 0.05, 0.025, 0.02, 1.16),
            base);
  EXPECT_LT(decoy_key_rate_asymptotic(0.5, 0.02, 0.02, 0.025, 0.05, 1.16),
            base);
  EXPECT_LT(decoy_key_rate_asymptotic(0.5, 0.02, 0.02, 0.025, 0.02, 1.5),
            base);
}

TEST(Verification, EqualKeysAlwaysVerify) {
  Xoshiro256 rng(9);
  for (const std::size_t n : {1u, 64u, 1000u, 100000u}) {
    const BitVec key = rng.random_bits(n);
    const std::uint64_t seed = rng.next_u64();
    EXPECT_TRUE(keys_verify(key, key, seed)) << n;
  }
}

TEST(Verification, SingleBitDifferenceDetected) {
  Xoshiro256 rng(10);
  const BitVec a = rng.random_bits(10000);
  for (const std::size_t flip_at : {0u, 5000u, 9999u}) {
    BitVec b = a;
    b.flip(flip_at);
    int detected = 0;
    for (int trial = 0; trial < 50; ++trial) {
      detected += !keys_verify(a, b, trial);
    }
    EXPECT_EQ(detected, 50) << flip_at;
  }
}

TEST(Verification, TagDependsOnSeed) {
  Xoshiro256 rng(11);
  const BitVec key = rng.random_bits(1000);
  EXPECT_NE(verification_tag(key, 1), verification_tag(key, 2));
}

TEST(Verification, TagDeterministic) {
  Xoshiro256 rng(12);
  const BitVec key = rng.random_bits(1000);
  EXPECT_EQ(verification_tag(key, 77), verification_tag(key, 77));
}

/// The hash point verification_tag derives from its public seed (pinned
/// here so the cross-check below exercises the same r the tag used).
U128 verification_point(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x5eedf0011ULL);
  return U128{rng.next_u64(), rng.next_u64()};
}

TEST(Verification, PolyEvalMatchesAuthPolyHash) {
  // The header claims verification's poly_eval is the same construction as
  // auth::poly_hash (Horner over GF(2^128) with a leading length block);
  // pin it: on identical byte strings the two must agree bit for bit.
  Xoshiro256 rng(13);
  for (const std::size_t bits : {8u, 64u, 256u, 1000u, 4096u, 100000u}) {
    const BitVec key = rng.random_bits(bits);
    const std::uint64_t seed = rng.next_u64();
    const U128 r = verification_point(seed);
    const auto bytes = key.to_bytes();
    EXPECT_EQ(verification_tag(key, seed), auth::poly_hash(r, bytes))
        << bits << " bits";
  }
}

TEST(Verification, PolyEvalMatchesAuthPolyHashAtBlockBoundaries) {
  // 16-byte-block edges of the Horner loop: exactly one block, one block
  // +/- one byte, several blocks, and the empty-message length block.
  Xoshiro256 rng(14);
  const std::size_t byte_sizes[] = {0, 1, 15, 16, 17, 31, 32, 33, 48, 127, 128};
  for (const std::size_t n_bytes : byte_sizes) {
    const BitVec key = rng.random_bits(n_bytes * 8);
    ASSERT_EQ(key.to_bytes().size(), n_bytes);
    const std::uint64_t seed = 0xb10cull + n_bytes;
    const U128 r = verification_point(seed);
    EXPECT_EQ(verification_tag(key, seed), auth::poly_hash(r, key.to_bytes()))
        << n_bytes << " bytes";
  }
}

TEST(Verification, PartialBlockPaddingIsLengthDistinguished) {
  // A partial final block is zero-padded; the leading length block must
  // still separate a message from its zero-extended sibling in *both*
  // constructions, and they must agree on the (distinct) tags.
  Xoshiro256 rng(15);
  const BitVec key = rng.random_bits(9 * 8);  // 9 bytes: partial block
  BitVec extended = key;
  for (int i = 0; i < 8; ++i) extended.push_back(false);  // 10 bytes, 0-padded
  const std::uint64_t seed = 99;
  const U128 r = verification_point(seed);
  EXPECT_NE(verification_tag(key, seed), verification_tag(extended, seed));
  EXPECT_EQ(verification_tag(key, seed), auth::poly_hash(r, key.to_bytes()));
  EXPECT_EQ(verification_tag(extended, seed),
            auth::poly_hash(r, extended.to_bytes()));
}

}  // namespace
}  // namespace qkdpp::privacy
