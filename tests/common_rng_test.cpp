// Xoshiro256 statistical sanity + determinism tests.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace qkdpp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMean) {
  Xoshiro256 rng(6);
  const double p = 0.11;
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
  const double observed = static_cast<double>(hits) / n;
  // ~6 sigma tolerance
  EXPECT_NEAR(observed, p, 6 * std::sqrt(p * (1 - p) / n));
}

TEST(Rng, UniformBoundRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformCoversAllResidues) {
  Xoshiro256 rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, PoissonMeanAndVariance) {
  Xoshiro256 rng(9);
  const double mu = 0.48;  // typical signal-state intensity
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.poisson(mu);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, mu, 0.02);
  EXPECT_NEAR(var, mu, 0.03);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
  Xoshiro256 rng(10);
  const double mu = 50.0;
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(mu);
  EXPECT_NEAR(sum / n, mu, 0.5);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(11);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, RandomBitsBalanced) {
  Xoshiro256 rng(12);
  const std::size_t n = 1 << 18;
  const BitVec bits = rng.random_bits(n);
  const double frac = static_cast<double>(bits.popcount()) / n;
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Rng, RandomBitsTailInvariant) {
  Xoshiro256 rng(13);
  const BitVec bits = rng.random_bits(70);
  EXPECT_EQ(bits.words().back() >> 6, 0u);  // bits 70..127 zero
}

TEST(Rng, PermutationIsPermutation) {
  Xoshiro256 rng(14);
  const auto p = rng.permutation(1000);
  std::vector<bool> seen(1000, false);
  for (const auto x : p) {
    ASSERT_LT(x, 1000u);
    ASSERT_FALSE(seen[x]);
    seen[x] = true;
  }
}

TEST(Rng, PermutationNotIdentity) {
  Xoshiro256 rng(15);
  const auto p = rng.permutation(1000);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += p[i] == i;
  EXPECT_LT(fixed, 20u);  // expected ~1 fixed point
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Xoshiro256 rng(16);
  for (const std::size_t k : {0u, 1u, 10u, 500u, 999u, 1000u}) {
    const auto s = rng.sample_without_replacement(1000, k);
    ASSERT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (const auto x : s) EXPECT_LT(x, 1000u);
  }
}

TEST(Rng, SampleMoreThanPopulationThrows) {
  Xoshiro256 rng(17);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleSparsePathUniform) {
  // k*20 < n triggers the rejection path; check rough uniformity.
  Xoshiro256 rng(18);
  std::vector<int> counts(100, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (const auto x : rng.sample_without_replacement(100, 2)) ++counts[x];
  }
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mn, 10);
  EXPECT_LT(*mx, 100);
}

}  // namespace
}  // namespace qkdpp
