// Session-over-chaos integration tests: the two-party choreography runs on
// top of the ARQ layer (ReliableChannel) over a seeded fault injector
// (FaultyChannel). A lossy-but-alive channel must heal to the *same* keys a
// clean channel produces (exactly-once in-order delivery means the fault
// pattern never reaches the protocol); a dead channel must end in typed
// aborts on both sides instead of a hang or an unwind.
#include "pipeline/session.hpp"

#include <gtest/gtest.h>

#include <future>
#include <utility>

#include "common/error.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/reliable_channel.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::pipeline {
namespace {

struct LinkData {
  protocol::AliceTransmitLog alice_log;
  BobDetections bob;
};

LinkData simulate_link(double km, std::uint64_t seed, std::size_t pulses) {
  sim::LinkConfig link;
  link.channel.length_km = km;
  Xoshiro256 rng(seed);
  const auto record = sim::Bb84Simulator(link).run(pulses, rng);
  LinkData data;
  data.alice_log = {record.alice_bits, record.alice_bases,
                    record.alice_class};
  data.bob.block_id = 1;
  data.bob.n_pulses = record.n_pulses;
  data.bob.detected_idx = record.detected_idx;
  data.bob.bits = record.bob_bits;
  data.bob.bases = record.bob_bases;
  return data;
}

SessionConfig metro_session_config() {
  SessionConfig config;
  config.ldpc.min_frame = 4096;
  return config;
}

struct ChaosRun {
  SessionResult alice;
  SessionResult bob;
};

/// Run one session with `profile` injected under the ARQ layer on both
/// directions. The fault and jitter seeds are fixed per run index so a
/// repeat with the same arguments replays the same injected pattern.
ChaosRun run_chaos_session(const LinkData& data, const SessionConfig& config,
                           const protocol::FaultProfile& profile,
                           const protocol::RetryPolicy& retry,
                           std::uint64_t fault_seed) {
  auto [raw_alice, raw_bob] = protocol::make_channel_pair();
  auto faulty_alice = protocol::make_faulty_channel(std::move(raw_alice),
                                                    profile, fault_seed);
  auto faulty_bob = protocol::make_faulty_channel(std::move(raw_bob), profile,
                                                  fault_seed + 1);
  protocol::ReliableChannel alice_channel(std::move(faulty_alice), retry,
                                          fault_seed + 2);
  protocol::ReliableChannel bob_channel(std::move(faulty_bob), retry,
                                        fault_seed + 3);

  auto alice_future = std::async(std::launch::async, [&] {
    Xoshiro256 rng(777);
    auto r = run_alice_session(alice_channel, data.alice_log, 1, config, rng);
    // Close inside the task: close() lingers to retransmit an unacked
    // final frame while the peer is still listening.
    alice_channel.close();
    return r;
  });
  ChaosRun run;
  run.bob = run_bob_session(bob_channel, data.bob, config);
  bob_channel.close();
  run.alice = alice_future.get();
  return run;
}

TEST(SessionChaos, LossyChannelHealsToCleanChannelKeys) {
  const auto data = simulate_link(25.0, 300, 1 << 19);
  // Cascade: hundreds of parity round-trips, so the lossy profile is
  // statistically guaranteed to hit the wire many times (an LDPC session
  // is ~a dozen frames — a zero-fault run would be a coin flip away).
  SessionConfig config = metro_session_config();
  config.method = protocol::ReconcileMethod::kCascade;
  const protocol::RetryPolicy retry;

  // Reference: the same block over a fault-free stack (ARQ still in the
  // path, so framing overhead is identical — only the faults differ).
  const ChaosRun clean =
      run_chaos_session(data, config, protocol::FaultProfile{}, retry, 40);
  ASSERT_TRUE(clean.alice.success) << clean.alice.abort_reason;
  ASSERT_TRUE(clean.bob.success) << clean.bob.abort_reason;
  ASSERT_EQ(clean.alice.final_key, clean.bob.final_key);
  EXPECT_EQ(clean.alice.channel.retransmits, 0u);

  protocol::FaultProfile lossy;
  lossy.drop = 0.05;
  lossy.corrupt = 0.01;
  lossy.duplicate = 0.02;
  lossy.reorder = 0.02;
  const ChaosRun chaotic = run_chaos_session(data, config, lossy, retry, 41);
  ASSERT_TRUE(chaotic.alice.success) << chaotic.alice.abort_reason;
  ASSERT_TRUE(chaotic.bob.success) << chaotic.bob.abort_reason;

  // The ARQ layer healed every injected fault: the protocol transcript —
  // and with the same Alice seed, the final key — is byte-identical to the
  // clean run's. Retransmission shows up only in the counters.
  EXPECT_EQ(chaotic.alice.final_key, clean.alice.final_key);
  EXPECT_EQ(chaotic.bob.final_key, clean.bob.final_key);
  const auto chaos_counters = chaotic.alice.channel;  // already folded
  EXPECT_GT(chaos_counters.retransmits + chaotic.bob.channel.retransmits, 0u);
  EXPECT_GT(chaos_counters.faults_injected +
                chaotic.bob.channel.faults_injected,
            0u);
}

TEST(SessionChaos, SameSeedFaultRunsProduceIdenticalKeys) {
  const auto data = simulate_link(25.0, 301, 1 << 19);
  const SessionConfig config = metro_session_config();
  const protocol::RetryPolicy retry;
  protocol::FaultProfile lossy;
  lossy.drop = 0.08;
  lossy.corrupt = 0.02;
  lossy.reorder = 0.03;

  const ChaosRun first = run_chaos_session(data, config, lossy, retry, 70);
  const ChaosRun second = run_chaos_session(data, config, lossy, retry, 70);
  ASSERT_TRUE(first.alice.success) << first.alice.abort_reason;
  ASSERT_TRUE(second.alice.success) << second.alice.abort_reason;
  EXPECT_EQ(first.alice.final_key, second.alice.final_key);
  EXPECT_EQ(first.bob.final_key, second.bob.final_key);
  EXPECT_EQ(first.alice.key_id, second.alice.key_id);
}

TEST(SessionChaos, ChannelOutageIsTypedAbortOnBothSides) {
  const auto data = simulate_link(25.0, 302, 1 << 18);
  const SessionConfig config = metro_session_config();
  protocol::FaultProfile dead;
  dead.drop = 1.0;  // nothing crosses, in either direction
  protocol::RetryPolicy retry;
  retry.max_retries = 3;
  retry.base_timeout = std::chrono::microseconds{500};
  retry.exchange_deadline = std::chrono::milliseconds{300};

  const ChaosRun run = run_chaos_session(data, config, dead, retry, 90);
  // Both sides abort with a *typed* fault — no hang, no unwound exception,
  // no key material on either end.
  EXPECT_FALSE(run.alice.success);
  EXPECT_FALSE(run.bob.success);
  ASSERT_TRUE(run.alice.fault_code.has_value());
  ASSERT_TRUE(run.bob.fault_code.has_value());
  for (const auto code : {*run.alice.fault_code, *run.bob.fault_code}) {
    EXPECT_TRUE(code == ErrorCode::kTimeout ||
                code == ErrorCode::kChannelClosed)
        << to_string(code);
  }
  EXPECT_TRUE(run.alice.final_key.empty());
  EXPECT_TRUE(run.bob.final_key.empty());
  EXPECT_GT(run.alice.channel.retry_timeouts + run.bob.channel.retry_timeouts,
            0u);
}

}  // namespace
}  // namespace qkdpp::pipeline
