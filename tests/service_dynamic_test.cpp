// Dynamic-scenario orchestrator tests: hot-removed devices never receive
// work under an adaptive policy (and visibly abort blocks under a static
// one), scheduled perturbations land at the right blocks through the whole
// service stack, and a scenario run is bit-deterministic per seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace qkdpp::service {
namespace {

/// Deterministic adaptive policy: periodic + QBER triggers only (the
/// throughput trigger consults wall-clock, which is irrelevant to key bits
/// but would make the replan *count* vary run to run).
ReplanPolicy deterministic_adaptive() {
  ReplanPolicy policy;
  policy.period_blocks = 6;
  policy.qber_delta = 0.015;
  policy.throughput_drop = 0.0;
  policy.window = 4;
  policy.adapt_reconciler = true;
  return policy;
}

OrchestratorConfig one_link(const sim::ScenarioConfig& scenario,
                            std::uint64_t seed = 9) {
  OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  config.device_events = scenario.device_events;
  LinkSpec spec;
  spec.name = scenario.name;
  spec.link.channel.length_km = 15.0;
  spec.pulses_per_block = std::size_t{1} << 19;
  spec.blocks = scenario.blocks;
  spec.rng_seed = seed;
  spec.schedule = scenario.schedule;
  config.links.push_back(std::move(spec));
  return config;
}

TEST(DynamicOrchestrator, HotRemovedDeviceNeverReceivesWorkWhenAdaptive) {
  // Device 2 (gpu-sim) is pulled before the first block and never returns:
  // the roster-change replan must route around it, so it ends the run with
  // zero kernel launches and no block is lost to it.
  sim::ScenarioConfig scenario;
  scenario.name = "remove-at-start";
  scenario.blocks = 3;
  sim::DeviceEvent event;
  event.device_index = 2;
  event.offline_at_block = 0;
  event.online_at_block = 0;  // permanent
  scenario.device_events.push_back(event);

  OrchestratorConfig config = one_link(scenario);
  config.replan = deterministic_adaptive();
  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();

  EXPECT_EQ(orchestrator.device_set().device(2).kernels_launched(), 0u);
  EXPECT_EQ(report.links[0].offline_aborts, 0u);
  EXPECT_GT(report.links[0].replans, 0u);
  EXPECT_GT(report.blocks_ok, 0u);
}

TEST(DynamicOrchestrator, StaticPlacementLosesBlocksToHotRemove) {
  // Same fault, no adaptation: the construction-time placement keeps
  // pointing blocks at the dead device, and they abort.
  sim::ScenarioConfig scenario;
  scenario.name = "remove-at-start";
  scenario.blocks = 3;
  sim::DeviceEvent event;
  event.device_index = 2;
  event.offline_at_block = 0;
  event.online_at_block = 0;
  scenario.device_events.push_back(event);

  OrchestratorConfig config = one_link(scenario);
  config.replan = ReplanPolicy::static_placement();
  LinkOrchestrator orchestrator(std::move(config));

  // Precondition for the assertion below: the static placement actually
  // uses the device being removed.
  bool uses_gpu = false;
  const auto placement = orchestrator.link_engine(0).placement();
  for (std::size_t s = 0; s < placement.device_of_stage.size(); ++s) {
    uses_gpu |= placement.device_of(s) == "gpu-sim";
  }
  ASSERT_TRUE(uses_gpu);

  const auto report = orchestrator.run();
  EXPECT_EQ(report.links[0].offline_aborts, scenario.blocks);
  EXPECT_EQ(report.links[0].replans, 0u);
  EXPECT_EQ(report.blocks_ok, 0u);
}

TEST(DynamicOrchestrator, ReplanChangesPlacementWhenRosterShrinks) {
  // Hot-remove mid-run: the adaptive link replans onto surviving devices
  // (final placement avoids the dead one) instead of aborting blocks.
  sim::ScenarioConfig scenario;
  scenario.name = "remove-mid-run";
  scenario.blocks = 4;
  sim::DeviceEvent event;
  event.device_index = 2;
  event.offline_at_block = 2;
  event.online_at_block = 0;  // stays gone
  scenario.device_events.push_back(event);

  OrchestratorConfig config = one_link(scenario);
  config.replan = deterministic_adaptive();
  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();

  for (const auto& device : report.links[0].stage_devices) {
    EXPECT_NE(device, "gpu-sim");
  }
  EXPECT_GT(report.links[0].replans, 0u);
  EXPECT_EQ(report.links[0].offline_aborts, 0u);  // single link: no races
  EXPECT_GT(report.blocks_ok, 0u);
}

TEST(DynamicOrchestrator, QberBurstRaisesWindowedEstimateAndAdapts) {
  // The burst blocks must show up in the windowed QBER the service reports
  // (scheduling reached the right blocks through sim -> engine -> window).
  sim::ScenarioConfig burst = sim::qber_burst_scenario(9);
  // Park the burst at the tail so the final window still holds it, and
  // soften it to +1.5 points so the burst blocks stay below the
  // privacy-amplification wall (~4% at this block size) and actually
  // distill key: the burst should be *survivable*, not merely observed
  // through its aborts.
  burst.schedule.perturbations[0].begin_block = 5;
  burst.schedule.perturbations[0].end_block = 9;
  burst.schedule.perturbations[0].magnitude = 0.015;

  OrchestratorConfig config = one_link(burst);
  config.replan = deterministic_adaptive();
  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  // Base QBER is ~1.3-1.7%; the burst adds 1.5 points, so the final
  // window (all burst blocks) sits near 2.8%.
  EXPECT_GT(report.links[0].windowed_qber, 0.02);
  EXPECT_GT(report.links[0].replans, 0u);

  // Without the burst the windowed estimate stays quiet.
  OrchestratorConfig calm_config = one_link(sim::ScenarioConfig{
      .name = "calm", .blocks = 9, .schedule = {}, .device_events = {}});
  calm_config.replan = deterministic_adaptive();
  LinkOrchestrator calm(std::move(calm_config));
  EXPECT_LT(calm.run().links[0].windowed_qber, 0.03);
}

std::vector<BitVec> drain(pipeline::KeyStore& store) {
  std::vector<BitVec> keys;
  while (auto key = store.get_key("determinism-test")) {
    keys.push_back(std::move(key->bits));
  }
  return keys;
}

TEST(DynamicOrchestrator, SameScenarioSeedProducesIdenticalSecretKeys) {
  // Channel-perturbation scenario (no device events: those are applied
  // asynchronously to in-flight blocks, like pulling real hardware), run
  // twice from scratch: every distilled key must match bit for bit, even
  // though adaptation switched reconcilers mid-run.
  const sim::ScenarioConfig scenario = sim::qber_burst_scenario(8);

  auto run_once = [&] {
    OrchestratorConfig config = one_link(scenario, /*seed=*/31);
    config.replan = deterministic_adaptive();
    LinkOrchestrator orchestrator(std::move(config));
    const auto report = orchestrator.run();
    return std::make_pair(report.links[0].secret_bits,
                          drain(orchestrator.key_store(0)));
  };

  const auto [bits_a, keys_a] = run_once();
  const auto [bits_b, keys_b] = run_once();
  EXPECT_EQ(bits_a, bits_b);
  ASSERT_EQ(keys_a.size(), keys_b.size());
  ASSERT_GT(keys_a.size(), 0u);
  for (std::size_t k = 0; k < keys_a.size(); ++k) {
    ASSERT_EQ(keys_a[k].size(), keys_b[k].size()) << "key " << k;
    for (std::size_t i = 0; i < keys_a[k].size(); ++i) {
      ASSERT_EQ(keys_a[k].get(i), keys_b[k].get(i))
          << "key " << k << " bit " << i;
    }
  }
}

}  // namespace
}  // namespace qkdpp::service
