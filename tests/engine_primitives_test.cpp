// Word-parallel engine primitives vs bit-at-a-time references:
// split_sifted's ctz walk and remaining_key's mask-and-compress must agree
// with the scalar definitions at word-boundary sizes.
#include "engine/primitives.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp::engine {
namespace {

SignalSplit split_sifted_reference(const BitVec& sifted,
                                   const BitVec& signal_mask) {
  SignalSplit split;
  for (std::size_t i = 0; i < sifted.size(); ++i) {
    if (signal_mask.get(i)) {
      split.signal_positions.push_back(static_cast<std::uint32_t>(i));
    } else {
      split.revealed_positions.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return split;
}

BitVec remaining_key_reference(const BitVec& sifted, const BitVec& signal_mask,
                               const std::vector<std::uint32_t>& revealed) {
  std::vector<std::uint8_t> is_revealed(sifted.size(), 0);
  for (const auto p : revealed) {
    if (p < is_revealed.size()) is_revealed[p] = 1;
  }
  BitVec key;
  for (std::size_t i = 0; i < sifted.size(); ++i) {
    if (signal_mask.get(i) && !is_revealed[i]) {
      key.push_back(sifted.get(i));
    }
  }
  return key;
}

TEST(Primitives, SplitSiftedMatchesReference) {
  Xoshiro256 rng(1);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 5000u}) {
    const BitVec sifted = rng.random_bits(n);
    const BitVec mask = rng.random_bits(n);
    const SignalSplit got = split_sifted(sifted, mask);
    const SignalSplit expected = split_sifted_reference(sifted, mask);
    EXPECT_EQ(got.signal_positions, expected.signal_positions) << n;
    EXPECT_EQ(got.revealed_positions, expected.revealed_positions) << n;
  }
}

TEST(Primitives, SplitSiftedExtremeMasks) {
  Xoshiro256 rng(2);
  const std::size_t n = 192;
  const BitVec sifted = rng.random_bits(n);
  const auto all = split_sifted(sifted, BitVec(n, true));
  EXPECT_EQ(all.signal_positions.size(), n);
  EXPECT_TRUE(all.revealed_positions.empty());
  const auto none = split_sifted(sifted, BitVec(n));
  EXPECT_TRUE(none.signal_positions.empty());
  EXPECT_EQ(none.revealed_positions.size(), n);
}

TEST(Primitives, RemainingKeyMatchesReference) {
  Xoshiro256 rng(3);
  for (const std::size_t n : {63u, 64u, 65u, 128u, 129u, 4000u}) {
    const BitVec sifted = rng.random_bits(n);
    const BitVec mask = rng.random_bits(n);
    // Reveal a random third of all positions (some not in the signal set,
    // some duplicated - both must be tolerated).
    std::vector<std::uint32_t> revealed;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.33)) {
        revealed.push_back(static_cast<std::uint32_t>(i));
        if (rng.bernoulli(0.1)) {
          revealed.push_back(static_cast<std::uint32_t>(i));  // duplicate
        }
      }
    }
    EXPECT_EQ(remaining_key(sifted, mask, revealed),
              remaining_key_reference(sifted, mask, revealed))
        << n;
  }
}

TEST(Primitives, RemainingKeyRevealAllAndNone) {
  Xoshiro256 rng(4);
  const std::size_t n = 300;
  const BitVec sifted = rng.random_bits(n);
  const BitVec mask = rng.random_bits(n);
  std::vector<std::uint32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::uint32_t>(i);
  EXPECT_TRUE(remaining_key(sifted, mask, all).empty());
  EXPECT_EQ(remaining_key(sifted, mask, {}).size(), mask.popcount());
}

}  // namespace
}  // namespace qkdpp::engine
